GO ?= go

.PHONY: build test race bench docs-check examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the godoc examples (the docs lane's executable documentation).
examples:
	$(GO) test -run Example -v ./ksjq/

# Snapshot the tracked benchmarks into BENCH_pr3.json.
bench:
	./scripts/bench_snapshot.sh BENCH_pr3.json

# Fail if README.md references commands, flags, or files that are gone.
docs-check:
	./scripts/check_docs.sh

ci: build test race examples docs-check
