GO ?= go

.PHONY: build test race bench bench-compare coverage docs-check examples staticcheck apicheck shuffle shard-smoke persist-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the godoc examples (the docs lane's executable documentation).
examples:
	$(GO) test -run Example -v ./ksjq/

# Snapshot the tracked benchmarks (best-of-COUNT, default 5) into the
# current PR's trajectory record.
bench:
	./scripts/bench_snapshot.sh BENCH_pr10.json

# Noise-robust regression gate: fresh best-of-N snapshot vs the newest
# checked-in BENCH_pr*.json; fails on >25% ns/op regression (THRESHOLD to
# tune, WARN_ONLY=1 to report without failing).
bench-compare:
	./scripts/bench_compare.sh

# Statement-coverage gate: internal/core and internal/service against
# the floors in scripts/coverage_floor.txt (WARN_ONLY=1 to report only).
coverage:
	./scripts/check_coverage.sh

# Fail if README.md references commands, flags, or files that are gone.
docs-check:
	./scripts/check_docs.sh

# Public-API golden check: fails fast, with a readable diff, when the
# exported ksjq surface changed without regenerating testdata/api.txt
# (`go test ./ksjq -run TestAPISurface -update` records intentional
# changes).
apicheck:
	$(GO) test ./ksjq -run TestAPISurface

# Shuffled test order: catches inter-test coupling the fixed order hides.
shuffle:
	$(GO) test -shuffle=on ./...

# Cluster smoke: boot 2 real shard processes + a gateway, check the
# scatter-gathered answer against a single-node recompute, and that a
# dead shard surfaces as a 503 naming it.
shard-smoke:
	./scripts/smoke_shard.sh

# Durability smoke: boot ksjqd with -data, insert a batch, kill -9, restart
# from the same directory, check the recovered answer against both the
# pre-crash maintained answer and a cold recompute.
persist-smoke:
	./scripts/smoke_persist.sh

# Static analysis. CI installs staticcheck; locally this uses whatever is
# on PATH and explains itself if nothing is.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; run: go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

ci: build test race shuffle apicheck coverage examples docs-check shard-smoke persist-smoke
