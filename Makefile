GO ?= go

.PHONY: build test race bench docs-check examples staticcheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the godoc examples (the docs lane's executable documentation).
examples:
	$(GO) test -run Example -v ./ksjq/

# Snapshot the tracked benchmarks into BENCH_pr4.json.
bench:
	./scripts/bench_snapshot.sh BENCH_pr4.json

# Fail if README.md references commands, flags, or files that are gone.
docs-check:
	./scripts/check_docs.sh

# Static analysis. CI installs staticcheck; locally this uses whatever is
# on PATH and explains itself if nothing is.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; run: go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

ci: build test race examples docs-check
