// Durable-boot benchmarks (DESIGN.md §14): BenchmarkWarmRestart opens a
// checkpointed data directory — the restart path ksjqd takes with -data —
// and BenchmarkCSVReingest is the boot it replaces, re-parsing the -load
// CSVs and re-registering the relations on every start. Both stop at
// "relations registered" (no join indexes built on either side), so the
// ratio isolates the storage format: columnar segment decode vs CSV parse
// at n=32000 per relation. The acceptance criterion is warm restart >=5x
// faster; BENCH_pr10.json records both.
package repro_test

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/service"
)

const persistN = 32000

// persistCSV renders a relation in ksjqd's -load CSV layout (key, band,
// attrs) at full float precision, so re-ingesting it reproduces the
// durable relation's contents exactly.
func persistCSV(rel *dataset.Relation) []byte {
	var buf bytes.Buffer
	buf.WriteString("key,band")
	d := rel.D()
	for j := 0; j < d; j++ {
		buf.WriteString(",a")
		buf.Write(strconv.AppendInt(nil, int64(j), 10))
	}
	buf.WriteByte('\n')
	for i := 0; i < rel.Len(); i++ {
		buf.WriteString(rel.Key(i))
		buf.WriteByte(',')
		buf.Write(strconv.AppendFloat(nil, rel.Band(i), 'g', -1, 64))
		for _, a := range rel.Attrs(i) {
			buf.WriteByte(',')
			buf.Write(strconv.AppendFloat(nil, a, 'g', -1, 64))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// benchConfig disables the background sweeper and checkpointer so the
// loop measures boot work, not goroutine scheduling.
func benchConfig() service.Config {
	return service.Config{SweepInterval: -1, CheckpointInterval: -1}
}

// BenchmarkWarmRestart measures service.Open on a data directory whose
// WAL was fully folded into segment files by a clean shutdown — the
// steady-state restart. Closing the reopened service (which re-checkpoints)
// is excluded from the timing.
func BenchmarkWarmRestart(b *testing.B) {
	q := defaultQuery(persistN)
	dir := b.TempDir()
	svc, err := service.Open(benchConfig(), dir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Register("r1", q.R1); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Register("r2", q.R2); err != nil {
		b.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := service.Open(benchConfig(), dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		info, err := svc.RelationInfo("r1")
		if err != nil || info.Tuples != persistN {
			b.Fatalf("recovered r1: %+v, %v", info, err)
		}
		if err := svc.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkCSVReingest is the pre-durability boot: parse both -load CSVs
// and register the relations into a fresh in-memory service, exactly the
// work ksjqd's preload path repeats on every start without -data.
func BenchmarkCSVReingest(b *testing.B) {
	q := defaultQuery(persistN)
	csv1 := persistCSV(q.R1)
	csv2 := persistCSV(q.R2)
	opts := dataset.ReadOptions{Local: q.R1.Local, Agg: q.R1.Agg, HasBand: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := service.New(benchConfig())
		for name, raw := range map[string][]byte{"r1": csv1, "r2": csv2} {
			opts.Name = name
			rel, err := dataset.ReadCSV(bytes.NewReader(raw), opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Register(name, rel); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		info, err := svc.RelationInfo("r1")
		if err != nil || info.Tuples != persistN {
			b.Fatalf("ingested r1: %+v, %v", info, err)
		}
		if err := svc.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
