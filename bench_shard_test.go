// Benchmarks for the sharded deployment (PR 9): a real 4-shard
// in-process cluster — shard services behind actual HTTP servers, the
// gateway scatter-gathering over TCP — against one single-node service
// on the same data. Three arms:
//
//   - single-node: the baseline cold recompute (NoCache).
//   - gateway/cold: the same query through the cluster, recomputed on
//     every shard each iteration. On a multi-core host round 1 runs the
//     shard-local joins in parallel processes, so this should beat the
//     baseline; on a 1-CPU container the arms time alike and the
//     reported r1_imbalance metric (max/mean per-shard round-1
//     candidates) is the evidence that the work partitions evenly —
//     the parallel speedup a multi-core deployment would realize.
//   - gateway/warm: the repeated query, answered from the shards'
//     answer caches — two fan-out round trips, no recompute.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/shard"
)

func shardBenchTuples(rng *rand.Rand, n, local, agg, groups int) []dataset.Tuple {
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		attrs := make([]float64, local+agg)
		for j := range attrs {
			attrs[j] = rng.Float64() * 100
		}
		ts[i] = dataset.Tuple{Key: fmt.Sprintf("g%d", rng.Intn(groups)), Attrs: attrs}
	}
	return ts
}

func BenchmarkShardedQuery(b *testing.B) {
	const local, agg, groups, n, shards = 3, 1, 32, 32000, 4
	rng := rand.New(rand.NewSource(9))
	t1 := shardBenchTuples(rng, n, local, agg, groups)
	t2 := shardBenchTuples(rng, n, local, agg, groups)
	req := service.QueryRequest{R1: "r1", R2: "r2", K: 6, Agg: "sum", NoCache: true}
	ctx := context.Background()

	single := service.New(service.Config{SweepInterval: -1})
	defer single.Close()
	for name, ts := range map[string][]dataset.Tuple{"r1": t1, "r2": t2} {
		rel, err := dataset.New(name, local, agg, ts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := single.Register(name, rel); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("single-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := single.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	var urls []string
	for i := 0; i < shards; i++ {
		svc := service.New(service.Config{SweepInterval: -1})
		defer svc.Close()
		srv := httptest.NewServer(httpapi.NewHandler(svc, 0))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	gw, err := shard.New(ctx, urls, shard.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	if _, err := gw.Register(ctx, "r1", local, agg, t1); err != nil {
		b.Fatal(err)
	}
	if _, err := gw.Register(ctx, "r2", local, agg, t2); err != nil {
		b.Fatal(err)
	}

	b.Run("gateway-cold", func(b *testing.B) {
		imbalance := 0.0
		for i := 0; i < b.N; i++ {
			resp, err := gw.Query(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			// max/mean per-shard round-1 elapsed: 1.0 is a perfect work
			// partition; the closer to 1, the closer a multi-core
			// deployment gets to the ideal 1/shards round-1 wall clock.
			var maxT, sum float64
			for _, d := range resp.R1Elapsed {
				maxT = math.Max(maxT, float64(d))
				sum += float64(d)
			}
			if sum > 0 {
				imbalance += maxT * float64(shards) / sum
			}
		}
		b.ReportMetric(math.Round(imbalance/float64(b.N)*100)/100, "r1_imbalance")
	})

	warmReq := req
	warmReq.NoCache = false
	if _, err := gw.Query(ctx, warmReq); err != nil {
		b.Fatal(err)
	}
	b.Run("gateway-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := gw.Query(ctx, warmReq)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Source == service.SourceComputed {
				b.Fatal("warm arm recomputed")
			}
		}
	})
}
