// One testing.B benchmark per figure of the paper's evaluation (Sec. 7),
// plus micro-benchmarks for the three KSJQ algorithms and the three find-k
// algorithms at the paper's default parameters. Figure benchmarks run at
// the Small scale (see internal/experiments); the cmd/ksjq-experiments
// binary regenerates the same figures at paper scale with -scale full.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/join"
	"repro/internal/service"
	"repro/ksjq"
)

func benchFigure(b *testing.B, scale experiments.Scale, pick func(*experiments.Suite) func() []experiments.Row) {
	b.Helper()
	s := experiments.NewSuite(scale, nil)
	run := pick(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := run(); len(rows) == 0 {
			b.Fatal("figure produced no rows")
		}
	}
}

func BenchmarkFig1a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig1a })
}

func BenchmarkFig1b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig1b })
}

func BenchmarkFig2a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig2a })
}

func BenchmarkFig2b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig2b })
}

func BenchmarkFig3a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig3a })
}

func BenchmarkFig3b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig3b })
}

func BenchmarkFig4(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig4 })
}

func BenchmarkFig5a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig5a })
}

func BenchmarkFig5b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig5b })
}

func BenchmarkFig6a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig6a })
}

func BenchmarkFig6b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig6b })
}

func BenchmarkFig7(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig7 })
}

func BenchmarkFig8a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig8a })
}

func BenchmarkFig8b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig8b })
}

func BenchmarkFig9a(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig9a })
}

func BenchmarkFig9b(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig9b })
}

func BenchmarkFig10(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig10 })
}

func BenchmarkFig11(b *testing.B) {
	benchFigure(b, experiments.Small, func(s *experiments.Suite) func() []experiments.Row { return s.Fig11 })
}

// defaultQuery builds the paper's Table 7 default workload at a
// benchmark-friendly size.
func defaultQuery(n int) core.Query {
	r1 := datagen.MustGenerate(datagen.Config{
		Name: "R1", N: n, Local: 5, Agg: 2, Groups: 10, Dist: datagen.Independent, Seed: 2017,
	})
	r2 := datagen.MustGenerate(datagen.Config{
		Name: "R2", N: n, Local: 5, Agg: 2, Groups: 10, Dist: datagen.Independent, Seed: 2018,
	})
	return core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 11}
}

func benchAlgorithm(b *testing.B, alg core.Algorithm) {
	b.Helper()
	q := defaultQuery(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(q, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the three KSJQ algorithms head to head at the default
// parameters (d=7, a=2, k=11, g=10).
func BenchmarkAlgorithmGrouping(b *testing.B)  { benchAlgorithm(b, core.Grouping) }
func BenchmarkAlgorithmDominator(b *testing.B) { benchAlgorithm(b, core.DominatorBased) }
func BenchmarkAlgorithmNaive(b *testing.B)     { benchAlgorithm(b, core.Naive) }

func benchFindK(b *testing.B, alg core.FindKAlgorithm) {
	b.Helper()
	q := defaultQuery(300)
	q.Spec.Agg = join.Sum
	q.R1 = datagen.MustGenerate(datagen.Config{Name: "R1", N: 300, Local: 5, Groups: 10, Seed: 2017})
	q.R2 = datagen.MustGenerate(datagen.Config{Name: "R2", N: 300, Local: 5, Groups: 10, Seed: 2018})
	q.K = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FindK(q, 250, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the three find-k strategies at δ=250 (the Small-scale analogue
// of the paper's δ=10000).
func BenchmarkFindKBinary(b *testing.B) { benchFindK(b, core.FindKBinary) }
func BenchmarkFindKRange(b *testing.B)  { benchFindK(b, core.FindKRange) }
func BenchmarkFindKNaive(b *testing.B)  { benchFindK(b, core.FindKNaive) }

// bandQuery builds a Sec. 6.6-style workload: R1.Band < R2.Band (arrival
// before departure), with ~n²/2 join-compatible pairs at size n.
func bandQuery(n int) core.Query {
	r1 := datagen.MustGenerate(datagen.Config{
		Name: "legs1", N: n, Local: 3, Groups: 10, Dist: datagen.Independent, Seed: 2017,
	})
	r2 := datagen.MustGenerate(datagen.Config{
		Name: "legs2", N: n, Local: 3, Groups: 10, Dist: datagen.Independent, Seed: 2018,
	})
	return core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.BandLess}, K: 4}
}

// BenchmarkBandJoinNaive is the retained O(n1·n2) nested-scan baseline for
// band-join pair counting (the find-k bounds' hot operation).
func BenchmarkBandJoinNaive(b *testing.B) {
	q := bandQuery(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.ScanCountPairs(q.R1, q.R2, q.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandJoinIndexed is the same operation through the band-sorted
// index: O((n1+n2) log n2) — partner ranges are located by binary search
// and counted by their width, never enumerated.
func BenchmarkBandJoinIndexed(b *testing.B) {
	q := bandQuery(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.CountPairs(q.R1, q.R2, q.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandJoinEnumerate locks in indexed full-pair enumeration
// (matches included) versus the nested scan at the same size.
func BenchmarkBandJoinEnumerate(b *testing.B) {
	q := bandQuery(400)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.ScanPairs(q.R1, q.R2, q.Spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.Pairs(q.R1, q.R2, q.Spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchService builds a query service with the default workload resident,
// one answer already cached, and returns the repeated request.
func benchService(b *testing.B, n int) (*service.Service, service.QueryRequest, core.Query) {
	b.Helper()
	q := defaultQuery(n)
	svc := service.New(service.Config{})
	b.Cleanup(func() { svc.Close() })
	if _, err := svc.Register("r1", q.R1); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Register("r2", q.R2); err != nil {
		b.Fatal(err)
	}
	req := service.QueryRequest{R1: "r1", R2: "r2", K: q.K, Algorithm: "grouping"}
	if _, err := svc.Query(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	return svc, req, q
}

// BenchmarkServiceCold is the baseline the service amortizes away: a full
// from-scratch engine run (index construction included) per query, i.e.
// what every ksjq.Run invocation paid before the service layer existed.
func BenchmarkServiceCold(b *testing.B) {
	q := defaultQuery(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(q, core.Grouping); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceWarm is the repeated-query path: same relations, same
// normalized query, answered from the service's cache. The acceptance
// criterion is >=10x over BenchmarkServiceCold; measured gaps are orders
// of magnitude.
func BenchmarkServiceWarm(b *testing.B) {
	svc, req, _ := benchService(b, 300)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Source == service.SourceComputed {
			b.Fatal("warm benchmark recomputed")
		}
	}
}

// BenchmarkServiceResident isolates the resident-index effect: the cache
// is bypassed, so every iteration is a real engine run, but over the
// service's shared core.Resident instead of rebuilding indexes.
func BenchmarkServiceResident(b *testing.B) {
	svc, req, _ := benchService(b, 300)
	req.NoCache = true
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceInsert measures live maintenance: each insert updates
// the cached answer incrementally through the promoted maintainer (the
// relation grows as the benchmark runs, so this is an amortized figure).
func BenchmarkServiceInsert(b *testing.B) {
	svc, req, q := benchService(b, 300)
	// Promote the cached entry once so iterations measure absorb, not
	// promotion.
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	d := q.R1.D()
	newTuple := func() dataset.Tuple {
		attrs := make([]float64, d)
		for i := range attrs {
			attrs[i] = rng.Float64()
		}
		// datagen keys are "g%04d": the inserted tuple must land in a real
		// group, or the benchmark measures the zero-partner early exit.
		return dataset.Tuple{Key: fmt.Sprintf("g%04d", rng.Intn(10)), Attrs: attrs}
	}
	if _, err := svc.Insert("r1", newTuple()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Insert("r1", newTuple()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	resp, err := svc.Query(ctx, req)
	if err != nil {
		b.Fatalf("maintained query after inserts: %v", err)
	}
	if resp.Source != service.SourceMaintained {
		b.Fatalf("maintained query after inserts: source=%v", resp.Source)
	}
}

// ingestTuples pregenerates n tuples that land in the default workload's
// real groups (datagen keys are "g%04d"), so every insert exercises the
// join rather than the zero-partner early exit.
func ingestTuples(rng *rand.Rand, d, n int) []dataset.Tuple {
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		attrs := make([]float64, d)
		for j := range attrs {
			attrs[j] = rng.Float64()
		}
		ts[i] = dataset.Tuple{Key: fmt.Sprintf("g%04d", rng.Intn(10)), Attrs: attrs}
	}
	return ts
}

// BenchmarkInsertLoop is the per-tuple baseline the batched ingest path
// is measured against: 1000 tuples through 1000 Insert calls at n=2000,
// each paying its own version bump, cache take/restore, resident
// reclamation, and absorb.
func BenchmarkInsertLoop(b *testing.B) { benchIngest(b, false) }

// BenchmarkInsertBatch is the group-commit path: the same 1000 tuples as
// one InsertBatch — one version bump, one resident extension, one absorb
// pass, one cache restore. The PR 7 acceptance target is >=5x tuples/sec
// over BenchmarkInsertLoop (compare ns/op directly: both spend one
// iteration per 1000 tuples).
func BenchmarkInsertBatch(b *testing.B) { benchIngest(b, true) }

func benchIngest(b *testing.B, batched bool) {
	const batchSize = 1000
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh service per iteration (untimed), so every iteration
		// ingests into exactly the n=2000 workload rather than into
		// relations earlier iterations already grew.
		b.StopTimer()
		q := defaultQuery(2000)
		// K = 10 keeps the maintained answer at a realistic size (~60
		// pairs): the default K = 11 sits at this workload's skyline
		// blow-up point (thousands of members), where the verification
		// kernel — identical on both paths — drowns the ingest pipeline
		// costs this benchmark compares.
		q.K = 10
		svc := service.New(service.Config{})
		if _, err := svc.Register("r1", q.R1); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Register("r2", q.R2); err != nil {
			b.Fatal(err)
		}
		req := service.QueryRequest{R1: "r1", R2: "r2", K: q.K, Algorithm: "grouping"}
		if _, err := svc.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
		d := q.R1.D()
		// Promote the cached entry so the iteration measures
		// maintenance, not promotion.
		if _, err := svc.Insert("r1", ingestTuples(rng, d, 1)[0]); err != nil {
			b.Fatal(err)
		}
		ts := ingestTuples(rng, d, batchSize)
		b.StartTimer()
		if batched {
			if _, err := svc.InsertBatch("r1", ts); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, tup := range ts {
				if _, err := svc.Insert("r1", tup); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		resp, err := svc.Query(ctx, req)
		if err != nil {
			b.Fatalf("maintained query after ingest: %v", err)
		}
		if resp.Source != service.SourceMaintained {
			b.Fatalf("maintained query after ingest: source=%v", resp.Source)
		}
		svc.Close()
	}
	b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkResidentExtend isolates the appendable-resident effect: per
// iteration, absorb a 1000-row appended tail into a resident built over
// the n=2000 workload (setup — clone, build, append — is untimed).
func BenchmarkResidentExtend(b *testing.B) {
	const tail = 1000
	base := defaultQuery(2000)
	rng := rand.New(rand.NewSource(29))
	d := base.R1.D()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := base
		q.R1 = base.R1.Clone()
		q.R2 = base.R2.Clone()
		res, err := core.NewResident(q)
		if err != nil {
			b.Fatal(err)
		}
		first, err := q.R1.AppendBatch(ingestTuples(rng, d, tail))
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]int, tail)
		for j := range ids {
			ids[j] = first + j
		}
		b.StartTimer()
		if err := res.Absorb(core.Left, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResidentRebuild is what Absorb replaces: a from-scratch
// NewResident over the same grown relations.
func BenchmarkResidentRebuild(b *testing.B) {
	const tail = 1000
	q := defaultQuery(2000)
	rng := rand.New(rand.NewSource(29))
	if _, err := q.R1.AppendBatch(ingestTuples(rng, q.R1.D(), tail)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewResident(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckerAlloc tracks allocations of the full grouping run —
// dominated by cell materialization and checker construction. The arena
// join and flat index orderings keep allocs/op independent of pair count.
func BenchmarkCheckerAlloc(b *testing.B) {
	q := defaultQuery(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(q, core.Grouping); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Columnar storage benchmarks (PR 4) -------------------------------
//
// The struct-of-arrays relation layout turns the engine's dense scans into
// contiguous stride-D float64 sweeps and its group lookups into integer
// symbol comparisons. These benchmarks pin the three layers that change:
// categorization (key-sorted runs over column views), the checker's
// domination probes (flat-column k-dominance tests), and the append path
// (column growth + key interning).

// BenchmarkColumnarCategorize measures the SS/SN/NN split of one relation:
// a global Two-Scan over the attribute column plus per-group scans located
// by interned key symbols — no string hashing, no per-row pointer chasing.
func BenchmarkColumnarCategorize(b *testing.B) {
	r := datagen.MustGenerate(datagen.Config{
		Name: "R", N: 5000, Local: 5, Agg: 2, Groups: 10, Dist: datagen.Independent, Seed: 2017,
	})
	// k′ = 6 matches the default workload: K=11 over d=7+5, k′1 = K − l2.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.Categorize(r, 6, join.Equality, core.Left)
		if len(c.SS)+len(c.SN)+len(c.NN) != r.Len() {
			b.Fatal("categorization lost tuples")
		}
	}
}

// BenchmarkColumnarChecker measures raw domination probes: each probe
// sweeps the checker's sum-sorted left column with the shared x-section
// prefix and strides the flat attribute blocks of both relations.
func BenchmarkColumnarChecker(b *testing.B) {
	q := defaultQuery(1000)
	vectors := make([][]float64, 64)
	rng := rand.New(rand.NewSource(11))
	for i := range vectors {
		v := make([]float64, q.Width())
		for j := range v {
			v[j] = rng.Float64()
		}
		vectors[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnyDominators(q, vectors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarAppend measures the insert door: per-tuple validation
// (finite attributes), column growth, and join-key interning against a
// working set of 100 distinct keys.
func BenchmarkColumnarAppend(b *testing.B) {
	base := datagen.MustGenerate(datagen.Config{
		Name: "R", N: 100, Local: 5, Agg: 2, Groups: 100, Dist: datagen.Independent, Seed: 3,
	})
	tup := dataset.Tuple{Key: "g0042", Attrs: []float64{1, 2, 3, 4, 5, 6, 7}}
	b.ReportAllocs()
	b.ResetTimer()
	r := base.Clone()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			r = base.Clone() // bound the working set so growth stays realistic
		}
		if _, err := r.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// preparedQuery is the repeated-same-pair workload of the prepared-query
// acceptance gate: the Table 7 default shape at n=2000.
func preparedQuery(b *testing.B) ksjq.Query {
	b.Helper()
	q := defaultQuery(2000)
	return ksjq.Query{R1: q.R1, R2: q.R2, Spec: q.Spec, K: q.K}
}

// BenchmarkPreparedCold is the baseline Prepared amortizes away: a full
// ksjq.Run — planner-free, resident-free — per repeated query.
func BenchmarkPreparedCold(b *testing.B) {
	q := preparedQuery(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Grouping}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedRun is the repeated-same-pair path through Prepared:
// the first run computes, every later identical run is served from the
// prepared answer memo. The acceptance criterion is >=5x over
// BenchmarkPreparedCold at n>=2000; the memo makes the gap orders of
// magnitude.
func BenchmarkPreparedRun(b *testing.B) {
	q := preparedQuery(b)
	ctx := context.Background()
	p, err := ksjq.Prepare(ctx, q, ksjq.PrepareOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run(ctx, ksjq.Options{Algorithm: ksjq.Grouping}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx, ksjq.Options{Algorithm: ksjq.Grouping}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedResident isolates the honest engine-rerun savings:
// NoCache skips the answer memo, so every iteration re-verifies over the
// prepared join index and probe orders instead of rebuilding them.
func BenchmarkPreparedResident(b *testing.B) {
	q := preparedQuery(b)
	ctx := context.Background()
	p, err := ksjq.Prepare(ctx, q, ksjq.PrepareOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx, ksjq.Options{Algorithm: ksjq.Grouping, NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamFirstResult measures time-to-first-tuple through the
// pull iterator with an immediate break — the progressive-consumption
// latency a full run hides.
func BenchmarkStreamFirstResult(b *testing.B) {
	q := preparedQuery(b)
	ctx := context.Background()
	p, err := ksjq.Prepare(ctx, q, ksjq.PrepareOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		for _, err := range p.Stream(ctx, ksjq.Options{}) {
			if err != nil {
				b.Fatal(err)
			}
			got++
			break
		}
		if got == 0 {
			b.Fatal("stream yielded nothing")
		}
	}
}

// BenchmarkWatchInsert measures one maintained insert fanned out to a
// standing watch subscription, delta delivery included.
func BenchmarkWatchInsert(b *testing.B) {
	q := defaultQuery(300)
	svc := service.New(service.Config{})
	b.Cleanup(func() { svc.Close() })
	if _, err := svc.Register("r1", q.R1); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Register("r2", q.R2); err != nil {
		b.Fatal(err)
	}
	w, err := svc.Watch(context.Background(), service.QueryRequest{R1: "r1", R2: "r2", K: q.K})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() })
	<-w.Events() // snapshot
	rng := rand.New(rand.NewSource(2019))
	tuple := func() dataset.Tuple {
		attrs := make([]float64, 7)
		for i := range attrs {
			attrs[i] = rng.Float64() * 100
		}
		return dataset.Tuple{Key: fmt.Sprintf("g%d", rng.Intn(10)), Attrs: attrs}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Insert("r1", tuple()); err != nil {
			b.Fatal(err)
		}
		<-w.Events()
	}
}

// BenchmarkMaintainedDelete is the warm retract arm of the PR 8 delete
// path: a 16-row delete batch at n=2000 flowing through DeleteBatch into
// an answer the maintainer keeps current — one retract set, one eviction
// sweep over the members, one resurrection sweep over the non-members —
// followed by the cache hit the next query gets for free. The acceptance
// target is >=5x over BenchmarkDeleteRecompute (same mutation, cold
// answer; compare ns/op directly).
func BenchmarkMaintainedDelete(b *testing.B) { benchDelete(b, true) }

// BenchmarkDeleteRecompute is what maintenance replaces: the same 16-row
// delete against a service holding no cached answer, followed by the
// from-scratch recompute (resident rebuild included) the next query pays.
func BenchmarkDeleteRecompute(b *testing.B) { benchDelete(b, false) }

func benchDelete(b *testing.B, maintained bool) {
	const n, batch = 2000, 16
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh service per iteration (untimed), so every iteration
		// deletes from exactly the n=2000 workload.
		b.StopTimer()
		q := defaultQuery(n)
		q.K = 10 // see benchIngest: K=11 is this workload's blow-up point
		svc := service.New(service.Config{SweepInterval: -1})
		if _, err := svc.Register("r1", q.R1); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Register("r2", q.R2); err != nil {
			b.Fatal(err)
		}
		req := service.QueryRequest{R1: "r1", R2: "r2", K: q.K, Algorithm: "grouping"}
		if maintained {
			if _, err := svc.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
			// Promote the cached entry so the iteration measures
			// maintenance, not promotion.
			if _, err := svc.Insert("r1", ingestTuples(rng, q.R1.D(), 1)[0]); err != nil {
				b.Fatal(err)
			}
		}
		// Spread the batch across the relation: clustered prefix deletes
		// are the window sweeper's shape, measured separately below.
		ids := make([]int, batch)
		for j := range ids {
			ids[j] = j * (n / batch)
		}
		b.StartTimer()
		if _, err := svc.DeleteBatch("r1", ids); err != nil {
			b.Fatal(err)
		}
		resp, err := svc.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		want := service.SourceComputed
		if maintained {
			want = service.SourceMaintained
		}
		if resp.Source != want {
			b.Fatalf("answer source %q, want %q", resp.Source, want)
		}
		svc.Close()
	}
}

// BenchmarkWindowSweep is the sweeper's shape of the same path: one
// Sweep call over a windowed n=2000 relation whose expired rows are a
// 16-row prefix — a binary-search cut plus the maintained retract of
// that prefix.
func BenchmarkWindowSweep(b *testing.B) {
	const n, expired = 2000, 16
	const window = 60 * time.Millisecond
	rng := rand.New(rand.NewSource(37))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := defaultQuery(n)
		q.K = 10
		d := q.R1.D()
		svc := service.New(service.Config{SweepInterval: -1})
		// The rows that will expire are the registration seed; the bulk
		// of the relation arrives (fresh) after the window has passed
		// over the seed, so exactly the seed prefix is expired at sweep
		// time.
		old, err := dataset.New("R1", 5, 2, ingestTuples(rng, d, expired))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.RegisterWindow("r1", old, window); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Register("r2", q.R2); err != nil {
			b.Fatal(err)
		}
		time.Sleep(window + 15*time.Millisecond)
		if _, err := svc.InsertBatch("r1", ingestTuples(rng, d, n-expired)); err != nil {
			b.Fatal(err)
		}
		req := service.QueryRequest{R1: "r1", R2: "r2", K: q.K, Algorithm: "grouping"}
		if _, err := svc.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if got := svc.Sweep(); got != expired {
			b.Fatalf("sweep expired %d rows, want %d", got, expired)
		}
		b.StopTimer()
		resp, err := svc.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Source != service.SourceMaintained {
			b.Fatalf("answer source %q, want %q", resp.Source, service.SourceMaintained)
		}
		svc.Close()
	}
}
