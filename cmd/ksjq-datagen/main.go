// Command ksjq-datagen emits synthetic relations in the CSV layout the ksjq
// command consumes. It reproduces the distributions of the paper's
// evaluation (independent, correlated, anti-correlated) and the simulated
// two-legged flight dataset of Sec. 7.4.
//
// Examples:
//
//	ksjq-datagen -n 3300 -local 5 -agg 2 -groups 10 -dist anti -o r1.csv
//	ksjq-datagen -flights -o1 legs1.csv -o2 legs2.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	var (
		n       = flag.Int("n", 3300, "number of tuples")
		local   = flag.Int("local", 5, "number of local skyline attributes")
		agg     = flag.Int("agg", 2, "number of aggregate skyline attributes")
		groups  = flag.Int("groups", 10, "number of join groups")
		dist    = flag.String("dist", "independent", "distribution: independent, correlated, anticorrelated")
		seed    = flag.Int64("seed", 2017, "random seed")
		out     = flag.String("o", "", "output CSV (default stdout)")
		band    = flag.Bool("band", false, "include the band column")
		flights = flag.Bool("flights", false, "emit the simulated flight dataset instead")
		out1    = flag.String("o1", "legs1.csv", "with -flights: outbound CSV path")
		out2    = flag.String("o2", "legs2.csv", "with -flights: inbound CSV path")
	)
	flag.Parse()
	if err := run(*n, *local, *agg, *groups, *dist, *seed, *out, *band, *flights, *out1, *out2); err != nil {
		fmt.Fprintln(os.Stderr, "ksjq-datagen:", err)
		os.Exit(1)
	}
}

func run(n, local, agg, groups int, dist string, seed int64, out string, band, flights bool, out1, out2 string) error {
	if flights {
		cfg := datagen.DefaultFlightsConfig()
		cfg.Seed = seed
		outR, inR, err := datagen.Flights(cfg)
		if err != nil {
			return err
		}
		if err := writeCSV(out1, outR, true); err != nil {
			return err
		}
		if err := writeCSV(out2, inR, true); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tuples) and %s (%d tuples)\n", out1, outR.Len(), out2, inR.Len())
		return nil
	}
	d, err := datagen.ParseDistribution(dist)
	if err != nil {
		return err
	}
	r, err := datagen.Generate(datagen.Config{
		Name: "synthetic", N: n, Local: local, Agg: agg, Groups: groups, Dist: d, Seed: seed,
	})
	if err != nil {
		return err
	}
	if out == "" {
		return dataset.WriteCSV(os.Stdout, r, band)
	}
	return writeCSV(out, r, band)
}

func writeCSV(path string, r *dataset.Relation, band bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSV(f, r, band); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
