package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.csv")
	if err := run(50, 3, 1, 5, "anti", 7, out, true, false, "", ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := dataset.ReadCSV(f, dataset.ReadOptions{Name: "r", Local: 3, Agg: 1, HasBand: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 50 || r.D() != 4 {
		t.Errorf("round-trip shape %dx%d, want 50x4", r.Len(), r.D())
	}
}

func TestRunFlights(t *testing.T) {
	dir := t.TempDir()
	o1 := filepath.Join(dir, "legs1.csv")
	o2 := filepath.Join(dir, "legs2.csv")
	if err := run(0, 0, 0, 0, "", 3, "", false, true, o1, o2); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o1, o2} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "key,band,") {
			t.Errorf("%s: unexpected header %q", p, strings.SplitN(string(data), "\n", 2)[0])
		}
	}
	f, err := os.Open(o1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := dataset.ReadCSV(f, dataset.ReadOptions{Name: "legs1", Local: 3, Agg: 2, HasBand: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 192 {
		t.Errorf("outbound has %d tuples, want 192", r.Len())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(10, 2, 0, 2, "zipf", 1, "", false, false, "", ""); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run(0, 2, 0, 2, "indep", 1, "", false, false, "", ""); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run(10, 2, 0, 2, "indep", 1, "/nonexistent-dir/x.csv", false, false, "", ""); err == nil {
		t.Error("unwritable path accepted")
	}
}
