// Command ksjq-experiments regenerates the paper's evaluation figures
// (Sec. 7). Every figure of the paper has a runner; see DESIGN.md §4 for
// the experiment index and paper-vs-measured notes.
//
// Examples:
//
//	ksjq-experiments                      # every figure at small scale
//	ksjq-experiments -fig 1a,3b           # selected figures
//	ksjq-experiments -scale full -fig 11  # paper-scale flight experiment
//	ksjq-experiments -timeout 5m          # abort a long sweep at a deadline
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		scaleName  = flag.String("scale", "small", "experiment scale: smoke, small or full (full = paper's Table 7; hours)")
		figList    = flag.String("fig", "", "comma-separated figure names (e.g. 1a,3b,11); empty = all")
		seed       = flag.Int64("seed", 2017, "random seed for the synthetic workloads")
		chart      = flag.Bool("chart", false, "render stacked bars (like the paper's plots) after the rows")
		timeout    = flag.Duration("timeout", 0, "stop starting new figures after this duration (0 = no deadline)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected figures to this file (go tool pprof)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksjq-experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ksjq-experiments:", err)
			os.Exit(1)
		}
		// The profile must survive the error path too — perf PRs profile
		// failing sweeps as often as clean ones.
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := run(ctx, os.Stdout, *scaleName, *figList, *seed, *chart); err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "ksjq-experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out io.Writer, scaleName, figList string, seed int64, chart bool) error {
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return err
	}
	suite := experiments.NewSuite(scale, out)
	suite.Seed = seed

	wanted := map[string]bool{}
	if figList != "" {
		for _, name := range strings.Split(figList, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}
	suite.Header()
	var rows []experiments.Row
	ran := 0
	for _, fig := range suite.Figures() {
		if len(wanted) > 0 && !wanted[fig.Name] {
			continue
		}
		// Figures are the unit of cancellation: each one is a bounded
		// batch of queries, so the deadline is honored between them.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped after %d figures: %w", ran, err)
		}
		rows = append(rows, fig.Run()...)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figures matched %q; available: 1a 1b 2a 2b 3a 3b 4 5a 5b 6a 6b 7 8a 8b 9a 9b 10 11", figList)
	}
	if chart {
		fmt.Fprintln(out)
		experiments.Chart(out, rows, 48)
	}
	return nil
}
