package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "smoke", "11", 1, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "flights k=6") {
		t.Errorf("missing figure rows:\n%s", out)
	}
	if strings.Contains(out, "Figure 11") {
		t.Error("chart rendered without -chart")
	}
}

func TestRunWithChart(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "smoke", "11", 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Errorf("chart missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "galactic", "", 1, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&buf, "smoke", "99z", 1, false); err == nil {
		t.Error("unknown figure accepted")
	}
}
