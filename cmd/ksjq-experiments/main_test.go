package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunSelectedFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, "smoke", "11", 1, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "flights k=6") {
		t.Errorf("missing figure rows:\n%s", out)
	}
	if strings.Contains(out, "Figure 11") {
		t.Error("chart rendered without -chart")
	}
}

func TestRunWithChart(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, "smoke", "11", 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Errorf("chart missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, "galactic", "", 1, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(context.Background(), &buf, "smoke", "99z", 1, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, &buf, "smoke", "11", 1, false)
	if err == nil {
		t.Fatal("cancelled context still ran figures")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
