// Command ksjq answers a k-dominant skyline join query over two CSV files.
//
// Each CSV has a header row; the first column is the join key, an optional
// second column (with -band) is the band attribute for non-equality joins,
// and the remaining columns are skyline attributes (lower preferred), local
// attributes first and the -agg trailing attributes aggregated.
//
// Example:
//
//	ksjq -r1 legs1.csv -r2 legs2.csv -l1 3 -l2 3 -agg 2 -k 6 -alg grouping
//
// With -delta the tool solves Problem 3 instead: it reports the smallest k
// whose skyline has at least delta tuples (or, with -atmost, the largest k
// with at most delta tuples). -alg auto lets the sampling planner choose
// the algorithm; -workers enables the parallel grouping algorithm.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/planner"
)

// options collects every CLI flag so the run function is testable.
type options struct {
	r1Path, r2Path string
	l1, l2, agg    int
	aggFn          string
	k              int
	algName        string
	cond           string
	band           bool
	delta          int
	atMost         bool
	findAlg        string
	workers        int
	quiet          bool
}

func main() {
	var o options
	flag.StringVar(&o.r1Path, "r1", "", "CSV file for the first relation (required)")
	flag.StringVar(&o.r2Path, "r2", "", "CSV file for the second relation (required)")
	flag.IntVar(&o.l1, "l1", 0, "number of local skyline attributes in r1 (required)")
	flag.IntVar(&o.l2, "l2", 0, "number of local skyline attributes in r2 (required)")
	flag.IntVar(&o.agg, "agg", 0, "number of trailing aggregate attributes in each relation")
	flag.StringVar(&o.aggFn, "aggfn", "sum", "aggregation function: sum, max or min (max/min only with -alg naive)")
	flag.IntVar(&o.k, "k", 0, "k-dominance parameter (required unless -delta is set)")
	flag.StringVar(&o.algName, "alg", "grouping", "algorithm: naive, grouping, dominator or auto (sampling planner)")
	flag.StringVar(&o.cond, "join", "eq", "join condition: eq, cross, lt, le, gt, ge (band conditions need -band)")
	flag.BoolVar(&o.band, "band", false, "CSV files carry a band column after the key")
	flag.IntVar(&o.delta, "delta", 0, "find k: smallest k with at least delta skylines (Problem 3)")
	flag.BoolVar(&o.atMost, "atmost", false, "with -delta: largest k with at most delta skylines (Problem 4)")
	flag.StringVar(&o.findAlg, "findalg", "binary", "find-k algorithm: naive, range or binary")
	flag.IntVar(&o.workers, "workers", 0, "run the parallel grouping algorithm with this many workers (0 = serial)")
	flag.BoolVar(&o.quiet, "quiet", false, "print only the summary, not the skyline tuples")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "ksjq:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, o options) error {
	if o.r1Path == "" || o.r2Path == "" {
		return fmt.Errorf("both -r1 and -r2 are required")
	}
	r1, err := loadRelation(o.r1Path, "r1", o.l1, o.agg, o.band)
	if err != nil {
		return err
	}
	r2, err := loadRelation(o.r2Path, "r2", o.l2, o.agg, o.band)
	if err != nil {
		return err
	}
	spec, err := parseSpec(o.cond, o.aggFn)
	if err != nil {
		return err
	}
	q := core.Query{R1: r1, R2: r2, Spec: spec, K: o.k}

	if o.delta > 0 {
		return runFindK(out, q, o)
	}

	var res *core.Result
	var chosen string
	switch {
	case o.workers > 0:
		res, err = core.RunParallel(q, o.workers)
		chosen = fmt.Sprintf("parallel-grouping(workers=%s)", core.Workers(o.workers))
	case strings.EqualFold(o.algName, "auto"):
		var plan *planner.Plan
		res, plan, err = planner.Run(q, planner.Options{})
		if err == nil {
			chosen = fmt.Sprintf("auto→%s (%s)", plan.Algorithm, plan.Reason)
		}
	default:
		var alg core.Algorithm
		alg, err = parseAlg(o.algName)
		if err != nil {
			return err
		}
		res, err = core.Run(q, alg)
		chosen = alg.String()
	}
	if err != nil {
		return err
	}

	st := res.Stats
	fmt.Fprintf(out, "algorithm=%s k=%d joined-width=%d skylines=%d\n", chosen, q.K, q.Width(), len(res.Skyline))
	fmt.Fprintf(out, "grouping=%v join=%v dominators=%v remaining=%v total=%v\n",
		st.GroupingTime, st.JoinTime, st.DominatorTime, st.RemainingTime, st.Total)
	fmt.Fprintf(out, "categorization: R1 SS/SN/NN = %d/%d/%d, R2 SS/SN/NN = %d/%d/%d\n",
		st.SS1, st.SN1, st.NN1, st.SS2, st.SN2, st.NN2)
	if !o.quiet {
		for _, p := range res.Skyline {
			fmt.Fprintf(out, "%s ⋈ %s  %v\n", r1.Tuples[p.Left].Key, r2.Tuples[p.Right].Key, p.Attrs)
		}
	}
	return nil
}

func runFindK(out io.Writer, q core.Query, o options) error {
	alg, err := parseFindAlg(o.findAlg)
	if err != nil {
		return err
	}
	var res *core.FindKResult
	if o.atMost {
		res, err = core.FindKAtMost(q, o.delta, alg)
	} else {
		res, err = core.FindK(q, o.delta, alg)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "k = %d (probed %v, %d full skyline computations, %v total)\n",
		res.K, res.Stats.Probed, res.Stats.SkylinesComputed, res.Stats.Total)
	return nil
}

func loadRelation(path, name string, local, agg int, band bool) (*dataset.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, dataset.ReadOptions{Name: name, Local: local, Agg: agg, HasBand: band})
}

func parseAlg(s string) (core.Algorithm, error) {
	switch strings.ToLower(s) {
	case "naive", "n":
		return core.Naive, nil
	case "grouping", "g":
		return core.Grouping, nil
	case "dominator", "dominator-based", "d":
		return core.DominatorBased, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want naive, grouping, dominator or auto)", s)
	}
}

func parseFindAlg(s string) (core.FindKAlgorithm, error) {
	switch strings.ToLower(s) {
	case "naive", "n":
		return core.FindKNaive, nil
	case "range", "r":
		return core.FindKRange, nil
	case "binary", "b":
		return core.FindKBinary, nil
	default:
		return 0, fmt.Errorf("unknown find-k algorithm %q (want naive, range or binary)", s)
	}
}

func parseSpec(cond, aggFn string) (join.Spec, error) {
	var spec join.Spec
	switch strings.ToLower(cond) {
	case "eq", "equality":
		spec.Cond = join.Equality
	case "cross", "cartesian":
		spec.Cond = join.Cross
	case "lt":
		spec.Cond = join.BandLess
	case "le":
		spec.Cond = join.BandLessEq
	case "gt":
		spec.Cond = join.BandGreater
	case "ge":
		spec.Cond = join.BandGreaterEq
	default:
		return spec, fmt.Errorf("unknown join condition %q", cond)
	}
	switch strings.ToLower(aggFn) {
	case "sum":
		spec.Agg = join.Sum
	case "max":
		spec.Agg = join.Max
	case "min":
		spec.Agg = join.Min
	default:
		return spec, fmt.Errorf("unknown aggregator %q", aggFn)
	}
	return spec, nil
}
