// Command ksjq answers a k-dominant skyline join query over two CSV files.
//
// Each CSV has a header row; the first column is the join key, an optional
// second column (with -band) is the band attribute for non-equality joins,
// and the remaining columns are skyline attributes (lower preferred), local
// attributes first and the -agg trailing attributes aggregated.
//
// Example:
//
//	ksjq -r1 legs1.csv -r2 legs2.csv -l1 3 -l2 3 -agg 2 -k 6 -alg grouping
//
// With -delta the tool solves Problem 3 instead: it reports the smallest k
// whose skyline has at least delta tuples (or, with -atmost, the largest k
// with at most delta tuples). -alg auto lets the sampling planner choose
// the algorithm; -workers parallelizes the grouping algorithm (it
// conflicts with an explicit -alg other than grouping, and constrains
// auto's choice to grouping); -timeout bounds the whole query.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/ksjq"
)

// options collects every CLI flag so the run function is testable.
type options struct {
	r1Path, r2Path string
	l1, l2, agg    int
	aggFn          string
	k              int
	algName        string
	cond           string
	band           bool
	delta          int
	atMost         bool
	findAlg        string
	workers        int
	timeout        time.Duration
	quiet          bool
}

func main() {
	var o options
	flag.StringVar(&o.r1Path, "r1", "", "CSV file for the first relation (required)")
	flag.StringVar(&o.r2Path, "r2", "", "CSV file for the second relation (required)")
	flag.IntVar(&o.l1, "l1", 0, "number of local skyline attributes in r1 (required)")
	flag.IntVar(&o.l2, "l2", 0, "number of local skyline attributes in r2 (required)")
	flag.IntVar(&o.agg, "agg", 0, "number of trailing aggregate attributes in each relation")
	flag.StringVar(&o.aggFn, "aggfn", "sum", "aggregation function: sum, max or min (max/min only with -alg naive)")
	flag.IntVar(&o.k, "k", 0, "k-dominance parameter (required unless -delta is set)")
	flag.StringVar(&o.algName, "alg", "grouping", "algorithm: naive, grouping, dominator or auto (sampling planner)")
	flag.StringVar(&o.cond, "join", "eq", "join condition: eq, cross, lt, le, gt, ge (band conditions need -band)")
	flag.BoolVar(&o.band, "band", false, "CSV files carry a band column after the key")
	flag.IntVar(&o.delta, "delta", 0, "find k: smallest k with at least delta skylines (Problem 3)")
	flag.BoolVar(&o.atMost, "atmost", false, "with -delta: largest k with at most delta skylines (Problem 4)")
	flag.StringVar(&o.findAlg, "findalg", "binary", "find-k algorithm: naive, range or binary")
	flag.IntVar(&o.workers, "workers", 0, "parallelize the grouping algorithm with this many workers (<= 1 = serial; conflicts with an explicit -alg other than grouping)")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the query after this duration (e.g. 500ms, 30s; 0 = no deadline)")
	flag.BoolVar(&o.quiet, "quiet", false, "print only the summary, not the skyline tuples")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "ksjq:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, o options) error {
	if o.r1Path == "" || o.r2Path == "" {
		return fmt.Errorf("both -r1 and -r2 are required")
	}
	alg, err := ksjq.ParseAlgorithm(o.algName)
	if err != nil {
		return err
	}
	// -workers parallelizes the grouping algorithm; combining a parallel
	// degree with another explicit -alg is a contradiction, not a
	// preference, so it is an error rather than a silent override. -alg
	// auto is not a contradiction: a parallel degree constrains the
	// planner's choice to the one algorithm that can honor it. workers
	// <= 1 is the serial path and conflicts with nothing.
	if o.workers > 1 && alg != ksjq.Grouping && alg != ksjq.Auto {
		return fmt.Errorf("-workers requires -alg grouping or auto (got -alg %s)", alg)
	}
	if o.workers > 1 && o.delta > 0 {
		return fmt.Errorf("-workers cannot be combined with -delta (find-k probes are serial)")
	}
	r1, err := loadRelation(o.r1Path, "r1", o.l1, o.agg, o.band)
	if err != nil {
		return err
	}
	r2, err := loadRelation(o.r2Path, "r2", o.l2, o.agg, o.band)
	if err != nil {
		return err
	}
	spec, err := parseSpec(o.cond, o.aggFn)
	if err != nil {
		return err
	}
	q := ksjq.Query{R1: r1, R2: r2, Spec: spec, K: o.k}

	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if o.delta > 0 {
		return runFindK(ctx, out, q, o)
	}

	var res *ksjq.Result
	var chosen string
	if alg == ksjq.Auto {
		if o.workers > 1 {
			// The parallel degree leaves the planner exactly one viable
			// choice, so the facade runs grouping without sampling.
			res, err = ksjq.Run(ctx, q, ksjq.Options{Workers: o.workers})
			chosen = fmt.Sprintf("auto→parallel-grouping(workers=%s)", ksjq.Workers(o.workers))
		} else {
			var plan *ksjq.Plan
			res, plan, err = ksjq.RunAuto(ctx, q, ksjq.PlannerOptions{})
			if err == nil {
				chosen = fmt.Sprintf("auto→%s (%s)", plan.Algorithm, plan.Reason)
			}
		}
	} else {
		res, err = ksjq.Run(ctx, q, ksjq.Options{Algorithm: alg, Workers: o.workers})
		chosen = algLabel(alg, o.workers)
	}
	if err != nil {
		return err
	}

	st := res.Stats
	fmt.Fprintf(out, "algorithm=%s k=%d joined-width=%d skylines=%d\n", chosen, q.K, q.Width(), len(res.Skyline))
	fmt.Fprintf(out, "grouping=%v join=%v dominators=%v remaining=%v total=%v\n",
		st.GroupingTime, st.JoinTime, st.DominatorTime, st.RemainingTime, st.Total)
	fmt.Fprintf(out, "categorization: R1 SS/SN/NN = %d/%d/%d, R2 SS/SN/NN = %d/%d/%d\n",
		st.SS1, st.SN1, st.NN1, st.SS2, st.SN2, st.NN2)
	if !o.quiet {
		for _, p := range res.Skyline {
			fmt.Fprintf(out, "%s ⋈ %s  %v\n", r1.Key(p.Left), r2.Key(p.Right), p.Attrs)
		}
	}
	return nil
}

// algLabel renders the chosen strategy the way the summary line reports
// it: the paper's one-letter labels for serial runs, the parallel marker
// only when verification actually shards (workers > 1 — a single worker
// runs the serial path).
func algLabel(alg ksjq.Algorithm, workers int) string {
	if workers > 1 {
		return fmt.Sprintf("parallel-grouping(workers=%s)", ksjq.Workers(workers))
	}
	return alg.Label()
}

func runFindK(ctx context.Context, out io.Writer, q ksjq.Query, o options) error {
	alg, err := ksjq.ParseFindKAlgorithm(o.findAlg)
	if err != nil {
		return err
	}
	var res *ksjq.FindKResult
	if o.atMost {
		res, err = ksjq.FindKAtMost(ctx, q, o.delta, alg)
	} else {
		res, err = ksjq.FindK(ctx, q, o.delta, alg)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "k = %d (probed %v, %d full skyline computations, %v total)\n",
		res.K, res.Stats.Probed, res.Stats.SkylinesComputed, res.Stats.Total)
	return nil
}

func loadRelation(path, name string, local, agg int, band bool) (*ksjq.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ksjq.ReadCSV(f, ksjq.ReadOptions{Name: name, Local: local, Agg: agg, HasBand: band})
}

func parseSpec(cond, aggFn string) (ksjq.Spec, error) {
	var spec ksjq.Spec
	var err error
	if spec.Cond, err = ksjq.ParseCondition(cond); err != nil {
		return spec, err
	}
	if spec.Agg, err = ksjq.ParseAggregator(aggFn); err != nil {
		return spec, err
	}
	return spec, nil
}
