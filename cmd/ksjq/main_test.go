package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/ksjq"
)

// writeCSV drops a small relation file into dir and returns its path.
func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The paper's flight example, reduced to the two groups that matter.
const csvR1 = `key,a0,a1,a2,a3
C,448,3.2,40,40
C,468,4.2,50,38
F,452,3.6,20,36
`

const csvR2 = `key,a0,a1,a2,a3
C,356,2.8,60,30
C,360,3.0,70,28
F,352,2.6,20,32
`

func baseOptions(t *testing.T) options {
	t.Helper()
	dir := t.TempDir()
	return options{
		r1Path: writeCSV(t, dir, "r1.csv", csvR1),
		r2Path: writeCSV(t, dir, "r2.csv", csvR2),
		l1:     4, l2: 4,
		k:       7,
		algName: "grouping",
		cond:    "eq",
		aggFn:   "sum",
	}
}

func TestRunQuery(t *testing.T) {
	for _, alg := range []string{"grouping", "dominator", "naive", "auto"} {
		o := baseOptions(t)
		o.algName = alg
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out := buf.String()
		if !strings.Contains(out, "skylines=2") {
			t.Errorf("%s: expected 2 skylines:\n%s", alg, out)
		}
		if !strings.Contains(out, "C ⋈ C") || !strings.Contains(out, "F ⋈ F") {
			t.Errorf("%s: expected skyline tuples in output:\n%s", alg, out)
		}
	}
}

func TestRunParallelFlag(t *testing.T) {
	o := baseOptions(t)
	o.workers = 3
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "parallel-grouping(workers=3)") {
		t.Errorf("missing parallel marker:\n%s", buf.String())
	}
}

func TestRunQuiet(t *testing.T) {
	o := baseOptions(t)
	o.quiet = true
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "⋈") {
		t.Errorf("quiet output leaked tuples:\n%s", buf.String())
	}
}

func TestRunFindK(t *testing.T) {
	o := baseOptions(t)
	o.delta = 1
	o.k = 0
	o.findAlg = "binary"
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k = ") {
		t.Errorf("find-k output missing:\n%s", buf.String())
	}
	o.atMost = true
	buf.Reset()
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k = ") {
		t.Errorf("at-most output missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{}); err == nil {
		t.Error("missing files accepted")
	}
	o := baseOptions(t)
	o.r2Path = filepath.Join(t.TempDir(), "missing.csv")
	if err := run(&buf, o); err == nil {
		t.Error("unreadable file accepted")
	}
	o = baseOptions(t)
	o.algName = "quantum"
	if err := run(&buf, o); err == nil {
		t.Error("unknown algorithm accepted")
	}
	o = baseOptions(t)
	o.cond = "like"
	if err := run(&buf, o); err == nil {
		t.Error("unknown join condition accepted")
	}
	o = baseOptions(t)
	o.aggFn = "median"
	if err := run(&buf, o); err == nil {
		t.Error("unknown aggregator accepted")
	}
	o = baseOptions(t)
	o.k = 99
	if err := run(&buf, o); err == nil {
		t.Error("out-of-range k accepted")
	}
	o = baseOptions(t)
	o.delta = 1
	o.findAlg = "bogo"
	if err := run(&buf, o); err == nil {
		t.Error("unknown find-k algorithm accepted")
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := parseSpec("lt", "max")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cond != ksjq.BandLess || spec.Agg.Name != "max" {
		t.Errorf("parseSpec = %+v", spec)
	}
	for _, cond := range []string{"eq", "cross", "le", "gt", "ge"} {
		if _, err := parseSpec(cond, "sum"); err != nil {
			t.Errorf("parseSpec(%q): %v", cond, err)
		}
	}
}

func TestRunConflictingFlags(t *testing.T) {
	// -workers silently overriding an explicit -alg was a bug; it must now
	// be an error.
	for _, alg := range []string{"naive", "dominator"} {
		o := baseOptions(t)
		o.algName = alg
		o.workers = 3
		var buf bytes.Buffer
		err := run(&buf, o)
		if err == nil {
			t.Fatalf("-workers with -alg %s accepted", alg)
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("-alg %s conflict error does not name the flag: %v", alg, err)
		}
	}
	// -alg auto with -workers is not a contradiction: the degree constrains
	// the planner to grouping.
	{
		o := baseOptions(t)
		o.algName = "auto"
		o.workers = 3
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatalf("-workers with -alg auto rejected: %v", err)
		}
		if !strings.Contains(buf.String(), "auto→parallel-grouping") {
			t.Errorf("auto+workers summary does not report the constrained choice:\n%s", buf.String())
		}
	}
	o := baseOptions(t)
	o.workers = 2
	o.delta = 1
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("-workers with -delta accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	// An already-expired deadline must abort the query with the context
	// error instead of returning an answer.
	o := baseOptions(t)
	o.timeout = time.Nanosecond
	var buf bytes.Buffer
	err := run(&buf, o)
	if err == nil {
		t.Fatal("expired -timeout still returned an answer")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	// A generous deadline must not interfere.
	o = baseOptions(t)
	o.timeout = time.Minute
	buf.Reset()
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skylines=2") {
		t.Errorf("timed run lost the answer:\n%s", buf.String())
	}
}
