package main

import (
	"context"
	"errors"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
	"repro/ksjq"
)

// runGateway is gateway mode's main: connect to the shard processes,
// serve the scatter-gather wire surface, shut down gracefully (draining
// in-flight scatter-gathers) on SIGINT/SIGTERM.
func runGateway(addr, shardList string, timeout, grace time.Duration, debug string) {
	var addrs []string
	for _, a := range strings.Split(shardList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatalf("ksjqd: -gateway needs -shards host:port[,host:port...]")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	connectCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	gw, err := shard.New(connectCtx, addrs, shard.Config{ShardTimeout: timeout})
	cancel()
	if err != nil {
		log.Fatalf("ksjqd: connecting to shards: %v", err)
	}

	// Wire-facing deadline bound, resolved exactly like single-node mode.
	maxTimeout := timeout
	if maxTimeout == 0 {
		maxTimeout = ksjq.DefaultRequestTimeout
	} else if maxTimeout < 0 {
		maxTimeout = 0
	}
	srv := &http.Server{Addr: addr, Handler: shard.NewHandler(gw, maxTimeout)}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ksjqd gateway listening on %s (%d shards: %s)", addr, len(addrs), strings.Join(addrs, ", "))

	if debug != "" {
		go func() {
			log.Printf("ksjqd debug (pprof) listening on %s", debug)
			if err := http.ListenAndServe(debug, nil); err != nil {
				log.Printf("ksjqd: debug server: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatalf("ksjqd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("ksjqd: gateway shutting down (grace %v)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ksjqd: shutdown: %v", err)
	}
	if err := gw.Close(); err != nil && !errors.Is(err, shard.ErrClosed) {
		log.Printf("ksjqd: closing gateway: %v", err)
	}
	log.Printf("ksjqd: bye")
}
