// Command ksjqd serves k-dominant skyline join queries over HTTP: a
// long-lived process that keeps relations (and their join indexes)
// resident, caches answers across requests, and maintains cached skylines
// incrementally when tuples are inserted — see the service architecture
// in DESIGN.md §7.
//
// Start it empty and load relations over the API, or preload at startup:
//
//	ksjqd -addr :8372 -load r1,legs1.csv,3,2 -load r2,legs2.csv,3,2
//
// Endpoints (all JSON):
//
//	POST /v1/relations   register a relation (JSON tuples, or CSV body
//	                     with ?format=csv&name=..&local=..&agg=..&band=1)
//	GET  /v1/relations   list registered relations and versions
//	POST /v1/query       answer one KSJQ query
//	POST /v1/insert      insert one tuple or a batch ("tuples"), maintaining
//	                     cached answers through one group commit
//	POST /v1/delete      delete one row ("id") or a batch ("ids") by current
//	                     row index, maintaining cached answers the same way
//	GET  /v1/stats       service counters
//	GET  /healthz        liveness
//
// Relations registered with a window (the -window flag for preloads, or
// "window_ms" on POST /v1/relations) are sliding windows: rows older than
// the window age out automatically through the same delete path, swept
// every -sweep-interval.
//
// Example query:
//
//	curl -s localhost:8372/v1/query -d '{"r1":"r1","r2":"r2","k":6,"algorithm":"auto"}'
//
// With -data, the service is durable: every acknowledged mutation is
// written to a write-ahead log in the data directory before the client
// sees success, a background checkpointer (-checkpoint-interval) folds
// the log into columnar segment files, and restarting with the same
// directory — cleanly or after a crash — restores relations, contents and
// version numbers intact, with the previous working set's join indexes
// rebuilt eagerly. -load CSVs seed the store on the first boot only;
// later boots recover from the store and skip the files. See DESIGN.md
// §14.
//
// SIGINT/SIGTERM triggers a graceful shutdown: in-flight requests finish
// (bounded by -grace), new ones are refused.
//
// # Gateway mode
//
// With -gateway, ksjqd serves the same wire surface as a scatter-gather
// gateway over a cluster of ordinary ksjqd shard processes instead of a
// local service:
//
//	ksjqd -addr :8471 &          # shard 0
//	ksjqd -addr :8472 &          # shard 1
//	ksjqd -addr :8370 -gateway -shards localhost:8471,localhost:8472
//
// Relations registered through the gateway are partitioned across the
// shards by join key (every join group wholly local); queries run the
// paper's two-round distributed scheme — shard-local skylines, then a
// candidate-verification exchange — and /v1/stats reports the cluster
// breakdown including round-2 message/float traffic. Sliding windows and
// -load preloads are not available in gateway mode. See DESIGN.md §13.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux; served only via -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/ksjq"
)

// loadSpec is one -load flag: name,path,local[,agg[,band]].
type loadSpec struct {
	name, path string
	local, agg int
	band       bool
}

// loadFlags collects repeated -load occurrences.
type loadFlags []loadSpec

func (l *loadFlags) String() string { return fmt.Sprintf("%d relations", len(*l)) }

func (l *loadFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) < 3 || len(parts) > 5 {
		return fmt.Errorf("want name,path,local[,agg[,band]], got %q", s)
	}
	spec := loadSpec{name: parts[0], path: parts[1]}
	var err error
	if spec.local, err = strconv.Atoi(parts[2]); err != nil {
		return fmt.Errorf("local attribute count %q: %v", parts[2], err)
	}
	if len(parts) > 3 {
		if spec.agg, err = strconv.Atoi(parts[3]); err != nil {
			return fmt.Errorf("aggregate attribute count %q: %v", parts[3], err)
		}
	}
	if len(parts) > 4 {
		if parts[4] != "band" {
			return fmt.Errorf("fifth field must be \"band\", got %q", parts[4])
		}
		spec.band = true
	}
	*l = append(*l, spec)
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address")
		workers = flag.Int("workers", 0, "max queries executing at once (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "max queries waiting for a worker slot (0 = 64)")
		cache   = flag.Int("cache", 0, "answer-cache capacity in entries (0 = 256)")
		timeout = flag.Duration("timeout", 0, "default per-request deadline (0 = 30s, negative = none)")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		window  = flag.Duration("window", 0, "sliding window applied to every -load relation (0 = keep rows forever)")
		sweep   = flag.Duration("sweep-interval", 0, "how often windowed relations age out expired rows (0 = 1s, negative = never)")
		data    = flag.String("data", "", "durable data directory: WAL + segment files, warm restart (empty = in-memory only)")
		ckpt    = flag.Duration("checkpoint-interval", 0, "how often the WAL is folded into segment files (0 = 60s, negative = never; needs -data)")
		gateway = flag.Bool("gateway", false, "serve as a scatter-gather gateway over -shards instead of a local service")
		shards  = flag.String("shards", "", "comma-separated shard addresses (gateway mode)")
		loads   loadFlags
	)
	flag.Var(&loads, "load", "preload a relation: name,path,local[,agg[,band]] (repeatable)")
	flag.Parse()

	if *gateway {
		runGateway(*addr, *shards, *timeout, *grace, *debug)
		return
	}

	cfg := ksjq.ServiceConfig{
		MaxConcurrent:      *workers,
		MaxQueue:           *queue,
		CacheEntries:       *cache,
		DefaultTimeout:     *timeout,
		SweepInterval:      *sweep,
		CheckpointInterval: *ckpt,
	}
	var svc *ksjq.Service
	if *data != "" {
		var err error
		if svc, err = ksjq.OpenService(cfg, *data); err != nil {
			log.Fatalf("ksjqd: opening data dir %s: %v", *data, err)
		}
		for _, info := range svc.Relations() {
			log.Printf("recovered relation %s (%d tuples, version %d) from %s", info.Name, info.Tuples, info.Version, *data)
		}
	} else {
		svc = ksjq.NewService(cfg)
	}
	preloaded := 0
	for _, spec := range loads {
		loaded, err := preload(svc, spec, *window)
		if err != nil {
			log.Fatalf("ksjqd: -load %s: %v", spec.name, err)
		}
		if loaded {
			preloaded++
			log.Printf("loaded relation %s from %s", spec.name, spec.path)
		} else {
			// Recovered from the store — the CSV is only the first boot's
			// seed, not re-parsed every start.
			log.Printf("relation %s already recovered; skipping %s", spec.name, spec.path)
		}
	}
	if *data != "" && preloaded > 0 {
		// Fold the preloads into segment files now so the next boot reads
		// columnar segments instead of replaying full-relation WAL records.
		if err := svc.Checkpoint(); err != nil {
			log.Printf("ksjqd: checkpoint after preload: %v", err)
		}
	}

	// The wire-facing deadline bound mirrors the service's resolution of
	// -timeout: 0 means the shared default, negative means the operator
	// explicitly allows unbounded requests.
	maxTimeout := *timeout
	if maxTimeout == 0 {
		maxTimeout = ksjq.DefaultRequestTimeout
	} else if maxTimeout < 0 {
		maxTimeout = 0
	}
	srv := &http.Server{Addr: *addr, Handler: newServer(svc, maxTimeout)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ksjqd listening on %s (%d relations preloaded)", *addr, len(loads))

	// The API mux is ours, so the pprof handlers net/http/pprof hangs on
	// the default mux stay unreachable unless the operator opts in with a
	// separate (typically loopback) debug listener.
	if *debug != "" {
		go func() {
			log.Printf("ksjqd debug (pprof) listening on %s", *debug)
			if err := http.ListenAndServe(*debug, nil); err != nil {
				log.Printf("ksjqd: debug server: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatalf("ksjqd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("ksjqd: shutting down (grace %v)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ksjqd: shutdown: %v", err)
	}
	if err := svc.Close(); err != nil && !errors.Is(err, ksjq.ErrServiceClosed) {
		log.Printf("ksjqd: closing service: %v", err)
	}
	log.Printf("ksjqd: bye")
}

// preload registers one -load CSV, unless the store already recovered a
// relation under that name (durable restarts keep their mutations; the
// CSV is only the first boot's seed). Returns whether the CSV was loaded.
func preload(svc *ksjq.Service, spec loadSpec, window time.Duration) (bool, error) {
	if _, err := svc.RelationInfo(spec.name); err == nil {
		return false, nil
	}
	f, err := os.Open(spec.path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	rel, err := ksjq.ReadCSV(f, ksjq.ReadOptions{
		Name: spec.name, Local: spec.local, Agg: spec.agg, HasBand: spec.band,
	})
	if err != nil {
		return false, err
	}
	_, err = svc.RegisterWindow(spec.name, rel, window)
	return err == nil, err
}
