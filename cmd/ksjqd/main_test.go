package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/ksjq"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := ksjq.NewService(ksjq.ServiceConfig{})
	srv := httptest.NewServer(newServer(svc, 30*time.Second))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// relationBody builds a loadable toy relation: two incomparable tuples
// (1,9) and (9,1) on one key. Joining two of these under k=4 (full
// dominance) yields all four combinations in the skyline; inserting (0,0)
// on one side then collapses it to the two pairs built from the new tuple.
func relationBody(name string) map[string]any {
	return map[string]any{"name": name, "local": 2, "agg": 0, "tuples": []map[string]any{
		{"key": "h", "attrs": []float64{1, 9}},
		{"key": "h", "attrs": []float64{9, 1}},
	}}
}

func TestServerEndToEnd(t *testing.T) {
	srv := newTestServer(t)

	// Load two relations.
	for _, name := range []string{"r1", "r2"} {
		resp, out := postJSON(t, srv.URL+"/v1/relations", relationBody(name))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("load %s: status %d (%v)", name, resp.StatusCode, out)
		}
		if out["version"].(float64) != 1 || out["tuples"].(float64) != 2 {
			t.Fatalf("load %s: %v", name, out)
		}
	}

	// Listing shows both.
	resp, err := http.Get(srv.URL + "/v1/relations")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Relations []map[string]any `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Relations) != 2 {
		t.Fatalf("relations listing: %v", listing)
	}

	// First query computes, second hits the cache. k=4 over the joined
	// width 4 is full dominance: all four combinations of the two
	// incomparable tuples per side survive.
	query := map[string]any{"r1": "r1", "r2": "r2", "k": 4, "algorithm": "grouping"}
	resp, out := postJSON(t, srv.URL+"/v1/query", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d (%v)", resp.StatusCode, out)
	}
	if out["source"] != "computed" || out["stats"] == nil {
		t.Errorf("first query: source=%v stats=%v", out["source"], out["stats"])
	}
	if got := out["count"].(float64); got != 4 {
		t.Errorf("first query skyline has %v tuples, want 4", got)
	}
	_, out = postJSON(t, srv.URL+"/v1/query", query)
	if out["source"] != "cached" {
		t.Errorf("second query: source=%v, want cached", out["source"])
	}

	// An insert keeps the cached answer live: the next query is served
	// from the maintained entry at the new version.
	resp, out = postJSON(t, srv.URL+"/v1/insert", map[string]any{
		"relation": "r1",
		"tuple":    map[string]any{"key": "h", "attrs": []float64{0, 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d (%v)", resp.StatusCode, out)
	}
	if out["version"].(float64) != 2 || out["maintained"].(float64) != 1 {
		t.Errorf("insert: %v", out)
	}
	_, out = postJSON(t, srv.URL+"/v1/query", query)
	if out["source"] != "maintained" {
		t.Errorf("post-insert query: source=%v, want maintained", out["source"])
	}
	versions := out["versions"].([]any)
	if versions[0].(float64) != 2 || versions[1].(float64) != 1 {
		t.Errorf("post-insert versions: %v", versions)
	}
	// The dominant insert ((0,0) beats both R1 tuples) reshapes the
	// answer: only its two joined pairs survive full dominance.
	if got := out["count"].(float64); got != 2 {
		t.Errorf("post-insert skyline has %v tuples, want 2", got)
	}

	// Stats reflect the traffic.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats ksjq.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Queries != 3 || stats.Computed != 1 || stats.CacheHits != 1 || stats.MaintainedHits != 1 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.Inserts != 1 || len(stats.Relations) != 2 {
		t.Errorf("stats relations/inserts: %+v", stats)
	}

	// Health.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestServerCSVLoad(t *testing.T) {
	srv := newTestServer(t)
	csv := "key,band,a0,a1\nBOM,2.5,1,9\nBOM,4,3,3\n"
	resp, err := http.Post(srv.URL+"/v1/relations?format=csv&name=legs&local=2&band=1", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["tuples"].(float64) != 2 {
		t.Fatalf("CSV load: status %d, %v", resp.StatusCode, out)
	}
	// A band self-join over the loaded relation works end to end.
	_, out = postJSON(t, srv.URL+"/v1/query", map[string]any{
		"r1": "legs", "r2": "legs", "k": 3, "join": "lt",
	})
	if out["error"] != nil {
		t.Fatalf("band query: %v", out["error"])
	}
}

// TestServerBatchInsert covers the batch wire form of /v1/insert: one
// group commit for a tuple list, responses carrying the batch shape, and
// the maintained answer staying identical to a forced recompute.
func TestServerBatchInsert(t *testing.T) {
	srv := newTestServer(t)
	for _, name := range []string{"r1", "r2"} {
		postJSON(t, srv.URL+"/v1/relations", relationBody(name))
	}
	query := map[string]any{"r1": "r1", "r2": "r2", "k": 4, "algorithm": "grouping"}
	postJSON(t, srv.URL+"/v1/query", query) // warm an entry to maintain

	resp, out := postJSON(t, srv.URL+"/v1/insert", map[string]any{
		"relation": "r1",
		"tuples": []map[string]any{
			{"key": "h", "attrs": []float64{2, 8}},
			{"key": "h", "attrs": []float64{8, 2}},
			{"key": "h", "attrs": []float64{0, 0}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch insert: status %d (%v)", resp.StatusCode, out)
	}
	// One version bump for the whole batch, ids from the append point.
	if out["id"].(float64) != 2 || out["count"].(float64) != 3 || out["version"].(float64) != 2 {
		t.Errorf("batch insert response: %v", out)
	}
	if out["maintained"].(float64) != 1 {
		t.Errorf("batch insert maintained %v entries, want 1", out["maintained"])
	}

	_, maintained := postJSON(t, srv.URL+"/v1/query", query)
	if maintained["source"] != "maintained" {
		t.Fatalf("post-batch query source = %v, want maintained", maintained["source"])
	}
	fresh := map[string]any{"r1": "r1", "r2": "r2", "k": 4, "algorithm": "grouping", "no_cache": true}
	_, recomputed := postJSON(t, srv.URL+"/v1/query", fresh)
	if fmt.Sprint(maintained["skyline"]) != fmt.Sprint(recomputed["skyline"]) {
		t.Errorf("maintained answer diverges from recompute:\n%v\n%v",
			maintained["skyline"], recomputed["skyline"])
	}

	// Mixing the single and batch forms is ambiguous — rejected.
	resp, out = postJSON(t, srv.URL+"/v1/insert", map[string]any{
		"relation": "r1",
		"tuple":    map[string]any{"key": "h", "attrs": []float64{1, 1}},
		"tuples":   []map[string]any{{"key": "h", "attrs": []float64{1, 1}}},
	})
	if resp.StatusCode != http.StatusBadRequest || out["error"] == nil {
		t.Errorf("mixed forms: status %d (%v), want 400", resp.StatusCode, out)
	}
	// An empty batch is a client error, not a silent no-op.
	resp, _ = postJSON(t, srv.URL+"/v1/insert", map[string]any{"relation": "r1", "tuples": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestServerErrors(t *testing.T) {
	srv := newTestServer(t)
	postJSON(t, srv.URL+"/v1/relations", relationBody("r1"))

	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"unknown relation", "/v1/query", map[string]any{"r1": "r1", "r2": "ghost", "k": 3}, http.StatusNotFound},
		{"bad k", "/v1/query", map[string]any{"r1": "r1", "r2": "r1", "k": 99}, http.StatusBadRequest},
		{"bad join", "/v1/query", map[string]any{"r1": "r1", "r2": "r1", "k": 4, "join": "outer"}, http.StatusBadRequest},
		{"duplicate relation", "/v1/relations", relationBody("r1"), http.StatusConflict},
		{"insert unknown", "/v1/insert", map[string]any{"relation": "ghost", "tuple": map[string]any{"attrs": []float64{1, 2}}}, http.StatusNotFound},
		{"insert bad schema", "/v1/insert", map[string]any{"relation": "r1", "tuple": map[string]any{"attrs": []float64{1}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, out := postJSON(t, srv.URL+c.path, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, resp.StatusCode, c.status, out)
		}
		if out["error"] == nil {
			t.Errorf("%s: response carries no error field: %v", c.name, out)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// Non-finite insert payloads never reach a relation: NaN/Infinity are
	// not representable in JSON (decode rejects them), and an overflowing
	// literal like 1e999 fails float64 decoding — both are 400s, and the
	// dataset layer's finite-attribute check backstops any path that might
	// bypass the wire decode.
	for name, body := range map[string]string{
		"NaN attr":      `{"relation":"r1","tuple":{"attrs":[NaN,1]}}`,
		"overflow attr": `{"relation":"r1","tuple":{"attrs":[1e999,1]}}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s insert: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: status %d", resp.StatusCode)
	}
}

func TestLoadFlagParsing(t *testing.T) {
	var l loadFlags
	for _, good := range []string{"r1,data.csv,3", "r2,data.csv,3,2", "r3,data.csv,3,2,band"} {
		if err := l.Set(good); err != nil {
			t.Errorf("Set(%q): %v", good, err)
		}
	}
	if len(l) != 3 || l[2].band != true || l[1].agg != 2 || l[0].local != 3 {
		t.Errorf("parsed specs: %+v", l)
	}
	for _, bad := range []string{"r1", "r1,data.csv", "r1,data.csv,x", "r1,data.csv,3,y", "r1,data.csv,3,2,nope", "a,b,1,2,band,extra"} {
		if err := l.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestTupleJSONRoundTrip(t *testing.T) {
	in := httpapi.TupleJSON{Key: "A", Key2: "B", Band: 1.5, Attrs: []float64{1, 2}}
	tup := in.Tuple()
	if tup.Key != "A" || tup.Key2 != "B" || tup.Band != 1.5 || fmt.Sprint(tup.Attrs) != "[1 2]" {
		t.Errorf("tuple() = %+v", tup)
	}
}

// TestServerWatch drives the NDJSON watch stream end to end: subscribe,
// read the snapshot line, insert a dominating tuple, read the delta line,
// then disconnect.
func TestServerWatch(t *testing.T) {
	srv := newTestServer(t)
	for _, name := range []string{"r1", "r2"} {
		resp, _ := postJSON(t, srv.URL+"/v1/relations", relationBody(name))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("loading %s: status %d", name, resp.StatusCode)
		}
	}

	body, err := json.Marshal(map[string]any{"r1": "r1", "r2": "r2", "k": 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}

	type eventJSON struct {
		Seq      uint64             `json:"seq"`
		Added    []httpapi.PairJSON `json:"added"`
		Removed  []httpapi.PairJSON `json:"removed"`
		Versions [2]uint64          `json:"versions"`
	}
	dec := json.NewDecoder(resp.Body)
	lines := make(chan eventJSON, 8)
	go func() {
		defer close(lines)
		for {
			var ev eventJSON
			if err := dec.Decode(&ev); err != nil {
				return
			}
			lines <- ev
		}
	}()
	readEvent := func(label string) eventJSON {
		t.Helper()
		select {
		case ev, ok := <-lines:
			if !ok {
				t.Fatalf("%s: watch stream ended early", label)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: timed out waiting for watch event", label)
		}
		panic("unreachable")
	}

	snapshot := readEvent("snapshot")
	if snapshot.Seq != 0 || len(snapshot.Added) != 4 || len(snapshot.Removed) != 0 {
		t.Fatalf("snapshot = seq %d, %d added, %d removed; want 0, 4, 0",
			snapshot.Seq, len(snapshot.Added), len(snapshot.Removed))
	}

	// A dominating insert displaces the old answer: the delta removes the
	// four old pairs and adds the new tuple's two.
	insResp, _ := postJSON(t, srv.URL+"/v1/insert", map[string]any{
		"relation": "r1", "tuple": map[string]any{"key": "h", "attrs": []float64{0, 0}},
	})
	if insResp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", insResp.StatusCode)
	}
	delta := readEvent("delta")
	if delta.Seq != 1 || len(delta.Added) != 2 || len(delta.Removed) != 4 {
		t.Fatalf("delta = seq %d, %d added, %d removed; want 1, 2, 4",
			delta.Seq, len(delta.Added), len(delta.Removed))
	}
	if delta.Versions != [2]uint64{2, 1} {
		t.Fatalf("delta versions %v, want [2 1]", delta.Versions)
	}
}

// TestServerWatchRejectsBadRequest pins the error mapping on the watch
// endpoint: an unmaintainable aggregator is a 400, an unknown relation a
// 404 — before any streaming starts.
func TestServerWatchRejectsBadRequest(t *testing.T) {
	srv := newTestServer(t)
	resp, _ := postJSON(t, srv.URL+"/v1/relations", relationBody("r1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loading r1: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/watch", map[string]any{"r1": "r1", "r2": "nope", "k": 4})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/watch", map[string]any{
		"r1": "r1", "r2": "r1", "k": 4, "agg": "max", "algorithm": "naive",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("max aggregator: status %d, want 400", resp.StatusCode)
	}
}

// TestServerDelete covers both wire forms of /v1/delete: single-id and
// batch, the maintained answer staying identical to a forced recompute,
// and the client-error surface (mixed forms, bad ids, delete-all).
func TestServerDelete(t *testing.T) {
	srv := newTestServer(t)
	for _, name := range []string{"r1", "r2"} {
		postJSON(t, srv.URL+"/v1/relations", relationBody(name))
	}
	query := map[string]any{"r1": "r1", "r2": "r2", "k": 4, "algorithm": "grouping"}
	postJSON(t, srv.URL+"/v1/query", query) // warm an entry to maintain

	// Deleting r1's (1,9) leaves only pairs built from (9,1).
	resp, out := postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r1", "id": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%v)", resp.StatusCode, out)
	}
	if out["count"].(float64) != 1 || out["version"].(float64) != 2 {
		t.Errorf("delete response: %v", out)
	}
	if out["maintained"].(float64) != 1 {
		t.Errorf("delete maintained %v entries, want 1", out["maintained"])
	}
	_, maintained := postJSON(t, srv.URL+"/v1/query", query)
	if maintained["source"] != "maintained" {
		t.Fatalf("post-delete query source = %v, want maintained", maintained["source"])
	}
	if n := maintained["count"].(float64); n != 2 {
		t.Fatalf("post-delete skyline has %v pairs, want 2", n)
	}
	fresh := map[string]any{"r1": "r1", "r2": "r2", "k": 4, "algorithm": "grouping", "no_cache": true}
	_, recomputed := postJSON(t, srv.URL+"/v1/query", fresh)
	if fmt.Sprint(maintained["skyline"]) != fmt.Sprint(recomputed["skyline"]) {
		t.Errorf("maintained answer diverges from recompute:\n%v\n%v",
			maintained["skyline"], recomputed["skyline"])
	}

	// Batch form: grow the relation, then delete two rows as one commit.
	postJSON(t, srv.URL+"/v1/insert", map[string]any{
		"relation": "r1",
		"tuples": []map[string]any{
			{"key": "h", "attrs": []float64{2, 8}},
			{"key": "h", "attrs": []float64{8, 2}},
		},
	})
	resp, out = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r1", "ids": []int{0, 2}})
	if resp.StatusCode != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("batch delete: status %d (%v)", resp.StatusCode, out)
	}
	_, maintained = postJSON(t, srv.URL+"/v1/query", query)
	_, recomputed = postJSON(t, srv.URL+"/v1/query", fresh)
	if fmt.Sprint(maintained["skyline"]) != fmt.Sprint(recomputed["skyline"]) {
		t.Errorf("post-batch maintained answer diverges from recompute:\n%v\n%v",
			maintained["skyline"], recomputed["skyline"])
	}

	// Client errors: mixed forms, empty batch, out-of-range, delete-all,
	// unknown relation.
	resp, _ = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r1", "id": 0, "ids": []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed forms: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r1", "ids": []int{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r1", "id": 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out of range: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "r2", "ids": []int{0, 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("delete-all: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/delete", map[string]any{"relation": "nope", "id": 0})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown relation: status %d, want 404", resp.StatusCode)
	}
}

// TestServerWindow registers sliding-window relations over both wire
// forms, checks the window surfaces in the listing, and lets the real
// sweeper age rows out down to the retained newest row.
func TestServerWindow(t *testing.T) {
	svc := ksjq.NewService(ksjq.ServiceConfig{SweepInterval: 10 * time.Millisecond})
	srv := httptest.NewServer(newServer(svc, 30*time.Second))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})

	body := relationBody("r1")
	body["window_ms"] = 40
	if resp, out := postJSON(t, srv.URL+"/v1/relations", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed load: status %d (%v)", resp.StatusCode, out)
	}
	csv := "key,a0,a1\nh,1,9\nh,9,1\n"
	resp, err := http.Post(srv.URL+"/v1/relations?format=csv&name=legs&local=2&window_ms=60000", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed CSV load: status %d", resp.StatusCode)
	}

	// The listing carries each relation's window.
	listResp, err := http.Get(srv.URL + "/v1/relations")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Relations []struct {
			Name     string `json:"name"`
			WindowMS int64  `json:"window_ms"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	windows := map[string]int64{}
	for _, r := range listing.Relations {
		windows[r.Name] = r.WindowMS
	}
	if windows["r1"] != 40 || windows["legs"] != 60000 {
		t.Fatalf("listed windows = %v, want r1:40 legs:60000", windows)
	}

	// r1's 40ms window ages both seed rows past their deadline; the
	// sweeper keeps the newest so the relation never empties.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := svc.RelationInfo("r1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Tuples == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper left %d rows after 5s", info.Tuples)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// legs' one-minute window expires nothing in this test's lifetime.
	if info, err := svc.RelationInfo("legs"); err != nil || info.Tuples != 2 {
		t.Fatalf("legs: %v tuples (err %v), want 2 intact", info.Tuples, err)
	}

	// A negative window is rejected at registration.
	bad := relationBody("r3")
	bad["window_ms"] = -5
	if resp, _ := postJSON(t, srv.URL+"/v1/relations", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative window: status %d, want 400", resp.StatusCode)
	}
}
