package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/ksjq"
)

// The HTTP surface is a thin JSON codec over ksjq.Service: every endpoint
// decodes a request, calls the same method an embedder would, and encodes
// the response. No query logic lives here.
//
//	POST /v1/relations  {"name","local","agg","tuples":[{"key","band","attrs"}],"window_ms":60000}
//	POST /v1/relations?format=csv&name=r1&local=3&agg=1[&band=1][&window_ms=60000]   (CSV body)
//	GET  /v1/relations
//	POST /v1/query      {"r1","r2","k","join","agg","algorithm","workers","timeout_ms","no_cache"}
//	POST /v1/watch      same body as /v1/query; responds with NDJSON answer deltas
//	POST /v1/insert     {"relation","tuple":{"key","band","attrs"}}
//	                    or {"relation","tuples":[{...},...]} (one group commit)
//	POST /v1/delete     {"relation","id":3} or {"relation","ids":[0,4,7]}
//	                    (one group commit; ids are current row indexes)
//	GET  /v1/stats
//	GET  /healthz

// tupleJSON is the wire form of one tuple.
type tupleJSON struct {
	Key   string    `json:"key"`
	Key2  string    `json:"key2,omitempty"`
	Band  float64   `json:"band,omitempty"`
	Attrs []float64 `json:"attrs"`
}

func (t tupleJSON) tuple() ksjq.Tuple {
	return ksjq.Tuple{Key: t.Key, Key2: t.Key2, Band: t.Band, Attrs: t.Attrs}
}

// pairJSON is the wire form of one skyline tuple.
type pairJSON struct {
	Left  int       `json:"left"`
	Right int       `json:"right"`
	Attrs []float64 `json:"attrs"`
}

type queryJSON struct {
	R1        string `json:"r1"`
	R2        string `json:"r2"`
	K         int    `json:"k"`
	Join      string `json:"join,omitempty"`
	Agg       string `json:"agg,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

type queryResponseJSON struct {
	Skyline   []pairJSON `json:"skyline"`
	Count     int        `json:"count"`
	Source    string     `json:"source"`
	Algorithm string     `json:"algorithm"`
	Versions  [2]uint64  `json:"versions"`
	ElapsedUS int64      `json:"elapsed_us"`
	Stats     *statsJSON `json:"stats,omitempty"`
}

// statsJSON flattens the engine's per-phase breakdown to microseconds.
type statsJSON struct {
	GroupingUS  int64 `json:"grouping_us"`
	JoinUS      int64 `json:"join_us"`
	DominatorUS int64 `json:"dominator_us"`
	RemainingUS int64 `json:"remaining_us"`
	TotalUS     int64 `json:"total_us"`
	Candidates  int   `json:"candidates"`
	YesEmitted  int   `json:"yes_emitted"`
	DomTests    int64 `json:"domination_tests"`
}

// server carries the handler's operator-level policy: wire clients may
// tighten the per-request deadline but never loosen it past maxTimeout
// (0 = the operator disabled the bound).
type server struct {
	svc        *ksjq.Service
	maxTimeout time.Duration
}

func newServer(svc *ksjq.Service, maxTimeout time.Duration) http.Handler {
	srv := &server{svc: svc, maxTimeout: maxTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/relations", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"relations": svc.Relations()})
		case http.MethodPost:
			handleLoad(svc, w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
		}
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		srv.handleQuery(w, r)
	})
	mux.HandleFunc("/v1/watch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		srv.handleWatch(w, r)
	})
	mux.HandleFunc("/v1/insert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		handleInsert(svc, w, r)
	})
	mux.HandleFunc("/v1/delete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		handleDelete(svc, w, r)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

func handleLoad(svc *ksjq.Service, w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "csv" {
		q := r.URL.Query()
		name := q.Get("name")
		local, agg := atoi(q.Get("local")), atoi(q.Get("agg"))
		hasBand := q.Get("band") != "" && q.Get("band") != "0"
		window := time.Duration(atoi(q.Get("window_ms"))) * time.Millisecond
		rel, err := ksjq.ReadCSV(r.Body, ksjq.ReadOptions{
			Name: name, Local: local, Agg: agg, HasBand: hasBand,
		})
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		version, err := svc.RegisterWindow(name, rel, window)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeLoadResponse(svc, w, name, version)
		return
	}
	var req struct {
		Name     string      `json:"name"`
		Local    int         `json:"local"`
		Agg      int         `json:"agg"`
		Tuples   []tupleJSON `json:"tuples"`
		WindowMS int64       `json:"window_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	tuples := make([]ksjq.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		tuples[i] = t.tuple()
	}
	rel, err := ksjq.NewRelation(req.Name, req.Local, req.Agg, tuples)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	version, err := svc.RegisterWindow(req.Name, rel, time.Duration(req.WindowMS)*time.Millisecond)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeLoadResponse(svc, w, req.Name, version)
}

func writeLoadResponse(svc *ksjq.Service, w http.ResponseWriter, name string, version uint64) {
	info, err := svc.RelationInfo(name)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": name, "version": version, "tuples": info.Tuples,
	})
}

func (srv *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	svc := srv.svc
	var req queryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Clamp: a wire client may tighten the deadline but never loosen it.
	// Negative values (the service's embedder-only "no deadline" escape
	// hatch) and anything beyond the operator's bound fall back to that
	// bound, so no client can pin a worker slot past it.
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout < 0 || (srv.maxTimeout > 0 && (timeout == 0 || timeout > srv.maxTimeout)) {
		timeout = srv.maxTimeout
	}
	resp, err := svc.Query(r.Context(), ksjq.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
		Timeout: timeout,
		NoCache: req.NoCache,
	})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	out := queryResponseJSON{
		Skyline:   make([]pairJSON, len(resp.Skyline)),
		Count:     len(resp.Skyline),
		Source:    string(resp.Source),
		Algorithm: resp.Algorithm,
		Versions:  resp.Versions,
		ElapsedUS: resp.Elapsed.Microseconds(),
	}
	for i, p := range resp.Skyline {
		out.Skyline[i] = pairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs}
	}
	if st := resp.Stats; st != nil {
		out.Stats = &statsJSON{
			GroupingUS:  st.GroupingTime.Microseconds(),
			JoinUS:      st.JoinTime.Microseconds(),
			DominatorUS: st.DominatorTime.Microseconds(),
			RemainingUS: st.RemainingTime.Microseconds(),
			TotalUS:     st.Total.Microseconds(),
			Candidates:  st.Candidates,
			YesEmitted:  st.YesEmitted,
			DomTests:    st.DominationTests,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// watchEventJSON is the wire form of one answer delta on the NDJSON
// stream: the initial snapshot (seq 0, all added), then one line per
// insert that touched the watched relations.
type watchEventJSON struct {
	Seq      uint64     `json:"seq"`
	Added    []pairJSON `json:"added,omitempty"`
	Removed  []pairJSON `json:"removed,omitempty"`
	Versions [2]uint64  `json:"versions"`
}

// handleWatch upgrades a query into a standing subscription: the response
// is an unbounded application/x-ndjson stream of answer deltas, one JSON
// object per line, flushed as they happen. The stream ends when the
// client disconnects (the request context cancels the watch) or the
// service shuts down. The timeout clamp is deliberately not applied —
// a watch is long-lived by design; its lifetime is the connection's.
func (srv *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req queryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	watch, err := srv.svc.Watch(r.Context(), ksjq.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
	})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	defer watch.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range watch.Events() {
		out := watchEventJSON{Seq: ev.Seq, Versions: ev.Versions}
		for _, p := range ev.Added {
			out.Added = append(out.Added, pairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		for _, p := range ev.Removed {
			out.Removed = append(out.Removed, pairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		if err := enc.Encode(out); err != nil {
			return // client went away; the deferred Close tears down
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleInsert accepts the original single-tuple form ("tuple") and the
// batch form ("tuples"); both run through the service's group-commit
// ingest, a batch paying one version bump and one maintenance pass for
// the whole set.
func handleInsert(svc *ksjq.Service, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Relation string      `json:"relation"`
		Tuple    *tupleJSON  `json:"tuple"`
		Tuples   []tupleJSON `json:"tuples"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var tuples []ksjq.Tuple
	switch {
	case req.Tuple != nil && len(req.Tuples) > 0:
		writeError(w, http.StatusBadRequest, errors.New(`give "tuple" or "tuples", not both`))
		return
	case req.Tuple != nil:
		tuples = []ksjq.Tuple{req.Tuple.tuple()}
	default:
		tuples = make([]ksjq.Tuple, len(req.Tuples))
		for i, t := range req.Tuples {
			tuples[i] = t.tuple()
		}
	}
	res, err := svc.InsertBatch(req.Relation, tuples)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": res.ID, "count": res.Count, "version": res.Version,
		"maintained": res.Maintained, "invalidated": res.Invalidated,
		"displaced": res.Displaced, "admitted": res.Admitted,
	})
}

// handleDelete accepts a single row id ("id") or a batch ("ids"); both
// run through the service's group-commit delete, a batch paying one
// version bump and one maintenance pass for the whole set. Ids are the
// rows' current indexes — surviving rows renumber after the commit, so
// batch members are resolved against the same pre-delete numbering.
func handleDelete(svc *ksjq.Service, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Relation string `json:"relation"`
		ID       *int   `json:"id"`
		IDs      []int  `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var ids []int
	switch {
	case req.ID != nil && len(req.IDs) > 0:
		writeError(w, http.StatusBadRequest, errors.New(`give "id" or "ids", not both`))
		return
	case req.ID != nil:
		ids = []int{*req.ID}
	default:
		ids = req.IDs
	}
	res, err := svc.DeleteBatch(req.Relation, ids)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": res.Count, "version": res.Version,
		"maintained": res.Maintained, "invalidated": res.Invalidated,
		"evicted": res.Evicted, "resurrected": res.Resurrected,
	})
}

// writeServiceError maps service errors onto HTTP status codes.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ksjq.ErrUnknownRelation):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ksjq.ErrDuplicateRelation):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ksjq.ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ksjq.ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ksjq.ErrServiceClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// atoi parses a non-negative query parameter, treating anything else as 0
// (schema validation downstream produces the real error message).
func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
