package main

import (
	"net/http"
	"time"

	"repro/internal/httpapi"
	"repro/ksjq"
)

// The HTTP surface lives in internal/httpapi — a thin JSON codec over
// ksjq.Service shared between this single-node server and the sharded
// gateway (internal/shard), which speaks it as a client against each
// shard. newServer is kept as the in-package constructor the tests and
// main use.
func newServer(svc *ksjq.Service, maxTimeout time.Duration) http.Handler {
	return httpapi.NewHandler(svc, maxTimeout)
}
