// Package repro is a from-scratch Go reproduction of "K-Dominant Skyline
// Join Queries: Extending the Join Paradigm to K-Dominant Skylines"
// (Awasthi, Bhattacharya, Gupta, Singh; ICDE 2017).
//
// The public API is the ksjq package: one context-aware surface
// (ksjq.Run, ksjq.FindK, ksjq.Membership, …) over a single engine
// execution path that serves serial, parallel, and progressive modes,
// plus ksjq.NewService — the embedded form of the ksjqd query server,
// with resident relations, an answer cache, and incremental maintenance
// under inserts. The engine itself lives under internal/: see
// internal/core for the KSJQ algorithms, internal/planner for algorithm
// selection, internal/service for the serving layer,
// internal/experiments for the figure harness, and DESIGN.md for the
// system inventory (§6 covers the facade and the unified execution
// path, §7 the query service). Executables are under cmd/ and runnable
// examples under examples/; README.md has the quickstarts. The
// root-level bench_test.go holds one testing.B benchmark per figure of
// the paper's evaluation plus the service cold/warm benchmarks.
package repro
