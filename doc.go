// Package repro is a from-scratch Go reproduction of "K-Dominant Skyline
// Join Queries: Extending the Join Paradigm to K-Dominant Skylines"
// (Awasthi, Bhattacharya, Gupta, Singh; ICDE 2017).
//
// The public API is the ksjq package: one context-aware surface
// (ksjq.Run, ksjq.FindK, ksjq.Membership, …) over a single engine
// execution path that serves serial, parallel, and progressive modes.
// Repeated evaluation goes through prepared queries (ksjq.Prepare owns
// the reusable join structures plus a per-k answer memo), results can
// be consumed as pull-based iterator streams (ksjq.Stream,
// Prepared.Stream), and ksjq.NewService is the embedded form of the
// ksjqd query server — resident relations, an answer cache, incremental
// maintenance under inserts, and watchable answers (Service.Watch
// delivers Added/Removed deltas as inserts arrive). The engine itself
// lives under internal/: see internal/core for the KSJQ algorithms,
// internal/planner for algorithm selection, internal/service for the
// serving layer, internal/experiments for the figure harness, and
// DESIGN.md for the system inventory (§6 covers the facade and the
// unified execution path, §7 the query service, §9 the prepared/stream/
// watch surface). Executables are under cmd/ and runnable examples
// under examples/; README.md has the quickstarts. The root-level
// bench_test.go holds one testing.B benchmark per figure of the paper's
// evaluation plus the service and prepared-query benchmarks.
package repro
