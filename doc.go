// Package repro is a from-scratch Go reproduction of "K-Dominant Skyline
// Join Queries: Extending the Join Paradigm to K-Dominant Skylines"
// (Awasthi, Bhattacharya, Gupta, Singh; ICDE 2017).
//
// The implementation lives under internal/: see internal/core for the KSJQ
// algorithms, internal/experiments for the figure harness, and DESIGN.md
// for the system inventory. Executables are under cmd/ and runnable
// examples under examples/. The root-level bench_test.go holds one
// testing.B benchmark per figure of the paper's evaluation.
package repro
