// Flights: the paper's Sec. 7.4 scenario on the simulated two-legged
// Delhi → hub → Mumbai dataset — an aggregate KSJQ where total cost and
// total flying time matter, not the per-leg values.
//
// The example runs the query twice: first joining on the hub city alone
// (the paper's setting), then additionally requiring the first leg to land
// before the second departs (the non-equality join of Sec. 6.6). Run with:
//
//	go run ./examples/flights
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/ksjq"
)

func main() {
	ctx := context.Background()
	out, in, err := datagen.Flights(datagen.DefaultFlightsConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outbound %d flights, inbound %d flights, %d hub cities\n",
		out.Len(), in.Len(), len(out.Keys()))

	// Each relation has locals [date-change fee, popularity, amenities]
	// and aggregates [cost, flying time]; the joined itinerary has
	// 3+3+2 = 8 skyline attributes with cost and time summed over legs.
	q := ksjq.Query{
		R1:   out,
		R2:   in,
		Spec: ksjq.Spec{Cond: ksjq.Equality, Agg: ksjq.Sum},
		K:    7,
	}
	res, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Grouping})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhub join: %d itineraries in the %d-dominant skyline (of %d candidates)\n",
		len(res.Skyline), q.K, mustCount(out, in, ksjq.Spec{Cond: ksjq.Equality}))
	printTop(out, in, res, 5)

	// Timed connections: the outbound Band is the arrival time at the hub,
	// the inbound Band the departure time; requiring arrival < departure is
	// the paper's f1.arrival < f2.departure example. The equality-join key
	// is ignored by the band condition, so we restrict both relations to a
	// single hub per query and union the answers — exactly how a travel
	// site would evaluate per-hub connections.
	total := 0
	for _, hub := range out.Keys() {
		o := filterKey(out, hub)
		i := filterKey(in, hub)
		if o == nil || i == nil {
			continue
		}
		tq := ksjq.Query{R1: o, R2: i, Spec: ksjq.Spec{Cond: ksjq.BandLess, Agg: ksjq.Sum}, K: 7}
		tres, err := ksjq.Run(ctx, tq, ksjq.Options{Algorithm: ksjq.Grouping})
		if err != nil {
			log.Fatal(err)
		}
		total += len(tres.Skyline)
	}
	fmt.Printf("\ntimed connections (arrival < departure, per hub): %d skyline itineraries\n", total)
}

func printTop(out, in *ksjq.Relation, res *ksjq.Result, n int) {
	for i, p := range res.Skyline {
		if i >= n {
			fmt.Printf("  ... and %d more\n", len(res.Skyline)-n)
			return
		}
		fmt.Printf("  via %s: fee=%4.0f+%4.0f pop=%2.0f/%2.0f amen=%2.0f/%2.0f cost=%6.0f time=%.1fh\n",
			out.Key(p.Left),
			p.Attrs[0], p.Attrs[3], p.Attrs[1], p.Attrs[4], p.Attrs[2], p.Attrs[5],
			p.Attrs[6], p.Attrs[7])
	}
}

func filterKey(r *ksjq.Relation, key string) *ksjq.Relation {
	var tuples []ksjq.Tuple
	for i := 0; i < r.Len(); i++ {
		if t := r.Tuple(i); t.Key == key {
			tuples = append(tuples, t)
		}
	}
	if len(tuples) == 0 {
		return nil
	}
	return ksjq.MustNewRelation(r.Name+"@"+key, r.Local, r.Agg, tuples)
}

func mustCount(r1, r2 *ksjq.Relation, spec ksjq.Spec) int {
	n, err := ksjq.CountPairs(r1, r2, spec)
	if err != nil {
		log.Fatal(err)
	}
	return n
}
