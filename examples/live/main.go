// Live: subscribing to a KSJQ answer while new tuples arrive, and
// streaming results progressively under a deadline — the operational
// modes a deployed skyline-join service needs (cf. the update-heavy
// maintenance work the paper cites, and the progressiveness discussion of
// Sec. 6.1).
//
// A product × shipping-plan feed is registered with an embedded query
// service and watched: the initial answer arrives as a snapshot event,
// then every insert is published as an Added/Removed delta, driven by the
// service's incremental maintainer — no recomputation, no client-side
// re-polling. Finally the same query is prepared once and re-evaluated as
// a pull-based iterator, stopping after the first five results. Run with:
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ksjq"
)

func randProduct(rng *rand.Rand) ksjq.Tuple {
	quality := rng.Float64() * 100
	price := 120 - quality + 25*rng.Float64()
	return ksjq.Tuple{Attrs: []float64{quality, rng.Float64() * 100, rng.Float64() * 100, price}}
}

func randPlan(rng *rand.Rand) ksjq.Tuple {
	days := 1 + rng.Float64()*13
	fee := 22 - 1.4*days + 4*rng.Float64()
	return ksjq.Tuple{Attrs: []float64{days, rng.Float64() * 10, rng.Float64() * 10, fee}}
}

func main() {
	rng := rand.New(rand.NewSource(99))
	products := make([]ksjq.Tuple, 120)
	for i := range products {
		products[i] = randProduct(rng)
	}
	plans := make([]ksjq.Tuple, 30)
	for i := range plans {
		plans[i] = randPlan(rng)
	}
	r1 := ksjq.MustNewRelation("products", 3, 1, products)
	r2 := ksjq.MustNewRelation("shipping", 3, 1, plans)

	// Watchable answers: register the relations with an embedded service
	// and subscribe to the query. The service owns the relations from here
	// on — every mutation goes through Insert, which feeds the watch.
	svc := ksjq.NewService(ksjq.ServiceConfig{})
	defer svc.Close()
	if _, err := svc.Register("products", r1); err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Register("shipping", r2); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	watch, err := svc.Watch(ctx, ksjq.QueryRequest{R1: "products", R2: "shipping", K: 6, Join: "cross"})
	if err != nil {
		log.Fatal(err)
	}
	defer watch.Close()

	snapshot := <-watch.Events()
	fmt.Printf("initial skyline: %d combinations (versions %v)\n\n", len(snapshot.Added), snapshot.Versions)

	for step := 0; step < 8; step++ {
		var kind, rel string
		var tup ksjq.Tuple
		if step%2 == 0 {
			kind, rel, tup = "product", "products", randProduct(rng)
		} else {
			kind, rel, tup = "shipping plan", "shipping", randPlan(rng)
		}
		if _, err := svc.Insert(rel, tup); err != nil {
			log.Fatal(err)
		}
		ev := <-watch.Events()
		fmt.Printf("insert %-13s → %2d added, %2d removed (event %d, versions %v)\n",
			kind, len(ev.Added), len(ev.Removed), ev.Seq, ev.Versions)
	}

	// Cross-check the watched answer against a forced recompute.
	fresh, err := svc.Query(ctx, ksjq.QueryRequest{R1: "products", R2: "shipping", K: 6, Join: "cross", NoCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfresh recompute agrees: %d combinations\n", len(fresh.Skyline))

	// Progressive evaluation as a pull-based iterator: prepare the query
	// once (the join structures are built a single time), then range over
	// the stream and break after five results — the break reaches the
	// engine as an early stop, skipping the remaining verification. The
	// deadline would likewise abort the run mid-verification — the shape
	// of a production request handler.
	rel1, _, err := svc.Relation("products")
	if err != nil {
		log.Fatal(err)
	}
	rel2, _, err := svc.Relation("shipping")
	if err != nil {
		log.Fatal(err)
	}
	q := ksjq.Query{R1: rel1, R2: rel2, Spec: ksjq.Spec{Cond: ksjq.Cross, Agg: ksjq.Sum}, K: 6}
	prepared, err := ksjq.Prepare(ctx, q, ksjq.PrepareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst five results, streamed from the prepared query:")
	count := 0
	for p, err := range prepared.Stream(ctx, ksjq.Options{}) {
		if err != nil {
			log.Fatal(err)
		}
		count++
		fmt.Printf("  #%d quality=%5.1f seller=%5.1f warranty=%5.1f days=%4.1f ins=%4.1f handling=%4.1f total=$%6.2f\n",
			count, p.Attrs[0], p.Attrs[1], p.Attrs[2], p.Attrs[3], p.Attrs[4], p.Attrs[5], p.Attrs[6])
		if count == 5 {
			break
		}
	}
}
