// Live: keeping a KSJQ answer current while new tuples arrive, and
// streaming results progressively under a deadline — the operational modes
// a deployed skyline-join service needs (cf. the update-heavy maintenance
// work the paper cites, and the progressiveness discussion of Sec. 6.1).
//
// A product × shipping-plan feed is queried once, then new products and
// plans arrive one by one; the maintainer updates the k-dominant skyline
// incrementally instead of recomputing. Finally the same query is
// re-evaluated progressively through the facade's Emit sink, printing
// results as they are confirmed. Run with:
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ksjq"
)

func randProduct(rng *rand.Rand) ksjq.Tuple {
	quality := rng.Float64() * 100
	price := 120 - quality + 25*rng.Float64()
	return ksjq.Tuple{Attrs: []float64{quality, rng.Float64() * 100, rng.Float64() * 100, price}}
}

func randPlan(rng *rand.Rand) ksjq.Tuple {
	days := 1 + rng.Float64()*13
	fee := 22 - 1.4*days + 4*rng.Float64()
	return ksjq.Tuple{Attrs: []float64{days, rng.Float64() * 10, rng.Float64() * 10, fee}}
}

func main() {
	rng := rand.New(rand.NewSource(99))
	products := make([]ksjq.Tuple, 120)
	for i := range products {
		products[i] = randProduct(rng)
	}
	plans := make([]ksjq.Tuple, 30)
	for i := range plans {
		plans[i] = randPlan(rng)
	}
	q := ksjq.Query{
		R1:   ksjq.MustNewRelation("products", 3, 1, products),
		R2:   ksjq.MustNewRelation("shipping", 3, 1, plans),
		Spec: ksjq.Spec{Cond: ksjq.Cross, Agg: ksjq.Sum},
		K:    6,
	}

	m, err := ksjq.NewMaintainer(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial skyline: %d combinations\n\n", m.Len())

	for step := 0; step < 8; step++ {
		var displaced, admitted int
		var kind string
		if step%2 == 0 {
			kind = "product"
			displaced, admitted, err = m.InsertLeft(randProduct(rng))
		} else {
			kind = "shipping plan"
			displaced, admitted, err = m.InsertRight(randPlan(rng))
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("insert %-13s → %2d displaced, %2d admitted, skyline now %3d\n",
			kind, displaced, admitted, m.Len())
	}

	// Cross-check the incremental answer against a fresh run.
	fresh, err := ksjq.Run(context.Background(), q, ksjq.Options{Algorithm: ksjq.Grouping})
	if err != nil {
		log.Fatal(err)
	}
	if len(fresh.Skyline) != m.Len() {
		log.Fatalf("incremental answer diverged: %d vs %d", m.Len(), len(fresh.Skyline))
	}
	fmt.Printf("\nfresh recompute agrees: %d combinations\n", len(fresh.Skyline))

	// Progressive evaluation under a deadline: results stream as soon as
	// they are confirmed; stop after the first five (early termination).
	// The context would also abort the run mid-verification if the
	// deadline expired first — the shape of a production request handler.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fmt.Println("\nfirst five results, streamed progressively:")
	count := 0
	if _, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Grouping, Emit: func(p ksjq.Pair) bool {
		count++
		fmt.Printf("  #%d quality=%5.1f seller=%5.1f warranty=%5.1f days=%4.1f ins=%4.1f handling=%4.1f total=$%6.2f\n",
			count, p.Attrs[0], p.Attrs[1], p.Attrs[2], p.Attrs[3], p.Attrs[4], p.Attrs[5], p.Attrs[6])
		return count < 5
	}}); err != nil {
		log.Fatal(err)
	}
}
