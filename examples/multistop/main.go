// Multistop: a cascaded KSJQ over three flight legs (Sec. 2.3's "more than
// two base relations can be handled by cascading the joins").
//
// A journey A → X → Y → B joins three relations: leg 1 keyed by its first
// hub X, leg 2 keyed by (X, Y), leg 3 keyed by Y. Cost is aggregated over
// all three legs; duration, rating rank and amenity rank stay local per
// leg. The example compares the naive cascade (join everything, then
// compute) against the pruned cascade (Theorem 4 generalized to chains),
// both through the ksjq facade. Run with:
//
//	go run ./examples/multistop
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ksjq"
)

const hubs = 6

func leg(rng *rand.Rand, name string, n int, middle bool) *ksjq.Relation {
	tuples := make([]ksjq.Tuple, n)
	for i := range tuples {
		dur := 1 + 3*rng.Float64()
		cost := 90 - 15*dur + 12*rng.NormFloat64() // faster legs cost more
		if cost < 20 {
			cost = 20 + rng.Float64()
		}
		tuples[i] = ksjq.Tuple{
			Key:   fmt.Sprintf("h%d", rng.Intn(hubs)),
			Attrs: []float64{dur, rng.Float64() * 100, rng.Float64() * 100, cost},
		}
		if middle {
			tuples[i].Key2 = fmt.Sprintf("h%d", rng.Intn(hubs))
		}
	}
	// Locals: duration, rating rank, amenity rank; aggregate: cost.
	return ksjq.MustNewRelation(name, 3, 1, tuples)
}

func main() {
	rng := rand.New(rand.NewSource(11))
	legs := []*ksjq.Relation{
		leg(rng, "A-to-X", 60, false),
		leg(rng, "X-to-Y", 80, true),
		leg(rng, "Y-to-B", 60, false),
	}
	q := ksjq.CascadeQuery{Relations: legs, K: 9} // 3+3+3 locals + 1 aggregate = 10 attrs
	fmt.Printf("three-leg journeys, %d joined attributes, k in [%d, %d]\n\n",
		q.Width(), q.KMin(), q.Width())

	// Chain joins can blow up multiplicatively, so cascaded evaluation is
	// deadline-bounded like every other entry point.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	naive, err := ksjq.RunCascade(ctx, q, ksjq.CascadeNaive)
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := ksjq.RunCascade(ctx, q, ksjq.CascadePruned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive:  joined %6d combinations, %d in the %d-dominant skyline, %v\n",
		naive.Stats.JoinedSize, len(naive.Skyline), q.K, naive.Stats.Total)
	fmt.Printf("pruned: pool   %6d combinations (pruned %v base tuples), %d skylines, %v\n\n",
		pruned.Stats.JoinedSize, pruned.Stats.PrunedPerRelation, len(pruned.Skyline), pruned.Stats.Total)

	if len(naive.Skyline) != len(pruned.Skyline) {
		log.Fatalf("strategies disagree: %d vs %d", len(naive.Skyline), len(pruned.Skyline))
	}
	for i, c := range pruned.Skyline {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(pruned.Skyline)-5)
			break
		}
		fmt.Printf("  legs %v: durations %.1f/%.1f/%.1fh total cost $%.0f\n",
			c.Indices, c.Attrs[0], c.Attrs[3], c.Attrs[6], c.Attrs[9])
	}
}
