// Products: a Cartesian-product KSJQ (Sec. 6.5) pairing products with
// shipping plans — the paper's "combination of product price and shipping
// costs" motivation.
//
// There is no join key: every product can ship with every plan, so the join
// is a Cartesian product and the optimized algorithms reduce to SS1 × SS2
// with no SN sets. Total price (product price + shipping fee) is the
// aggregate attribute; quality, seller rating, warranty rank, shipping
// days, insurance and handling ranks stay local. The example sweeps k over
// its admissible range, showing how k controls the answer-set size — the
// paper's motivation for k-dominance (an empty set at low k is the
// well-known flip side: with continuous attributes, k ≤ d−1 dominance
// eliminates aggressively). Run with:
//
//	go run ./examples/products
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/ksjq"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	// Products: locals [quality rank, seller rating rank, warranty rank],
	// aggregate [price]. Lower is better everywhere (ranks, not scores).
	products := make([]ksjq.Tuple, 200)
	for i := range products {
		quality := rng.Float64() * 100
		// Anti-correlated price: better products cost more.
		price := 120 - quality + 25*rng.Float64()
		products[i] = ksjq.Tuple{Attrs: []float64{
			quality, rng.Float64() * 100, rng.Float64() * 100, price,
		}}
	}
	r1 := ksjq.MustNewRelation("products", 3, 1, products)

	// Shipping plans: locals [days, insurance rank, handling rank],
	// aggregate [fee]; faster shipping costs more.
	plans := make([]ksjq.Tuple, 40)
	for i := range plans {
		days := 1 + rng.Float64()*13
		fee := 22 - 1.4*days + 4*rng.Float64()
		plans[i] = ksjq.Tuple{Attrs: []float64{
			days, rng.Float64() * 10, rng.Float64() * 10, fee,
		}}
	}
	r2 := ksjq.MustNewRelation("shipping", 3, 1, plans)

	// Joined schema: quality, seller, warranty, days, insurance, handling,
	// total price — 7 attributes, admissible k from 5 to 7.
	q := ksjq.Query{R1: r1, R2: r2, Spec: ksjq.Spec{Cond: ksjq.Cross, Agg: ksjq.Sum}}
	fmt.Printf("%d products × %d plans = %d combinations, %d joined attributes\n\n",
		r1.Len(), r2.Len(), r1.Len()*r2.Len(), q.Width())

	for k := q.KMin(); k <= q.Width(); k++ {
		q.K = k
		res, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Grouping})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if k == q.Width() {
			note = " (= full skyline)"
		}
		fmt.Printf("k=%d: %5d combinations in the k-dominant skyline%s\n", k, len(res.Skyline), note)
	}

	// Detail at a mid k: the Cartesian fast path and a few winners.
	q.K = 6
	res, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Grouping})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk=6 details — Cartesian fast path: |SS1| × |SS2| = %d × %d, SN sets empty (%d/%d), %v total\n",
		res.Stats.SS1, res.Stats.SS2, res.Stats.SN1, res.Stats.SN2, res.Stats.Total)
	for i, p := range res.Skyline {
		if i >= 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  quality=%5.1f seller=%5.1f warranty=%5.1f days=%4.1f ins=%4.1f handling=%4.1f total=$%6.2f\n",
			p.Attrs[0], p.Attrs[1], p.Attrs[2], p.Attrs[3], p.Attrs[4], p.Attrs[5], p.Attrs[6])
	}

	// The naive baseline returns the same answer, slower.
	naive, err := ksjq.Run(ctx, q, ksjq.Options{Algorithm: ksjq.Naive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive baseline agrees: %d combinations (grouping %v vs naive %v)\n",
		len(naive.Skyline), res.Stats.Total, naive.Stats.Total)
}
