// Quickstart: the paper's own flight example (Tables 1-3) end to end.
//
// Two relations of flights — city A to stop-overs, stop-overs to city B —
// are joined on the intermediate city, and the 7-dominant skyline over the
// 8 combined attributes is computed with the grouping algorithm through
// the public ksjq facade. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ksjq"
)

func main() {
	// Flights from city A: join key is the destination (stop-over) city.
	// Attributes (lower is better): cost, duration, rating, amenities.
	f1 := ksjq.MustNewRelation("flights-from-A", 4, 0, []ksjq.Tuple{
		{Key: "C", Attrs: []float64{448, 3.2, 40, 40}},
		{Key: "C", Attrs: []float64{468, 4.2, 50, 38}},
		{Key: "D", Attrs: []float64{456, 3.8, 60, 34}},
		{Key: "D", Attrs: []float64{460, 4.0, 70, 32}},
		{Key: "E", Attrs: []float64{450, 3.4, 30, 42}},
		{Key: "F", Attrs: []float64{452, 3.6, 20, 36}},
		{Key: "G", Attrs: []float64{472, 4.6, 80, 46}},
		{Key: "H", Attrs: []float64{451, 3.7, 20, 37}},
		{Key: "E", Attrs: []float64{451, 3.7, 40, 37}},
	})
	// Flights to city B: join key is the source city.
	f2 := ksjq.MustNewRelation("flights-to-B", 4, 0, []ksjq.Tuple{
		{Key: "D", Attrs: []float64{348, 2.2, 40, 36}},
		{Key: "D", Attrs: []float64{368, 3.2, 50, 34}},
		{Key: "C", Attrs: []float64{356, 2.8, 60, 30}},
		{Key: "C", Attrs: []float64{360, 3.0, 70, 28}},
		{Key: "E", Attrs: []float64{350, 2.4, 30, 38}},
		{Key: "F", Attrs: []float64{352, 2.6, 20, 32}},
		{Key: "G", Attrs: []float64{372, 3.6, 80, 42}},
		{Key: "H", Attrs: []float64{350, 2.4, 35, 39}},
	})

	// A flight combination must beat another on at least k=7 of the 8
	// attributes to dominate it.
	q := ksjq.Query{R1: f1, R2: f2, Spec: ksjq.Spec{Cond: ksjq.Equality}, K: 7}
	res, err := ksjq.Run(context.Background(), q, ksjq.Options{Algorithm: ksjq.Grouping})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-dominant skyline of %s ⋈ %s (%d combinations):\n",
		q.K, f1.Name, f2.Name, len(res.Skyline))
	for _, p := range res.Skyline {
		leg1, leg2 := f1.Tuple(p.Left), f2.Tuple(p.Right)
		fmt.Printf("  via %s: leg1 %v + leg2 %v\n", leg1.Key, leg1.Attrs, leg2.Attrs)
	}
	fmt.Printf("categorized R1 as SS/SN/NN = %d/%d/%d in %v total\n",
		res.Stats.SS1, res.Stats.SN1, res.Stats.NN1, res.Stats.Total)

	// Prepared queries amortize the expensive per-pair state (join index,
	// probe orders): build it once, then evaluate at any k — repeating an
	// identical query is answered from the prepared memo.
	prepared, err := ksjq.Prepare(context.Background(), q, ksjq.PrepareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for k := q.K; k <= q.Width(); k++ {
		res, err := prepared.Run(context.Background(), ksjq.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d → %d combinations survive\n", k, len(res.Skyline))
	}

	// Streams pull results one at a time; breaking out of the loop stops
	// the engine early instead of computing the rest of the answer.
	fmt.Println("first two results, streamed:")
	n := 0
	for p, err := range prepared.Stream(context.Background(), ksjq.Options{}) {
		if err != nil {
			log.Fatal(err)
		}
		n++
		fmt.Printf("  via %s: %v\n", f1.Tuple(p.Left).Key, p.Attrs)
		if n == 2 {
			break
		}
	}
}
