// Tuning: choosing k from a desired answer-set size (Problems 3 and 4).
//
// A user rarely knows a good k up front; she knows how many options she is
// willing to review. This example asks, over a synthetic anti-correlated
// join: "what is the smallest k returning at least δ itineraries?" for a
// range of budgets, comparing the naive, range-based and binary-search
// algorithms, then shows the at-most-δ variant. Run with:
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/ksjq"
)

func main() {
	ctx := context.Background()
	r1 := datagen.MustGenerate(datagen.Config{
		Name: "R1", N: 400, Local: 5, Groups: 10, Dist: datagen.AntiCorrelated, Seed: 1,
	})
	r2 := datagen.MustGenerate(datagen.Config{
		Name: "R2", N: 400, Local: 5, Groups: 10, Dist: datagen.AntiCorrelated, Seed: 2,
	})
	q := ksjq.Query{R1: r1, R2: r2, Spec: ksjq.Spec{Cond: ksjq.Equality}}
	joined, err := ksjq.CountPairs(r1, r2, q.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined relation: %d tuples, %d skyline attributes, admissible k: %d..%d\n\n",
		joined, q.Width(), q.KMin(), q.Width())

	fmt.Println("Problem 3 — smallest k with at least δ skylines:")
	findAlgs := []ksjq.FindKAlgorithm{ksjq.FindKBinary, ksjq.FindKRange, ksjq.FindKNaive}
	for _, delta := range []int{10, 100, 1000, 10000} {
		fmt.Printf("  δ=%-6d", delta)
		for _, alg := range findAlgs {
			res, err := ksjq.FindK(ctx, q, delta, alg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s: k=%-2d (%d skyline computations, %8v)",
				alg, res.K, res.Stats.SkylinesComputed, res.Stats.Total)
		}
		fmt.Println()
	}

	fmt.Println("\nProblem 4 — largest k with at most δ skylines (binary search):")
	for _, delta := range []int{10, 100, 1000} {
		res, err := ksjq.FindKAtMost(ctx, q, delta, ksjq.FindKBinary)
		if err != nil {
			log.Fatal(err)
		}
		probe := q
		probe.K = res.K
		check, err := ksjq.Run(ctx, probe, ksjq.Options{Algorithm: ksjq.Grouping})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  δ=%-6d k=%d (that k yields %d skylines)\n", delta, res.K, len(check.Skyline))
	}
}
