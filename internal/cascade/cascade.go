// Package cascade extends KSJQ to more than two base relations, the case
// the paper handles "by cascading the joins" (Sec. 2.3). A chain
// R1 ⋈ R2 ⋈ … ⋈ Rm joins on equality keys left to right: R1.Key matches
// R2.Key, R2.Key2 matches R3.Key, and so on (middle relations carry two
// join keys). Each relation contributes its local attributes; the a
// aggregate attributes are folded across all m relations with a monotonic
// aggregator.
//
// Two evaluation strategies are provided:
//
//   - Naive folds the joins into one materialized relation and runs the
//     Two-Scan k-dominant skyline over it (the cascaded analogue of
//     Algorithm 1).
//   - Pruned generalizes Theorem 4 to chains, with one subtlety the
//     two-relation algorithms also respect: a k′-dominated tuple cannot
//     appear in a *result* (its same-group dominator joins identically and
//     wins ≥ k′i = k − Σ_{j≠i} l_j positions plus ties elsewhere), but —
//     k-dominance not being transitive — it may still be needed as a
//     *dominator* of other combinations. Candidates are therefore folded
//     over the k′-survivors, while the dominator pool is folded over a set
//     pruned only by full in-group dominance (full dominance is
//     transitive, so a fully-dominated tuple's role as dominator is always
//     inherited by its replacement).
package cascade

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/join"
	"repro/internal/kdominant"
	skyline2 "repro/internal/skyline"
)

// Combo is one joined result: the tuple index in each base relation plus
// the combined attribute vector (all locals left to right, then the folded
// aggregates).
type Combo struct {
	Indices []int
	Attrs   []float64
}

// Stats mirrors the two-relation phase breakdown.
type Stats struct {
	PruneTime time.Duration
	JoinTime  time.Duration
	SkyTime   time.Duration
	Total     time.Duration
	// PrunedPerRelation counts base tuples removed by the Theorem 4
	// generalization (Pruned strategy only).
	PrunedPerRelation []int
	// JoinedSize is the number of combinations materialized.
	JoinedSize int
}

// Result is the answer to a cascaded KSJQ.
type Result struct {
	Skyline []Combo
	Stats   Stats
}

// Strategy selects the evaluation plan.
type Strategy int

const (
	// Naive joins everything, then computes the k-dominant skyline.
	Naive Strategy = iota
	// Pruned removes group-dominated base tuples before joining.
	Pruned
)

// Validation errors.
var (
	ErrTooFewRelations = errors.New("cascade: need at least two relations")
	ErrBadK            = errors.New("cascade: k out of range")
)

// Query is a cascaded KSJQ instance.
type Query struct {
	// Relations in join order. All must share the same aggregate count.
	Relations []*dataset.Relation
	// K is the k-dominance parameter over Σ l_i + a joined attributes.
	// Must exceed max_i(d_i' ) where d_i' = Σ_{j≠i} l_j + a is the most any
	// single relation can be "carried" — equivalently, every relation must
	// be forced to contribute at least one attribute, mirroring the
	// two-relation restriction of Sec. 3.
	K int
	// Agg folds aggregate attributes; zero value means Sum. The Pruned
	// strategy requires a strictly monotonic aggregator.
	Agg join.Aggregator
}

// Width returns the number of skyline attributes in the joined relation.
func (q Query) Width() int {
	w := 0
	for _, r := range q.Relations {
		w += r.Local
	}
	if len(q.Relations) > 0 {
		w += q.Relations[0].Agg
	}
	return w
}

// KMin returns the smallest admissible k: every relation must contribute
// at least one attribute, so k must exceed the width reachable without the
// least-contributing relation.
func (q Query) KMin() int {
	maxCarried := 0
	for i := range q.Relations {
		carried := q.Width() - q.Relations[i].Local
		if carried > maxCarried {
			maxCarried = carried
		}
	}
	return maxCarried + 1
}

func (q Query) aggregator() join.Aggregator {
	if q.Agg.Fn == nil {
		return join.Sum
	}
	return q.Agg
}

// Validate checks the chain invariants.
func (q Query) Validate(strategy Strategy) error {
	if len(q.Relations) < 2 {
		return ErrTooFewRelations
	}
	a := q.Relations[0].Agg
	for _, r := range q.Relations {
		if r == nil {
			return errors.New("cascade: nil relation")
		}
		if err := r.Validate(); err != nil {
			return err
		}
		if r.Agg != a {
			return fmt.Errorf("%w: %s has a=%d, want %d", join.ErrSchemaMismatch, r.Name, r.Agg, a)
		}
	}
	if q.K < q.KMin() || q.K > q.Width() {
		return fmt.Errorf("%w: k=%d, admissible range [%d, %d]", ErrBadK, q.K, q.KMin(), q.Width())
	}
	if strategy == Pruned && a > 0 && !q.aggregator().Strict {
		return errors.New("cascade: pruned strategy requires a strictly monotonic aggregator")
	}
	return nil
}

// cancelEvery is the batch size between context checks inside the fold
// and verification loops, mirroring the two-relation engine's bound: a
// cancelled context is noticed after at most this many combinations.
const cancelEvery = 256

// Run evaluates the cascaded query. The context bounds the whole
// evaluation — it is polled between chain steps and every cancelEvery
// combinations inside join folding and skyline verification, so a
// cancelled deadline aborts promptly with ctx.Err() (the same contract as
// core.Exec, closing the last public entry point that lacked one).
func Run(ctx context.Context, q Query, strategy Strategy) (*Result, error) {
	if err := q.Validate(strategy); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	st := Stats{PrunedPerRelation: make([]int, len(q.Relations))}

	var skyline []Combo
	if strategy == Pruned {
		// Candidate relations: k′-survivors. Dominator pool: tuples not
		// fully dominated within their group.
		candKeep := make([][]int, len(q.Relations))
		poolKeep := make([][]int, len(q.Relations))
		t0 := time.Now()
		for i, r := range q.Relations {
			candKeep[i] = survivors(q, i, r, kPrime(q, i))
			poolKeep[i] = survivors(q, i, r, r.D())
			st.PrunedPerRelation[i] = r.Len() - len(candKeep[i])
		}
		st.PruneTime = time.Since(t0)

		t0 = time.Now()
		pool, err := fold(ctx, q, poolKeep)
		if err != nil {
			return nil, err
		}
		candidates, err := fold(ctx, q, candKeep)
		if err != nil {
			return nil, err
		}
		st.JoinTime = time.Since(t0)
		st.JoinedSize = len(pool)

		// Any dominated candidate is dominated by a full-skyline member of
		// the pool (the skyline-verify lemma), so checking against the
		// pool's classic skyline suffices.
		t0 = time.Now()
		points := make([][]float64, len(pool))
		for i := range pool {
			points[i] = pool[i].Attrs
		}
		sky := skyline2.SFS(points)
		for n, c := range candidates {
			if n%cancelEvery == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			dominated := false
			for _, s := range sky {
				if sameIndices(pool[s].Indices, c.Indices) {
					continue
				}
				if dom.KDominates(pool[s].Attrs, c.Attrs, q.K) {
					dominated = true
					break
				}
			}
			if !dominated {
				skyline = append(skyline, c)
			}
		}
		st.SkyTime = time.Since(t0)
	} else {
		keep := make([][]int, len(q.Relations))
		for i, r := range q.Relations {
			keep[i] = all(r.Len())
		}
		t0 := time.Now()
		combos, err := fold(ctx, q, keep)
		if err != nil {
			return nil, err
		}
		st.JoinTime = time.Since(t0)
		st.JoinedSize = len(combos)

		t0 = time.Now()
		points := make([][]float64, len(combos))
		for i := range combos {
			points[i] = combos[i].Attrs
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, idx := range kdominant.TwoScan(points, q.K) {
			skyline = append(skyline, combos[idx])
		}
		st.SkyTime = time.Since(t0)
	}

	sort.Slice(skyline, func(i, j int) bool {
		a, b := skyline[i].Indices, skyline[j].Indices
		for t := range a {
			if a[t] != b[t] {
				return a[t] < b[t]
			}
		}
		return false
	})
	st.Total = time.Since(start)
	return &Result{Skyline: skyline, Stats: st}, nil
}

// kPrime returns the Theorem 4 categorization threshold for relation i:
// k′i = k − Σ_{j≠i} l_j over its base attributes.
func kPrime(q Query, i int) int {
	kp := q.K
	for j, other := range q.Relations {
		if j != i {
			kp -= other.Local
		}
	}
	return kp
}

// survivors returns the indices of relation i's tuples that are NOT
// kp-dominated within their join group. When kp < 1 no pruning is possible
// and all tuples survive.
func survivors(q Query, i int, r *dataset.Relation, kp int) []int {
	if kp < 1 {
		return all(r.Len())
	}
	pts := make([][]float64, r.Len())
	for t := range pts {
		pts[t] = r.Attrs(t)
	}
	groups := make(map[[2]int32][]int)
	for t := 0; t < r.Len(); t++ {
		key := groupKey(q, i, r, t)
		groups[key] = append(groups[key], t)
	}
	var out []int
	for _, idx := range groups {
		out = append(out, kdominant.TwoScanSubset(pts, idx, kp)...)
	}
	sort.Ints(out)
	return out
}

// groupKey returns the join group of tuple t within its chain position:
// the first relation groups on Key, middle relations on (Key, Key2), the
// last on Key. Two tuples in the same group join with exactly the same
// partners. Keys are compared as interned symbols — both columns live in
// the relation's own table, so equal symbols mean equal strings.
func groupKey(q Query, i int, r *dataset.Relation, t int) [2]int32 {
	switch {
	case i == 0, i == len(q.Relations)-1:
		return [2]int32{r.KeyID(t), -1}
	default:
		return [2]int32{r.KeyID(t), r.Key2ID(t)}
	}
}

// fold materializes the chain join over the surviving tuples left to
// right. R1 joins R2 on R1.Key = R2.Key; thereafter the accumulated
// combination's out-key is the latest relation's Key2 (middle) and joins
// the next relation's Key. The context is polled every cancelEvery
// accumulated combinations — chain joins can blow up multiplicatively, so
// the fold itself must be cancellable, not just the phases around it.
func fold(ctx context.Context, q Query, keep [][]int) ([]Combo, error) {
	agg := q.aggregator()
	a := q.Relations[0].Agg
	r0 := q.Relations[0]

	// outKey chains the join left to right as interned symbols: it is a
	// symbol of the *previous* relation's table, and each step's index is
	// built with that relation as the probe side, so chaining costs two
	// array lookups per probe — no string hashing along the chain.
	type partial struct {
		indices []int
		locals  []float64
		aggs    []float64
		outKey  int32
	}
	cur := make([]partial, 0, len(keep[0]))
	for _, t := range keep[0] {
		attrs := r0.Attrs(t)
		cur = append(cur, partial{
			indices: []int{t},
			locals:  append([]float64(nil), attrs[:r0.Local]...),
			aggs:    append([]float64(nil), attrs[r0.Local:]...),
			outKey:  r0.KeyID(t),
		})
	}
	for ri := 1; ri < len(q.Relations); ri++ {
		prev := q.Relations[ri-1]
		r := q.Relations[ri]
		last := ri == len(q.Relations)-1
		ix := join.NewIndex(prev, r, keep[ri], join.Equality)
		next := make([]partial, 0, len(cur))
		// sincePoll counts work units (outer tuples probed + combinations
		// appended) since the last context check, so the poll interval
		// holds whether outer tuples fan out to many partners or to none.
		sincePoll := 0
		for _, p := range cur {
			sincePoll++
			if sincePoll >= cancelEvery {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sincePoll = 0
			}
			for _, t := range ix.PartnersSym(prev, p.outKey) {
				sincePoll++
				attrs := r.Attrs(t)
				np := partial{
					indices: append(append([]int(nil), p.indices...), t),
					locals:  append(append([]float64(nil), p.locals...), attrs[:r.Local]...),
					aggs:    make([]float64, a),
				}
				for j := 0; j < a; j++ {
					np.aggs[j] = agg.Fn(p.aggs[j], attrs[r.Local+j])
				}
				if !last {
					np.outKey = r.Key2ID(t)
				}
				next = append(next, np)
			}
		}
		cur = next
	}
	combos := make([]Combo, len(cur))
	for i, p := range cur {
		combos[i] = Combo{Indices: p.indices, Attrs: append(p.locals, p.aggs...)}
	}
	return combos, nil
}

// sameIndices reports whether two combos reference the same base tuples.
func sameIndices(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Dominates re-exports the joined-vector k-dominance test for callers that
// post-process combos.
func Dominates(a, b []float64, k int) bool { return dom.KDominates(a, b, k) }
