package cascade

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// randChainRelation builds a relation for chain position i of m: first and
// last have one key, middle relations two.
func randChainRelation(rng *rand.Rand, name string, n, local, agg, groups int, pos, m int) *dataset.Relation {
	tuples := make([]dataset.Tuple, n)
	for t := range tuples {
		attrs := make([]float64, local+agg)
		for j := range attrs {
			attrs[j] = float64(rng.Intn(5))
		}
		tuples[t] = dataset.Tuple{
			Key:   fmt.Sprintf("g%d", rng.Intn(groups)),
			Key2:  fmt.Sprintf("g%d", rng.Intn(groups)),
			Attrs: attrs,
		}
	}
	return dataset.MustNew(name, local, agg, tuples)
}

func comboKeys(res *Result) []string {
	out := make([]string, len(res.Skyline))
	for i, c := range res.Skyline {
		out[i] = fmt.Sprint(c.Indices)
	}
	return out
}

func TestCascadeTwoRelationsMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 30; trial++ {
		agg := rng.Intn(2)
		local := 1 + rng.Intn(3)
		r1 := randChainRelation(rng, "r1", 3+rng.Intn(20), local, agg, 3, 0, 2)
		r2 := randChainRelation(rng, "r2", 3+rng.Intn(20), local, agg, 3, 1, 2)
		cq := Query{Relations: []*dataset.Relation{r1, r2}}
		coreQ := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		for k := cq.KMin(); k <= cq.Width(); k++ {
			if k < coreQ.KMin() {
				continue
			}
			cq.K, coreQ.K = k, k
			want, err := core.Run(coreQ, core.Naive)
			if err != nil {
				t.Fatal(err)
			}
			for _, strategy := range []Strategy{Naive, Pruned} {
				got, err := Run(context.Background(), cq, strategy)
				if err != nil {
					t.Fatalf("trial %d k=%d strategy %d: %v", trial, k, strategy, err)
				}
				wantKeys := make([]string, len(want.Skyline))
				for i, p := range want.Skyline {
					wantKeys[i] = fmt.Sprint([]int{p.Left, p.Right})
				}
				if !reflect.DeepEqual(comboKeys(got), wantKeys) {
					t.Fatalf("trial %d k=%d strategy %d: cascade %v, core %v", trial, k, strategy, comboKeys(got), wantKeys)
				}
			}
		}
	}
}

func TestCascadePrunedMatchesNaiveThreeRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 25; trial++ {
		agg := rng.Intn(2)
		m := 3 + rng.Intn(2) // 3 or 4 relations
		rels := make([]*dataset.Relation, m)
		for i := range rels {
			rels[i] = randChainRelation(rng, fmt.Sprintf("r%d", i), 3+rng.Intn(10), 1+rng.Intn(2), agg, 2, i, m)
		}
		q := Query{Relations: rels}
		if q.KMin() > q.Width() {
			continue
		}
		for k := q.KMin(); k <= q.Width(); k++ {
			q.K = k
			naive, err := Run(context.Background(), q, Naive)
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := Run(context.Background(), q, Pruned)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(comboKeys(pruned), comboKeys(naive)) {
				t.Fatalf("trial %d m=%d k=%d agg=%d: pruned %v, naive %v",
					trial, m, k, agg, comboKeys(pruned), comboKeys(naive))
			}
		}
	}
}

func TestCascadePruningActuallyPrunes(t *testing.T) {
	// One group, a clearly dominated tuple in the middle relation.
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{
		{Key: "a", Attrs: []float64{1, 1}},
	})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{
		{Key: "a", Key2: "b", Attrs: []float64{1, 1}},
		{Key: "a", Key2: "b", Attrs: []float64{5, 5}}, // dominated in-group
	})
	r3 := dataset.MustNew("r3", 2, 0, []dataset.Tuple{
		{Key: "b", Attrs: []float64{1, 1}},
	})
	q := Query{Relations: []*dataset.Relation{r1, r2, r3}, K: 5}
	res, err := Run(context.Background(), q, Pruned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedPerRelation[1] != 1 {
		t.Errorf("pruned %v tuples in r2, want 1", res.Stats.PrunedPerRelation[1])
	}
	if res.Stats.JoinedSize != 1 {
		t.Errorf("joined size %d, want 1 (pruned before join)", res.Stats.JoinedSize)
	}
	if len(res.Skyline) != 1 || !reflect.DeepEqual(res.Skyline[0].Indices, []int{0, 0, 0}) {
		t.Errorf("skyline = %+v, want the single undominated chain", res.Skyline)
	}
}

func TestCascadeKey2Routing(t *testing.T) {
	// The middle relation routes to different third-relation groups via
	// Key2; only matching chains may form.
	r1 := dataset.MustNew("r1", 1, 0, []dataset.Tuple{{Key: "x", Attrs: []float64{1}}})
	r2 := dataset.MustNew("r2", 1, 0, []dataset.Tuple{
		{Key: "x", Key2: "p", Attrs: []float64{2}},
		{Key: "x", Key2: "q", Attrs: []float64{3}},
	})
	r3 := dataset.MustNew("r3", 1, 0, []dataset.Tuple{
		{Key: "p", Attrs: []float64{4}},
		{Key: "r", Attrs: []float64{5}},
	})
	q := Query{Relations: []*dataset.Relation{r1, r2, r3}, K: 3}
	res, err := Run(context.Background(), q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.JoinedSize != 1 {
		t.Fatalf("joined size %d, want 1 (only x→p→p chain exists)", res.Stats.JoinedSize)
	}
	if !reflect.DeepEqual(res.Skyline[0].Indices, []int{0, 0, 0}) {
		t.Errorf("skyline = %+v", res.Skyline)
	}
}

func TestCascadeAggregateFold(t *testing.T) {
	// Aggregates fold across all three relations.
	mk := func(name, key, key2 string, local, aggVal float64) *dataset.Relation {
		return dataset.MustNew(name, 1, 1, []dataset.Tuple{
			{Key: key, Key2: key2, Attrs: []float64{local, aggVal}},
		})
	}
	q := Query{
		Relations: []*dataset.Relation{
			mk("r1", "a", "", 1, 10),
			mk("r2", "a", "b", 2, 20),
			mk("r3", "b", "", 3, 30),
		},
		K: 4,
	}
	res, err := Run(context.Background(), q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 60}
	if !reflect.DeepEqual(res.Skyline[0].Attrs, want) {
		t.Errorf("attrs = %v, want %v", res.Skyline[0].Attrs, want)
	}
}

func TestCascadeValidation(t *testing.T) {
	r := dataset.MustNew("r", 2, 0, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	if _, err := Run(context.Background(), Query{Relations: []*dataset.Relation{r}, K: 2}, Naive); !errors.Is(err, ErrTooFewRelations) {
		t.Errorf("single relation: %v, want ErrTooFewRelations", err)
	}
	q := Query{Relations: []*dataset.Relation{r, r.Clone()}, K: 1}
	if _, err := Run(context.Background(), q, Naive); !errors.Is(err, ErrBadK) {
		t.Errorf("low k: %v, want ErrBadK", err)
	}
	q.K = 99
	if _, err := Run(context.Background(), q, Naive); !errors.Is(err, ErrBadK) {
		t.Errorf("high k: %v, want ErrBadK", err)
	}
	rAgg := dataset.MustNew("ra", 1, 1, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	q = Query{Relations: []*dataset.Relation{r, rAgg}, K: 3}
	if _, err := Run(context.Background(), q, Naive); !errors.Is(err, join.ErrSchemaMismatch) {
		t.Errorf("schema mismatch: %v, want ErrSchemaMismatch", err)
	}
	q = Query{Relations: []*dataset.Relation{rAgg, rAgg.Clone()}, K: 2, Agg: join.Max}
	if _, err := Run(context.Background(), q, Pruned); err == nil {
		t.Error("pruned strategy with non-strict aggregator accepted")
	}
}

func TestCascadeKMinForcesEveryRelation(t *testing.T) {
	// Three relations with 2 locals each: k must exceed 4 so no relation
	// can be skipped entirely.
	mk := func(name string) *dataset.Relation {
		return dataset.MustNew(name, 2, 0, []dataset.Tuple{{Key: "a", Key2: "a", Attrs: []float64{1, 2}}})
	}
	q := Query{Relations: []*dataset.Relation{mk("r1"), mk("r2"), mk("r3")}}
	if q.KMin() != 5 {
		t.Errorf("KMin = %d, want 5", q.KMin())
	}
	if q.Width() != 6 {
		t.Errorf("Width = %d, want 6", q.Width())
	}
}

// TestRunCancelled pins the context contract the PR 2 unified path
// established for every other entry point: an expired deadline aborts the
// cascaded evaluation with ctx.Err() instead of returning an answer.
func TestRunCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := Query{
		Relations: []*dataset.Relation{
			randChainRelation(rng, "r1", 40, 2, 1, 3, 0, 3),
			randChainRelation(rng, "r2", 40, 2, 1, 3, 1, 3),
			randChainRelation(rng, "r3", 40, 2, 1, 3, 2, 3),
		},
		K: 6,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strategy := range []Strategy{Naive, Pruned} {
		if _, err := Run(ctx, q, strategy); !errors.Is(err, context.Canceled) {
			t.Errorf("strategy %v: err = %v, want context.Canceled", strategy, err)
		}
	}
	// A nil context behaves as Background: the call still succeeds.
	var nilCtx context.Context
	if _, err := Run(nilCtx, q, Naive); err != nil {
		t.Errorf("nil context rejected: %v", err)
	}
}
