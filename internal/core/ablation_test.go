package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/join"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// on-the-fly target-set pruning inside the checker, and the sum-ordered
// probe sequence. Run with:
//
//	go test ./internal/core -bench Ablation -benchmem

// ablationQuery is a mid-size instance where verification dominates.
func ablationQuery() Query {
	rng := rand.New(rand.NewSource(601))
	r1 := randRelation(rng, "r1", 250, 5, 0, 10, 1000)
	r2 := randRelation(rng, "r2", 250, 5, 0, 10, 1000)
	return Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 9}
}

// runGroupingWithPruning mirrors runGrouping but lets the benchmark toggle
// the checker's target-set skip.
func runGroupingWithPruning(q Query, prune bool) int {
	st := Stats{}
	e := newEngine(q, &st)
	e.noTargetPrune = !prune
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	a1 := targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())
	count := len(e.pairs(c1.SS, c2.SS))
	for _, cell := range []struct {
		cand  [][]int
		check [][]int
	}{
		{[][]int{c1.SS, c2.SN}, [][]int{a1, all2}},
		{[][]int{c1.SN, c2.SN}, [][]int{all1, all2}},
	} {
		chk := e.newChecker(cell.check[0], cell.check[1])
		for _, p := range e.pairs(cell.cand[0], cell.cand[1]) {
			if !chk.dominates(p.Attrs) {
				count++
			}
		}
	}
	return count
}

func TestAblationTogglePreservesAnswer(t *testing.T) {
	q := ablationQuery()
	with := runGroupingWithPruning(q, true)
	without := runGroupingWithPruning(q, false)
	if with != without {
		t.Fatalf("target pruning changed the answer: %d vs %d", with, without)
	}
	if with == 0 {
		t.Fatal("ablation instance produced no skylines; benchmark would be vacuous")
	}
}

func BenchmarkAblationTargetPruningOn(b *testing.B) {
	q := ablationQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runGroupingWithPruning(q, true)
	}
}

func BenchmarkAblationTargetPruningOff(b *testing.B) {
	q := ablationQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runGroupingWithPruning(q, false)
	}
}

// BenchmarkAblationProbeOrder quantifies the SFS-style sum ordering of the
// checker's probe lists by comparing against identity order.
func BenchmarkAblationProbeOrder(b *testing.B) {
	q := ablationQuery()
	st := Stats{}
	e := newEngine(q, &st)
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	candidates := e.pairs(c1.SN, c2.SN)
	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())

	b.Run("sum-ordered", func(b *testing.B) {
		chk := e.newChecker(all1, all2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range candidates {
				chk.dominates(p.Attrs)
			}
		}
	})
	b.Run("identity-order", func(b *testing.B) {
		chk := &checker{e: e, left: all1, ix: join.NewIndex(q.R1, q.R2, all2, e.cond)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range candidates {
				chk.dominates(p.Attrs)
			}
		}
	})
}

func BenchmarkMembershipProbe(b *testing.B) {
	q := ablationQuery()
	g2 := q.R2.GroupIndex()
	var pair [2]int
	for i := 0; i < q.R1.Len(); i++ {
		if js := g2[q.R1.Key(i)]; len(js) > 0 {
			pair = [2]int{i, js[0]}
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IsSkylineMember(q, pair[0], pair[1]); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint(pair)
}
