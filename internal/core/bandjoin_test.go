package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/join"
)

// TestBandJoinFlightConnections encodes Sec. 6.6's motivating scenario
// exactly: the first leg's arrival time (Band) must precede the second
// leg's departure time. It checks both the join semantics and the grouping
// algorithm's prefix-group categorization against a brute-force oracle.
func TestBandJoinFlightConnections(t *testing.T) {
	// Legs with arrival times; attrs are (cost, duration).
	r1 := dataset.MustNew("leg1", 2, 0, []dataset.Tuple{
		{Band: 10.0, Attrs: []float64{100, 2}}, // arrives 10:00
		{Band: 11.0, Attrs: []float64{80, 1.5}},
		{Band: 12.0, Attrs: []float64{60, 1}},
		{Band: 10.0, Attrs: []float64{90, 2.5}},
	})
	r2 := dataset.MustNew("leg2", 2, 0, []dataset.Tuple{
		{Band: 10.5, Attrs: []float64{70, 1}}, // departs 10:30
		{Band: 11.5, Attrs: []float64{50, 1.2}},
		{Band: 13.0, Attrs: []float64{40, 2}},
	})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.BandLess}, K: 3}

	// Oracle: enumerate feasible connections and filter by k-dominance.
	type pair struct {
		i, j  int
		attrs []float64
	}
	var feasible []pair
	for i := 0; i < r1.Len(); i++ {
		for j := 0; j < r2.Len(); j++ {
			if r1.Band(i) < r2.Band(j) {
				attrs := append(append([]float64(nil), r1.Attrs(i)...), r2.Attrs(j)...)
				feasible = append(feasible, pair{i, j, attrs})
			}
		}
	}
	want := map[[2]int]bool{}
	for _, p := range feasible {
		dominated := false
		for _, o := range feasible {
			if (o.i != p.i || o.j != p.j) && dom.KDominates(o.attrs, p.attrs, q.K) {
				dominated = true
				break
			}
		}
		if !dominated {
			want[[2]int{p.i, p.j}] = true
		}
	}

	for _, alg := range Algorithms {
		res, err := Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := map[[2]int]bool{}
		for _, p := range res.Skyline {
			got[[2]int{p.Left, p.Right}] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d skylines, oracle has %d (%v vs %v)", alg, len(got), len(want), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%v: missing connection %v", alg, k)
			}
		}
	}
}

// TestBandJoinGroupSemantics verifies the Sec. 6.6 covering rule directly:
// under R1.band < R2.band, an earlier-arriving leg covers a later one (it
// can join every partner the later one can), and on the right side the
// relation flips.
func TestBandJoinGroupSemantics(t *testing.T) {
	// Rows: 0 = early (band 9), 1 = late (band 15), 2 = tie with early.
	r := dataset.MustNew("legs", 1, 0, []dataset.Tuple{
		{Band: 9, Attrs: []float64{0}},
		{Band: 15, Attrs: []float64{0}},
		{Band: 9, Attrs: []float64{0}},
	})
	early, late, tie := 0, 1, 2
	if !covers(join.BandLess, Left, r, early, late) {
		t.Error("earlier arrival must cover later arrival on the left side")
	}
	if covers(join.BandLess, Left, r, late, early) {
		t.Error("later arrival must not cover earlier arrival on the left side")
	}
	if !covers(join.BandLess, Right, r, late, early) {
		t.Error("later departure must cover earlier departure on the right side")
	}
	if covers(join.BandLess, Right, r, early, late) {
		t.Error("earlier departure must not cover later departure on the right side")
	}
	// Greater-than conditions mirror the rule.
	if !covers(join.BandGreaterEq, Left, r, late, early) || !covers(join.BandGreaterEq, Right, r, early, late) {
		t.Error("greater-or-equal condition has mirrored covering")
	}
	// Ties cover in both directions.
	if !covers(join.BandLess, Left, r, early, tie) || !covers(join.BandLess, Left, r, tie, early) {
		t.Error("equal bands must cover each other")
	}
}

// TestBandJoinSNExpansion checks the paper's note that the non-equality
// modification may only cost efficiency, never correctness: a tuple
// classified SN because only cross-prefix dominators exist is still
// verified against the full relation and removed if an actual joined
// dominator exists.
func TestBandJoinSNExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		mk := func(name string, n int) *dataset.Relation {
			tuples := make([]dataset.Tuple, n)
			for i := range tuples {
				tuples[i] = dataset.Tuple{
					Band:  float64(rng.Intn(6)),
					Attrs: []float64{float64(rng.Intn(4)), float64(rng.Intn(4)), float64(rng.Intn(4))},
				}
			}
			return dataset.MustNew(name, 3, 0, tuples)
		}
		r1 := mk("r1", 3+rng.Intn(15))
		r2 := mk("r2", 3+rng.Intn(15))
		for _, cond := range []join.Condition{join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq} {
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond}, K: 4}
			naive, err := Run(q, Naive)
			if err != nil {
				t.Fatal(err)
			}
			grouping, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, fmt.Sprintf("trial %d cond %v", trial, cond), grouping, naive)
		}
	}
}
