package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/join"
	"repro/internal/kdominant"
)

// Category is a base tuple's class per Definitions 1-3.
type Category int8

const (
	// SS tuples are k′-dominant skylines in the whole relation.
	SS Category = iota
	// SN tuples are k′-dominant only within their join group.
	SN
	// NN tuples are k′-dominated within their own group.
	NN
)

// String returns the paper's two-letter label.
func (c Category) String() string {
	switch c {
	case SS:
		return "SS"
	case SN:
		return "SN"
	case NN:
		return "NN"
	default:
		return "??"
	}
}

// Side distinguishes the two join operands; group semantics for
// non-equality conditions depend on which side a relation is on (Sec 6.6).
type Side int

const (
	// Left is the R1 side of the join.
	Left Side = iota
	// Right is the R2 side.
	Right
)

// Categorization is the SS/SN/NN split of one base relation.
type Categorization struct {
	// Cat maps tuple index to its category.
	Cat []Category
	// SS, SN, NN list the tuple indices per category, ascending.
	SS, SN, NN []int
	// KPrime is the threshold used (k′1 or k′2).
	KPrime int
}

// covers reports whether tuple x can join every partner tuple u can: x is
// "in u's group" for the purposes of Definitions 1-3, extended to
// non-equality conditions per Sec. 6.6. x and u are row indices into r.
//
// For equality joins this is key equality — one integer comparison of
// interned symbols, both rows living in the same relation. For a band
// condition such as R1.band < R2.band, any x with x.band <= u.band joins
// every partner of u (left side); on the right side the inequality flips.
// For the Cartesian product every tuple covers every other (Sec. 6.5).
func covers(cond join.Condition, side Side, r *dataset.Relation, x, u int) bool {
	switch cond {
	case join.Equality:
		return r.KeyID(x) == r.KeyID(u)
	case join.Cross:
		return true
	case join.BandLess, join.BandLessEq:
		if side == Left {
			return r.Band(x) <= r.Band(u)
		}
		return r.Band(x) >= r.Band(u)
	case join.BandGreater, join.BandGreaterEq:
		if side == Left {
			return r.Band(x) >= r.Band(u)
		}
		return r.Band(x) <= r.Band(u)
	default:
		return false
	}
}

// Categorize splits relation r into SS, SN and NN with respect to
// kPrime-dominance over the base attribute vectors, using the join
// condition's group semantics for the given side.
func Categorize(r *dataset.Relation, kPrime int, cond join.Condition, side Side) Categorization {
	pts := basePoints(r)
	n := r.Len()
	c := Categorization{Cat: make([]Category, n), KPrime: kPrime}

	// Globally k′-dominant tuples form SS.
	inSS := make([]bool, n)
	for _, i := range kdominant.TwoScan(pts, kPrime) {
		inSS[i] = true
	}

	// Tuples dominated within their own group form NN; a global skyline
	// tuple is never group-dominated, so the two tests are disjoint.
	groupDominated := make([]bool, n)
	switch cond {
	case join.Equality:
		// Sort tuple indices by interned key symbol so every join group is
		// one contiguous run — group iteration needs no maps or string
		// hashing, and within a group the natural tuple order is preserved
		// (stable sort). Group *order* differs from a string sort, but
		// groups are disjoint so the categorization is unaffected.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool {
			return r.KeyID(perm[a]) < r.KeyID(perm[b])
		})
		for lo := 0; lo < n; {
			hi := lo + 1
			for hi < n && r.KeyID(perm[hi]) == r.KeyID(perm[lo]) {
				hi++
			}
			group := perm[lo:hi]
			for _, i := range group {
				groupDominated[i] = true
			}
			for _, i := range kdominant.TwoScanSubset(pts, group, kPrime) {
				groupDominated[i] = false
			}
			lo = hi
		}
	case join.Cross:
		// Single group: group-dominated iff not globally dominant.
		for i := 0; i < n; i++ {
			groupDominated[i] = !inSS[i]
		}
	default:
		// Band conditions: the "group" of u is the set of tuples covering
		// u; scan each tuple against its coverers.
		for i := 0; i < n; i++ {
			if inSS[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if j == i || !covers(cond, side, r, j, i) {
					continue
				}
				if dom.KDominates(pts[j], pts[i], kPrime) {
					groupDominated[i] = true
					break
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		switch {
		case inSS[i]:
			c.Cat[i] = SS
			c.SS = append(c.SS, i)
		case groupDominated[i]:
			c.Cat[i] = NN
			c.NN = append(c.NN, i)
		default:
			c.Cat[i] = SN
			c.SN = append(c.SN, i)
		}
	}
	return c
}

// localLeqAtLeast reports whether x is preferred-or-equal to u on at least
// kpp of the first `local` attributes: the target-set predicate (Def 5,
// generalized to the aggregate variant; see the package comment).
func localLeqAtLeast(x, u []float64, local, kpp int) bool {
	leq := 0
	for i := 0; i < local; i++ {
		if x[i] <= u[i] {
			leq++
		}
		if leq+(local-i-1) < kpp {
			return false
		}
	}
	return leq >= kpp
}
