// Package core implements the paper's primary contribution: K-Dominant
// Skyline Join Queries (KSJQ). It provides the naïve baseline (Algo 1), the
// grouping algorithm (Algo 2), and the dominator-based algorithm (Algo 3),
// together with the SS/SN/NN categorization (Defs 1-3), target sets
// (Def 5), the aggregate variant (Secs 5.6/6.7), the Cartesian-product fast
// path (Sec 6.5), non-equality join handling (Sec 6.6), and the three
// find-k algorithms (Algos 4-6).
//
// Correctness notes relative to the paper (see DESIGN.md §3):
//
//   - The target-set membership predicate is collapsed to a single test on
//     the local attributes: x may be the R1-side of a dominator of any
//     joined tuple built from u only if x is preferred-or-equal to u on at
//     least k″1 = k − l2 − a local attributes. For a = 0 this is exactly
//     the paper's union of dominators, equal-in-k′ tuples, and the tuple
//     itself.
//   - For a ≥ 2 the paper's "yes" cell (SS1 ⋈ SS2) is not actually safe:
//     two aggregate attributes give a dominator pair enough slack to beat
//     an SS ⋈ SS tuple on aggregated sums without either component being
//     dominated at the base level. This implementation verifies SS ⋈ SS
//     tuples against their target sets whenever a ≥ 2, restoring
//     correctness at a small cost. With a ≤ 1 the paper's theorems hold
//     and the cell is emitted unchecked.
//   - The optimized algorithms require a strictly monotonic aggregator
//     (sum). Non-strict aggregators (max, min) can erase the strict
//     attribute Theorem 4's pruning relies on; they are accepted only by
//     the naïve algorithm.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Algorithm selects the KSJQ evaluation strategy.
type Algorithm int

const (
	// Naive joins first, then computes the k-dominant skyline (Algo 1).
	Naive Algorithm = iota
	// Grouping categorizes base tuples into SS/SN/NN and prunes or emits
	// whole cells of the fate table before joining (Algo 2).
	Grouping
	// DominatorBased additionally materializes explicit dominator sets so
	// "may be" tuples are verified against small joins (Algo 3).
	DominatorBased
)

// Algorithms lists all strategies in the order the paper's figures use.
var Algorithms = []Algorithm{Grouping, DominatorBased, Naive}

// String returns the one-letter label used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case Naive:
		return "N"
	case Grouping:
		return "G"
	case DominatorBased:
		return "D"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Token returns the spelled-out strategy name the CLIs and the service's
// JSON API use ("naive", "grouping", "dominator"); String keeps the
// paper's one-letter figure labels.
func (a Algorithm) Token() string {
	switch a {
	case Naive:
		return "naive"
	case Grouping:
		return "grouping"
	case DominatorBased:
		return "dominator"
	default:
		return a.String()
	}
}

// ParseAlgorithm maps CLI and API spellings (full names and the paper's
// one-letter labels, case-insensitive) to a strategy. The empty string
// and "auto" report auto=true: the caller should consult the sampling
// planner. This is the one spelling table both the ksjq facade and the
// query service delegate to.
func ParseAlgorithm(s string) (alg Algorithm, auto bool, err error) {
	switch strings.ToLower(s) {
	case "", "auto", "a":
		return 0, true, nil
	case "naive", "n":
		return Naive, false, nil
	case "grouping", "g":
		return Grouping, false, nil
	case "dominator", "dominator-based", "d":
		return DominatorBased, false, nil
	default:
		return 0, false, fmt.Errorf("%w: %q (want auto, naive, grouping or dominator)", ErrUnknownAlgorithm, s)
	}
}

// Query is one KSJQ instance: two base relations, a join spec, and the
// number k of attributes a dominator must win.
type Query struct {
	R1, R2 *dataset.Relation
	Spec   join.Spec
	// K is the k-dominance parameter over the joined relation's
	// l1+l2+a skyline attributes. Must satisfy max{d1,d2} < K <= l1+l2+a.
	K int
}

// Validation errors.
var (
	ErrBadK             = errors.New("core: k out of range")
	ErrNonStrictAgg     = errors.New("core: optimized algorithms require a strictly monotonic aggregator with aggregate attributes")
	ErrUnknownAlgorithm = errors.New("core: unknown algorithm")
)

// Width returns the number of skyline attributes in the joined relation.
func (q Query) Width() int { return join.Width(q.R1, q.R2) }

// KMin returns the smallest admissible k, max{d1,d2}+1 (equivalently
// max{l1,l2}+a+1, Sec. 3).
func (q Query) KMin() int {
	d1, d2 := q.R1.D(), q.R2.D()
	if d1 > d2 {
		return d1 + 1
	}
	return d2 + 1
}

// KPrimes returns the categorization thresholds k′1 = k − l2 (= k − d2 when
// a = 0) and k′2 = k − l1, applied to the full base-attribute vectors
// (Secs 5.4, 5.6: k′i = k″i + a).
func (q Query) KPrimes() (k1, k2 int) {
	return q.K - q.R2.Local, q.K - q.R1.Local
}

// KDoublePrimes returns k″1 = k − l2 − a and k″2 = k − l1 − a, the minimum
// number of *local* attributes the same-side component of any dominator
// must win (Sec. 5.6). These drive the target-set predicate.
func (q Query) KDoublePrimes() (k1, k2 int) {
	a := q.R1.Agg
	return q.K - q.R2.Local - a, q.K - q.R1.Local - a
}

// Validate checks the query invariants for the given algorithm.
func (q Query) Validate(alg Algorithm) error {
	if q.R1 == nil || q.R2 == nil {
		return errors.New("core: nil relation")
	}
	if err := q.R1.Validate(); err != nil {
		return err
	}
	if err := q.R2.Validate(); err != nil {
		return err
	}
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return err
	}
	if q.K < q.KMin() || q.K > q.Width() {
		return fmt.Errorf("%w: k=%d, admissible range (%d, %d]", ErrBadK, q.K, q.KMin()-1, q.Width())
	}
	if alg != Naive && q.R1.Agg > 0 && !q.aggregator().Strict {
		return fmt.Errorf("%w: aggregator %q", ErrNonStrictAgg, q.aggregator().Name)
	}
	switch alg {
	case Naive, Grouping, DominatorBased:
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrUnknownAlgorithm, int(alg))
	}
}

func (q Query) aggregator() join.Aggregator {
	if q.Spec.Agg.Fn == nil {
		return join.Sum
	}
	return q.Spec.Agg
}

// Stats records the per-phase timing breakdown the paper's figures plot,
// plus work counters used by tests and ablations.
type Stats struct {
	// GroupingTime covers SS/SN/NN categorization of both base relations.
	GroupingTime time.Duration
	// JoinTime covers materializing joined tuples that could not be pruned.
	JoinTime time.Duration
	// DominatorTime covers explicit dominator-set construction
	// (dominator-based algorithm only).
	DominatorTime time.Duration
	// RemainingTime covers everything else (mostly domination checks).
	RemainingTime time.Duration
	// Total is the end-to-end wall time.
	Total time.Duration

	// Categorization sizes (|SS|, |SN|, |NN| per relation).
	SS1, SN1, NN1 int
	SS2, SN2, NN2 int
	// YesEmitted counts tuples emitted from the "yes" cell without checks.
	YesEmitted int
	// Candidates counts "likely"/"may be" joined tuples that needed a check.
	Candidates int
	// DominationTests counts k-dominance tests on joined attribute vectors.
	// The count is deterministic per query and algorithm: a candidate is
	// tested against its checker's (left, partner) pairs in probe order
	// until its first dominator, and that per-candidate sequence is the
	// same on the streaming, blocked-kernel, and worker-pool paths —
	// Workers and the blocked sweep change only the interleaving across
	// candidates, never which tests run (target-set-pruned lefts are
	// skipped uncounted on every path). Early stops (Emit returning false,
	// Limit) end the run at path-dependent points and are the one source of
	// count differences.
	DominationTests int64
}

// Result is the answer to a KSJQ query.
type Result struct {
	// Skyline holds the k-dominant skyline of the joined relation, sorted
	// by (Left, Right) base-tuple indices.
	Skyline []join.Pair
	Stats   Stats
}

// Run evaluates the query with the selected algorithm. It is
// Exec(context.Background(), q, ExecOptions{Algorithm: alg}).
func Run(q Query, alg Algorithm) (*Result, error) {
	return Exec(context.Background(), q, ExecOptions{Algorithm: alg})
}

// compactAttrs re-backs the answer's attribute vectors with one arena
// sized to the skyline itself. Cell materialization arenas are sized to
// whole candidate cells; without this, one surviving pair would pin its
// entire cell's arena for as long as the result is held.
func compactAttrs(pairs []join.Pair) {
	if len(pairs) == 0 {
		return
	}
	w := len(pairs[0].Attrs)
	arena := make([]float64, 0, len(pairs)*w)
	for i := range pairs {
		arena = append(arena, pairs[i].Attrs...)
		pairs[i].Attrs = arena[len(arena)-w : len(arena) : len(arena)]
	}
}

// detach returns the pair with its attribute vector copied out of any
// shared cell arena, so holding the pair does not pin the arena.
func detach(p join.Pair) join.Pair {
	p.Attrs = append([]float64(nil), p.Attrs...)
	return p
}

func sortPairs(pairs []join.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Left != pairs[j].Left {
			return pairs[i].Left < pairs[j].Left
		}
		return pairs[i].Right < pairs[j].Right
	})
}

// basePoints extracts the base attribute vectors of a relation as views
// into its flat attribute column: one slice-header allocation, no data
// copies, and consecutive points are contiguous in memory.
func basePoints(r *dataset.Relation) [][]float64 {
	pts := make([][]float64, r.Len())
	for i := range pts {
		pts[i] = r.Attrs(i)
	}
	return pts
}
