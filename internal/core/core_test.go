package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

// randRelation builds a random relation with small integer attributes (to
// force ties), `groups` join keys and random bands.
func randRelation(rng *rand.Rand, name string, n, local, agg, groups, domain int) *dataset.Relation {
	tuples := make([]dataset.Tuple, n)
	for i := range tuples {
		attrs := make([]float64, local+agg)
		for j := range attrs {
			attrs[j] = float64(rng.Intn(domain))
		}
		tuples[i] = dataset.Tuple{
			Key:   fmt.Sprintf("g%d", rng.Intn(groups)),
			Band:  float64(rng.Intn(8)),
			Attrs: attrs,
		}
	}
	return dataset.MustNew(name, local, agg, tuples)
}

func pairKeys(res *Result) []string {
	out := make([]string, len(res.Skyline))
	for i, p := range res.Skyline {
		out[i] = fmt.Sprintf("%d/%d", p.Left, p.Right)
	}
	return out
}

func assertSameSkyline(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ka, kb := pairKeys(a), pairKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: skyline sizes differ: %d vs %d\n%v\n%v", label, len(ka), len(kb), ka, kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: skylines differ at %d: %s vs %s", label, i, ka[i], kb[i])
		}
	}
}

// TestAlgorithmsAgreeRandom is the central correctness test: the grouping
// and dominator-based algorithms must return exactly the naive answer on
// every random instance, across join conditions, aggregation settings and
// the whole admissible k range.
func TestAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq}
	for trial := 0; trial < 120; trial++ {
		local1 := 1 + rng.Intn(3)
		local2 := 1 + rng.Intn(3)
		agg := rng.Intn(3)
		n1 := 1 + rng.Intn(25)
		n2 := 1 + rng.Intn(25)
		groups := 1 + rng.Intn(4)
		r1 := randRelation(rng, "r1", n1, local1, agg, groups, 5)
		r2 := randRelation(rng, "r2", n2, local2, agg, groups, 5)
		cond := conds[rng.Intn(len(conds))]
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		for k := q.KMin(); k <= q.Width(); k++ {
			q.K = k
			naive, err := Run(q, Naive)
			if err != nil {
				t.Fatalf("trial %d k=%d: naive: %v", trial, k, err)
			}
			label := fmt.Sprintf("trial %d cond=%v l1=%d l2=%d a=%d k=%d n=(%d,%d) g=%d",
				trial, cond, local1, local2, agg, k, n1, n2, groups)
			grouping, err := Run(q, Grouping)
			if err != nil {
				t.Fatalf("%s: grouping: %v", label, err)
			}
			assertSameSkyline(t, label+" [grouping vs naive]", grouping, naive)
			dominator, err := Run(q, DominatorBased)
			if err != nil {
				t.Fatalf("%s: dominator: %v", label, err)
			}
			assertSameSkyline(t, label+" [dominator vs naive]", dominator, naive)
		}
	}
}

// TestAggregateErratum reproduces the a >= 2 counterexample from the
// package comment: with two aggregate attributes an SS1 ⋈ SS2 tuple can be
// dominated, so the paper's unverified "yes" cell would return a wrong
// answer. The implementation must handle it.
func TestAggregateErratum(t *testing.T) {
	r1 := dataset.MustNew("r1", 1, 2, []dataset.Tuple{
		{Key: "g", Attrs: []float64{0, 0, 10}}, // u'
		{Key: "g", Attrs: []float64{0, 1, 0}},  // x
	})
	r2 := dataset.MustNew("r2", 1, 2, []dataset.Tuple{
		{Key: "g", Attrs: []float64{0, 10, 0}}, // v'
		{Key: "g", Attrs: []float64{0, 0, 1}},  // y
	})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 4}

	// Both components of u' ⋈ v' are SS (nothing k'-dominates them).
	k1p, k2p := q.KPrimes()
	c1 := Categorize(r1, k1p, join.Equality, Left)
	c2 := Categorize(r2, k2p, join.Equality, Right)
	if c1.Cat[0] != SS || c2.Cat[0] != SS {
		t.Fatalf("fixture broken: u'=%v v'=%v, want SS/SS", c1.Cat[0], c2.Cat[0])
	}

	// Yet x ⋈ y = (0,0,1,1) fully dominates u' ⋈ v' = (0,0,10,10).
	naive, err := Run(q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range naive.Skyline {
		if p.Left == 0 && p.Right == 0 {
			t.Fatal("fixture broken: u' ⋈ v' should be dominated")
		}
	}
	for _, alg := range []Algorithm{Grouping, DominatorBased} {
		res, err := Run(q, alg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSkyline(t, alg.String(), res, naive)
	}
}

func TestValidation(t *testing.T) {
	r1 := randRelation(rand.New(rand.NewSource(1)), "r1", 5, 2, 0, 2, 5)
	r2 := randRelation(rand.New(rand.NewSource(2)), "r2", 5, 2, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}

	q.K = 2 // <= max{d1,d2}
	if _, err := Run(q, Grouping); !errors.Is(err, ErrBadK) {
		t.Errorf("low k: err = %v, want ErrBadK", err)
	}
	q.K = 5 // > d1+d2
	if _, err := Run(q, Grouping); !errors.Is(err, ErrBadK) {
		t.Errorf("high k: err = %v, want ErrBadK", err)
	}
	q.K = 3
	if _, err := Run(q, Algorithm(99)); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("bad algorithm: err = %v, want ErrUnknownAlgorithm", err)
	}
	q.R2 = nil
	if _, err := Run(q, Grouping); err == nil {
		t.Error("nil relation accepted")
	}

	// Mismatched aggregate schemas.
	ra := dataset.MustNew("ra", 1, 1, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	rb := dataset.MustNew("rb", 2, 0, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	q = Query{R1: ra, R2: rb, Spec: join.Spec{Cond: join.Cross}, K: 3}
	if _, err := Run(q, Naive); !errors.Is(err, join.ErrSchemaMismatch) {
		t.Errorf("schema mismatch: err = %v, want ErrSchemaMismatch", err)
	}
}

func TestNonStrictAggregatorRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r1 := randRelation(rng, "r1", 6, 2, 1, 2, 5)
	r2 := randRelation(rng, "r2", 6, 2, 1, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Max}, K: 4}
	if _, err := Run(q, Grouping); !errors.Is(err, ErrNonStrictAgg) {
		t.Errorf("grouping with max: err = %v, want ErrNonStrictAgg", err)
	}
	if _, err := Run(q, DominatorBased); !errors.Is(err, ErrNonStrictAgg) {
		t.Errorf("dominator with max: err = %v, want ErrNonStrictAgg", err)
	}
	if _, err := Run(q, Naive); err != nil {
		t.Errorf("naive with max: err = %v, want nil", err)
	}
}

func TestMaxAggregatorNaive(t *testing.T) {
	// The naive algorithm supports any monotonic aggregator; sanity-check
	// the max variant end to end.
	r1 := dataset.MustNew("r1", 1, 1, []dataset.Tuple{
		{Key: "g", Attrs: []float64{1, 5}},
		{Key: "g", Attrs: []float64{2, 9}},
	})
	r2 := dataset.MustNew("r2", 1, 1, []dataset.Tuple{
		{Key: "g", Attrs: []float64{1, 7}},
	})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Max}, K: 3}
	res, err := Run(q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	// Joined tuples: (1,1,max(5,7)=7) and (2,1,max(9,7)=9); the first
	// fully dominates the second.
	if len(res.Skyline) != 1 || res.Skyline[0].Left != 0 {
		t.Errorf("skyline = %+v, want only (0,0)", res.Skyline)
	}
	if res.Skyline[0].Attrs[2] != 7 {
		t.Errorf("max-aggregated attr = %v, want 7", res.Skyline[0].Attrs[2])
	}
}

// TestCartesianFastPath checks Sec 6.5: with a Cartesian product there is
// no SN set and the answer is exactly SS1 × SS2.
func TestCartesianFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		r1 := randRelation(rng, "r1", 1+rng.Intn(20), 3, 0, 1, 5)
		r2 := randRelation(rng, "r2", 1+rng.Intn(20), 3, 0, 1, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Cross}, K: 4}
		k1p, k2p := q.KPrimes()
		c1 := Categorize(r1, k1p, join.Cross, Left)
		c2 := Categorize(r2, k2p, join.Cross, Right)
		if len(c1.SN) != 0 || len(c2.SN) != 0 {
			t.Fatalf("trial %d: Cartesian product must have empty SN sets", trial)
		}
		res, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Skyline) != len(c1.SS)*len(c2.SS) {
			t.Errorf("trial %d: |skyline| = %d, want |SS1|*|SS2| = %d",
				trial, len(res.Skyline), len(c1.SS)*len(c2.SS))
		}
		naive, err := Run(q, Naive)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSkyline(t, fmt.Sprintf("trial %d cartesian", trial), res, naive)
	}
}

// TestCategorizePartition checks that SS, SN and NN are mutually exclusive
// and exhaustive (Eq. 4) on random relations under every condition.
func TestCategorizePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandGreaterEq}
	for trial := 0; trial < 50; trial++ {
		r := randRelation(rng, "r", 1+rng.Intn(40), 3, 1, 1+rng.Intn(4), 5)
		kp := 2 + rng.Intn(3)
		for _, cond := range conds {
			for _, side := range []Side{Left, Right} {
				c := Categorize(r, kp, cond, side)
				if len(c.SS)+len(c.SN)+len(c.NN) != r.Len() {
					t.Fatalf("partition sizes %d+%d+%d != %d", len(c.SS), len(c.SN), len(c.NN), r.Len())
				}
				seen := make(map[int]bool)
				for _, lst := range [][]int{c.SS, c.SN, c.NN} {
					for _, i := range lst {
						if seen[i] {
							t.Fatalf("tuple %d in two categories", i)
						}
						seen[i] = true
					}
				}
				for i, cat := range c.Cat {
					if (cat == SS) != contains(c.SS, i) || (cat == SN) != contains(c.SN, i) || (cat == NN) != contains(c.NN, i) {
						t.Fatalf("Cat[%d]=%v inconsistent with index lists", i, cat)
					}
				}
			}
		}
	}
}

func contains(lst []int, x int) bool {
	for _, v := range lst {
		if v == x {
			return true
		}
	}
	return false
}

// TestUVPTheorem5 checks Theorem 5: when both relations satisfy the unique
// value property with respect to k', every SS ⋈ SN and SN ⋈ SS pair is a
// k-dominant skyline.
func TestUVPTheorem5(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 400 && checked < 25; trial++ {
		// Large value domain makes UVP likely.
		r1 := randRelation(rng, "r1", 4+rng.Intn(10), 3, 0, 2, 1000)
		r2 := randRelation(rng, "r2", 4+rng.Intn(10), 3, 0, 2, 1000)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
		k1p, k2p := q.KPrimes()
		if !r1.HasUVP(k1p) || !r2.HasUVP(k2p) {
			continue
		}
		checked++
		c1 := Categorize(r1, k1p, join.Equality, Left)
		c2 := Categorize(r2, k2p, join.Equality, Right)
		res, err := Run(q, Naive)
		if err != nil {
			t.Fatal(err)
		}
		sky := make(map[[2]int]bool)
		for _, p := range res.Skyline {
			sky[[2]int{p.Left, p.Right}] = true
		}
		st := Stats{}
		e := newEngine(q, &st)
		for _, p := range e.pairs(c1.SS, c2.SN) {
			if !sky[[2]int{p.Left, p.Right}] {
				t.Errorf("trial %d: UVP holds but SS1⋈SN2 pair (%d,%d) is not a skyline", trial, p.Left, p.Right)
			}
		}
		for _, p := range e.pairs(c1.SN, c2.SS) {
			if !sky[[2]int{p.Left, p.Right}] {
				t.Errorf("trial %d: UVP holds but SN1⋈SS2 pair (%d,%d) is not a skyline", trial, p.Left, p.Right)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no UVP instances generated; test is vacuous")
	}
}

// TestStatsSanity verifies the bookkeeping the experiments rely on.
func TestStatsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r1 := randRelation(rng, "r1", 30, 3, 0, 3, 6)
	r2 := randRelation(rng, "r2", 30, 3, 0, 3, 6)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	res, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SS1+st.SN1+st.NN1 != r1.Len() {
		t.Errorf("R1 categorization sizes %d+%d+%d != %d", st.SS1, st.SN1, st.NN1, r1.Len())
	}
	if st.SS2+st.SN2+st.NN2 != r2.Len() {
		t.Errorf("R2 categorization sizes %d+%d+%d != %d", st.SS2, st.SN2, st.NN2, r2.Len())
	}
	if st.Total <= 0 {
		t.Error("Total time not recorded")
	}
	res2, err := Run(q, DominatorBased)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.DominatorTime < 0 {
		t.Error("DominatorTime negative")
	}
}

// TestDeterminism: repeated runs return identical, sorted results.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r1 := randRelation(rng, "r1", 40, 3, 1, 4, 5)
	r2 := randRelation(rng, "r2", 40, 3, 1, 4, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 6}
	for _, alg := range Algorithms {
		first, err := Run(q, alg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := Run(q, alg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, alg.String(), first, again)
		}
		for i := 1; i < len(first.Skyline); i++ {
			a, b := first.Skyline[i-1], first.Skyline[i]
			if a.Left > b.Left || (a.Left == b.Left && a.Right >= b.Right) {
				t.Fatalf("%v: result not sorted at %d", alg, i)
			}
		}
	}
}

// TestSingleGroupMatchesCross: an equality join where every tuple shares
// one key is semantically a Cartesian product.
func TestSingleGroupMatchesCross(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r1 := randRelation(rng, "r1", 15, 3, 0, 1, 5)
	r2 := randRelation(rng, "r2", 15, 3, 0, 1, 5)
	qEq := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	qCross := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Cross}, K: 4}
	a, err := Run(qEq, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(qCross, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSkyline(t, "single group vs cross", a, b)
}

// TestKEqualsWidth: at k = d the query degenerates to the full skyline
// join; all algorithms agree and every result tuple is undominated in the
// classic sense.
func TestKEqualsWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	r1 := randRelation(rng, "r1", 25, 2, 0, 3, 5)
	r2 := randRelation(rng, "r2", 25, 2, 0, 3, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	naive, err := Run(q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	grouping, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSkyline(t, "k=d", grouping, naive)
}
