package core

import (
	"context"
	"time"

	"repro/internal/join"
)

// runDominator implements Algorithm 3. It refines the grouping algorithm by
// materializing, for every SS/SN base tuple u, its explicit target set
// τ(u) = {x : x ≤ u on at least k″ local attributes} — the paper's
// dominators ∪ augment ∪ self collapsed into one predicate. Each candidate
// joined tuple u ⋈ v is then verified only against τ(u) ⋈ τ(v), which is
// usually far smaller than the full join the grouping algorithm scans for
// "may be" tuples; the price is the time and memory to build the sets.
func runDominator(ctx context.Context, q Query, res *Resident) (*Result, error) {
	st := Stats{}
	e := newEngineResident(q, &st, res)

	// Phase 1: categorization.
	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	st.GroupingTime = time.Since(t0)
	recordSizes(&st, c1, c2)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: dominator (target) sets for every SS and SN tuple.
	t0 = time.Now()
	dom1 := make(map[int][]int, len(c1.SS)+len(c1.SN))
	for _, u := range c1.SS {
		dom1[u] = targetSet(q.R1, u, e.l1, e.k1pp)
	}
	for _, u := range c1.SN {
		dom1[u] = targetSet(q.R1, u, e.l1, e.k1pp)
	}
	dom2 := make(map[int][]int, len(c2.SS)+len(c2.SN))
	for _, v := range c2.SS {
		dom2[v] = targetSet(q.R2, v, e.l2, e.k2pp)
	}
	for _, v := range c2.SN {
		dom2[v] = targetSet(q.R2, v, e.l2, e.k2pp)
	}
	st.DominatorTime = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: join the surviving cells.
	t0 = time.Now()
	yes := e.pairs(c1.SS, c2.SS)
	candidates := e.pairs(c1.SS, c2.SN)
	candidates = append(candidates, e.pairs(c1.SN, c2.SS)...)
	candidates = append(candidates, e.pairs(c1.SN, c2.SN)...)
	st.JoinTime = time.Since(t0)
	st.Candidates = len(candidates)

	// Phase 4: verify each candidate against the join of its components'
	// dominator sets. Many candidates share a component — u ⋈ v and u ⋈ v'
	// reuse τ(u) — so the checker inputs are cached per tuple: each τ(u) is
	// sum-sorted once and each τ(v) indexed once instead of once per
	// candidate, and one checker struct is rebound instead of allocated per
	// pair. The probe order and test sequence per candidate are unchanged.
	t0 = time.Now()
	sorted1 := make(map[int][]int, len(dom1))
	ix2 := make(map[int]*join.Index, len(dom2))
	chk := &checker{e: e}
	dominated := func(p join.Pair) bool {
		left, ok := sorted1[p.Left]
		if !ok {
			left = e.leftProbeOrder(dom1[p.Left])
			sorted1[p.Left] = left
		}
		ix, ok := ix2[p.Right]
		if !ok {
			ix = e.checkerRightIndex(dom2[p.Right])
			ix2[p.Right] = ix
		}
		chk.left, chk.ix = left, ix
		return chk.dominates(p.Attrs)
	}
	skyline := make([]join.Pair, 0, len(yes))
	if e.a >= 2 {
		for n, p := range yes {
			if n%cancelEvery == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !dominated(p) {
				skyline = append(skyline, p)
			}
		}
	} else {
		skyline = append(skyline, yes...)
		st.YesEmitted = len(yes)
	}
	for n, p := range candidates {
		if n%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !dominated(p) {
			skyline = append(skyline, p)
		}
	}
	st.RemainingTime = time.Since(t0)

	return &Result{Skyline: skyline, Stats: st}, nil
}
