package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// engine bundles the per-query state shared by the optimized algorithms:
// schema geometry, the aggregator, and scratch buffers for materializing
// joined attribute vectors during domination checks.
type engine struct {
	q          Query
	cond       join.Condition
	agg        join.Aggregator
	l1, l2, a  int
	k1pp, k2pp int // k″1, k″2: target-set thresholds over local attributes
	stats      *Stats
	buf        []float64
	// noTargetPrune disables the checker's target-set skip; used only by
	// the ablation benchmarks to quantify the optimization.
	noTargetPrune bool
}

func newEngine(q Query, stats *Stats) *engine {
	e := &engine{
		q:     q,
		cond:  q.Spec.Cond,
		agg:   q.aggregator(),
		l1:    q.R1.Local,
		l2:    q.R2.Local,
		a:     q.R1.Agg,
		stats: stats,
		buf:   make([]float64, 0, join.Width(q.R1, q.R2)),
	}
	e.k1pp, e.k2pp = q.KDoublePrimes()
	return e
}

// pairs materializes the join-compatible pairs between the given index
// lists of R1 and R2.
func (e *engine) pairs(left, right []int) []join.Pair {
	var out []join.Pair
	e.forEachPair(left, right, func(i, j int) bool {
		attrs := join.Combine(e.q.R1, e.q.R2, &e.q.R1.Tuples[i], &e.q.R2.Tuples[j], e.agg,
			make([]float64, 0, join.Width(e.q.R1, e.q.R2)))
		out = append(out, join.Pair{Left: i, Right: j, Attrs: attrs})
		return false
	})
	return out
}

// countPairs returns the number of join-compatible pairs between the index
// lists without materializing them (used by the find-k bounds).
func (e *engine) countPairs(left, right []int) int {
	if e.cond == join.Cross {
		return len(left) * len(right)
	}
	if e.cond == join.Equality {
		byKey := make(map[string]int)
		for _, j := range right {
			byKey[e.q.R2.Tuples[j].Key]++
		}
		n := 0
		for _, i := range left {
			n += byKey[e.q.R1.Tuples[i].Key]
		}
		return n
	}
	n := 0
	for _, i := range left {
		for _, j := range right {
			if e.cond.Matches(&e.q.R1.Tuples[i], &e.q.R2.Tuples[j]) {
				n++
			}
		}
	}
	return n
}

// forEachPair calls fn for every join-compatible (i, j) with i from left
// and j from right, stopping early when fn returns true. It reports whether
// fn stopped the iteration.
func (e *engine) forEachPair(left, right []int, fn func(i, j int) bool) bool {
	if e.cond == join.Equality {
		byKey := make(map[string][]int)
		for _, j := range right {
			k := e.q.R2.Tuples[j].Key
			byKey[k] = append(byKey[k], j)
		}
		for _, i := range left {
			for _, j := range byKey[e.q.R1.Tuples[i].Key] {
				if fn(i, j) {
					return true
				}
			}
		}
		return false
	}
	for _, i := range left {
		for _, j := range right {
			if e.cond != join.Cross && !e.cond.Matches(&e.q.R1.Tuples[i], &e.q.R2.Tuples[j]) {
				continue
			}
			if fn(i, j) {
				return true
			}
		}
	}
	return false
}

// checker answers "is this joined attribute vector k-dominated by any
// join-compatible pair drawn from my left × right index lists?". For
// equality joins it pre-groups both lists by key so each query touches only
// co-grouped pairs; index lists are sorted by attribute sum so strong
// dominators are tried first (SFS-style early exit; any order is correct).
type checker struct {
	e           *engine
	left, right []int
	byKey       map[string][2][]int // equality only: key -> (left idxs, right idxs)
}

func (e *engine) newChecker(left, right []int) *checker {
	c := &checker{e: e, left: sortBySum(basePoints(e.q.R1), left), right: sortBySum(basePoints(e.q.R2), right)}
	if e.cond == join.Equality {
		c.byKey = make(map[string][2][]int)
		for _, i := range c.left {
			k := e.q.R1.Tuples[i].Key
			ent := c.byKey[k]
			ent[0] = append(ent[0], i)
			c.byKey[k] = ent
		}
		for _, j := range c.right {
			k := e.q.R2.Tuples[j].Key
			ent, ok := c.byKey[k]
			if !ok {
				continue // no left partner: pair can never form
			}
			ent[1] = append(ent[1], j)
			c.byKey[k] = ent
		}
	}
	return c
}

// dominates reports whether some join-compatible pair from the checker's
// lists k-dominates cand.
//
// Two optimizations, both justified by the target-set theorem (Def 5 /
// DESIGN.md §3): a left tuple x whose local attributes win fewer than
// k″1 = k − l2 − a positions against cand's left part can never complete a
// dominator, so all its pairs are skipped; and the k-dominance test runs
// directly over the base vectors without materializing the joined tuple.
func (c *checker) dominates(cand []float64) bool {
	e := c.e
	l1 := e.l1
	candL := cand[:l1]
	if c.byKey != nil {
		for _, ent := range c.byKey {
			if len(ent[1]) == 0 {
				continue
			}
			for _, i := range ent[0] {
				if !e.noTargetPrune && !localLeqAtLeast(e.q.R1.Tuples[i].Attrs, candL, l1, e.k1pp) {
					continue
				}
				for _, j := range ent[1] {
					if e.pairKDominates(i, j, cand) {
						return true
					}
				}
			}
		}
		return false
	}
	for _, i := range c.left {
		if !e.noTargetPrune && !localLeqAtLeast(e.q.R1.Tuples[i].Attrs, candL, l1, e.k1pp) {
			continue
		}
		for _, j := range c.right {
			if e.cond != join.Cross && !e.cond.Matches(&e.q.R1.Tuples[i], &e.q.R2.Tuples[j]) {
				continue
			}
			if e.pairKDominates(i, j, cand) {
				return true
			}
		}
	}
	return false
}

// pairKDominates reports whether the joined tuple R1[i] ⋈ R2[j] k-dominates
// the joined attribute vector cand, without materializing the pair.
func (e *engine) pairKDominates(i, j int, cand []float64) bool {
	e.stats.DominationTests++
	x := e.q.R1.Tuples[i].Attrs
	y := e.q.R2.Tuples[j].Attrs
	k := e.q.K
	d := len(cand)
	leq, pos := 0, 0
	strict := false
	for t := 0; t < e.l1; t++ {
		if v := x[t]; v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	for t := 0; t < e.l2; t++ {
		if v := y[t]; v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	for t := 0; t < e.a; t++ {
		if v := e.agg.Fn(x[e.l1+t], y[e.l2+t]); v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	return leq >= k && strict
}

// targetUnion returns the indices of every tuple in r that belongs to the
// target set of at least one tuple in base: the paper's Augment step
// (Algo 2 lines 6-7) generalized to the aggregate variant. local and kpp
// are the relation's local-attribute count and k″ threshold.
func targetUnion(r *dataset.Relation, base []int, local, kpp int) []int {
	var out []int
	for x := 0; x < r.Len(); x++ {
		for _, u := range base {
			if localLeqAtLeast(r.Tuples[x].Attrs, r.Tuples[u].Attrs, local, kpp) {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// targetSet returns the target set τ(u) (Def 5): every x that could be the
// same-side component of a joined dominator of a tuple built from u.
func targetSet(r *dataset.Relation, u, local, kpp int) []int {
	var out []int
	for x := 0; x < r.Len(); x++ {
		if localLeqAtLeast(r.Tuples[x].Attrs, r.Tuples[u].Attrs, local, kpp) {
			out = append(out, x)
		}
	}
	return out
}

// allIndices returns 0..n-1.
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sortBySum returns a copy of idx ordered by ascending attribute sum of the
// referenced points, so likely dominators are probed first.
func sortBySum(pts [][]float64, idx []int) []int {
	out := append([]int(nil), idx...)
	sums := make(map[int]float64, len(out))
	for _, i := range out {
		s := 0.0
		for _, v := range pts[i] {
			s += v
		}
		sums[i] = s
	}
	sort.SliceStable(out, func(a, b int) bool { return sums[out[a]] < sums[out[b]] })
	return out
}
