package core

import (
	"context"
	"math/bits"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// engine bundles the per-query state shared by the optimized algorithms:
// schema geometry, the aggregator, and lazily-built join indexes reused by
// every cell enumeration and domination check of the query.
type engine struct {
	q          Query
	cond       join.Condition
	agg        join.Aggregator
	l1, l2, a  int
	d1, d2     int
	k1pp, k2pp int // k″1, k″2: target-set thresholds over local attributes
	// at1/at2 are the relations' flat row-major attribute columns; row i of
	// R1 is at1[i*d1 : (i+1)*d1]. The checker's inner loops stride them
	// directly — contiguous scans, no per-row slice-header chasing.
	at1, at2 []float64
	// isSum marks the built-in Sum aggregator, letting the domination test
	// inline the addition instead of an indirect call per aggregate
	// attribute.
	isSum bool
	stats *Stats
	// allRightIx and allLeftSorted cache the full-R2 join index and the
	// sum-sorted full-R1 probe order; each is built at most once per engine
	// (on first full-list use) and read-only afterwards, so checkers
	// sharing them across goroutines is safe.
	allRightIx    *join.Index
	allLeftSorted []int
	// pts1/pts2 cache the relations' base attribute vectors for the probe
	// orderings (built lazily, then read-only).
	pts1, pts2 [][]float64
	// kt caches the R1→R2 key-symbol translation shared by every equality
	// index this engine builds (one per cell, one per dominator-set
	// checker); built once on first use, read-only afterwards.
	kt *join.KeyTrans
	// noTargetPrune disables the checker's target-set skip; used only by
	// the ablation benchmarks to quantify the optimization.
	noTargetPrune bool
	// scalarVerify forces cell verification through the per-candidate
	// path (checker.dominates) instead of the blocked kernel — the
	// ablation/oracle arm the kernel-equivalence tests compare against.
	scalarVerify bool
	// memoLeft/memoLeftSorted and memoRight/memoRightIx remember the last
	// subset probe order and subset checker index built, keyed by slice
	// identity. The grouping cells reuse the augmented target lists across
	// cells (A1 appears in two cells' checkers, as does A2), so each is
	// sorted/indexed once per run instead of once per cell.
	memoLeft, memoLeftSorted []int
	memoRight                []int
	memoRightIx              *join.Index
	// scratch holds the per-run verification buffers (keep bitset, the
	// checker's per-left partner cache) reused across cells, so repeated
	// cells allocate nothing.
	scratch verifyScratch
	// pool is the persistent work-stealing worker pool, spawned once per
	// Exec run when Workers > 1 and shared by every cell's verification.
	pool *workerPool
}

// verifyScratch is the engine-owned scratch reused by every cell's batched
// verification: the keep bitset and the backing arrays of the checker's
// compacted per-left partner cache.
type verifyScratch struct {
	keep     []uint64
	plefts   []int32
	partners [][]int
}

// keepBits returns the scratch keep bitset sized for n candidates with
// every bit set (all candidates alive).
func (e *engine) keepBits(n int) []uint64 {
	words := (n + 63) / 64
	if cap(e.scratch.keep) < words {
		e.scratch.keep = make([]uint64, words, words+words/2)
	}
	keep := e.scratch.keep[:words]
	for i := range keep {
		keep[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 {
		keep[words-1] = uint64(1)<<rem - 1
	}
	return keep
}

// sameIDs reports whether a and b are the same index list by slice
// identity (same backing array start and length) — the memo key for
// per-run subset reuse.
func sameIDs(a, b []int) bool {
	return len(a) != 0 && len(a) == len(b) && &a[0] == &b[0]
}

// keyTrans returns the engine's shared R1→R2 key translation (equality
// joins only), building it on first use.
func (e *engine) keyTrans() *join.KeyTrans {
	if e.cond != join.Equality {
		return nil
	}
	if e.kt == nil {
		e.kt = join.NewKeyTrans(e.q.R1, e.q.R2)
	}
	return e.kt
}

func newEngine(q Query, stats *Stats) *engine {
	e := &engine{
		q:     q,
		cond:  q.Spec.Cond,
		agg:   q.aggregator(),
		l1:    q.R1.Local,
		l2:    q.R2.Local,
		a:     q.R1.Agg,
		d1:    q.R1.D(),
		d2:    q.R2.D(),
		at1:   q.R1.FlatAttrs(),
		at2:   q.R2.FlatAttrs(),
		stats: stats,
	}
	e.isSum = join.IsSum(e.agg)
	e.k1pp, e.k2pp = q.KDoublePrimes()
	return e
}

func (e *engine) points1() [][]float64 {
	if e.pts1 == nil {
		e.pts1 = basePoints(e.q.R1)
	}
	return e.pts1
}

func (e *engine) points2() [][]float64 {
	if e.pts2 == nil {
		e.pts2 = basePoints(e.q.R2)
	}
	return e.pts2
}

// rightProbeOrder returns the right list in the order the index should
// hold it: ascending attribute sum for equality buckets and Cross (so
// strong dominators are probed first), unchanged for band conditions —
// the index re-sorts those by Band and would discard a sum ordering.
func (e *engine) rightProbeOrder(right []int) []int {
	switch e.cond {
	case join.Equality, join.Cross:
		return sortBySum(e.points2(), right)
	default:
		return right
	}
}

// rightAllIndex returns the query-wide index over all of R2 in probe
// priority, building it on first use.
func (e *engine) rightAllIndex() *join.Index {
	if e.allRightIx == nil {
		e.allRightIx = join.NewIndexTrans(e.q.R1, e.q.R2, e.rightProbeOrder(allIndices(e.q.R2.Len())), e.cond, e.keyTrans())
	}
	return e.allRightIx
}

// rightIndex returns a join index over the given R2 subset, reusing the
// cached full-relation index when the subset is all of R2. (Index lists
// never repeat tuples, so matching length implies the full set.)
func (e *engine) rightIndex(right []int) *join.Index {
	if len(right) == e.q.R2.Len() {
		return e.rightAllIndex()
	}
	return join.NewIndexTrans(e.q.R1, e.q.R2, right, e.cond, e.keyTrans())
}

// pairs materializes the join-compatible pairs between the given index
// lists of R1 and R2. All attribute vectors of one call share a single
// arena allocation (see join.Materialize).
func (e *engine) pairs(left, right []int) []join.Pair {
	return join.Materialize(e.q.R1, e.q.R2, left, e.rightIndex(right), e.agg)
}

// countPairs returns the number of join-compatible pairs between the index
// lists without materializing them (used by the find-k bounds).
func (e *engine) countPairs(left, right []int) int {
	if e.cond == join.Cross {
		return len(left) * len(right)
	}
	return e.rightIndex(right).CountPairs(e.q.R1, left)
}

// forEachPair calls fn for every join-compatible (i, j) with i from left
// and j from right, stopping early when fn returns true. It reports whether
// fn stopped the iteration.
func (e *engine) forEachPair(left, right []int, fn func(i, j int) bool) bool {
	return e.rightIndex(right).ForEachPair(e.q.R1, left, fn)
}

// checker answers "is this joined attribute vector k-dominated by any
// join-compatible pair drawn from my left × right index lists?". The left
// list is sorted by attribute sum so strong dominators are tried first
// (SFS-style early exit; any order is correct); right partners are
// enumerated through a join.Index, so each probe touches only
// join-compatible tuples instead of condition-scanning the right list.
//
// A checker is immutable after construction: the index and orderings can
// be shared read-only across goroutines via bind.
type checker struct {
	e    *engine
	left []int       // sum-sorted candidate dominator components from R1
	ix   *join.Index // their join partners within the right list
	// plefts/ppartners are the blocked kernel's compacted per-left probe
	// cache: left tuples with at least one join partner, in left order,
	// with their partner lists resolved once per cell instead of once per
	// (left, candidate-block) visit. Built by ensurePartners before the
	// blocked sweep (and before workers are handed the checker); read-only
	// afterwards, so binds share it.
	plefts    []int32
	ppartners [][]int
}

// leftProbeOrder returns the left list sorted by ascending attribute sum,
// reusing the cached ordering when the list is all of R1 and the last
// subset ordering when the list is the one most recently sorted (the
// augmented target list A1 feeds two of the grouping cells).
func (e *engine) leftProbeOrder(left []int) []int {
	if len(left) == e.q.R1.Len() {
		if e.allLeftSorted == nil {
			e.allLeftSorted = sortBySum(e.points1(), allIndices(e.q.R1.Len()))
		}
		return e.allLeftSorted
	}
	if sameIDs(left, e.memoLeft) {
		return e.memoLeftSorted
	}
	sorted := sortBySum(e.points1(), left)
	e.memoLeft, e.memoLeftSorted = left, sorted
	return sorted
}

// checkerRightIndex returns the probe-ordered checker index over the given
// R2 subset, reusing the cached full-relation index when the subset is all
// of R2 and the last subset index otherwise (A2 feeds two of the grouping
// cells' checkers).
func (e *engine) checkerRightIndex(right []int) *join.Index {
	if len(right) == e.q.R2.Len() {
		return e.rightAllIndex()
	}
	if sameIDs(right, e.memoRight) {
		return e.memoRightIx
	}
	ix := join.NewIndexTrans(e.q.R1, e.q.R2, e.rightProbeOrder(right), e.cond, e.keyTrans())
	e.memoRight, e.memoRightIx = right, ix
	return ix
}

func (e *engine) newChecker(left, right []int) *checker {
	return &checker{e: e, left: e.leftProbeOrder(left), ix: e.checkerRightIndex(right)}
}

// bind returns a view of the checker that charges domination-test counts
// to we's stats. The index, probe ordering, and partner cache are shared
// read-only, so parallel workers bind one prebuilt checker instead of
// rebuilding the index per worker.
func (c *checker) bind(we *engine) *checker {
	return &checker{e: we, left: c.left, ix: c.ix, plefts: c.plefts, ppartners: c.ppartners}
}

// ensurePartners builds the blocked kernel's per-left probe cache: every
// left tuple's partner list resolved once (one equality lookup or band
// binary search each), compacted to the lefts that have any partner. The
// backing arrays live in the engine scratch, so repeated cells allocate
// nothing. Must be called on the cell's owning checker before verifyRange
// (the coordinator does this before publishing work to the pool).
func (c *checker) ensurePartners() {
	if c.plefts != nil || len(c.left) == 0 {
		return
	}
	e := c.e
	r1 := e.q.R1
	plefts := e.scratch.plefts[:0]
	partners := e.scratch.partners[:0]
	for _, i := range c.left {
		p := c.ix.Partners(r1, i)
		if len(p) == 0 {
			continue
		}
		plefts = append(plefts, int32(i))
		partners = append(partners, p)
	}
	e.scratch.plefts, e.scratch.partners = plefts, partners
	c.plefts, c.ppartners = plefts, partners
}

// dominates reports whether some join-compatible pair from the checker's
// lists k-dominates cand.
//
// Three optimizations, the first two justified by the target-set theorem
// (Def 5 / DESIGN.md §3): a left tuple x whose local attributes win fewer
// than k″1 = k − l2 − a positions against cand's left part can never
// complete a dominator, so all its pairs are skipped; the k-dominance test
// runs directly over the base vectors without materializing the joined
// tuple; and the x-section of the test (the l1 left-local comparisons plus
// the reachability bound) is computed once per left tuple and shared by
// all of its partners, instead of being redone inside every pair test.
func (c *checker) dominates(cand []float64) bool {
	e := c.e
	r1 := e.q.R1
	if e.noTargetPrune {
		// Ablation control arm: no left-level skip and no shared x-section
		// — every partner pair gets its own counted full test, exactly the
		// un-pruned checker the benchmarks compare against.
		for _, i := range c.left {
			for _, j := range c.ix.Partners(r1, i) {
				if e.pairKDominates(i, j, cand) {
					return true
				}
			}
		}
		return false
	}
	// The x-section threshold: the pair test's own reachability bound at
	// pos = l1 is K − (d − l1) = K − l2 − a (d = l1+l2+a), which is exactly
	// the target-set threshold k″1 — Def 5's prune is the bound the test
	// would apply anyway, hoisted above the partner loop.
	for _, i := range c.left {
		x := e.at1[i*e.d1 : i*e.d1+e.d1]
		leq, strict, ok := localPrefix(x, cand, e.l1, e.k1pp)
		if !ok {
			continue
		}
		for _, j := range c.ix.Partners(r1, i) {
			if e.pairKDominatesTail(x, j, leq, strict, cand) {
				return true
			}
		}
	}
	return false
}

// blockCands is the blocked kernel's candidate block width: one 16-bit
// lane of a keep word, small enough that a block's attribute vectors stay
// cache-hot across the whole left sweep.
const blockCands = 16

// verifyRange filters candidates[lo:hi) through the checker's blocked
// kernel, clearing keep's bit for every k-dominated candidate. It visits
// exactly the (left, partner) pairs the per-candidate dominates would —
// for each candidate, lefts in probe order until the first dominator — so
// results and domination-test counts are identical; only the sweep order
// changes. Candidates are processed in blocks of blockCands: each block's
// live set is one bit lane, the per-left x-section slice and partner list
// come from the cache ensurePartners hoisted out of the sweep, and a block
// whose lane empties stops scanning lefts immediately. Dead candidates
// cost one mask test per block, not a per-candidate branch.
//
// lo must be block-aligned (the pool's chunks are multiples of 64, so
// concurrent workers never share a keep word or a block). The context is
// polled once per block — the same worst-case latency as cancelEvery
// sequential per-candidate checks.
func (c *checker) verifyRange(ctx context.Context, candidates []join.Pair, lo, hi int, keep []uint64) error {
	e := c.e
	for b0 := lo; b0 < hi; b0 += blockCands {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		b1 := b0 + blockCands
		if b1 > hi {
			b1 = hi
		}
		word, shift := b0>>6, uint(b0&63)
		m := uint16(keep[word] >> shift)
		if n := b1 - b0; n < blockCands {
			m &= uint16(1)<<n - 1
		}
		if m == 0 {
			continue
		}
		orig := m
		for pi, i := range c.plefts {
			x := e.at1[int(i)*e.d1 : int(i)*e.d1+e.d1]
			partners := c.ppartners[pi]
			rem := m
			for rem != 0 {
				t := rem & (-rem)
				rem ^= t
				cand := candidates[b0+bits.TrailingZeros16(t)].Attrs
				leq, strict, ok := localPrefix(x, cand, e.l1, e.k1pp)
				if !ok {
					continue
				}
				for _, j := range partners {
					if e.pairKDominatesTail(x, j, leq, strict, cand) {
						m ^= t
						break
					}
				}
			}
			if m == 0 {
				break
			}
		}
		if dead := orig ^ m; dead != 0 {
			keep[word] &^= uint64(dead) << shift
		}
	}
	return nil
}

// verifyRangeScalar is the retained per-candidate ablation/oracle arm of
// verifyRange: every candidate goes through checker.dominates exactly as
// the streaming path would. It also serves the noTargetPrune ablation,
// whose un-pruned test sequence lives inside dominates.
func (c *checker) verifyRangeScalar(ctx context.Context, candidates []join.Pair, lo, hi int, keep []uint64) error {
	for ci := lo; ci < hi; ci++ {
		if ci%cancelEvery == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if c.dominates(candidates[ci].Attrs) {
			keep[ci>>6] &^= uint64(1) << uint(ci&63)
		}
	}
	return nil
}

// localPrefix computes the x-section of the k-dominance test: how many of
// the first l1 cand positions x wins or ties, and whether any win is
// strict. ok is false when leq cannot reach (or ends below) threshold t —
// the same early exit the per-pair bound would take, hoisted out of the
// partner loop.
func localPrefix(x, cand []float64, l1, t int) (leq int, strict, ok bool) {
	for i := 0; i < l1; i++ {
		if v, c := x[i], cand[i]; v <= c {
			leq++
			if v < c {
				strict = true
			}
		}
		if leq+(l1-i-1) < t {
			return 0, false, false
		}
	}
	return leq, strict, leq >= t
}

// pairKDominates reports whether the joined tuple R1[i] ⋈ R2[j] k-dominates
// the joined attribute vector cand, without materializing the pair: the
// x-section prefix followed by the shared tail.
func (e *engine) pairKDominates(i, j int, cand []float64) bool {
	x := e.at1[i*e.d1 : i*e.d1+e.d1]
	leq, strict, ok := localPrefix(x, cand, e.l1, e.q.K-(len(cand)-e.l1))
	if !ok {
		e.stats.DominationTests++
		return false
	}
	return e.pairKDominatesTail(x, j, leq, strict, cand)
}

// pairKDominatesTail finishes a k-dominance test against cand for the pair
// (x, R2[j]), resuming after a precomputed x-section (leq wins, strict
// strictness over the l1 left locals). The engine's hottest loop: x and y
// are contiguous stride-D slices of the relations' flat attribute columns,
// and the built-in Sum aggregator is devirtualized (isSum) so the
// aggregate section costs one add instead of an indirect call per
// attribute.
func (e *engine) pairKDominatesTail(x []float64, j, leq int, strict bool, cand []float64) bool {
	e.stats.DominationTests++
	y := e.at2[j*e.d2 : j*e.d2+e.d2]
	k := e.q.K
	d := len(cand)
	l1, l2, a := e.l1, e.l2, e.a
	pos := l1
	cy := cand[l1:]
	for t := 0; t < l2; t++ {
		if v, c := y[t], cy[t]; v <= c {
			leq++
			if v < c {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	if e.isSum {
		for t := 0; t < a; t++ {
			if v, c := x[l1+t]+y[l2+t], cand[pos]; v <= c {
				leq++
				if v < c {
					strict = true
				}
			}
			pos++
			if leq+(d-pos) < k {
				return false
			}
		}
	} else {
		for t := 0; t < a; t++ {
			if v, c := e.agg.Fn(x[l1+t], y[l2+t]), cand[pos]; v <= c {
				leq++
				if v < c {
					strict = true
				}
			}
			pos++
			if leq+(d-pos) < k {
				return false
			}
		}
	}
	return leq >= k && strict
}

// targetUnion returns the indices of every tuple in r that belongs to the
// target set of at least one tuple in base: the paper's Augment step
// (Algo 2 lines 6-7) generalized to the aggregate variant. local and kpp
// are the relation's local-attribute count and k″ threshold.
func targetUnion(r *dataset.Relation, base []int, local, kpp int) []int {
	var out []int
	for x := 0; x < r.Len(); x++ {
		xa := r.Attrs(x)
		for _, u := range base {
			if localLeqAtLeast(xa, r.Attrs(u), local, kpp) {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// targetSet returns the target set τ(u) (Def 5): every x that could be the
// same-side component of a joined dominator of a tuple built from u.
func targetSet(r *dataset.Relation, u, local, kpp int) []int {
	var out []int
	ua := r.Attrs(u)
	for x := 0; x < r.Len(); x++ {
		if localLeqAtLeast(r.Attrs(x), ua, local, kpp) {
			out = append(out, x)
		}
	}
	return out
}

// allIndices returns 0..n-1.
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sortBySum returns a copy of idx ordered by ascending attribute sum of the
// referenced points, so likely dominators are probed first. Sums are
// precomputed into a flat entry slice — no map lookups in the comparator.
func sortBySum(pts [][]float64, idx []int) []int {
	entries := make([]struct {
		idx int
		sum float64
	}, len(idx))
	for n, i := range idx {
		s := 0.0
		for _, v := range pts[i] {
			s += v
		}
		entries[n].idx = i
		entries[n].sum = s
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].sum < entries[b].sum })
	out := make([]int, len(entries))
	for n := range entries {
		out[n] = entries[n].idx
	}
	return out
}
