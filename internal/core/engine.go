package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// engine bundles the per-query state shared by the optimized algorithms:
// schema geometry, the aggregator, and lazily-built join indexes reused by
// every cell enumeration and domination check of the query.
type engine struct {
	q          Query
	cond       join.Condition
	agg        join.Aggregator
	l1, l2, a  int
	k1pp, k2pp int // k″1, k″2: target-set thresholds over local attributes
	stats      *Stats
	// allRightIx and allLeftSorted cache the full-R2 join index and the
	// sum-sorted full-R1 probe order; each is built at most once per engine
	// (on first full-list use) and read-only afterwards, so checkers
	// sharing them across goroutines is safe.
	allRightIx    *join.Index
	allLeftSorted []int
	// pts1/pts2 cache the relations' base attribute vectors for the probe
	// orderings (built lazily, then read-only).
	pts1, pts2 [][]float64
	// noTargetPrune disables the checker's target-set skip; used only by
	// the ablation benchmarks to quantify the optimization.
	noTargetPrune bool
}

func newEngine(q Query, stats *Stats) *engine {
	e := &engine{
		q:     q,
		cond:  q.Spec.Cond,
		agg:   q.aggregator(),
		l1:    q.R1.Local,
		l2:    q.R2.Local,
		a:     q.R1.Agg,
		stats: stats,
	}
	e.k1pp, e.k2pp = q.KDoublePrimes()
	return e
}

func (e *engine) points1() [][]float64 {
	if e.pts1 == nil {
		e.pts1 = basePoints(e.q.R1)
	}
	return e.pts1
}

func (e *engine) points2() [][]float64 {
	if e.pts2 == nil {
		e.pts2 = basePoints(e.q.R2)
	}
	return e.pts2
}

// rightProbeOrder returns the right list in the order the index should
// hold it: ascending attribute sum for equality buckets and Cross (so
// strong dominators are probed first), unchanged for band conditions —
// the index re-sorts those by Band and would discard a sum ordering.
func (e *engine) rightProbeOrder(right []int) []int {
	switch e.cond {
	case join.Equality, join.Cross:
		return sortBySum(e.points2(), right)
	default:
		return right
	}
}

// rightAllIndex returns the query-wide index over all of R2 in probe
// priority, building it on first use.
func (e *engine) rightAllIndex() *join.Index {
	if e.allRightIx == nil {
		e.allRightIx = join.NewIndex(e.q.R2, e.rightProbeOrder(allIndices(e.q.R2.Len())), e.cond)
	}
	return e.allRightIx
}

// rightIndex returns a join index over the given R2 subset, reusing the
// cached full-relation index when the subset is all of R2. (Index lists
// never repeat tuples, so matching length implies the full set.)
func (e *engine) rightIndex(right []int) *join.Index {
	if len(right) == e.q.R2.Len() {
		return e.rightAllIndex()
	}
	return join.NewIndex(e.q.R2, right, e.cond)
}

// pairs materializes the join-compatible pairs between the given index
// lists of R1 and R2. All attribute vectors of one call share a single
// arena allocation (see join.Materialize).
func (e *engine) pairs(left, right []int) []join.Pair {
	return join.Materialize(e.q.R1, e.q.R2, left, e.rightIndex(right), e.agg)
}

// countPairs returns the number of join-compatible pairs between the index
// lists without materializing them (used by the find-k bounds).
func (e *engine) countPairs(left, right []int) int {
	if e.cond == join.Cross {
		return len(left) * len(right)
	}
	return e.rightIndex(right).CountPairs(e.q.R1, left)
}

// forEachPair calls fn for every join-compatible (i, j) with i from left
// and j from right, stopping early when fn returns true. It reports whether
// fn stopped the iteration.
func (e *engine) forEachPair(left, right []int, fn func(i, j int) bool) bool {
	return e.rightIndex(right).ForEachPair(e.q.R1, left, fn)
}

// checker answers "is this joined attribute vector k-dominated by any
// join-compatible pair drawn from my left × right index lists?". The left
// list is sorted by attribute sum so strong dominators are tried first
// (SFS-style early exit; any order is correct); right partners are
// enumerated through a join.Index, so each probe touches only
// join-compatible tuples instead of condition-scanning the right list.
//
// A checker is immutable after construction: the index and orderings can
// be shared read-only across goroutines via bind.
type checker struct {
	e    *engine
	left []int       // sum-sorted candidate dominator components from R1
	ix   *join.Index // their join partners within the right list
}

// leftProbeOrder returns the left list sorted by ascending attribute sum,
// reusing the cached ordering when the list is all of R1.
func (e *engine) leftProbeOrder(left []int) []int {
	if len(left) == e.q.R1.Len() {
		if e.allLeftSorted == nil {
			e.allLeftSorted = sortBySum(e.points1(), allIndices(e.q.R1.Len()))
		}
		return e.allLeftSorted
	}
	return sortBySum(e.points1(), left)
}

func (e *engine) newChecker(left, right []int) *checker {
	c := &checker{e: e, left: e.leftProbeOrder(left)}
	if len(right) == e.q.R2.Len() {
		c.ix = e.rightAllIndex()
	} else {
		c.ix = join.NewIndex(e.q.R2, e.rightProbeOrder(right), e.cond)
	}
	return c
}

// bind returns a view of the checker that charges domination-test counts
// to we's stats. The index and probe ordering are shared read-only, so
// parallel workers bind one prebuilt checker instead of rebuilding the
// index per worker.
func (c *checker) bind(we *engine) *checker {
	return &checker{e: we, left: c.left, ix: c.ix}
}

// dominates reports whether some join-compatible pair from the checker's
// lists k-dominates cand.
//
// Two optimizations, both justified by the target-set theorem (Def 5 /
// DESIGN.md §3): a left tuple x whose local attributes win fewer than
// k″1 = k − l2 − a positions against cand's left part can never complete a
// dominator, so all its pairs are skipped; and the k-dominance test runs
// directly over the base vectors without materializing the joined tuple.
func (c *checker) dominates(cand []float64) bool {
	e := c.e
	candL := cand[:e.l1]
	for _, i := range c.left {
		u := &e.q.R1.Tuples[i]
		if !e.noTargetPrune && !localLeqAtLeast(u.Attrs, candL, e.l1, e.k1pp) {
			continue
		}
		for _, j := range c.ix.Partners(u) {
			if e.pairKDominates(i, j, cand) {
				return true
			}
		}
	}
	return false
}

// pairKDominates reports whether the joined tuple R1[i] ⋈ R2[j] k-dominates
// the joined attribute vector cand, without materializing the pair.
func (e *engine) pairKDominates(i, j int, cand []float64) bool {
	e.stats.DominationTests++
	x := e.q.R1.Tuples[i].Attrs
	y := e.q.R2.Tuples[j].Attrs
	k := e.q.K
	d := len(cand)
	leq, pos := 0, 0
	strict := false
	for t := 0; t < e.l1; t++ {
		if v := x[t]; v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	for t := 0; t < e.l2; t++ {
		if v := y[t]; v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	for t := 0; t < e.a; t++ {
		if v := e.agg.Fn(x[e.l1+t], y[e.l2+t]); v <= cand[pos] {
			leq++
			if v < cand[pos] {
				strict = true
			}
		}
		pos++
		if leq+(d-pos) < k {
			return false
		}
	}
	return leq >= k && strict
}

// targetUnion returns the indices of every tuple in r that belongs to the
// target set of at least one tuple in base: the paper's Augment step
// (Algo 2 lines 6-7) generalized to the aggregate variant. local and kpp
// are the relation's local-attribute count and k″ threshold.
func targetUnion(r *dataset.Relation, base []int, local, kpp int) []int {
	var out []int
	for x := 0; x < r.Len(); x++ {
		for _, u := range base {
			if localLeqAtLeast(r.Tuples[x].Attrs, r.Tuples[u].Attrs, local, kpp) {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// targetSet returns the target set τ(u) (Def 5): every x that could be the
// same-side component of a joined dominator of a tuple built from u.
func targetSet(r *dataset.Relation, u, local, kpp int) []int {
	var out []int
	for x := 0; x < r.Len(); x++ {
		if localLeqAtLeast(r.Tuples[x].Attrs, r.Tuples[u].Attrs, local, kpp) {
			out = append(out, x)
		}
	}
	return out
}

// allIndices returns 0..n-1.
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sortBySum returns a copy of idx ordered by ascending attribute sum of the
// referenced points, so likely dominators are probed first. Sums are
// precomputed into a flat entry slice — no map lookups in the comparator.
func sortBySum(pts [][]float64, idx []int) []int {
	entries := make([]struct {
		idx int
		sum float64
	}, len(idx))
	for n, i := range idx {
		s := 0.0
		for _, v := range pts[i] {
			s += v
		}
		entries[n].idx = i
		entries[n].sum = s
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].sum < entries[b].sum })
	out := make([]int, len(entries))
	for n := range entries {
		out[n] = entries[n].idx
	}
	return out
}
