package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/join"
)

// ExecOptions configures the unified execution path. The zero value runs
// the naive algorithm serially; callers normally set Algorithm.
type ExecOptions struct {
	// Algorithm selects the evaluation strategy.
	Algorithm Algorithm
	// Workers > 1 verifies candidates in parallel on the grouping
	// algorithm's execution path; any other value runs serially.
	Workers int
	// Emit, when non-nil, streams each confirmed skyline tuple instead of
	// collecting the answer in Result.Skyline. Returning false stops the
	// query early (not an error). Emitted pairs are detached from internal
	// arenas, so callers may retain them. Tuples arrive cell by cell (yes,
	// SS⋈SN, SN⋈SS, SN⋈SN), not in (Left, Right) order. With Workers <= 1
	// each tuple is emitted the moment it is verified; with Workers > 1
	// streaming is cell-granular — a cell's survivors are emitted in
	// candidate order after its parallel verification completes, and a
	// false return stops before the next cell, not mid-cell.
	Emit Emit
	// Resident, when non-nil, supplies prebuilt per-(R1, R2, condition)
	// structures (full-R2 join index, probe orders, base-point tables) so
	// the engine skips their construction — the reuse the query service
	// relies on for resident relations. It must have been built by
	// NewResident over exactly the query's relations and condition;
	// otherwise Exec returns ErrStaleResident. The naive algorithm
	// materializes the full join instead of probing and ignores it.
	Resident *Resident
	// Limit > 0 caps the answer at that many tuples. The grouping
	// algorithm stops the run the moment the cap is reached (strictly
	// less verification work; with Workers > 1 the stop is cell-granular,
	// as with Emit); the other algorithms compute the full answer and
	// truncate it after the canonical sort. Which members survive a
	// grouping-path cap is unspecified beyond "a subset of the skyline" —
	// tuples are confirmed in cell order, not (Left, Right) order.
	Limit int
	// scalarVerify (unexported: the kernel-equivalence tests' knob) forces
	// cell verification through the per-candidate dominates arm instead of
	// the blocked kernel. Answers and Stats.DominationTests are identical
	// either way — that equivalence is what the oracle pins.
	scalarVerify bool
}

// ErrOptionConflict is returned when exec options are combined with an
// algorithm that cannot honor them (Workers/Emit require Grouping).
var ErrOptionConflict = errors.New("core: workers and emit require the grouping algorithm")

// cancelEvery is the verification batch size between context checks: a
// cancelled context is noticed after at most this many candidate
// dominance checks per worker. Checks against an un-cancellable context
// are a nil comparison, so the batch size only bounds cancellation
// latency, not throughput.
const cancelEvery = 16

// Exec evaluates the query on the single engine execution path shared by
// every public entry point: Run is Exec with defaults, RunParallel is
// Workers > 1, RunProgressive is a non-nil Emit. The context is checked
// between phases and periodically inside candidate verification (the
// dominant cost); on cancellation Exec returns ctx.Err() promptly with no
// goroutines left behind.
func Exec(ctx context.Context, q Query, o ExecOptions) (*Result, error) {
	if err := q.Validate(o.Algorithm); err != nil {
		return nil, err
	}
	if o.Algorithm != Grouping && (o.Workers > 1 || o.Emit != nil) {
		return nil, fmt.Errorf("%w (got %v)", ErrOptionConflict, o.Algorithm)
	}
	if o.Resident != nil {
		if err := o.Resident.check(q); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	var err error
	switch o.Algorithm {
	case Naive:
		res, err = runNaive(ctx, q)
	case Grouping:
		res, err = runGrouping(ctx, q, o)
	case DominatorBased:
		res, err = runDominator(ctx, q, o.Resident)
	}
	if err != nil {
		return nil, err
	}
	if o.Emit == nil {
		sortPairs(res.Skyline)
		if o.Limit > 0 && len(res.Skyline) > o.Limit {
			res.Skyline = res.Skyline[:o.Limit]
		}
		compactAttrs(res.Skyline)
	}
	res.Stats.Total = time.Since(start)
	return res, nil
}

// sink receives confirmed skyline tuples inside the grouping loop;
// returning false stops the query.
type sink func(p join.Pair) bool

// verifyCell filters candidates through a checker over chkLeft × chkRight,
// feeding the survivors to emit in candidate order. It returns false when
// emit stopped the run, and ctx.Err() when the context was cancelled
// mid-verification. stream marks a user-visible Emit sink (or a Limit):
// the serial streaming path verifies candidate by candidate so each tuple
// is emitted the moment it is confirmed; every other path verifies the
// whole cell through the blocked kernel into the engine's keep bitset
// before emitting, which is cheaper and observationally identical. With an
// active pool (Workers > 1) a large cell's chunks are pulled by the
// persistent workers from a shared cursor; small cells stay on the
// coordinator — a broadcast costs more than poolChunk candidates. Every
// path notices a cancellation within one chunk/block, so verifyCell never
// leaves work running.
func verifyCell(ctx context.Context, e *engine, stream bool, candidates []join.Pair, chkLeft, chkRight []int, emit sink) (bool, error) {
	if len(candidates) == 0 {
		return true, nil
	}
	chk := e.newChecker(chkLeft, chkRight)
	// scalarVerify is the tests' per-candidate oracle arm; noTargetPrune's
	// un-pruned test sequence also lives only in checker.dominates.
	scalar := e.scalarVerify || e.noTargetPrune
	if stream && e.pool == nil {
		for i := range candidates {
			if i%cancelEvery == 0 && ctx.Err() != nil {
				return false, ctx.Err()
			}
			if !chk.dominates(candidates[i].Attrs) && !emit(candidates[i]) {
				return false, nil
			}
		}
		return true, nil
	}
	keep := e.keepBits(len(candidates))
	if !scalar {
		chk.ensurePartners()
	}
	var err error
	switch {
	case e.pool != nil && len(candidates) > poolChunk:
		err = e.pool.verify(ctx, chk, candidates, keep, scalar)
	case scalar:
		err = chk.verifyRangeScalar(ctx, candidates, 0, len(candidates), keep)
	default:
		err = chk.verifyRange(ctx, candidates, 0, len(candidates), keep)
	}
	if err != nil {
		return false, err
	}
	for i := range candidates {
		if keep[i>>6]&(uint64(1)<<uint(i&63)) != 0 && !emit(candidates[i]) {
			return false, nil
		}
	}
	return true, nil
}
