package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/join"
)

// ExecOptions configures the unified execution path. The zero value runs
// the naive algorithm serially; callers normally set Algorithm.
type ExecOptions struct {
	// Algorithm selects the evaluation strategy.
	Algorithm Algorithm
	// Workers > 1 verifies candidates in parallel on the grouping
	// algorithm's execution path; any other value runs serially.
	Workers int
	// Emit, when non-nil, streams each confirmed skyline tuple instead of
	// collecting the answer in Result.Skyline. Returning false stops the
	// query early (not an error). Emitted pairs are detached from internal
	// arenas, so callers may retain them. Tuples arrive cell by cell (yes,
	// SS⋈SN, SN⋈SS, SN⋈SN), not in (Left, Right) order. With Workers <= 1
	// each tuple is emitted the moment it is verified; with Workers > 1
	// streaming is cell-granular — a cell's survivors are emitted in
	// candidate order after its parallel verification completes, and a
	// false return stops before the next cell, not mid-cell.
	Emit Emit
	// Resident, when non-nil, supplies prebuilt per-(R1, R2, condition)
	// structures (full-R2 join index, probe orders, base-point tables) so
	// the engine skips their construction — the reuse the query service
	// relies on for resident relations. It must have been built by
	// NewResident over exactly the query's relations and condition;
	// otherwise Exec returns ErrStaleResident. The naive algorithm
	// materializes the full join instead of probing and ignores it.
	Resident *Resident
	// Limit > 0 caps the answer at that many tuples. The grouping
	// algorithm stops the run the moment the cap is reached (strictly
	// less verification work; with Workers > 1 the stop is cell-granular,
	// as with Emit); the other algorithms compute the full answer and
	// truncate it after the canonical sort. Which members survive a
	// grouping-path cap is unspecified beyond "a subset of the skyline" —
	// tuples are confirmed in cell order, not (Left, Right) order.
	Limit int
}

// ErrOptionConflict is returned when exec options are combined with an
// algorithm that cannot honor them (Workers/Emit require Grouping).
var ErrOptionConflict = errors.New("core: workers and emit require the grouping algorithm")

// cancelEvery is the verification batch size between context checks: a
// cancelled context is noticed after at most this many candidate
// dominance checks per worker. Checks against an un-cancellable context
// are a nil comparison, so the batch size only bounds cancellation
// latency, not throughput.
const cancelEvery = 16

// Exec evaluates the query on the single engine execution path shared by
// every public entry point: Run is Exec with defaults, RunParallel is
// Workers > 1, RunProgressive is a non-nil Emit. The context is checked
// between phases and periodically inside candidate verification (the
// dominant cost); on cancellation Exec returns ctx.Err() promptly with no
// goroutines left behind.
func Exec(ctx context.Context, q Query, o ExecOptions) (*Result, error) {
	if err := q.Validate(o.Algorithm); err != nil {
		return nil, err
	}
	if o.Algorithm != Grouping && (o.Workers > 1 || o.Emit != nil) {
		return nil, fmt.Errorf("%w (got %v)", ErrOptionConflict, o.Algorithm)
	}
	if o.Resident != nil {
		if err := o.Resident.check(q); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	var err error
	switch o.Algorithm {
	case Naive:
		res, err = runNaive(ctx, q)
	case Grouping:
		res, err = runGrouping(ctx, q, o.Workers, o.Emit, o.Resident, o.Limit)
	case DominatorBased:
		res, err = runDominator(ctx, q, o.Resident)
	}
	if err != nil {
		return nil, err
	}
	if o.Emit == nil {
		sortPairs(res.Skyline)
		if o.Limit > 0 && len(res.Skyline) > o.Limit {
			res.Skyline = res.Skyline[:o.Limit]
		}
		compactAttrs(res.Skyline)
	}
	res.Stats.Total = time.Since(start)
	return res, nil
}

// sink receives confirmed skyline tuples inside the grouping loop;
// returning false stops the query.
type sink func(p join.Pair) bool

// verifyCell filters candidates through a checker over chkLeft × chkRight,
// feeding the survivors to emit in candidate order. It returns false when
// emit stopped the run, and ctx.Err() when the context was cancelled
// mid-verification. stream marks a user-visible Emit sink: the serial
// streaming path verifies candidate by candidate so each tuple is emitted
// the moment it is confirmed; the collecting path verifies the whole cell
// with the batched checker (left-outer sweep over the cell arena) before
// appending survivors, which is cheaper and observationally identical.
// With workers > 1 the candidates are sharded across goroutines probing
// one shared read-only checker; every worker exits within one cancelEvery
// batch of a cancellation, so verifyCell never leaks goroutines.
func verifyCell(ctx context.Context, e *engine, workers int, stream bool, candidates []join.Pair, chkLeft, chkRight []int, emit sink) (bool, error) {
	if len(candidates) == 0 {
		return true, nil
	}
	chk := e.newChecker(chkLeft, chkRight)
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		if stream {
			for i := range candidates {
				if i%cancelEvery == 0 && ctx.Err() != nil {
					return false, ctx.Err()
				}
				if !chk.dominates(candidates[i].Attrs) && !emit(candidates[i]) {
					return false, nil
				}
			}
			return true, nil
		}
		keep := make([]bool, len(candidates))
		if err := chk.dominatesBatch(ctx, candidates, keep); err != nil {
			return false, err
		}
		for i := range candidates {
			if keep[i] && !emit(candidates[i]) {
				return false, nil
			}
		}
		return true, nil
	}

	// Parallel verification: workers record keep-flags; survivors are
	// emitted afterwards in candidate order, so the parallel path streams
	// and collects in exactly the serial order.
	keep := make([]bool, len(candidates))
	tests := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localStats := Stats{}
			wchk := chk.bind(newEngine(e.q, &localStats))
			for n, i := 0, w; i < len(candidates); n, i = n+1, i+workers {
				if n%cancelEvery == 0 && ctx.Err() != nil {
					break
				}
				keep[i] = !wchk.dominates(candidates[i].Attrs)
			}
			tests[w] = localStats.DominationTests
		}(w)
	}
	wg.Wait()
	for _, t := range tests {
		e.stats.DominationTests += t
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	for i := range candidates {
		if keep[i] && !emit(candidates[i]) {
			return false, nil
		}
	}
	return true, nil
}
