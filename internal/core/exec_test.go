package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/join"
)

// countingCtx reports Canceled after `limit` Err() calls. The execution
// path propagates cancellation purely by polling Err(), so this cancels
// deterministically mid-run — no timers, no flaky sleeps — while staying
// safe for concurrent pollers (the parallel workers).
type countingCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func cancelAfter(limit int64) *countingCtx {
	return &countingCtx{Context: context.Background(), limit: limit}
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// bigGroupingQuery returns an instance with plenty of "likely"/"may be"
// candidates so cancellation lands inside candidate verification.
func bigGroupingQuery(seed int64) Query {
	rng := rand.New(rand.NewSource(seed))
	r1 := randRelation(rng, "r1", 300, 5, 2, 8, 1000)
	r2 := randRelation(rng, "r2", 300, 5, 2, 8, 1000)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
	q.K = q.Width() - 1
	return q
}

func TestExecCancelledBeforeStart(t *testing.T) {
	q := bigGroupingQuery(401)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{Naive, Grouping, DominatorBased} {
		if _, err := Exec(ctx, q, ExecOptions{Algorithm: alg}); !errors.Is(err, context.Canceled) {
			t.Errorf("alg %v: err = %v, want context.Canceled", alg, err)
		}
	}
	if _, err := Exec(ctx, q, ExecOptions{Algorithm: Grouping, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: err = %v, want context.Canceled", err)
	}
	if _, err := FindKContext(ctx, q, 10, FindKBinary); !errors.Is(err, context.Canceled) {
		t.Errorf("find-k: err = %v, want context.Canceled", err)
	}
	if _, err := MembershipContext(ctx, q, [][2]int{{0, 0}}); err == nil {
		t.Error("membership under cancelled ctx succeeded")
	}
}

// TestExecCancelMidVerificationSerial cancels after the phase-boundary
// checks have passed, so the cancellation must be observed by the periodic
// check inside the serial verification loop.
func TestExecCancelMidVerificationSerial(t *testing.T) {
	q := bigGroupingQuery(403)
	// Sanity: the instance has candidates to verify.
	full, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Candidates < 2*cancelEvery {
		t.Fatalf("instance too small: %d candidates", full.Stats.Candidates)
	}
	ctx := cancelAfter(3) // survives Exec entry + categorization barrier, dies in verification
	res, err := Exec(ctx, q, ExecOptions{Algorithm: Grouping})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res=%v), want context.Canceled", err, res != nil)
	}
	if res != nil {
		t.Error("cancelled run returned a non-nil result")
	}
}

// TestExecCancelMidVerificationParallel cancels while worker goroutines
// are sharding a cell and asserts they all drain — no goroutine leaks —
// which the -race run also scrutinizes for unsynchronized shutdown.
func TestExecCancelMidVerificationParallel(t *testing.T) {
	q := bigGroupingQuery(405)
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		ctx := cancelAfter(int64(3 + trial)) // vary where the cancel lands
		if _, err := Exec(ctx, q, ExecOptions{Algorithm: Grouping, Workers: 4}); !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
	}
	// Exec joins its workers before returning, so the goroutine count must
	// settle back to the baseline (allow the runtime a moment to reap).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecCancelProgressive cancels a streaming run from inside the emit
// callback (the realistic shape: a client disconnects mid-stream) and
// checks the run stops with ctx.Err() without emitting further cells.
func TestExecCancelProgressive(t *testing.T) {
	q := bigGroupingQuery(407)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err := Exec(ctx, q, ExecOptions{Algorithm: Grouping, Emit: func(p join.Pair) bool {
		emitted++
		if emitted == 1 {
			cancel()
		}
		return true
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	full, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if emitted >= len(full.Skyline) {
		t.Errorf("cancelled stream emitted the whole answer (%d tuples)", emitted)
	}
}

// TestExecOptionConflicts pins the exec-option validation: Workers and
// Emit are grouping-only capabilities.
func TestExecOptionConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	r1 := randRelation(rng, "r1", 10, 3, 0, 2, 5)
	r2 := randRelation(rng, "r2", 10, 3, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	emit := Emit(func(join.Pair) bool { return true })
	for _, o := range []ExecOptions{
		{Algorithm: Naive, Workers: 2},
		{Algorithm: DominatorBased, Workers: 2},
		{Algorithm: Naive, Emit: emit},
		{Algorithm: DominatorBased, Emit: emit},
	} {
		if _, err := Exec(context.Background(), q, o); !errors.Is(err, ErrOptionConflict) {
			t.Errorf("opts %+v: err = %v, want ErrOptionConflict", o, err)
		}
	}
}

// TestExecModesAgree is the unified-path property test: serial, parallel,
// and streaming runs of the same instance must produce identical answers,
// and combining Workers with Emit must too (parallel verification with an
// ordered stream).
func TestExecModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLessEq}
	for trial := 0; trial < 25; trial++ {
		agg := rng.Intn(3)
		r1 := randRelation(rng, "r1", 5+rng.Intn(40), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(40), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: conds[rng.Intn(len(conds))], Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
		serial, err := Exec(context.Background(), q, ExecOptions{Algorithm: Grouping})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			var streamed []join.Pair
			res, err := Exec(context.Background(), q, ExecOptions{
				Algorithm: Grouping,
				Workers:   workers,
				Emit:      func(p join.Pair) bool { streamed = append(streamed, p); return true },
			})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if len(res.Skyline) != 0 {
				t.Fatalf("trial %d: streaming run also collected %d tuples", trial, len(res.Skyline))
			}
			sortPairs(streamed)
			got := Result{Skyline: streamed}
			assertSameSkyline(t, "stream vs serial", &got, serial)
		}
	}
}
