package core

import (
	"context"
	"fmt"
	"time"
)

// FindKAlgorithm selects the strategy for Problems 3 and 4.
type FindKAlgorithm int

const (
	// FindKNaive iterates k upward, computing the full skyline each time
	// (Algo 4).
	FindKNaive FindKAlgorithm = iota
	// FindKRange iterates k upward but skips full computation whenever the
	// Δ lower/upper bounds decide the step (Algo 5).
	FindKRange
	// FindKBinary binary-searches k using the same bounds (Algo 6). The
	// paper's pseudocode terminates with `while l < h`, which can skip the
	// final untested value; this implementation uses the standard
	// inclusive bound so the returned k is exactly the smallest
	// satisfying value.
	FindKBinary
)

// FindKAlgorithms lists the strategies in the paper's figure order.
var FindKAlgorithms = []FindKAlgorithm{FindKBinary, FindKRange, FindKNaive}

// String returns the one-letter label used in the paper's figures.
func (a FindKAlgorithm) String() string {
	switch a {
	case FindKNaive:
		return "N"
	case FindKRange:
		return "R"
	case FindKBinary:
		return "B"
	default:
		return fmt.Sprintf("FindKAlgorithm(%d)", int(a))
	}
}

// FindKStats aggregates the work across all probed k values, using the same
// phase split as the paper's find-k figures (grouping / join / remaining).
type FindKStats struct {
	GroupingTime  time.Duration
	JoinTime      time.Duration
	RemainingTime time.Duration
	Total         time.Duration
	// Probed lists the k values examined, in order.
	Probed []int
	// SkylinesComputed counts how often the full skyline had to be
	// materialized (the expensive step the bounds try to avoid).
	SkylinesComputed int
}

// FindKResult is the answer to Problem 3 or 4.
type FindKResult struct {
	// K is the selected number of skyline attributes.
	K     int
	Stats FindKStats
}

// FindK solves Problem 3 without a deadline; see FindKContext.
func FindK(q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	return FindKContext(context.Background(), q, delta, alg)
}

// FindKContext solves Problem 3: the smallest k in (max{d1,d2}, l1+l2+a]
// whose k-dominant skyline join has at least delta tuples. If no k
// satisfies the threshold, the maximum possible k is returned (the paper's
// default). The context flows into every skyline computation, so a
// cancelled deadline aborts mid-probe with ctx.Err().
func FindKContext(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	return findKContext(ctx, q, delta, alg, nil)
}

// findKContext is the shared implementation behind FindKContext and
// Resident.FindK: res, when non-nil, seeds every probe's engine with the
// prebuilt join index and probe orders.
func findKContext(ctx context.Context, q Query, delta int, alg FindKAlgorithm, res *Resident) (*FindKResult, error) {
	if q.R1 == nil || q.R2 == nil {
		return nil, fmt.Errorf("core: nil relation")
	}
	probe := q
	probe.K = probe.KMin()
	if err := probe.Validate(Grouping); err != nil {
		return nil, err
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: negative delta %d", delta)
	}
	start := time.Now()
	var out *FindKResult
	var err error
	switch alg {
	case FindKNaive:
		out, err = findKNaive(ctx, q, delta, res)
	case FindKRange:
		out, err = findKRange(ctx, q, delta, res)
	case FindKBinary:
		out, err = findKBinary(ctx, q, delta, res)
	default:
		return nil, fmt.Errorf("%w: find-k %d", ErrUnknownAlgorithm, int(alg))
	}
	if err != nil {
		return nil, err
	}
	out.Stats.Total = time.Since(start)
	return out, nil
}

// prober evaluates skyline cardinalities and bounds for one query template,
// accumulating stats across probes.
type prober struct {
	ctx context.Context
	q   Query
	st  *FindKStats
	// res optionally seeds every probe with prebuilt resident structures
	// (k-independent, so one snapshot serves the whole search); nil means
	// each probe builds its own.
	res *Resident
}

func newProber(ctx context.Context, q Query, st *FindKStats, res *Resident) *prober {
	if ctx == nil {
		ctx = context.Background()
	}
	return &prober{ctx: ctx, q: q, st: st, res: res}
}

// bounds returns Δ_lb and Δ_ub for the given k without computing any
// skyline: Δ_lb is the size of the "yes" cell (valid whenever a ≤ 1; with
// a ≥ 2 the cell is not guaranteed, so the lower bound degrades to 0) and
// Δ_ub adds the "likely" and "may be" cells. NN cells never contribute
// (Th. 4), so Δ_ub is always valid.
func (p *prober) bounds(k int) (lb, ub int, err error) {
	if err := p.ctx.Err(); err != nil {
		return 0, 0, err
	}
	q := p.q
	q.K = k
	st := Stats{}
	e := newEngineResident(q, &st, p.res)
	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	p.st.GroupingTime += time.Since(t0)

	t0 = time.Now()
	yes := e.countPairs(c1.SS, c2.SS)
	ub = yes +
		e.countPairs(c1.SS, c2.SN) +
		e.countPairs(c1.SN, c2.SS) +
		e.countPairs(c1.SN, c2.SN)
	p.st.JoinTime += time.Since(t0)
	if q.R1.Agg >= 2 {
		return 0, ub, nil
	}
	return yes, ub, nil
}

// count computes the exact k-dominant skyline size with the grouping
// algorithm (the paper's fastest evaluator) on the unified execution path.
func (p *prober) count(k int) (int, error) {
	q := p.q
	q.K = k
	res, err := Exec(p.ctx, q, ExecOptions{Algorithm: Grouping, Resident: p.res})
	if err != nil {
		return 0, err
	}
	p.st.SkylinesComputed++
	p.st.GroupingTime += res.Stats.GroupingTime
	p.st.JoinTime += res.Stats.JoinTime
	p.st.RemainingTime += res.Stats.RemainingTime + res.Stats.DominatorTime
	return len(res.Skyline), nil
}

func (p *prober) probed(k int) { p.st.Probed = append(p.st.Probed, k) }

func findKNaive(ctx context.Context, q Query, delta int, resident *Resident) (*FindKResult, error) {
	res := &FindKResult{}
	p := newProber(ctx, q, &res.Stats, resident)
	kMin, kMax := q.KMin(), q.Width()
	for k := kMin; k < kMax; k++ {
		p.probed(k)
		n, err := p.count(k)
		if err != nil {
			return nil, err
		}
		if n >= delta {
			res.K = k
			return res, nil
		}
	}
	res.K = kMax
	return res, nil
}

func findKRange(ctx context.Context, q Query, delta int, resident *Resident) (*FindKResult, error) {
	res := &FindKResult{}
	p := newProber(ctx, q, &res.Stats, resident)
	kMin, kMax := q.KMin(), q.Width()
	for k := kMin; k < kMax; k++ {
		p.probed(k)
		lb, ub, err := p.bounds(k)
		if err != nil {
			return nil, err
		}
		switch {
		case lb >= delta:
			res.K = k
			return res, nil
		case ub < delta:
			// k cannot satisfy delta; advance without computing.
		default:
			n, err := p.count(k)
			if err != nil {
				return nil, err
			}
			if n >= delta {
				res.K = k
				return res, nil
			}
		}
	}
	res.K = kMax
	return res, nil
}

func findKBinary(ctx context.Context, q Query, delta int, resident *Resident) (*FindKResult, error) {
	res := &FindKResult{}
	p := newProber(ctx, q, &res.Stats, resident)
	kMin, kMax := q.KMin(), q.Width()
	lo, hi, cur := kMin, kMax, kMax
	for lo <= hi {
		k := (lo + hi) / 2
		p.probed(k)
		lb, ub, err := p.bounds(k)
		if err != nil {
			return nil, err
		}
		var satisfied bool
		switch {
		case lb >= delta:
			satisfied = true
		case ub < delta:
			satisfied = false
		default:
			n, err := p.count(k)
			if err != nil {
				return nil, err
			}
			satisfied = n >= delta
		}
		if satisfied {
			cur = k
			hi = k - 1
		} else {
			lo = k + 1
		}
	}
	res.K = cur
	return res, nil
}

// FindKAtMost solves Problem 4 without a deadline; see FindKAtMostContext.
func FindKAtMost(q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	return FindKAtMostContext(context.Background(), q, delta, alg)
}

// FindKAtMostContext solves Problem 4: the largest k whose skyline has at
// most delta tuples. Per the paper's analysis it is derived from Problem 3:
// if k⁺ is the smallest k with more than delta skylines, the answer is
// k⁺ − 1; if even the minimum k exceeds delta, the minimum k is returned
// (the paper's trivial corner case), and if no k exceeds delta the maximum
// k is the answer.
func FindKAtMostContext(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	return findKAtMostContext(ctx, q, delta, alg, nil)
}

// findKAtMostContext is the shared implementation behind FindKAtMostContext
// and Resident.FindKAtMost.
func findKAtMostContext(ctx context.Context, q Query, delta int, alg FindKAlgorithm, resident *Resident) (*FindKResult, error) {
	res, err := findKContext(ctx, q, delta+1, alg, resident)
	if err != nil {
		return nil, err
	}
	kMin, kMax := q.KMin(), q.Width()
	if res.K == kMax {
		// Either kMax is the first k exceeding delta, or none does. Only a
		// real count distinguishes the two.
		p := newProber(ctx, q, &res.Stats, resident)
		n, err := p.count(kMax)
		if err != nil {
			return nil, err
		}
		if n <= delta {
			return res, nil
		}
	}
	if res.K > kMin {
		res.K--
	}
	return res, nil
}
