package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/join"
)

// bruteFindK computes the reference answer to Problem 3 by exhaustive
// counting.
func bruteFindK(t *testing.T, q Query, delta int) int {
	t.Helper()
	for k := q.KMin(); k <= q.Width(); k++ {
		q.K = k
		res, err := Run(q, Naive)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Skyline) >= delta {
			return k
		}
	}
	return q.Width()
}

func skylineCount(t *testing.T, q Query, k int) int {
	t.Helper()
	q.K = k
	res, err := Run(q, Naive)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Skyline)
}

func TestFindKAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		r1 := randRelation(rng, "r1", 5+rng.Intn(30), 3, 0, 1+rng.Intn(3), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(30), 3, 0, 1+rng.Intn(3), 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
		for _, delta := range []int{1, 3, 10, 50, 100000} {
			want := bruteFindK(t, q, delta)
			for _, alg := range FindKAlgorithms {
				res, err := FindK(q, delta, alg)
				if err != nil {
					t.Fatalf("trial %d delta %d alg %v: %v", trial, delta, alg, err)
				}
				if res.K != want {
					t.Fatalf("trial %d delta %d: %v returned k=%d, want %d (probed %v)",
						trial, delta, alg, res.K, want, res.Stats.Probed)
				}
			}
		}
	}
}

func TestFindKAggregateAgree(t *testing.T) {
	// With a >= 2 the lower bound degrades to 0; answers must still match.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		r1 := randRelation(rng, "r1", 5+rng.Intn(15), 2, 2, 2, 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(15), 2, 2, 2, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		for _, delta := range []int{1, 5, 40} {
			want := bruteFindK(t, q, delta)
			for _, alg := range FindKAlgorithms {
				res, err := FindK(q, delta, alg)
				if err != nil {
					t.Fatal(err)
				}
				if res.K != want {
					t.Fatalf("trial %d delta %d: %v returned k=%d, want %d", trial, delta, alg, res.K, want)
				}
			}
		}
	}
}

// TestFindKBoundsValid checks Δ_lb <= Δ <= Δ_ub for every admissible k.
func TestFindKBoundsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		agg := rng.Intn(2)
		r1 := randRelation(rng, "r1", 5+rng.Intn(25), 3, agg, 1+rng.Intn(3), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(25), 3, agg, 1+rng.Intn(3), 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		st := FindKStats{}
		p := newProber(nil, q, &st, nil)
		for k := q.KMin(); k <= q.Width(); k++ {
			lb, ub, err := p.bounds(k)
			if err != nil {
				t.Fatal(err)
			}
			actual := skylineCount(t, q, k)
			if lb > actual || actual > ub {
				t.Fatalf("trial %d k=%d: bounds violated: lb=%d actual=%d ub=%d", trial, k, lb, actual, ub)
			}
		}
	}
}

// TestSkylineCountMonotone checks Lemma 1 at the join level: the skyline
// size is non-decreasing in k.
func TestSkylineCountMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 20; trial++ {
		r1 := randRelation(rng, "r1", 5+rng.Intn(25), 3, 0, 2, 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(25), 3, 0, 2, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
		prev := -1
		for k := q.KMin(); k <= q.Width(); k++ {
			n := skylineCount(t, q, k)
			if n < prev {
				t.Fatalf("trial %d: skyline count decreased from %d to %d at k=%d", trial, prev, n, k)
			}
			prev = n
		}
	}
}

func TestFindKDefaultsToMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	r1 := randRelation(rng, "r1", 10, 3, 0, 2, 5)
	r2 := randRelation(rng, "r2", 10, 3, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
	for _, alg := range FindKAlgorithms {
		res, err := FindK(q, 1<<30, alg)
		if err != nil {
			t.Fatal(err)
		}
		if res.K != q.Width() {
			t.Errorf("%v: unsatisfiable delta should return max k=%d, got %d", alg, q.Width(), res.K)
		}
	}
}

func TestFindKErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	r1 := randRelation(rng, "r1", 10, 3, 0, 2, 5)
	r2 := randRelation(rng, "r2", 10, 3, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
	if _, err := FindK(q, -1, FindKBinary); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := FindK(q, 1, FindKAlgorithm(99)); err == nil {
		t.Error("unknown find-k algorithm accepted")
	}
	q.R1 = nil
	if _, err := FindK(q, 1, FindKBinary); err == nil {
		t.Error("nil relation accepted")
	}
}

// TestFindKAtMost checks Problem 4 against exhaustive counting: the answer
// is the largest k whose skyline has at most delta tuples, or the minimum
// admissible k when even that exceeds delta.
func TestFindKAtMost(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 25; trial++ {
		r1 := randRelation(rng, "r1", 5+rng.Intn(20), 3, 0, 2, 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(20), 3, 0, 2, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
		for _, delta := range []int{0, 1, 5, 30, 100000} {
			want := q.KMin()
			found := false
			for k := q.KMin(); k <= q.Width(); k++ {
				if skylineCount(t, q, k) <= delta {
					want, found = k, true
				}
			}
			if !found {
				want = q.KMin()
			}
			for _, alg := range FindKAlgorithms {
				res, err := FindKAtMost(q, delta, alg)
				if err != nil {
					t.Fatal(err)
				}
				if res.K != want {
					t.Fatalf("trial %d delta %d %v: at-most k=%d, want %d", trial, delta, alg, res.K, want)
				}
			}
		}
	}
}

// TestFindKBinaryProbesFewer confirms the point of the binary search: it
// examines at most O(log range) candidate values.
func TestFindKBinaryProbesFewer(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	r1 := randRelation(rng, "r1", 40, 5, 0, 3, 8)
	r2 := randRelation(rng, "r2", 40, 5, 0, 3, 8)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
	res, err := FindK(q, 10, FindKBinary)
	if err != nil {
		t.Fatal(err)
	}
	rangeSize := q.Width() - q.KMin() + 1
	maxProbes := 1
	for 1<<maxProbes < rangeSize+1 {
		maxProbes++
	}
	if len(res.Stats.Probed) > maxProbes+1 {
		t.Errorf("binary search probed %d values (%v) for range %d", len(res.Stats.Probed), res.Stats.Probed, rangeSize)
	}
}

func TestFindKStatsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	r1 := randRelation(rng, "r1", 20, 3, 0, 2, 5)
	r2 := randRelation(rng, "r2", 20, 3, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}}
	for _, alg := range FindKAlgorithms {
		res, err := FindK(q, 5, alg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Total <= 0 {
			t.Errorf("%v: total time not recorded", alg)
		}
		if len(res.Stats.Probed) == 0 {
			t.Errorf("%v: no probes recorded", alg)
		}
	}
	_ = fmt.Sprintf("%v %v %v", FindKNaive, FindKRange, FindKBinary) // exercise String()
}

func TestFindKStringLabels(t *testing.T) {
	if FindKNaive.String() != "N" || FindKRange.String() != "R" || FindKBinary.String() != "B" {
		t.Error("find-k labels must match the paper's figures (B, R, N)")
	}
	if Naive.String() != "N" || Grouping.String() != "G" || DominatorBased.String() != "D" {
		t.Error("algorithm labels must match the paper's figures (G, D, N)")
	}
}
