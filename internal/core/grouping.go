package core

import (
	"time"

	"repro/internal/join"
)

// runGrouping implements Algorithm 2. Both base relations are categorized
// into SS/SN/NN; Table 5 then decides each joined cell's fate:
//
//   - SS1 ⋈ SS2 ("yes") is emitted without checks (verified against the
//     augmented target sets when a ≥ 2; see the package comment),
//   - any cell containing NN ("no") is pruned without even joining,
//   - SS1 ⋈ SN2 and SN1 ⋈ SS2 ("likely") are checked against A1 ⋈ R2 and
//     R1 ⋈ A2 respectively, where A is the augmented SS target union,
//   - SN1 ⋈ SN2 ("may be") is checked against the full join R1 ⋈ R2.
//
// For Cartesian products (Sec 6.5) the SN sets are empty, so the algorithm
// degenerates to emitting SS1 × SS2 — exactly the paper's fast path.
func runGrouping(q Query) *Result {
	st := Stats{}
	e := newEngine(q, &st)

	// Phase 1: categorization and target-set augmentation.
	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	a1 := targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
	a2 := targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
	st.GroupingTime = time.Since(t0)
	recordSizes(&st, c1, c2)

	// Phase 2: join only the cells that can still produce skylines.
	t0 = time.Now()
	yes := e.pairs(c1.SS, c2.SS)
	likely1 := e.pairs(c1.SS, c2.SN)
	likely2 := e.pairs(c1.SN, c2.SS)
	maybe := e.pairs(c1.SN, c2.SN)
	st.JoinTime = time.Since(t0)
	st.Candidates = len(likely1) + len(likely2) + len(maybe)

	// Phase 3: verify candidates against their target joins.
	t0 = time.Now()
	skyline := make([]join.Pair, 0, len(yes))
	if e.a >= 2 {
		// Paper erratum: with two or more aggregate attributes SS ⋈ SS
		// tuples can be dominated; verify them against A1 ⋈ A2.
		chk := e.newChecker(a1, a2)
		for _, p := range yes {
			if !chk.dominates(p.Attrs) {
				skyline = append(skyline, p)
			}
		}
	} else {
		skyline = append(skyline, yes...)
		st.YesEmitted = len(yes)
	}

	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())
	if len(likely1) > 0 {
		chk := e.newChecker(a1, all2)
		for _, p := range likely1 {
			if !chk.dominates(p.Attrs) {
				skyline = append(skyline, p)
			}
		}
	}
	if len(likely2) > 0 {
		chk := e.newChecker(all1, a2)
		for _, p := range likely2 {
			if !chk.dominates(p.Attrs) {
				skyline = append(skyline, p)
			}
		}
	}
	if len(maybe) > 0 {
		chk := e.newChecker(all1, all2)
		for _, p := range maybe {
			if !chk.dominates(p.Attrs) {
				skyline = append(skyline, p)
			}
		}
	}
	st.RemainingTime = time.Since(t0)

	return &Result{Skyline: skyline, Stats: st}
}

func recordSizes(st *Stats, c1, c2 Categorization) {
	st.SS1, st.SN1, st.NN1 = len(c1.SS), len(c1.SN), len(c1.NN)
	st.SS2, st.SN2, st.NN2 = len(c2.SS), len(c2.SN), len(c2.NN)
}
