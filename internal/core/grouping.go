package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/join"
)

// runGrouping implements Algorithm 2 on the unified execution path. Both
// base relations are categorized into SS/SN/NN; Table 5 then decides each
// joined cell's fate:
//
//   - SS1 ⋈ SS2 ("yes") is emitted without checks (verified against the
//     augmented target sets when a ≥ 2; see the package comment),
//   - any cell containing NN ("no") is pruned without even joining,
//   - SS1 ⋈ SN2 and SN1 ⋈ SS2 ("likely") are checked against A1 ⋈ R2 and
//     R1 ⋈ A2 respectively, where A is the augmented SS target union,
//   - SN1 ⋈ SN2 ("may be") is checked against the full join R1 ⋈ R2.
//
// For Cartesian products (Sec 6.5) the SN sets are empty, so the algorithm
// degenerates to emitting SS1 × SS2 — exactly the paper's fast path.
//
// The one loop serves every execution mode: workers > 1 categorizes the
// relations concurrently and runs one persistent work-stealing pool that
// every large cell's verification is chunked onto; a non-nil emit streams
// each tuple the moment its cell confirms it (the "yes" cell right after
// categorization — the progressiveness argument of Sec. 6.1) instead of
// collecting the answer.
func runGrouping(ctx context.Context, q Query, o ExecOptions) (*Result, error) {
	workers, emitFn, limit := o.Workers, o.Emit, o.Limit
	st := Stats{}
	e := newEngineResident(q, &st, o.Resident)
	e.scalarVerify = o.scalarVerify
	if workers > 1 {
		e.pool = newWorkerPool(e, workers)
		defer e.pool.close()
	}

	// Phase 1: categorization and target-set augmentation. The two
	// relations are independent, so the parallel mode runs them
	// concurrently.
	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	var c1, c2 Categorization
	var a1, a2 []int
	if workers > 1 {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c1 = Categorize(q.R1, k1p, e.cond, Left)
			a1 = targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
		}()
		go func() {
			defer wg.Done()
			c2 = Categorize(q.R2, k2p, e.cond, Right)
			a2 = targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
		}()
		wg.Wait()
	} else {
		c1 = Categorize(q.R1, k1p, e.cond, Left)
		c2 = Categorize(q.R2, k2p, e.cond, Right)
		a1 = targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
		a2 = targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
	}
	st.GroupingTime = time.Since(t0)
	recordSizes(&st, c1, c2)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var skyline []join.Pair
	out := sink(func(p join.Pair) bool { skyline = append(skyline, p); return true })
	if emitFn != nil {
		out = func(p join.Pair) bool { return emitFn(detach(p)) }
	}
	if limit > 0 {
		// A reached cap reads as an early stop: the run ends with exactly
		// limit confirmed tuples and skips all remaining verification.
		inner := out
		emitted := 0
		out = func(p join.Pair) bool {
			if !inner(p) {
				return false
			}
			emitted++
			return emitted < limit
		}
	}

	// Phases 2+3: materialize and verify the surviving cells in streaming
	// order. The "yes" cell is unchecked when a ≤ 1; with a ≥ 2 the
	// paper's theorem fails (see the package comment) and it is verified
	// against the augmented target join like any other cell.
	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())
	cells := []struct {
		left, right       []int // candidate cell
		chkLeft, chkRight []int // verification target lists
		yes               bool
	}{
		{c1.SS, c2.SS, a1, a2, true},
		{c1.SS, c2.SN, a1, all2, false},
		{c1.SN, c2.SS, all1, a2, false},
		{c1.SN, c2.SN, all1, all2, false},
	}
	for _, cell := range cells {
		t0 = time.Now()
		candidates := e.pairs(cell.left, cell.right)
		st.JoinTime += time.Since(t0)
		if cell.yes && e.a < 2 {
			// Unchecked emission is still the whole answer for Cartesian
			// products (no SN cells), so it polls the context like the
			// verification loops do.
			st.YesEmitted = len(candidates)
			for n, p := range candidates {
				if n%cancelEvery == 0 && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				if !out(p) {
					return &Result{Skyline: skyline, Stats: st}, nil
				}
			}
			continue
		}
		if !cell.yes {
			st.Candidates += len(candidates)
		}
		t0 = time.Now()
		// A limit behaves like a stream on the serial path: verify tuple
		// by tuple so the cap stops mid-cell, not after the whole cell's
		// batched sweep (with Workers > 1 the cap stays cell-granular,
		// like Emit).
		more, err := verifyCell(ctx, e, emitFn != nil || limit > 0, candidates, cell.chkLeft, cell.chkRight, out)
		st.RemainingTime += time.Since(t0)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return &Result{Skyline: skyline, Stats: st}, nil
}

func recordSizes(st *Stats, c1, c2 Categorization) {
	st.SS1, st.SN1, st.NN1 = len(c1.SS), len(c1.SN), len(c1.NN)
	st.SS2, st.SN2, st.NN2 = len(c2.SS), len(c2.SN), len(c2.NN)
}
