package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Maintainer keeps a KSJQ answer current while base tuples are inserted —
// the update-heavy setting the paper cites as related work (Siddique &
// Morimoto, DBKDA'10) and a natural operational need for a system that
// serves the query continuously.
//
// Insertions are genuinely incremental because k-dominant skylines are
// insert-monotone: an existing dominator never disappears, so a
// non-skyline tuple can never resurface. One insert into R1 costs
//
//	|new pairs| target-checked against the (updated) full join, plus
//	|current skyline| × |new pairs| displacement tests,
//
// instead of recomputing from scratch. Deletions break monotonicity
// (removing a dominator can resurrect arbitrary tuples), so Delete* falls
// back to a full recompute with the grouping algorithm; the API exists so
// callers need no special-casing.
type Maintainer struct {
	q      Query
	sky    map[[2]int]join.Pair
	closed bool
	// res optionally shares prebuilt index structures with absorb (see
	// UseResident); ignored whenever it no longer matches the relations.
	res *Resident
	// stats accumulates incremental work since construction.
	inserted   int
	recomputes int
}

// ErrMaintainerClosed is returned by every mutating method after Close.
// Closing releases the maintained skyline; a closed maintainer cannot be
// reopened — build a new one.
var ErrMaintainerClosed = errors.New("core: maintainer closed")

// NewMaintainer computes the initial answer with the grouping algorithm
// and returns a maintainer positioned on it. The relations inside q are
// owned by the maintainer afterwards: callers must not mutate them except
// through Insert/Delete (or Append + Absorb when an external writer shares
// the relations).
func NewMaintainer(q Query) (*Maintainer, error) {
	res, err := Run(q, Grouping)
	if err != nil {
		return nil, err
	}
	return newMaintainer(q, res.Skyline), nil
}

// NewMaintainerFrom returns a maintainer positioned on a previously
// computed answer instead of recomputing it: skyline must be exactly the
// k-dominant skyline of q as the relations currently stand (e.g. a result
// the answer cache is holding at the relations' current version). The cost
// is one validation plus copying the skyline — this is how the query
// service promotes a cached answer to a live-maintained one for free when
// the first insert arrives.
func NewMaintainerFrom(q Query, skyline []join.Pair) (*Maintainer, error) {
	if err := q.Validate(Grouping); err != nil {
		return nil, err
	}
	return newMaintainer(q, skyline), nil
}

func newMaintainer(q Query, skyline []join.Pair) *Maintainer {
	m := &Maintainer{q: q, sky: make(map[[2]int]join.Pair, len(skyline))}
	for _, p := range skyline {
		// Detach from whatever arena the caller's result lives in: the
		// skyline map is long-lived.
		m.sky[[2]int{p.Left, p.Right}] = detach(p)
	}
	return m
}

// Close releases the maintained skyline and marks the maintainer closed:
// every later mutating call returns ErrMaintainerClosed, and Skyline
// returns nil (distinguishable from a legitimately empty answer, which is
// a non-nil empty slice). Close is idempotent and always returns nil; the
// error return exists so io.Closer-shaped call sites compose.
func (m *Maintainer) Close() error {
	m.closed = true
	m.sky = nil
	m.res = nil // don't pin shared index structures past the lifecycle
	return nil
}

// Closed reports whether Close has been called.
func (m *Maintainer) Closed() bool { return m.closed }

// InsertLeft adds a tuple to R1 and updates the skyline. The tuple's ID is
// assigned by the maintainer. It returns the number of skyline tuples
// displaced and the number of new pairs admitted.
func (m *Maintainer) InsertLeft(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, true)
}

// InsertRight adds a tuple to R2 and updates the skyline.
func (m *Maintainer) InsertRight(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, false)
}

func (m *Maintainer) insert(t dataset.Tuple, left bool) (displaced, admitted int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	id, err := r.Append(t)
	if err != nil {
		return 0, 0, err
	}
	return m.absorb(id, left)
}

// AbsorbLeft folds into the skyline the R1 tuple at index id that an
// external writer already appended to the relation (via Relation.Append).
// It exists for writers that fan one physical insert out to several
// maintainers sharing a relation — the query service's insert path:
// exactly one maintainer (or the writer itself) appends the tuple, every
// other maintainer absorbs it. Each appended tuple must be absorbed
// exactly once, in append order.
func (m *Maintainer) AbsorbLeft(id int) (displaced, admitted int, err error) {
	return m.absorbChecked(id, true)
}

// AbsorbRight is AbsorbLeft for the R2 side.
func (m *Maintainer) AbsorbRight(id int) (displaced, admitted int, err error) {
	return m.absorbChecked(id, false)
}

func (m *Maintainer) absorbChecked(id int, left bool) (displaced, admitted int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if id < 0 || id >= r.Len() {
		return 0, 0, fmt.Errorf("core: absorb index %d out of range [0,%d)", id, r.Len())
	}
	return m.absorb(id, left)
}

// UseResident lets the next absorbs reuse prebuilt index structures (a
// Resident over the relations' current, post-append state) instead of
// rebuilding the full-R2 index and probe orders per call — writers that
// fan one insert out to many maintainers over the same relation pair
// build one Resident and hand it to all of them. A resident that no
// longer matches the relations (e.g. after a further insert) is ignored,
// never an error.
func (m *Maintainer) UseResident(res *Resident) { m.res = res }

// absorb updates the skyline for the already-appended tuple r[id].
func (m *Maintainer) absorb(id int, left bool) (displaced, admitted int, err error) {
	m.inserted++

	// New joined pairs introduced by the tuple.
	st := Stats{}
	res := m.res
	if res != nil && !res.matches(m.q) {
		res = nil
	}
	e := newEngineResident(m.q, &st, res)
	var newPairs []join.Pair
	if left {
		newPairs = e.pairs([]int{id}, allIndices(m.q.R2.Len()))
	} else {
		newPairs = e.pairs(allIndices(m.q.R1.Len()), []int{id})
	}
	if len(newPairs) == 0 {
		return 0, 0, nil
	}

	// Displacement: existing skyline members k-dominated by a new pair.
	for key, p := range m.sky {
		for _, np := range newPairs {
			if e.pairKDominates(np.Left, np.Right, p.Attrs) {
				delete(m.sky, key)
				displaced++
				break
			}
		}
	}

	// Admission: new pairs not k-dominated by any pair of the updated
	// join (the checker's target pruning applies as usual).
	chk := e.newChecker(allIndices(m.q.R1.Len()), allIndices(m.q.R2.Len()))
	for _, np := range newPairs {
		if !chk.dominates(np.Attrs) {
			key := [2]int{np.Left, np.Right}
			// Count only genuinely new members: a self-join absorbs the
			// (new, new) pair from both sides, and it must not show up as
			// two admissions.
			if _, ok := m.sky[key]; !ok {
				admitted++
			}
			// Detach from the per-insert materialization arena: the skyline
			// map is long-lived and must not pin the whole insert's pairs.
			m.sky[key] = detach(np)
		}
	}
	return displaced, admitted, nil
}

// DeleteLeft removes the R1 tuple at index idx. Deletion is handled by a
// full recompute (see the type comment); tuple IDs above idx shift down by
// one, matching slice semantics.
func (m *Maintainer) DeleteLeft(idx int) error { return m.delete(idx, true) }

// DeleteRight removes the R2 tuple at index idx.
func (m *Maintainer) DeleteRight(idx int) error { return m.delete(idx, false) }

func (m *Maintainer) delete(idx int, left bool) error {
	if m.closed {
		return ErrMaintainerClosed
	}
	// A delete can restore a relation to a length a shared resident was
	// built at while changing its contents — the one mutation the
	// resident's (pointer, length) staleness check cannot see — so drop
	// it here rather than risk absorbing through a stale index later.
	m.res = nil
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if err := r.Delete(idx); err != nil {
		return err // dataset's bounds check; nothing has been mutated
	}
	res, err := Run(m.q, Grouping)
	if err != nil {
		return err
	}
	m.recomputes++
	m.sky = make(map[[2]int]join.Pair, len(res.Skyline))
	for _, p := range res.Skyline {
		m.sky[[2]int{p.Left, p.Right}] = p
	}
	return nil
}

// Skyline returns the current answer, sorted by (Left, Right), or nil if
// the maintainer is closed. A live maintainer of an empty answer returns a
// non-nil empty slice, so nil is unambiguous.
func (m *Maintainer) Skyline() []join.Pair {
	if m.closed {
		return nil
	}
	out := make([]join.Pair, 0, len(m.sky))
	for _, p := range m.sky {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Len returns the current skyline size without copying.
func (m *Maintainer) Len() int { return len(m.sky) }

// Counters reports maintenance activity: incremental insert/absorb
// operations processed (a self-joined tuple absorbed on both sides counts
// as two operations) and full recomputes triggered by deletions.
func (m *Maintainer) Counters() (inserted, recomputes int) {
	return m.inserted, m.recomputes
}

// sortedKeys is a test helper exposing deterministic iteration.
func (m *Maintainer) sortedKeys() [][2]int {
	keys := make([][2]int, 0, len(m.sky))
	for k := range m.sky {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
