package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Maintainer keeps a KSJQ answer current while base tuples are inserted —
// the update-heavy setting the paper cites as related work (Siddique &
// Morimoto, DBKDA'10) and a natural operational need for a system that
// serves the query continuously.
//
// Insertions are genuinely incremental because k-dominant skylines are
// insert-monotone: an existing dominator never disappears, so a
// non-skyline tuple can never resurface. One insert into R1 costs
//
//	|new pairs| target-checked against the (updated) full join, plus
//	|current skyline| × |new pairs| displacement tests,
//
// instead of recomputing from scratch. Deletions break monotonicity
// (removing a dominator can resurrect arbitrary tuples), so Delete* falls
// back to a full recompute with the grouping algorithm; the API exists so
// callers need no special-casing.
type Maintainer struct {
	q   Query
	sky map[[2]int]join.Pair
	// stats accumulates incremental work since construction.
	inserted   int
	recomputes int
}

// ErrMaintainerClosed is reserved for future lifecycle management.
var ErrMaintainerClosed = errors.New("core: maintainer closed")

// NewMaintainer computes the initial answer with the grouping algorithm
// and returns a maintainer positioned on it. The relations inside q are
// owned by the maintainer afterwards: callers must not mutate them except
// through Insert/Delete.
func NewMaintainer(q Query) (*Maintainer, error) {
	res, err := Run(q, Grouping)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{q: q, sky: make(map[[2]int]join.Pair, len(res.Skyline))}
	for _, p := range res.Skyline {
		m.sky[[2]int{p.Left, p.Right}] = p
	}
	return m, nil
}

// InsertLeft adds a tuple to R1 and updates the skyline. The tuple's ID is
// assigned by the maintainer. It returns the number of skyline tuples
// displaced and the number of new pairs admitted.
func (m *Maintainer) InsertLeft(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, true)
}

// InsertRight adds a tuple to R2 and updates the skyline.
func (m *Maintainer) InsertRight(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, false)
}

func (m *Maintainer) insert(t dataset.Tuple, left bool) (displaced, admitted int, err error) {
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if len(t.Attrs) != r.D() {
		return 0, 0, fmt.Errorf("%w: tuple has %d attributes, relation %s requires %d",
			dataset.ErrBadSchema, len(t.Attrs), r.Name, r.D())
	}
	// Same invariant dataset.New enforces: a NaN band has no position in
	// the band-sorted join index, and this is the one path that mutates a
	// relation after construction.
	if math.IsNaN(t.Band) {
		return 0, 0, fmt.Errorf("%w: tuple has NaN band", dataset.ErrBadSchema)
	}
	t.ID = r.Len()
	r.Tuples = append(r.Tuples, t)
	m.inserted++

	// New joined pairs introduced by the tuple.
	st := Stats{}
	e := newEngine(m.q, &st)
	var newPairs []join.Pair
	if left {
		newPairs = e.pairs([]int{t.ID}, allIndices(m.q.R2.Len()))
	} else {
		newPairs = e.pairs(allIndices(m.q.R1.Len()), []int{t.ID})
	}
	if len(newPairs) == 0 {
		return 0, 0, nil
	}

	// Displacement: existing skyline members k-dominated by a new pair.
	for key, p := range m.sky {
		for _, np := range newPairs {
			if e.pairKDominates(np.Left, np.Right, p.Attrs) {
				delete(m.sky, key)
				displaced++
				break
			}
		}
	}

	// Admission: new pairs not k-dominated by any pair of the updated
	// join (the checker's target pruning applies as usual).
	chk := e.newChecker(allIndices(m.q.R1.Len()), allIndices(m.q.R2.Len()))
	for _, np := range newPairs {
		if !chk.dominates(np.Attrs) {
			// Detach from the per-insert materialization arena: the skyline
			// map is long-lived and must not pin the whole insert's pairs.
			m.sky[[2]int{np.Left, np.Right}] = detach(np)
			admitted++
		}
	}
	return displaced, admitted, nil
}

// DeleteLeft removes the R1 tuple at index idx. Deletion is handled by a
// full recompute (see the type comment); tuple IDs above idx shift down by
// one, matching slice semantics.
func (m *Maintainer) DeleteLeft(idx int) error { return m.delete(idx, true) }

// DeleteRight removes the R2 tuple at index idx.
func (m *Maintainer) DeleteRight(idx int) error { return m.delete(idx, false) }

func (m *Maintainer) delete(idx int, left bool) error {
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if idx < 0 || idx >= r.Len() {
		return fmt.Errorf("core: delete index %d out of range [0,%d)", idx, r.Len())
	}
	r.Tuples = append(r.Tuples[:idx], r.Tuples[idx+1:]...)
	for i := range r.Tuples {
		r.Tuples[i].ID = i
	}
	res, err := Run(m.q, Grouping)
	if err != nil {
		return err
	}
	m.recomputes++
	m.sky = make(map[[2]int]join.Pair, len(res.Skyline))
	for _, p := range res.Skyline {
		m.sky[[2]int{p.Left, p.Right}] = p
	}
	return nil
}

// Skyline returns the current answer, sorted by (Left, Right).
func (m *Maintainer) Skyline() []join.Pair {
	out := make([]join.Pair, 0, len(m.sky))
	for _, p := range m.sky {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Len returns the current skyline size without copying.
func (m *Maintainer) Len() int { return len(m.sky) }

// Counters reports maintenance activity: tuples inserted incrementally and
// full recomputes triggered by deletions.
func (m *Maintainer) Counters() (inserted, recomputes int) {
	return m.inserted, m.recomputes
}

// sortedKeys is a test helper exposing deterministic iteration.
func (m *Maintainer) sortedKeys() [][2]int {
	keys := make([][2]int, 0, len(m.sky))
	for k := range m.sky {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
