package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Maintainer keeps a KSJQ answer current while base tuples are inserted —
// the update-heavy setting the paper cites as related work (Siddique &
// Morimoto, DBKDA'10) and a natural operational need for a system that
// serves the query continuously.
//
// Insertions are genuinely incremental because k-dominant skylines are
// insert-monotone: an existing dominator never disappears, so a
// non-skyline tuple can never resurface. One insert into R1 costs
//
//	|new pairs| target-checked against the (updated) full join, plus
//	|current skyline| × |new pairs| displacement tests,
//
// instead of recomputing from scratch. Deletions break monotonicity in the
// opposite direction — removing a dominator can resurrect previously
// dominated tuples, but can never displace a surviving member — so
// Delete*/RetractBatch evict members referencing deleted rows and
// re-verify only the resurrection candidates some removed pair dominated
// (see retract.go); batches large relative to the relation fall back to a
// full recompute, mirroring the absorb side's hybrid.
type Maintainer struct {
	q      Query
	sky    map[[2]int]join.Pair
	closed bool
	// res optionally shares prebuilt index structures with absorb (see
	// UseResident); ignored whenever it no longer matches the relations.
	res *Resident
	// stats accumulates incremental work since construction.
	inserted   int
	recomputes int
}

// ErrMaintainerClosed is returned by every mutating method after Close.
// Closing releases the maintained skyline; a closed maintainer cannot be
// reopened — build a new one.
var ErrMaintainerClosed = errors.New("core: maintainer closed")

// NewMaintainer computes the initial answer with the grouping algorithm
// and returns a maintainer positioned on it. The relations inside q are
// owned by the maintainer afterwards: callers must not mutate them except
// through Insert/Delete (or Append + Absorb when an external writer shares
// the relations).
func NewMaintainer(q Query) (*Maintainer, error) {
	res, err := Run(q, Grouping)
	if err != nil {
		return nil, err
	}
	return newMaintainer(q, res.Skyline), nil
}

// NewMaintainerFrom returns a maintainer positioned on a previously
// computed answer instead of recomputing it: skyline must be exactly the
// k-dominant skyline of q as the relations currently stand (e.g. a result
// the answer cache is holding at the relations' current version). The cost
// is one validation plus copying the skyline — this is how the query
// service promotes a cached answer to a live-maintained one for free when
// the first insert arrives.
func NewMaintainerFrom(q Query, skyline []join.Pair) (*Maintainer, error) {
	if err := q.Validate(Grouping); err != nil {
		return nil, err
	}
	return newMaintainer(q, skyline), nil
}

func newMaintainer(q Query, skyline []join.Pair) *Maintainer {
	m := &Maintainer{q: q, sky: make(map[[2]int]join.Pair, len(skyline))}
	for _, p := range skyline {
		// Detach from whatever arena the caller's result lives in: the
		// skyline map is long-lived.
		m.sky[[2]int{p.Left, p.Right}] = detach(p)
	}
	return m
}

// Close releases the maintained skyline and marks the maintainer closed:
// every later mutating call returns ErrMaintainerClosed, and Skyline
// returns nil (distinguishable from a legitimately empty answer, which is
// a non-nil empty slice). Close is idempotent and always returns nil; the
// error return exists so io.Closer-shaped call sites compose.
func (m *Maintainer) Close() error {
	m.closed = true
	m.sky = nil
	m.res = nil // don't pin shared index structures past the lifecycle
	return nil
}

// Closed reports whether Close has been called.
func (m *Maintainer) Closed() bool { return m.closed }

// InsertLeft adds a tuple to R1 and updates the skyline. The tuple's ID is
// assigned by the maintainer. It returns the number of skyline tuples
// displaced and the number of new pairs admitted.
func (m *Maintainer) InsertLeft(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, true)
}

// InsertRight adds a tuple to R2 and updates the skyline.
func (m *Maintainer) InsertRight(t dataset.Tuple) (displaced, admitted int, err error) {
	return m.insert(t, false)
}

func (m *Maintainer) insert(t dataset.Tuple, left bool) (displaced, admitted int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	id, err := r.Append(t)
	if err != nil {
		return 0, 0, err
	}
	return m.absorb(id, left)
}

// AbsorbLeft folds into the skyline the R1 tuple at index id that an
// external writer already appended to the relation (via Relation.Append).
// It exists for writers that fan one physical insert out to several
// maintainers sharing a relation — the query service's insert path:
// exactly one maintainer (or the writer itself) appends the tuple, every
// other maintainer absorbs it. Each appended tuple must be absorbed
// exactly once, in append order.
func (m *Maintainer) AbsorbLeft(id int) (displaced, admitted int, err error) {
	return m.absorbChecked(id, true)
}

// AbsorbRight is AbsorbLeft for the R2 side.
func (m *Maintainer) AbsorbRight(id int) (displaced, admitted int, err error) {
	return m.absorbChecked(id, false)
}

func (m *Maintainer) absorbChecked(id int, left bool) (displaced, admitted int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if id < 0 || id >= r.Len() {
		return 0, 0, fmt.Errorf("core: absorb index %d out of range [0,%d)", id, r.Len())
	}
	return m.absorb(id, left)
}

// UseResident lets the next absorbs reuse prebuilt index structures (a
// Resident over the relations' current, post-append state) instead of
// rebuilding the full-R2 index and probe orders per call — writers that
// fan one insert out to many maintainers over the same relation pair
// build one Resident and hand it to all of them. A resident that no
// longer matches the relations (e.g. after a further insert) is ignored,
// never an error.
func (m *Maintainer) UseResident(res *Resident) { m.res = res }

// AbsorbBatchLeft folds into the skyline a whole batch of R1 tuples an
// external writer already appended (via Relation.AppendBatch): ids are the
// appended row indices, each absorbed exactly once. One call does the work
// of absorbing every id in sequence — one engine, one materialization of
// all new pairs, one blocked displacement sweep of the current members
// against them, and one blocked admission sweep against the updated join —
// so the per-insert setup cost is paid once per batch; a batch large
// relative to the relation (see absorbRecomputeFraction) switches to a
// from-scratch recompute instead, which is cheaper there. The resulting
// skyline is identical to sequential per-id absorbs; the (displaced,
// admitted) totals can group differently — a pair a sequential run would
// admit and then displace within the same batch is simply never admitted
// here.
func (m *Maintainer) AbsorbBatchLeft(ids []int) (displaced, admitted int, err error) {
	return m.absorbBatchChecked(ids, true)
}

// AbsorbBatchRight is AbsorbBatchLeft for the R2 side.
func (m *Maintainer) AbsorbBatchRight(ids []int) (displaced, admitted int, err error) {
	return m.absorbBatchChecked(ids, false)
}

// AbsorbBatch dispatches to AbsorbBatchLeft or AbsorbBatchRight.
func (m *Maintainer) AbsorbBatch(side Side, ids []int) (displaced, admitted int, err error) {
	return m.absorbBatchChecked(ids, side == Left)
}

func (m *Maintainer) absorbBatchChecked(ids []int, left bool) (displaced, admitted int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	for _, id := range ids {
		if id < 0 || id >= r.Len() {
			return 0, 0, fmt.Errorf("core: absorb index %d out of range [0,%d)", id, r.Len())
		}
	}
	if len(ids) == 0 {
		return 0, 0, nil
	}
	return m.absorbIDs(ids, left)
}

// absorb updates the skyline for the already-appended tuple r[id].
func (m *Maintainer) absorb(id int, left bool) (displaced, admitted int, err error) {
	return m.absorbIDs([]int{id}, left)
}

// absorbRecomputeFraction is the batch-size threshold of the hybrid
// absorb: a batch of b ids against a (post-append) relation of n rows
// takes the from-scratch recompute path when b*absorbRecomputeFraction
// >= n. Incremental absorption pays per new pair, so its cost grows
// linearly with the batch while a recompute's is fixed; past roughly a
// 1/8 growth the recompute wins, and per-tuple absorbs (b = 1) never
// come near the threshold.
const absorbRecomputeFraction = 8

// absorbIDs updates the skyline for the already-appended tuples ids on one
// side: the shared core of the per-tuple and batched absorb paths.
func (m *Maintainer) absorbIDs(ids []int, left bool) (displaced, admitted int, err error) {
	m.inserted += len(ids)

	// New joined pairs introduced by the batch. For a left batch that is
	// ids × R2 — which, R2 including any rows this same physical batch
	// appended there (self-join), covers the new×new pairs too.
	st := Stats{}
	res := m.res
	if res != nil && !res.matches(m.q) {
		res = nil
	}
	rel := m.q.R2
	if left {
		rel = m.q.R1
	}
	if len(ids)*absorbRecomputeFraction >= rel.Len() {
		return m.recomputeDiff(res)
	}
	e := newEngineResident(m.q, &st, res)
	all1 := allIndices(m.q.R1.Len())
	all2 := allIndices(m.q.R2.Len())
	var newPairs []join.Pair
	if left {
		newPairs = e.pairs(ids, all2)
	} else {
		newPairs = e.pairs(all1, ids)
	}
	if len(newPairs) == 0 {
		return 0, 0, nil
	}
	ctx := context.Background()

	// Displacement: an existing member leaves exactly when some new pair
	// k-dominates it, and a checker restricted to the batch's side
	// enumerates precisely the new pairs — so the blocked verification
	// kernel sweeps all current members against them at once instead of
	// testing |sky| × |newPairs| combinations pair by pair.
	if len(m.sky) > 0 {
		keys := make([][2]int, 0, len(m.sky))
		members := make([]join.Pair, 0, len(m.sky))
		for key, p := range m.sky {
			keys = append(keys, key)
			members = append(members, p)
		}
		var chk *checker
		if left {
			chk = e.newChecker(ids, all2)
		} else {
			chk = e.newChecker(all1, ids)
		}
		chk.ensurePartners()
		keep := e.keepBits(len(members))
		if err := chk.verifyRange(ctx, members, 0, len(members), keep); err != nil {
			return 0, 0, err
		}
		for i := range members {
			if keep[i>>6]&(uint64(1)<<uint(i&63)) == 0 {
				delete(m.sky, keys[i])
				displaced++
			}
		}
	}

	// Admission: new pairs not k-dominated by any pair of the updated
	// join (the checker's target pruning applies as usual), verified
	// through the same blocked kernel.
	chk := e.newChecker(all1, all2)
	chk.ensurePartners()
	keep := e.keepBits(len(newPairs))
	if err := chk.verifyRange(ctx, newPairs, 0, len(newPairs), keep); err != nil {
		return 0, 0, err
	}
	for i := range newPairs {
		if keep[i>>6]&(uint64(1)<<uint(i&63)) == 0 {
			continue
		}
		np := newPairs[i]
		key := [2]int{np.Left, np.Right}
		// Count only genuinely new members: a self-join absorbs the
		// (new, new) pair from both sides, and it must not show up as
		// two admissions.
		if _, ok := m.sky[key]; !ok {
			admitted++
		}
		// Detach from the per-batch materialization arena: the skyline
		// map is long-lived and must not pin the whole batch's pairs.
		m.sky[key] = detach(np)
	}
	return displaced, admitted, nil
}

// recomputeDiff repositions the maintainer on a from-scratch grouping run
// — the large-batch arm of the hybrid absorb — and derives the displaced/
// admitted counts by diffing the old and new member sets. The counts are
// exactly what the incremental arm would report: insert-monotonicity
// means every member that leaves was displaced and every member that
// appears is a newly admitted pair.
func (m *Maintainer) recomputeDiff(res *Resident) (displaced, admitted int, err error) {
	var out *Result
	if res != nil {
		out, err = res.Exec(context.Background(), m.q, ExecOptions{Algorithm: Grouping})
	} else {
		out, err = Run(m.q, Grouping)
	}
	if err != nil {
		return 0, 0, err
	}
	m.recomputes++
	next := make(map[[2]int]join.Pair, len(out.Skyline))
	for _, p := range out.Skyline {
		key := [2]int{p.Left, p.Right}
		if _, ok := m.sky[key]; !ok {
			admitted++
		}
		next[key] = detach(p)
	}
	displaced = len(m.sky) + admitted - len(next)
	m.sky = next
	return displaced, admitted, nil
}

// DeleteLeft removes the R1 tuple at index idx and updates the skyline
// through the retract path (RetractBatch): members referencing the row are
// evicted, survivors renumbered (tuple IDs above idx shift down by one,
// matching slice semantics), and resurrection candidates re-verified. For
// a self-join the one physical delete shrinks both sides at once.
func (m *Maintainer) DeleteLeft(idx int) error { return m.delete(idx, true) }

// DeleteRight removes the R2 tuple at index idx.
func (m *Maintainer) DeleteRight(idx int) error { return m.delete(idx, false) }

func (m *Maintainer) delete(idx int, left bool) error {
	if m.closed {
		return ErrMaintainerClosed
	}
	// A delete can restore a relation to a length a shared resident was
	// built at while changing its contents — the one mutation the
	// resident's (pointer, length) staleness check cannot see — so drop
	// it here rather than risk absorbing through a stale index later.
	// (The service's delete path re-hands a freshly retracted resident via
	// UseResident after the physical delete, which is the one way to keep
	// one across a delete.)
	m.res = nil
	r := m.q.R2
	if left {
		r = m.q.R1
	}
	if idx < 0 || idx >= r.Len() {
		return r.Delete(idx) // dataset's bounds error; nothing is mutated
	}
	ids := []int{idx}
	var rs *RetractSet
	snap := !RetractPrefersRecompute(1, r.Len()-1)
	var del *dataset.Relation
	if snap {
		del = SnapshotRows(r, ids)
	}
	if err := r.DeleteBatch(ids); err != nil {
		return err
	}
	self := m.q.R1 == m.q.R2
	if snap {
		rs = NewRetractSet(m.q, left || self, !left || self, del)
	}
	_, _, err := m.RetractBatch(left || self, !left || self, ids, rs)
	return err
}

// Skyline returns the current answer, sorted by (Left, Right), or nil if
// the maintainer is closed. A live maintainer of an empty answer returns a
// non-nil empty slice, so nil is unambiguous.
func (m *Maintainer) Skyline() []join.Pair {
	if m.closed {
		return nil
	}
	out := make([]join.Pair, 0, len(m.sky))
	for _, p := range m.sky {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Len returns the current skyline size without copying.
func (m *Maintainer) Len() int { return len(m.sky) }

// Counters reports maintenance activity: incremental insert/absorb
// operations processed (a self-joined tuple absorbed on both sides counts
// as two operations) and full recomputes — triggered by absorb or retract
// batches past their hybrid thresholds.
func (m *Maintainer) Counters() (inserted, recomputes int) {
	return m.inserted, m.recomputes
}

// sortedKeys is a test helper exposing deterministic iteration.
func (m *Maintainer) sortedKeys() [][2]int {
	keys := make([][2]int, 0, len(m.sky))
	for k := range m.sky {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
