package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

func randTuple(rng *rand.Rand, d, groups, domain int) dataset.Tuple {
	attrs := make([]float64, d)
	for j := range attrs {
		attrs[j] = float64(rng.Intn(domain))
	}
	return dataset.Tuple{
		Key:   fmt.Sprintf("g%d", rng.Intn(groups)),
		Band:  float64(rng.Intn(8)),
		Attrs: attrs,
	}
}

// TestMaintainerMatchesRecompute interleaves random insertions into both
// relations and compares the incremental answer against a from-scratch run
// after every step.
func TestMaintainerMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 12; trial++ {
		agg := rng.Intn(3)
		local := 1 + rng.Intn(3)
		groups := 1 + rng.Intn(3)
		r1 := randRelation(rng, "r1", 4+rng.Intn(10), local, agg, groups, 5)
		r2 := randRelation(rng, "r2", 4+rng.Intn(10), local, agg, groups, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)

		m, err := NewMaintainer(q)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			tup := randTuple(rng, local+agg, groups, 5)
			if rng.Intn(2) == 0 {
				_, _, err = m.InsertLeft(tup)
			} else {
				_, _, err = m.InsertRight(tup)
			}
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			got := &Result{Skyline: m.Skyline()}
			assertSameSkyline(t, fmt.Sprintf("trial %d step %d (k=%d)", trial, step, q.K), got, fresh)
		}
	}
}

func TestMaintainerDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	r1 := randRelation(rng, "r1", 40, 2, 0, 2, 5)
	r2 := randRelation(rng, "r2", 40, 2, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		if rng.Intn(2) == 0 && q.R1.Len() > 2 {
			if err := m.DeleteLeft(rng.Intn(q.R1.Len())); err != nil {
				t.Fatal(err)
			}
		} else if q.R2.Len() > 2 {
			if err := m.DeleteRight(rng.Intn(q.R2.Len())); err != nil {
				t.Fatal(err)
			}
		}
		fresh, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		got := &Result{Skyline: m.Skyline()}
		assertSameSkyline(t, fmt.Sprintf("delete step %d", step), got, fresh)
	}
	// Single-row deletes against relations this size must stay on the
	// incremental retract path — recomputing on every delete was the old
	// fallback behavior.
	_, recomputes := m.Counters()
	if recomputes != 0 {
		t.Errorf("single-row deletes took the recompute arm %d times; want the incremental retract path", recomputes)
	}
	if err := m.DeleteLeft(999); err == nil {
		t.Error("out-of-range delete accepted")
	}
}

func TestMaintainerDisplacement(t *testing.T) {
	// A dominant insert must displace the current skyline.
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{5, 5}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{5, 5}}})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("initial skyline size %d, want 1", m.Len())
	}
	displaced, admitted, err := m.InsertLeft(dataset.Tuple{Key: "a", Attrs: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if displaced != 1 || admitted != 1 {
		t.Errorf("displaced=%d admitted=%d, want 1/1", displaced, admitted)
	}
	keys := m.sortedKeys()
	if len(keys) != 1 || keys[0] != [2]int{1, 0} {
		t.Errorf("skyline keys = %v, want [[1 0]]", keys)
	}
}

func TestMaintainerInsertNoPartners(t *testing.T) {
	// Inserting a tuple whose key matches nothing changes nothing.
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	displaced, admitted, err := m.InsertLeft(dataset.Tuple{Key: "zzz", Attrs: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if displaced != 0 || admitted != 0 {
		t.Errorf("displaced=%d admitted=%d, want 0/0", displaced, admitted)
	}
	if m.Len() != 1 {
		t.Errorf("skyline size %d, want 1", m.Len())
	}
}

// TestMaintainerAbsorbSharedRelation drives the service-layer insert
// pattern: two maintainers over queries sharing a relation, one physical
// append, every maintainer absorbing it — each must track a from-scratch
// recompute of its own query.
func TestMaintainerAbsorbSharedRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 6; trial++ {
		local := 1 + rng.Intn(3)
		agg := rng.Intn(2)
		groups := 1 + rng.Intn(3)
		shared := randRelation(rng, "shared", 6+rng.Intn(8), local, agg, groups, 5)
		rB := randRelation(rng, "b", 6+rng.Intn(8), local, agg, groups, 5)
		rC := randRelation(rng, "c", 6+rng.Intn(8), local, agg, groups, 5)
		qB := Query{R1: shared, R2: rB, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		qB.K = qB.KMin()
		qC := Query{R1: shared, R2: rC, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		qC.K = qC.Width()

		mB, err := NewMaintainer(qB)
		if err != nil {
			t.Fatal(err)
		}
		mC, err := NewMaintainer(qC)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6; step++ {
			id, err := shared.Append(randTuple(rng, local+agg, groups, 5))
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := mB.AbsorbLeft(id); err != nil {
				t.Fatal(err)
			}
			if _, _, err := mC.AbsorbLeft(id); err != nil {
				t.Fatal(err)
			}
			for _, c := range []struct {
				q Query
				m *Maintainer
			}{{qB, mB}, {qC, mC}} {
				fresh, err := Run(c.q, Grouping)
				if err != nil {
					t.Fatal(err)
				}
				got := &Result{Skyline: c.m.Skyline()}
				assertSameSkyline(t, fmt.Sprintf("absorb trial %d step %d", trial, step), got, fresh)
			}
		}
	}
}

func TestMaintainerAbsorbOutOfRange(t *testing.T) {
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	m, err := NewMaintainer(Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AbsorbLeft(5); err == nil {
		t.Error("out-of-range absorb accepted")
	}
	if _, _, err := m.AbsorbRight(-1); err == nil {
		t.Error("negative absorb accepted")
	}
}

// TestMaintainerFrom checks a maintainer seeded from a previously computed
// answer behaves exactly like one that computed it itself.
func TestMaintainerFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	r1 := randRelation(rng, "r1", 10, 2, 1, 2, 5)
	r2 := randRelation(rng, "r2", 10, 2, 1, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 4}
	res, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainerFrom(q, res.Skyline)
	if err != nil {
		t.Fatal(err)
	}
	got := &Result{Skyline: m.Skyline()}
	assertSameSkyline(t, "seeded initial", got, res)
	for step := 0; step < 5; step++ {
		if _, _, err := m.InsertRight(randTuple(rng, 3, 2, 5)); err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		got := &Result{Skyline: m.Skyline()}
		assertSameSkyline(t, fmt.Sprintf("seeded step %d", step), got, fresh)
	}
	if _, err := NewMaintainerFrom(Query{}, nil); err == nil {
		t.Error("invalid query accepted by NewMaintainerFrom")
	}
}

// TestMaintainerClose locks in the lifecycle: Close is idempotent, every
// mutating method returns ErrMaintainerClosed afterwards, and Skyline
// returns nil (not an empty slice) once closed.
func TestMaintainerClose(t *testing.T) {
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{2, 2}}})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Closed() {
		t.Fatal("fresh maintainer reports closed")
	}
	if sky := m.Skyline(); sky == nil {
		t.Fatal("live maintainer returned nil skyline")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !m.Closed() {
		t.Error("Closed() false after Close")
	}
	if sky := m.Skyline(); sky != nil {
		t.Errorf("closed Skyline() = %v, want nil", sky)
	}
	if m.Len() != 0 {
		t.Errorf("closed Len() = %d, want 0", m.Len())
	}
	tup := dataset.Tuple{Key: "a", Attrs: []float64{0, 0}}
	if _, _, err := m.InsertLeft(tup); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("InsertLeft after Close: err = %v, want ErrMaintainerClosed", err)
	}
	if _, _, err := m.InsertRight(tup); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("InsertRight after Close: err = %v, want ErrMaintainerClosed", err)
	}
	if _, _, err := m.AbsorbLeft(0); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("AbsorbLeft after Close: err = %v, want ErrMaintainerClosed", err)
	}
	if _, _, err := m.AbsorbRight(0); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("AbsorbRight after Close: err = %v, want ErrMaintainerClosed", err)
	}
	if err := m.DeleteLeft(0); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("DeleteLeft after Close: err = %v, want ErrMaintainerClosed", err)
	}
	if err := m.DeleteRight(0); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("DeleteRight after Close: err = %v, want ErrMaintainerClosed", err)
	}
	// The relations themselves are untouched by Close.
	if r1.Len() != 1 || r2.Len() != 1 {
		t.Error("Close mutated the relations")
	}
}

func TestMaintainerSchemaCheck(t *testing.T) {
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 1}}})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.InsertLeft(dataset.Tuple{Key: "a", Attrs: []float64{1}}); !errors.Is(err, dataset.ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
	if _, err := NewMaintainer(Query{}); err == nil {
		t.Error("invalid query accepted by NewMaintainer")
	}
}
