package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/join"
)

var allJoinConditions = []join.Condition{
	join.Equality, join.Cross, join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq,
}

// randSubset returns a random subset of 0..n-1 (possibly empty, possibly
// nil — the engine must treat both as "no tuples", never "all tuples").
func randSubset(rng *rand.Rand, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TestPropertyEnginePairsMatchScanOracle: for all six join conditions and
// random index lists, the engine's indexed pairs/countPairs/forEachPair
// agree exactly with a nested cond.Matches scan over the same lists.
func TestPropertyEnginePairsMatchScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		r1 := randRelation(rng, "r1", 2+rng.Intn(25), 2, 1, 3, 5)
		r2 := randRelation(rng, "r2", 2+rng.Intn(25), 2, 1, 3, 5)
		for _, cond := range allJoinConditions {
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}, K: 4}
			st := Stats{}
			e := newEngine(q, &st)
			for sub := 0; sub < 4; sub++ {
				left := randSubset(rng, r1.Len())
				right := randSubset(rng, r2.Len())
				label := fmt.Sprintf("trial %d cond %v sub %d", trial, cond, sub)

				// Oracle: nested scan over the same lists.
				want := map[[2]int]bool{}
				for _, i := range left {
					for _, j := range right {
						if cond.MatchesAt(r1, i, r2, j) {
							want[[2]int{i, j}] = true
						}
					}
				}

				got := map[[2]int]bool{}
				e.forEachPair(left, right, func(i, j int) bool {
					if got[[2]int{i, j}] {
						t.Fatalf("%s: forEachPair visited (%d,%d) twice", label, i, j)
					}
					got[[2]int{i, j}] = true
					return false
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: forEachPair visited %v, want %v", label, got, want)
				}
				if n := e.countPairs(left, right); n != len(want) {
					t.Fatalf("%s: countPairs=%d, want %d", label, n, len(want))
				}
				pairs := e.pairs(left, right)
				if len(pairs) != len(want) {
					t.Fatalf("%s: pairs materialized %d, want %d", label, len(pairs), len(want))
				}
				for _, p := range pairs {
					if !want[[2]int{p.Left, p.Right}] {
						t.Fatalf("%s: pairs materialized spurious (%d,%d)", label, p.Left, p.Right)
					}
					attrs := join.CombineAt(r1, r2, p.Left, p.Right, e.agg, nil)
					if !reflect.DeepEqual(p.Attrs, attrs) {
						t.Fatalf("%s: pair (%d,%d) attrs %v, want %v", label, p.Left, p.Right, p.Attrs, attrs)
					}
				}
			}
		}
	}
}

// TestPropertyCheckerMatchesScanOracle: checker.dominates agrees with a
// first-principles scan — some join-compatible pair from the lists
// k-dominates the candidate — for all conditions and random candidates.
func TestPropertyCheckerMatchesScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		r1 := randRelation(rng, "r1", 2+rng.Intn(20), 2, 1, 3, 4)
		r2 := randRelation(rng, "r2", 2+rng.Intn(20), 2, 1, 3, 4)
		for _, cond := range allJoinConditions {
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}, K: 4}
			st := Stats{}
			e := newEngine(q, &st)
			left := randSubset(rng, r1.Len())
			right := randSubset(rng, r2.Len())
			chk := e.newChecker(left, right)
			candidates := e.pairs(allIndices(r1.Len()), allIndices(r2.Len()))
			for _, cand := range candidates {
				want := false
				for _, i := range left {
					for _, j := range right {
						if cond.MatchesAt(r1, i, r2, j) && e.pairKDominates(i, j, cand.Attrs) {
							want = true
						}
					}
				}
				if got := chk.dominates(cand.Attrs); got != want {
					t.Fatalf("trial %d cond %v cand (%d,%d): dominates=%v, oracle=%v",
						trial, cond, cand.Left, cand.Right, got, want)
				}
			}
		}
	}
}

// TestPropertyParallelSharedIndexMatchesSerial: RunParallel — whose workers
// share one prebuilt checker index — returns exactly Run(q, Grouping) for
// every join condition, worker count, and aggregate arity.
func TestPropertyParallelSharedIndexMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 25; trial++ {
		agg := rng.Intn(3)
		r1 := randRelation(rng, "r1", 5+rng.Intn(30), 2, agg, 1+rng.Intn(3), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(30), 2, agg, 1+rng.Intn(3), 5)
		for _, cond := range allJoinConditions {
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
			q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
			serial, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				parallel, err := RunParallel(q, workers)
				if err != nil {
					t.Fatal(err)
				}
				assertSameSkyline(t, fmt.Sprintf("trial %d cond %v workers %d", trial, cond, workers), parallel, serial)
			}
		}
	}
}
