package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

func appendTail(t *testing.T, r *dataset.Relation, rng *rand.Rand, n, d, groups, domain int) []int {
	t.Helper()
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		ts[i] = randTuple(rng, d, groups, domain)
	}
	first, err := r.AppendBatch(ts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = first + i
	}
	return ids
}

// TestResidentAbsorbMatchesRebuild pins the appendable snapshot: a
// Resident carried across batch appends with Absorb must serve queries
// exactly like one rebuilt from scratch over the grown relations.
func TestResidentAbsorbMatchesRebuild(t *testing.T) {
	for _, cond := range []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandGreaterEq} {
		t.Run(cond.Token(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cond)*17 + 3))
			local, agg, groups := 2, 1, 3
			r1 := randRelation(rng, "r1", 12, local, agg, groups, 6)
			r2 := randRelation(rng, "r2", 14, local, agg, groups, 6)
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
			q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)

			res, err := NewResident(q)
			if err != nil {
				t.Fatal(err)
			}
			// Two rounds per side, so the second absorb exercises state the
			// first one already advanced (leftSums, extended index).
			for round := 0; round < 2; round++ {
				ids1 := appendTail(t, r1, rng, 3+round, local+agg, groups, 6)
				if err := res.Absorb(Left, ids1); err != nil {
					t.Fatal(err)
				}
				ids2 := appendTail(t, r2, rng, 4, local+agg, groups, 6)
				if err := res.Absorb(Right, ids2); err != nil {
					t.Fatal(err)
				}
			}

			fresh, err := NewResident(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.n1 != fresh.n1 || res.n2 != fresh.n2 {
				t.Fatalf("absorbed lengths (%d,%d), rebuilt (%d,%d)", res.n1, res.n2, fresh.n1, fresh.n2)
			}
			if len(res.leftSorted) != len(fresh.leftSorted) {
				t.Fatalf("leftSorted sizes diverge: %d vs %d", len(res.leftSorted), len(fresh.leftSorted))
			}
			for i := range res.leftSorted {
				if res.leftSorted[i] != fresh.leftSorted[i] {
					t.Fatalf("leftSorted[%d] = %d absorbed, %d rebuilt", i, res.leftSorted[i], fresh.leftSorted[i])
				}
			}
			got, err := res.Exec(context.Background(), q, ExecOptions{Algorithm: Grouping})
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Exec(context.Background(), q, ExecOptions{Algorithm: Grouping})
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, "absorbed resident", got, want)
		})
	}
}

// TestResidentAbsorbRejectsBadTails pins the contract: ids must be exactly
// the appended tail, already present in the relation.
func TestResidentAbsorbRejectsBadTails(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r1 := randRelation(rng, "r1", 8, 2, 0, 2, 5)
	r2 := randRelation(rng, "r2", 8, 2, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 3}
	res, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Absorb(Left, []int{9}); err == nil {
		t.Fatal("Absorb accepted a gap in the tail")
	} else if !strings.Contains(err.Error(), "left") {
		t.Fatalf("error %q does not name the side", err)
	}
	if err := res.Absorb(Right, []int{8}); err == nil {
		t.Fatal("Absorb accepted ids beyond the relation's length")
	}
	// A valid empty absorb is a no-op.
	if err := res.Absorb(Left, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorbBatchMatchesSequential pins the maintainer's batch entry
// points to the per-tuple path: one AbsorbBatch over the appended tail
// must land on the same skyline as absorbing the ids one at a time, and
// both must match a from-scratch recompute.
func TestAbsorbBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 8; trial++ {
		agg := rng.Intn(2)
		local := 1 + rng.Intn(3)
		groups := 1 + rng.Intn(3)
		mk := func(suffix string) Query {
			q := Query{
				R1:   randRelation(rand.New(rand.NewSource(int64(trial)*2+10)), "r1"+suffix, 6+trial, local, agg, groups, 5),
				R2:   randRelation(rand.New(rand.NewSource(int64(trial)*2+11)), "r2"+suffix, 6+trial, local, agg, groups, 5),
				Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
			}
			return q
		}
		qSeq, qBat := mk("s"), mk("b")
		qSeq.K = qSeq.KMin() + rng.Intn(qSeq.Width()-qSeq.KMin()+1)
		qBat.K = qSeq.K

		mSeq, err := NewMaintainer(qSeq)
		if err != nil {
			t.Fatal(err)
		}
		mBat, err := NewMaintainer(qBat)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3; step++ {
			n := 1 + rng.Intn(5)
			ts := make([]dataset.Tuple, n)
			for i := range ts {
				ts[i] = randTuple(rng, local+agg, groups, 5)
			}
			left := rng.Intn(2) == 0
			relSeq, relBat := qSeq.R2, qBat.R2
			if left {
				relSeq, relBat = qSeq.R1, qBat.R1
			}
			for _, tup := range ts {
				id, err := relSeq.Append(tup)
				if err != nil {
					t.Fatal(err)
				}
				if left {
					_, _, err = mSeq.AbsorbLeft(id)
				} else {
					_, _, err = mSeq.AbsorbRight(id)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			first, err := relBat.AppendBatch(ts)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]int, n)
			for i := range ids {
				ids[i] = first + i
			}
			side := Right
			if left {
				side = Left
			}
			if _, _, err := mBat.AbsorbBatch(side, ids); err != nil {
				t.Fatal(err)
			}

			label := fmt.Sprintf("trial %d step %d side %v n %d", trial, step, side, n)
			batch := &Result{Skyline: mBat.Skyline()}
			assertSameSkyline(t, label+" (batch vs sequential)", batch, &Result{Skyline: mSeq.Skyline()})
			fresh, err := Run(qBat, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, label+" (batch vs recompute)", batch, fresh)
		}
		mSeq.Close()
		mBat.Close()
	}
}

// TestAbsorbBatchRejectsOutOfRange pins the batch range check.
func TestAbsorbBatchRejectsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := Query{
		R1:   randRelation(rng, "r1", 6, 2, 0, 2, 5),
		R2:   randRelation(rng, "r2", 6, 2, 0, 2, 5),
		Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
		K:    3,
	}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.AbsorbBatchLeft([]int{6}); err == nil {
		t.Fatal("AbsorbBatchLeft accepted an id beyond the relation")
	}
	if _, _, err := m.AbsorbBatchRight([]int{-1}); err == nil {
		t.Fatal("AbsorbBatchRight accepted a negative id")
	}
}
