package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/join"
)

// execGrouping runs the grouping algorithm with explicit kernel/worker
// knobs, returning the canonical-order skyline and the stats.
func execGrouping(t testing.TB, q Query, workers int, scalar bool, emitMode bool, limit int) ([]join.Pair, Stats) {
	t.Helper()
	o := ExecOptions{Algorithm: Grouping, Workers: workers, Limit: limit, scalarVerify: scalar}
	var streamed []join.Pair
	if emitMode {
		o.Emit = func(p join.Pair) bool { streamed = append(streamed, p); return true }
	}
	res, err := Exec(context.Background(), q, o)
	if err != nil {
		t.Fatal(err)
	}
	if emitMode {
		sortPairs(streamed)
		return streamed, res.Stats
	}
	return res.Skyline, res.Stats
}

// TestKernelEquivalenceOracle pins the blocked verification kernel to the
// per-candidate oracle arm: across all six join conditions, serial and
// pooled execution, and collect/Emit/Limit modes, the skylines must be
// byte-identical (indices and attribute vectors) and DominationTests equal
// — the determinism documented on Stats.DominationTests.
func TestKernelEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(611))
	conds := []join.Condition{
		join.Equality, join.Cross,
		join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq,
	}
	for _, cond := range conds {
		for trial := 0; trial < 6; trial++ {
			agg := rng.Intn(3) // a >= 2 puts even the "yes" cell through the kernel
			r1 := randRelation(rng, "r1", 20+rng.Intn(60), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
			r2 := randRelation(rng, "r2", 20+rng.Intn(60), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
			q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
			label := fmt.Sprintf("cond=%v trial=%d k=%d", cond, trial, q.K)

			var serialTests int64
			for _, workers := range []int{1, 4} {
				blocked, bst := execGrouping(t, q, workers, false, false, 0)
				scalar, sst := execGrouping(t, q, workers, true, false, 0)
				if !reflect.DeepEqual(blocked, scalar) {
					t.Fatalf("%s workers=%d: blocked and scalar skylines differ", label, workers)
				}
				if bst.DominationTests != sst.DominationTests {
					t.Fatalf("%s workers=%d: blocked %d tests, scalar %d",
						label, workers, bst.DominationTests, sst.DominationTests)
				}
				if workers == 1 {
					serialTests = bst.DominationTests
				} else if bst.DominationTests != serialTests {
					t.Fatalf("%s: pooled run did %d tests, serial %d — count must not depend on workers",
						label, bst.DominationTests, serialTests)
				}

				emitB, ebst := execGrouping(t, q, workers, false, true, 0)
				emitS, esst := execGrouping(t, q, workers, true, true, 0)
				if !reflect.DeepEqual(emitB, emitS) {
					t.Fatalf("%s workers=%d emit: blocked and scalar streams differ", label, workers)
				}
				if ebst.DominationTests != esst.DominationTests {
					t.Fatalf("%s workers=%d emit: blocked %d tests, scalar %d",
						label, workers, ebst.DominationTests, esst.DominationTests)
				}
				if !reflect.DeepEqual(emitB, blocked) {
					t.Fatalf("%s workers=%d: emit stream and collected skyline differ", label, workers)
				}

				limB, _ := execGrouping(t, q, workers, false, false, 3)
				limS, _ := execGrouping(t, q, workers, true, false, 3)
				if !reflect.DeepEqual(limB, limS) {
					t.Fatalf("%s workers=%d limit: blocked and scalar capped answers differ", label, workers)
				}
			}
		}
	}
}

// skewedQuery builds a single-join-group workload: every tuple shares one
// key, so the grouping loop sees one giant cell instead of many small ones
// — the shape that serialized the old per-cell striding.
func skewedQuery(n int) Query {
	rng := rand.New(rand.NewSource(618))
	r1 := randRelation(rng, "r1", n, 5, 2, 1, 1000)
	r2 := randRelation(rng, "r2", n, 5, 2, 1, 1000)
	return Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 11}
}

// TestPoolSharesSkewedCell pins the work-stealing property the pool exists
// for: on a single giant cell, Workers=4 must engage more than one worker
// (the old static per-cell sharding kept extra workers idle on skewed
// cells in wall-clock terms; the pool's cursor splits the cell into chunks
// any worker can claim). Chunk accounting is also checked: claims must
// cover the candidate list exactly once.
func TestPoolSharesSkewedCell(t *testing.T) {
	// n=700 gives a ~3000-candidate cell (a dozen chunks, ~200ms serial) —
	// long enough that even a single-CPU scheduler preempts the first
	// worker and lets others reach the cursor.
	q := skewedQuery(700)
	serial, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if totalChunks(serial.Stats) < 4 {
		t.Fatalf("instance too small: verified cells %v, need a cell well over %d candidates for the pool path",
			verifiedCellSizes(serial.Stats), poolChunk)
	}

	defer func() { poolStatsHook = nil }()
	// Engagement depends on the scheduler preempting a busy worker so
	// another can reach the cursor; on a loaded single-CPU runner one
	// attempt can lose that race, so allow a few.
	for attempt := 0; attempt < 5; attempt++ {
		var chunks []int64
		poolStatsHook = func(c []int64) { chunks = append([]int64(nil), c...) }
		par, err := RunParallel(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSkyline(t, "skewed cell", par, serial)
		if par.Stats.DominationTests != serial.Stats.DominationTests {
			t.Fatalf("pooled run did %d tests, serial %d", par.Stats.DominationTests, serial.Stats.DominationTests)
		}
		if chunks == nil {
			t.Fatal("poolStatsHook not called: pool never ran")
		}
		engaged, total := 0, int64(0)
		for _, c := range chunks {
			if c > 0 {
				engaged++
			}
			total += c
		}
		if want := totalChunks(par.Stats); total != want {
			t.Fatalf("workers claimed %d chunks, want %d (each candidate range exactly once)", total, want)
		}
		if engaged > 1 {
			return
		}
		t.Logf("attempt %d: only %d worker engaged (chunks %v), retrying", attempt, engaged, chunks)
	}
	t.Fatal("Workers=4 never engaged more than one worker on a single giant cell")
}

// totalChunks returns how many cursor claims a grouping run's verified
// cells should produce. Only cells larger than poolChunk go to the pool;
// the skewed workload has one such cell per verified group, each claimed
// in ceil(n/poolChunk) chunks.
func totalChunks(st Stats) int64 {
	var total int64
	for _, n := range verifiedCellSizes(st) {
		if n > poolChunk {
			total += int64((n + poolChunk - 1) / poolChunk)
		}
	}
	return total
}

// verifiedCellSizes reconstructs the per-cell candidate counts of the
// skewed single-group workload from its stats: with one join group the
// four cells are SS×SS (yes; verified here because a=2), SS×SN, SN×SS and
// SN×SN.
func verifiedCellSizes(st Stats) []int {
	return []int{
		st.SS1 * st.SS2,
		st.SS1 * st.SN2,
		st.SN1 * st.SS2,
		st.SN1 * st.SN2,
	}
}

// BenchmarkVerifyCellAllocs measures the steady-state allocations of a
// full grouping run — the scratch-pooling target: keep bitsets, partner
// caches, worker state and subset indexes must be reused across cells, so
// repeated runs settle near the per-run floor (result slices, the join
// arenas, categorization).
func BenchmarkVerifyCellAllocs(b *testing.B) {
	q := skewedQuery(220)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if workers > 1 {
					_, err = RunParallel(q, workers)
				} else {
					_, err = Run(q, Grouping)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkewedCell is the scheduling acceptance benchmark: one giant
// join cell, verified with 1, 2 and 4 workers. Under the old static
// per-cell striding extra workers idled on skew; with the pool's shared
// cursor the speedup should track the worker count on a multi-core
// machine (on a single-CPU runner all settings time alike).
func BenchmarkSkewedCell(b *testing.B) {
	q := skewedQuery(400)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunParallel(q, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
