package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

// This file is the columnar-layout equivalence oracle: query results must
// be byte-identical no matter how a relation's columnar storage came to be
// — built in one shot, grown row by row through Append, round-tripped
// through the row-shaped Tuple views, or deep-cloned — and no matter
// whether the two sides of a join share a symbol table (self-join identity
// translation) or own disjoint ones (cross-relation translation). The
// variants cover every construction path a row-model implementation would
// have taken, so agreement across them pins the struct-of-arrays layout to
// the row semantics.

// layoutVariants returns logically identical relations with different
// storage histories.
func layoutVariants(t *testing.T, r *dataset.Relation) map[string]*dataset.Relation {
	t.Helper()
	rows := r.Rows()

	appended, err := dataset.New(r.Name, r.Local, r.Agg, rows[:1])
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[1:] {
		if _, err := appended.Append(row); err != nil {
			t.Fatal(err)
		}
	}

	roundtrip, err := dataset.New(r.Name, r.Local, r.Agg, rows)
	if err != nil {
		t.Fatal(err)
	}

	return map[string]*dataset.Relation{
		"base":      r,
		"appended":  appended,
		"roundtrip": roundtrip,
		"cloned":    r.Clone(),
	}
}

// assertBytesIdentical compares two skylines exactly: same (Left, Right)
// pairs in the same order, and bit-identical attribute vectors.
func assertBytesIdentical(t *testing.T, label string, got, want []join.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: skyline sizes differ: %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Left != w.Left || g.Right != w.Right {
			t.Fatalf("%s: pair %d is (%d,%d), want (%d,%d)", label, i, g.Left, g.Right, w.Left, w.Right)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("%s: pair %d has %d attrs, want %d", label, i, len(g.Attrs), len(w.Attrs))
		}
		for j := range w.Attrs {
			if math.Float64bits(g.Attrs[j]) != math.Float64bits(w.Attrs[j]) {
				t.Fatalf("%s: pair %d attr %d = %v, want %v (bit-exact)", label, i, j, g.Attrs[j], w.Attrs[j])
			}
		}
	}
}

var oracleConditions = []join.Condition{
	join.Equality, join.Cross,
	join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq,
}

// TestLayoutEquivalenceOracle runs every algorithm over every join
// condition with mixed storage variants on both sides (including Workers>1
// for grouping) and demands byte-identical answers and identical
// categorization/work counters.
func TestLayoutEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for trial := 0; trial < 6; trial++ {
		agg := rng.Intn(2) * 2 // a=0 or a=2, exercising both aggregate paths
		r1 := randRelation(rng, "r1", 20+rng.Intn(30), 3, agg, 1+rng.Intn(4), 6)
		r2 := randRelation(rng, "r2", 20+rng.Intn(30), 3, agg, 1+rng.Intn(4), 6)
		v1 := layoutVariants(t, r1)
		v2 := layoutVariants(t, r2)
		// Pair up differently-built variants so cross-relation symbol
		// translation never sees two tables with a shared history.
		combos := [][2]string{
			{"appended", "roundtrip"},
			{"roundtrip", "cloned"},
			{"cloned", "appended"},
		}
		for _, cond := range oracleConditions {
			q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
			q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
			for _, alg := range Algorithms {
				want, err := Run(q, alg)
				if err != nil {
					t.Fatal(err)
				}
				for _, combo := range combos {
					vq := q
					vq.R1, vq.R2 = v1[combo[0]], v2[combo[1]]
					got, err := Run(vq, alg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d cond %v alg %v %s⋈%s", trial, cond, alg, combo[0], combo[1])
					assertBytesIdentical(t, label, got.Skyline, want.Skyline)
					if got.Stats.SS1 != want.Stats.SS1 || got.Stats.SN1 != want.Stats.SN1 ||
						got.Stats.SS2 != want.Stats.SS2 || got.Stats.SN2 != want.Stats.SN2 ||
						got.Stats.Candidates != want.Stats.Candidates ||
						got.Stats.YesEmitted != want.Stats.YesEmitted ||
						got.Stats.DominationTests != want.Stats.DominationTests {
						t.Fatalf("%s: work counters diverge: %+v vs %+v", label, got.Stats, want.Stats)
					}
				}
			}
			// Parallel grouping over mixed variants must agree too.
			par, err := Exec(context.Background(), Query{
				R1: v1["appended"], R2: v2["roundtrip"], Spec: q.Spec, K: q.K,
			}, ExecOptions{Algorithm: Grouping, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			wantG, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertBytesIdentical(t, fmt.Sprintf("trial %d cond %v parallel", trial, cond), par.Skyline, wantG.Skyline)
		}
	}
}

// TestLayoutEquivalenceSelfJoin pins the two equality probe paths against
// each other: a true self-join (R1 == R2, shared symbol table, identity
// translation) versus the same rows materialized as two independent
// relations (disjoint tables, cross-relation translation).
func TestLayoutEquivalenceSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(1703))
	for trial := 0; trial < 8; trial++ {
		r := randRelation(rng, "r", 15+rng.Intn(25), 3, 0, 1+rng.Intn(3), 5)
		other, err := dataset.New(r.Name, r.Local, r.Agg, r.Rows())
		if err != nil {
			t.Fatal(err)
		}
		for _, cond := range oracleConditions {
			q := Query{R1: r, R2: r, Spec: join.Spec{Cond: cond}}
			q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
			self, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			split := q
			split.R2 = other
			sep, err := Run(split, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertBytesIdentical(t, fmt.Sprintf("trial %d cond %v self vs split", trial, cond), sep.Skyline, self.Skyline)
		}
	}
}

// TestLayoutEquivalenceMaintainer drives the maintained-insert path over
// differently-built storage: maintainers positioned on different variants
// absorb the same insert stream and must stay byte-identical to each other
// and to a from-scratch run over the final rows.
func TestLayoutEquivalenceMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(1705))
	for _, cond := range oracleConditions {
		base1 := randRelation(rng, "r1", 25, 3, 0, 3, 6)
		base2 := randRelation(rng, "r2", 25, 3, 0, 3, 6)
		mkQuery := func(r1, r2 *dataset.Relation) Query {
			return Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond}, K: 4}
		}
		ma, err := NewMaintainer(mkQuery(base1, base2))
		if err != nil {
			t.Fatal(err)
		}
		alt1, err := dataset.New(base1.Name, base1.Local, base1.Agg, base1.Rows())
		if err != nil {
			t.Fatal(err)
		}
		mb, err := NewMaintainer(mkQuery(alt1, base2.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		for ins := 0; ins < 8; ins++ {
			tup := dataset.Tuple{
				// Mix existing keys with brand-new ones so inserts both hit
				// interned symbols and grow the table.
				Key:   fmt.Sprintf("g%d", rng.Intn(5)),
				Band:  float64(rng.Intn(8)),
				Attrs: []float64{float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6))},
			}
			left := ins%2 == 0
			var da, db int
			var aa, ab int
			if left {
				da, aa, err = ma.InsertLeft(tup)
				if err != nil {
					t.Fatal(err)
				}
				db, ab, err = mb.InsertLeft(tup)
			} else {
				da, aa, err = ma.InsertRight(tup)
				if err != nil {
					t.Fatal(err)
				}
				db, ab, err = mb.InsertRight(tup)
			}
			if err != nil {
				t.Fatal(err)
			}
			if da != db || aa != ab {
				t.Fatalf("cond %v insert %d: displaced/admitted diverge: (%d,%d) vs (%d,%d)", cond, ins, da, aa, db, ab)
			}
			assertBytesIdentical(t, fmt.Sprintf("cond %v insert %d", cond, ins), mb.Skyline(), ma.Skyline())
		}
		// The maintained answer must equal a cold run over the final rows.
		final, err := Run(mkQuery(base1, base2), Grouping)
		if err != nil {
			t.Fatal(err)
		}
		assertBytesIdentical(t, fmt.Sprintf("cond %v maintained vs cold", cond), ma.Skyline(), final.Skyline)
	}
}
