package core

import (
	"context"
	"fmt"

	"repro/internal/dom"
	"repro/internal/join"
)

// IsSkylineMember answers a point query: is the joined tuple
// R1[i] ⋈ R2[j] in the k-dominant skyline of q's join? It avoids computing
// the full answer — the pair is checked against its target sets only — so
// a single membership probe costs far less than Run. The pair must be
// join-compatible under q.Spec.
func IsSkylineMember(q Query, i, j int) (bool, error) {
	members, err := Membership(q, [][2]int{{i, j}})
	if err != nil {
		return false, err
	}
	return members[0], nil
}

// Membership tests many joined pairs without a deadline; see
// MembershipContext.
func Membership(q Query, pairs [][2]int) ([]bool, error) {
	return MembershipContext(context.Background(), q, pairs)
}

// MembershipContext tests many joined pairs at once, sharing one checker
// across probes. Each entry of pairs is a (R1 index, R2 index) pair; the
// result slice is parallel to it. The context is checked between probe
// batches, so a cancelled deadline aborts the scan with ctx.Err().
func MembershipContext(ctx context.Context, q Query, pairs [][2]int) ([]bool, error) {
	return membershipContext(ctx, q, pairs, nil)
}

// membershipContext is the shared implementation behind MembershipContext
// and Resident.Membership: res, when non-nil, seeds the probing engine
// with the prebuilt join index and base-point tables.
func membershipContext(ctx context.Context, q Query, pairs [][2]int, res *Resident) ([]bool, error) {
	if err := q.Validate(Grouping); err != nil {
		return nil, err
	}
	st := Stats{}
	e := newEngineResident(q, &st, res)
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if i < 0 || i >= q.R1.Len() || j < 0 || j >= q.R2.Len() {
			return nil, fmt.Errorf("core: pair (%d,%d) out of range", i, j)
		}
		if e.cond != join.Cross && !e.cond.MatchesAt(q.R1, i, q.R2, j) {
			return nil, fmt.Errorf("core: pair (%d,%d) is not join-compatible under %v", i, j, e.cond)
		}
	}
	chk := e.newChecker(allIndices(q.R1.Len()), allIndices(q.R2.Len()))
	agg := q.aggregator()
	buf := make([]float64, 0, q.Width())
	out := make([]bool, len(pairs))
	for n, pr := range pairs {
		if n%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		buf = join.CombineAt(q.R1, q.R2, pr[0], pr[1], agg, buf)
		out[n] = !chk.dominates(buf)
	}
	return out, nil
}

// AnyDominators reports, for each joined attribute vector, whether some
// joined tuple of q's join k-dominates it, without a deadline; see
// AnyDominatorsContext.
func AnyDominators(q Query, vectors [][]float64) ([]bool, error) {
	return anyDominatorsContext(context.Background(), q, vectors, nil)
}

// AnyDominatorsContext reports, for each joined attribute vector, whether
// some joined tuple of q's join k-dominates it. The vectors need not
// originate from q's relations — this is the primitive a distributed
// verifier uses to check foreign candidates against its local partition.
// Every vector must have q.Width() attributes. The context is polled
// between verification batches, so a cancelled deadline aborts the scan
// with ctx.Err().
func AnyDominatorsContext(ctx context.Context, q Query, vectors [][]float64) ([]bool, error) {
	return anyDominatorsContext(ctx, q, vectors, nil)
}

// anyDominatorsContext is the shared implementation behind
// AnyDominatorsContext and Resident.AnyDominators: res, when non-nil,
// seeds the checking engine with the prebuilt join index and base-point
// tables. A strictly monotonic aggregator gets the target-set checker;
// a non-strict one falls back to scanning the materialized join, where
// every joined vector is a potential dominator.
func anyDominatorsContext(ctx context.Context, q Query, vectors [][]float64, res *Resident) ([]bool, error) {
	strict := q.R1 == nil || q.R1.Agg == 0 || q.aggregator().Strict
	alg := Grouping
	if !strict {
		alg = Naive
	}
	if err := q.Validate(alg); err != nil {
		return nil, err
	}
	for i, v := range vectors {
		if len(v) != q.Width() {
			return nil, fmt.Errorf("core: vector %d has %d attributes, joined width is %d", i, len(v), q.Width())
		}
	}
	if !strict {
		return anyDominatorsScan(ctx, q, vectors)
	}
	st := Stats{}
	e := newEngineResident(q, &st, res)
	chk := e.newChecker(allIndices(q.R1.Len()), allIndices(q.R2.Len()))
	out := make([]bool, len(vectors))
	for i, v := range vectors {
		if i%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out[i] = chk.dominates(v)
	}
	return out, nil
}

// anyDominatorsScan is the non-strict arm: target-set pruning relies on
// strict monotonicity, so the full join is materialized and each vector is
// tested against every joined tuple, with an early exit once all vectors
// have found a dominator.
func anyDominatorsScan(ctx context.Context, q Query, vectors [][]float64) ([]bool, error) {
	pairs, err := join.Pairs(q.R1, q.R2, q.Spec)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(vectors))
	remaining := len(vectors)
	for n := range pairs {
		if n%cancelEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		a := pairs[n].Attrs
		for i, v := range vectors {
			if !out[i] && dom.KDominates(a, v, q.K) {
				out[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
	}
	return out, nil
}
