package core

import (
	"context"
	"time"

	"repro/internal/join"
	"repro/internal/kdominant"
)

// runNaive implements Algorithm 1: materialize the full join, then compute
// the k-dominant skyline of the joined relation with the Two-Scan
// Algorithm. Validation has already established schema compatibility, so
// the join cannot fail. The two phases are monolithic library calls, so
// cancellation is checked between them rather than inside.
func runNaive(ctx context.Context, q Query) (*Result, error) {
	st := Stats{}

	t0 := time.Now()
	pairs, err := join.Pairs(q.R1, q.R2, q.Spec)
	if err != nil {
		// Unreachable after Validate; kept as a loud failure rather than a
		// silent wrong answer.
		panic(err)
	}
	st.JoinTime = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	attrs := make([][]float64, len(pairs))
	for i := range pairs {
		attrs[i] = pairs[i].Attrs
	}
	idx := kdominant.TwoScan(attrs, q.K)
	skyline := make([]join.Pair, len(idx))
	for i, j := range idx {
		skyline[i] = pairs[j]
	}
	st.RemainingTime = time.Since(t0)

	return &Result{Skyline: skyline, Stats: st}, nil
}
