package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

// The flight example of Tables 1-3 and 6. Attribute order (no-aggregation
// layout): cost, dur, rtg, amn; all preferences are "lower is better"
// (paper footnote 2).
//
// Two errata in the paper's hand-made tables, verified by direct
// computation and encoded here:
//
//  1. Flight 28's amenities value is 39 (as printed twice in Table 3 and
//     Table 6), not 37 (Table 2). With 37, the joined tuple (18,28) would
//     be a 7-dominant skyline, contradicting Table 3's "no" verdict; with
//     39, (19,25) 7-dominates it exactly as the paper's Obs. 3 discussion
//     describes.
//  2. Flight 16 (452,3.6,20,36) 3-dominates flight 18 (451,3.7,20,37): it
//     is preferred-or-equal on dur, rtg, amn with strict preference on dur
//     and amn. Hence 18 is SN1 by Definitions 1-3, not SS1 as Table 1
//     prints. The final skyline verdicts are unchanged: (18,28) is
//     eliminated either way.
func paperFlights(t *testing.T) (f1, f2 *dataset.Relation) {
	t.Helper()
	f1 = dataset.MustNew("f1", 4, 0, []dataset.Tuple{
		{Key: "C", Attrs: []float64{448, 3.2, 40, 40}}, // 11
		{Key: "C", Attrs: []float64{468, 4.2, 50, 38}}, // 12
		{Key: "D", Attrs: []float64{456, 3.8, 60, 34}}, // 13
		{Key: "D", Attrs: []float64{460, 4.0, 70, 32}}, // 14
		{Key: "E", Attrs: []float64{450, 3.4, 30, 42}}, // 15
		{Key: "F", Attrs: []float64{452, 3.6, 20, 36}}, // 16
		{Key: "G", Attrs: []float64{472, 4.6, 80, 46}}, // 17
		{Key: "H", Attrs: []float64{451, 3.7, 20, 37}}, // 18
		{Key: "E", Attrs: []float64{451, 3.7, 40, 37}}, // 19
	})
	f2 = dataset.MustNew("f2", 4, 0, []dataset.Tuple{
		{Key: "D", Attrs: []float64{348, 2.2, 40, 36}}, // 21
		{Key: "D", Attrs: []float64{368, 3.2, 50, 34}}, // 22
		{Key: "C", Attrs: []float64{356, 2.8, 60, 30}}, // 23
		{Key: "C", Attrs: []float64{360, 3.0, 70, 28}}, // 24
		{Key: "E", Attrs: []float64{350, 2.4, 30, 38}}, // 25
		{Key: "F", Attrs: []float64{352, 2.6, 20, 32}}, // 26
		{Key: "G", Attrs: []float64{372, 3.6, 80, 42}}, // 27
		{Key: "H", Attrs: []float64{350, 2.4, 35, 39}}, // 28 (erratum 1)
	})
	return f1, f2
}

// flightNo translates the paper's flight numbers to tuple indices.
func flightNo(fno int) int {
	if fno >= 21 {
		return fno - 21
	}
	return fno - 11
}

func TestPaperTable12Categorization(t *testing.T) {
	f1, f2 := paperFlights(t)
	q := Query{R1: f1, R2: f2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	k1p, k2p := q.KPrimes()
	if k1p != 3 || k2p != 3 {
		t.Fatalf("k' = (%d,%d), want (3,3)", k1p, k2p)
	}
	c1 := Categorize(f1, k1p, join.Equality, Left)
	c2 := Categorize(f2, k2p, join.Equality, Right)

	want1 := map[int]Category{
		11: SS, 12: NN, 13: SN, 14: NN, 15: SN,
		16: SS, 17: SN, 18: SN /* erratum 2: paper prints SS */, 19: NN,
	}
	for fno, want := range want1 {
		if got := c1.Cat[flightNo(fno)]; got != want {
			t.Errorf("flight %d: category %v, want %v", fno, got, want)
		}
	}
	want2 := map[int]Category{
		21: SS, 22: NN, 23: SN, 24: NN, 25: SN, 26: SS, 27: SN, 28: SN,
	}
	for fno, want := range want2 {
		if got := c2.Cat[flightNo(fno)]; got != want {
			t.Errorf("flight %d: category %v, want %v", fno, got, want)
		}
	}
}

// paperVerdicts maps each joined pair of Table 3 to its skyline verdict.
var paperVerdicts = map[[2]int]bool{
	{11, 23}: true, {11, 24}: false,
	{12, 23}: false, {12, 24}: false,
	{13, 21}: true, {13, 22}: false,
	{14, 21}: false, {14, 22}: false,
	{15, 25}: true,
	{16, 26}: true,
	{17, 27}: false,
	{18, 28}: false,
	{19, 25}: false,
}

func TestPaperTable3Skyline(t *testing.T) {
	f1, f2 := paperFlights(t)
	q := Query{R1: f1, R2: f2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	for _, alg := range Algorithms {
		res, err := Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := make(map[[2]int]bool)
		for _, p := range res.Skyline {
			got[[2]int{p.Left + 11, p.Right + 21}] = true
		}
		for pair, want := range paperVerdicts {
			if got[pair] != want {
				t.Errorf("%v: pair (%d,%d) skyline = %v, want %v", alg, pair[0], pair[1], got[pair], want)
			}
		}
		if len(res.Skyline) != 4 {
			t.Errorf("%v: skyline size = %d, want 4", alg, len(res.Skyline))
		}
	}
}

// TestPaperTable6Aggregate reruns the example with cost aggregated
// (a = 1, l = 3, k = 6 over 7 joined attributes). Attribute layout per the
// dataset convention: locals [dur, rtg, amn] first, aggregate [cost] last.
// Table 6's verdicts match Table 3's: the same four pairs survive.
func TestPaperTable6Aggregate(t *testing.T) {
	reorder := func(r *dataset.Relation, name string) *dataset.Relation {
		tuples := make([]dataset.Tuple, r.Len())
		for i := 0; i < r.Len(); i++ {
			tup := r.Tuple(i)
			tuples[i] = dataset.Tuple{
				Key:   tup.Key,
				Attrs: []float64{tup.Attrs[1], tup.Attrs[2], tup.Attrs[3], tup.Attrs[0]},
			}
		}
		return dataset.MustNew(name, 3, 1, tuples)
	}
	f1, f2 := paperFlights(t)
	q := Query{
		R1:   reorder(f1, "f1agg"),
		R2:   reorder(f2, "f2agg"),
		Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
		K:    6,
	}
	k1p, k2p := q.KPrimes()
	if k1p != 3 || k2p != 3 {
		t.Fatalf("k' = (%d,%d), want (3,3) (k'' + a with k''=2, a=1)", k1p, k2p)
	}
	for _, alg := range Algorithms {
		res, err := Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := make(map[[2]int]bool)
		for _, p := range res.Skyline {
			got[[2]int{p.Left + 11, p.Right + 21}] = true
		}
		for pair, want := range paperVerdicts {
			if got[pair] != want {
				t.Errorf("%v: aggregate pair (%d,%d) skyline = %v, want %v", alg, pair[0], pair[1], got[pair], want)
			}
		}
	}
}

// TestPaperObservation2 checks the two SN1 ⋈ SN2 cases the paper singles
// out: (15,25) survives because its component dominators (11 and 21) are
// join-incompatible, while (17,27) dies because its dominators (16 and 26)
// share the stop-over city F.
func TestPaperObservation2(t *testing.T) {
	f1, f2 := paperFlights(t)
	q := Query{R1: f1, R2: f2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	res, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]bool)
	for _, p := range res.Skyline {
		got[[2]int{p.Left + 11, p.Right + 21}] = true
	}
	if !got[[2]int{15, 25}] {
		t.Error("(15,25) should be a k-dominant skyline (dominators cannot join)")
	}
	if got[[2]int{17, 27}] {
		t.Error("(17,27) should not be a k-dominant skyline ((16,26) dominates it)")
	}
}

// TestPaperTheorem1And2 spot-checks the fate table on the example: the
// SS ⋈ SS pair is in the answer, and every pair with an NN component is
// out.
func TestPaperTheorem1And2(t *testing.T) {
	f1, f2 := paperFlights(t)
	q := Query{R1: f1, R2: f2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	res, err := Run(q, DominatorBased)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]bool)
	for _, p := range res.Skyline {
		got[[2]int{p.Left + 11, p.Right + 21}] = true
	}
	if !got[[2]int{16, 26}] {
		t.Error("Theorem 1: (16,26) ∈ SS1 ⋈ SS2 must be a skyline")
	}
	for _, pair := range [][2]int{{11, 24}, {12, 23}, {12, 24}, {13, 22}, {14, 21}, {14, 22}, {19, 25}} {
		if got[pair] {
			t.Errorf("Theorem 2: (%d,%d) has an NN component and must not be a skyline", pair[0], pair[1])
		}
	}
}
