package core

import (
	"context"
	"fmt"
	"runtime"
)

// RunParallel evaluates the query with the parallelized grouping algorithm —
// the paper's future-work item ("extend the algorithms to work in
// parallel", Sec. 8). It is Exec with Workers set: the unified execution
// path categorizes the two base relations concurrently (they are
// independent) and shards each cell's candidate verification — the
// dominant cost — across workers, all probing one prebuilt read-only
// checker index over the same target lists.
//
// workers <= 0 selects GOMAXPROCS. The result is identical to
// Run(q, Grouping); only the phase timings change.
func RunParallel(q Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Exec(context.Background(), q, ExecOptions{Algorithm: Grouping, Workers: workers})
}

// Workers returns a human-readable description of the parallel degree, for
// CLI output.
func Workers(workers int) string {
	if workers <= 0 {
		return fmt.Sprintf("auto (%d)", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("%d", workers)
}
