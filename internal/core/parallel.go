package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/join"
)

// RunParallel evaluates the query with a parallelized grouping algorithm —
// the paper's future-work item ("extend the algorithms to work in
// parallel", Sec. 8). The structure of Algorithm 2 parallelizes naturally:
//
//   - the two base relations are categorized concurrently (they are
//     independent),
//   - the two target-set augmentations run concurrently,
//   - candidate verification — the dominant cost — is embarrassingly
//     parallel: candidates are sharded across workers, all probing one
//     prebuilt read-only checker index over the same target lists.
//
// workers <= 0 selects GOMAXPROCS. The result is identical to
// Run(q, Grouping); only the phase timings change.
func RunParallel(q Query, workers int) (*Result, error) {
	if err := q.Validate(Grouping); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	st := Stats{}
	e := newEngine(q, &st)

	// Phase 1: categorize both relations and build both target unions
	// concurrently.
	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	var c1, c2 Categorization
	var a1, a2 []int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c1 = Categorize(q.R1, k1p, e.cond, Left)
		a1 = targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
	}()
	go func() {
		defer wg.Done()
		c2 = Categorize(q.R2, k2p, e.cond, Right)
		a2 = targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
	}()
	wg.Wait()
	st.GroupingTime = time.Since(t0)
	recordSizes(&st, c1, c2)

	// Phase 2: enumerate the surviving cells.
	t0 = time.Now()
	yes := e.pairs(c1.SS, c2.SS)
	likely1 := e.pairs(c1.SS, c2.SN)
	likely2 := e.pairs(c1.SN, c2.SS)
	maybe := e.pairs(c1.SN, c2.SN)
	st.JoinTime = time.Since(t0)
	st.Candidates = len(likely1) + len(likely2) + len(maybe)

	// Phase 3: verify cells in parallel.
	t0 = time.Now()
	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())

	skyline := make([]join.Pair, 0, len(yes))
	if e.a >= 2 {
		skyline = append(skyline, filterParallel(e, workers, yes, a1, a2)...)
	} else {
		skyline = append(skyline, yes...)
		st.YesEmitted = len(yes)
	}
	skyline = append(skyline, filterParallel(e, workers, likely1, a1, all2)...)
	skyline = append(skyline, filterParallel(e, workers, likely2, all1, a2)...)
	skyline = append(skyline, filterParallel(e, workers, maybe, all1, all2)...)
	st.RemainingTime = time.Since(t0)

	sortPairs(skyline)
	compactAttrs(skyline)
	st.Total = time.Since(start)
	return &Result{Skyline: skyline, Stats: st}, nil
}

// filterParallel returns the candidates not dominated by any
// join-compatible pair from left × right, verifying shards concurrently.
// The checker — probe ordering plus join index — is built exactly once on
// the caller's engine and shared read-only by every worker; each worker
// binds it to a private engine only to keep its own stats counters.
func filterParallel(e *engine, workers int, candidates []join.Pair, left, right []int) []join.Pair {
	if len(candidates) == 0 {
		return nil
	}
	chk := e.newChecker(left, right)
	if workers > len(candidates) {
		workers = len(candidates)
	}
	type shardResult struct {
		keep  []join.Pair
		tests int64
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localStats := Stats{}
			wchk := chk.bind(newEngine(e.q, &localStats))
			var keep []join.Pair
			for i := w; i < len(candidates); i += workers {
				if !wchk.dominates(candidates[i].Attrs) {
					keep = append(keep, candidates[i])
				}
			}
			results[w] = shardResult{keep: keep, tests: localStats.DominationTests}
		}(w)
	}
	wg.Wait()
	var out []join.Pair
	for _, r := range results {
		out = append(out, r.keep...)
		e.stats.DominationTests += r.tests
	}
	return out
}

// Workers returns a human-readable description of the parallel degree, for
// CLI output.
func Workers(workers int) string {
	if workers <= 0 {
		return fmt.Sprintf("auto (%d)", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("%d", workers)
}
