package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/join"
)

// poolChunk is the candidate-range unit workers claim from a job's shared
// cursor. A multiple of 64, so two workers never touch the same keep-bitset
// word (each word belongs to exactly one chunk) and every chunk start is
// block-aligned for verifyRange. Small enough that a single skewed cell
// splits into many claims — the work-stealing that lets extra workers help
// on one giant cell — and large enough that the atomic Add amortizes to
// noise.
const poolChunk = 256

// poolJob is one cell's verification published to the pool: the job is
// sent once per worker and each receipt pulls chunks
// [cursor, cursor+poolChunk) until the candidate list is exhausted. tests
// accumulates every receipt's domination-test count atomically — a fast
// worker may receive the job more than once (and another not at all), so
// the count cannot live in per-worker slots; the atomic sum is
// distribution-independent because each candidate's tests depend only on
// the candidate. The coordinator's wg.Wait orders all Adds before the
// flush into the engine stats.
type poolJob struct {
	ctx        context.Context
	chk        *checker
	candidates []join.Pair
	keep       []uint64
	scalar     bool
	cursor     atomic.Int64
	tests      atomic.Int64
	wg         sync.WaitGroup
}

// workerPool is the persistent verification pool: one per Exec run with
// Workers > 1, spawned before the first cell and shut down when the run
// returns. Workers are long-lived goroutines, each owning a private engine
// (its own Stats, scratch, and checker binds) reused across every cell of
// the run — the per-cell goroutine spawn and its per-worker allocations
// are gone. Cells are split by chunk, not by cell: all workers pull from
// the active cell's cursor, so a single skewed cell is shared instead of
// serializing the run behind one goroutine.
type workerPool struct {
	e       *engine
	workers int
	jobs    chan *poolJob
	wg      sync.WaitGroup
	job     poolJob // the in-flight job, reused across cells (one at a time)
	// chunks[w] counts the chunks worker w claimed over the pool's
	// lifetime — the scheduling tests' observation point (via
	// poolStatsHook); reads are ordered by each job's wg.
	chunks []int64
}

// poolStatsHook, when non-nil, receives the per-worker claimed-chunk counts
// of each pool as it shuts down. Test instrumentation only.
var poolStatsHook func(chunksPerWorker []int64)

func newWorkerPool(e *engine, workers int) *workerPool {
	p := &workerPool{
		e:       e,
		workers: workers,
		jobs:    make(chan *poolJob),
		chunks:  make([]int64, workers),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.run(w)
	}
	return p
}

// run is one worker's loop: bind the job's checker to the private engine,
// drain chunks from the shared cursor, report the job's test count, next
// job. A cancelled context stops chunk claims within one chunk.
func (p *workerPool) run(w int) {
	defer p.wg.Done()
	local := Stats{}
	we := newEngine(p.e.q, &local)
	for job := range p.jobs {
		start := local.DominationTests
		chk := job.chk.bind(we)
		n := int64(len(job.candidates))
		for job.ctx.Err() == nil {
			lo := job.cursor.Add(poolChunk) - poolChunk
			if lo >= n {
				break
			}
			hi := lo + poolChunk
			if hi > n {
				hi = n
			}
			p.chunks[w]++
			if job.scalar {
				_ = chk.verifyRangeScalar(job.ctx, job.candidates, int(lo), int(hi), job.keep)
			} else {
				_ = chk.verifyRange(job.ctx, job.candidates, int(lo), int(hi), job.keep)
			}
		}
		job.tests.Add(local.DominationTests - start)
		job.wg.Done()
	}
}

// verify runs one cell's candidate filtering on the pool and blocks until
// every worker has drained the cursor. The checker must already have its
// partner cache built (ensurePartners) unless scalar. Domination-test
// counts are flushed into the coordinating engine's stats before
// returning, so Stats stay deterministic: each candidate's tests depend
// only on the candidate, never on which worker claimed it.
func (p *workerPool) verify(ctx context.Context, chk *checker, candidates []join.Pair, keep []uint64, scalar bool) error {
	job := &p.job
	job.ctx, job.chk, job.candidates, job.keep, job.scalar = ctx, chk, candidates, keep, scalar
	job.cursor.Store(0)
	job.tests.Store(0)
	job.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- job
	}
	job.wg.Wait()
	p.e.stats.DominationTests += job.tests.Load()
	return ctx.Err()
}

// close shuts the pool down: workers drain the channel close and exit.
// Idempotent via the nil check at the call sites (runGrouping defers it
// exactly once per run).
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
	if poolStatsHook != nil {
		poolStatsHook(p.chunks)
	}
}

// RunParallel evaluates the query with the parallelized grouping algorithm —
// the paper's future-work item ("extend the algorithms to work in
// parallel", Sec. 8). It is Exec with Workers set: the unified execution
// path categorizes the two base relations concurrently (they are
// independent) and shards each cell's candidate verification — the
// dominant cost — across workers, all probing one prebuilt read-only
// checker index over the same target lists.
//
// workers <= 0 selects GOMAXPROCS. The result is identical to
// Run(q, Grouping); only the phase timings change.
func RunParallel(q Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Exec(context.Background(), q, ExecOptions{Algorithm: Grouping, Workers: workers})
}

// Workers returns a human-readable description of the parallel degree, for
// CLI output.
func Workers(workers int) string {
	if workers <= 0 {
		return fmt.Sprintf("auto (%d)", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("%d", workers)
}
