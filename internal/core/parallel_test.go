package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/join"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess}
	for trial := 0; trial < 40; trial++ {
		agg := rng.Intn(3)
		r1 := randRelation(rng, "r1", 5+rng.Intn(40), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(40), 1+rng.Intn(3), agg, 1+rng.Intn(4), 5)
		cond := conds[rng.Intn(len(conds))]
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
		serial, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 7} {
			par, err := RunParallel(q, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			assertSameSkyline(t, fmt.Sprintf("trial %d workers=%d cond=%v k=%d", trial, workers, cond, q.K), par, serial)
		}
	}
}

func TestParallelValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	r1 := randRelation(rng, "r1", 5, 2, 0, 2, 5)
	r2 := randRelation(rng, "r2", 5, 2, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 1}
	if _, err := RunParallel(q, 4); err == nil {
		t.Error("invalid k accepted")
	}
}

func TestParallelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	r1 := randRelation(rng, "r1", 60, 3, 0, 3, 6)
	r2 := randRelation(rng, "r2", 60, 3, 0, 3, 6)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	res, err := RunParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SS1+res.Stats.SN1+res.Stats.NN1 != r1.Len() {
		t.Error("categorization sizes wrong under parallel run")
	}
	serial, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DominationTests != serial.Stats.DominationTests {
		// Work distribution must not change the amount of work: each
		// candidate early-exits at the same first dominator no matter
		// which worker or kernel visits it (see Stats.DominationTests).
		t.Errorf("parallel tests=%d serial=%d, want equal", res.Stats.DominationTests, serial.Stats.DominationTests)
	}
}

func TestWorkersLabel(t *testing.T) {
	if Workers(4) != "4" {
		t.Errorf("Workers(4) = %q", Workers(4))
	}
	if !strings.HasPrefix(Workers(0), "auto") {
		t.Errorf("Workers(0) = %q, want auto prefix", Workers(0))
	}
}

func TestProgressiveMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	for trial := 0; trial < 30; trial++ {
		agg := rng.Intn(3)
		r1 := randRelation(rng, "r1", 5+rng.Intn(30), 2, agg, 1+rng.Intn(3), 5)
		r2 := randRelation(rng, "r2", 5+rng.Intn(30), 2, agg, 1+rng.Intn(3), 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)

		var streamed []join.Pair
		st, err := RunProgressive(q, func(p join.Pair) bool {
			streamed = append(streamed, p)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		sortPairs(streamed)
		got := Result{Skyline: streamed, Stats: *st}
		assertSameSkyline(t, fmt.Sprintf("trial %d", trial), &got, batch)
	}
}

func TestProgressiveEmitsYesCellFirst(t *testing.T) {
	f1, f2 := paperFlights(t)
	q := Query{R1: f1, R2: f2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	k1p, k2p := q.KPrimes()
	c1 := Categorize(f1, k1p, join.Equality, Left)
	c2 := Categorize(f2, k2p, join.Equality, Right)

	var order []string
	_, err := RunProgressive(q, func(p join.Pair) bool {
		order = append(order, fmt.Sprintf("%v⋈%v", c1.Cat[p.Left], c2.Cat[p.Right]))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 {
		t.Fatal("nothing emitted")
	}
	if order[0] != "SS⋈SS" {
		t.Errorf("first emission from cell %s, want SS⋈SS (progressiveness)", order[0])
	}
	// Once a non-yes cell starts, no more SS⋈SS tuples may appear.
	seenOther := false
	for _, cell := range order {
		if cell != "SS⋈SS" {
			seenOther = true
		} else if seenOther {
			t.Errorf("SS⋈SS tuple emitted after verification began: %v", order)
		}
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(215))
	r1 := randRelation(rng, "r1", 50, 3, 0, 3, 6)
	r2 := randRelation(rng, "r2", 50, 3, 0, 3, 6)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	full, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Skyline) < 3 {
		t.Skip("instance too small for an early-stop test")
	}
	want := 2
	count := 0
	if _, err := RunProgressive(q, func(join.Pair) bool {
		count++
		return count < want
	}); err != nil {
		t.Fatal(err)
	}
	if count != want {
		t.Errorf("emitted %d tuples after cancellation, want %d", count, want)
	}
}

func TestProgressiveValidates(t *testing.T) {
	q := Query{}
	if _, err := RunProgressive(q, func(join.Pair) bool { return true }); err == nil {
		t.Error("invalid query accepted")
	}
}

func BenchmarkParallelGrouping(b *testing.B) {
	rng := rand.New(rand.NewSource(216))
	r1 := randRelation(rng, "r1", 400, 5, 2, 10, 1000)
	r2 := randRelation(rng, "r2", 400, 5, 2, 10, 1000)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 11}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunParallel(q, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
