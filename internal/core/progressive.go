package core

import (
	"context"

	"repro/internal/join"
)

// Emit receives one confirmed skyline tuple. Returning false cancels the
// query; the run then returns with whatever work was done.
type Emit func(p join.Pair) bool

// RunProgressive evaluates the query with the grouping algorithm, emitting
// each k-dominant skyline tuple the moment it is confirmed. It is Exec
// with a non-nil Emit sink on the unified execution path. This addresses
// the naive algorithm's weakness the paper calls out in Sec. 6.1: with
// join-then-compute, the user waits for the whole join before seeing the
// first result, while the grouping algorithm can stream the entire
// SS1 ⋈ SS2 cell right after categorization and each "likely"/"may be"
// candidate as soon as its target-set check passes.
//
// Tuples are emitted cell by cell (yes, SS⋈SN, SN⋈SS, SN⋈SN), not in
// (Left, Right) order; collect and sort if a canonical order is needed.
// Each emitted pair's attribute vector is detached from the cell arena, so
// callers may retain emitted pairs without pinning whole-cell storage.
func RunProgressive(q Query, emit Emit) (*Stats, error) {
	res, err := Exec(context.Background(), q, ExecOptions{Algorithm: Grouping, Emit: emit})
	if err != nil {
		return nil, err
	}
	return &res.Stats, nil
}
