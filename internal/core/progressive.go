package core

import (
	"time"

	"repro/internal/join"
)

// Emit receives one confirmed skyline tuple. Returning false cancels the
// query; RunProgressive then returns with whatever work was done.
type Emit func(p join.Pair) bool

// RunProgressive evaluates the query with the grouping algorithm, emitting
// each k-dominant skyline tuple the moment it is confirmed. This addresses
// the naive algorithm's weakness the paper calls out in Sec. 6.1: with
// join-then-compute, the user waits for the whole join before seeing the
// first result, while the grouping algorithm can stream the entire
// SS1 ⋈ SS2 cell right after categorization and each "likely"/"may be"
// candidate as soon as its target-set check passes.
//
// Tuples are emitted cell by cell (yes, SS⋈SN, SN⋈SS, SN⋈SN), not in
// (Left, Right) order; collect and sort if a canonical order is needed.
// Each emitted pair's attribute vector is detached from the cell arena, so
// callers may retain emitted pairs without pinning whole-cell storage.
func RunProgressive(q Query, emit Emit) (*Stats, error) {
	if err := q.Validate(Grouping); err != nil {
		return nil, err
	}
	userEmit := emit
	emit = func(p join.Pair) bool { return userEmit(detach(p)) }
	start := time.Now()
	st := Stats{}
	e := newEngine(q, &st)

	t0 := time.Now()
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	a1 := targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
	a2 := targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
	st.GroupingTime = time.Since(t0)
	recordSizes(&st, c1, c2)

	finish := func() (*Stats, error) {
		st.Total = time.Since(start)
		return &st, nil
	}

	// Stream the "yes" cell first (verified against A1 ⋈ A2 when a >= 2;
	// see the package comment on the aggregate erratum).
	t0 = time.Now()
	yes := e.pairs(c1.SS, c2.SS)
	st.JoinTime += time.Since(t0)
	if e.a >= 2 {
		chk := e.newChecker(a1, a2)
		for _, p := range yes {
			if !chk.dominates(p.Attrs) && !emit(p) {
				return finish()
			}
		}
	} else {
		st.YesEmitted = len(yes)
		for _, p := range yes {
			if !emit(p) {
				return finish()
			}
		}
	}

	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())
	cells := []struct {
		left1, right1 []int // candidate cell
		left2, right2 []int // target lists
	}{
		{c1.SS, c2.SN, a1, all2},
		{c1.SN, c2.SS, all1, a2},
		{c1.SN, c2.SN, all1, all2},
	}
	for _, cell := range cells {
		t0 = time.Now()
		candidates := e.pairs(cell.left1, cell.right1)
		st.JoinTime += time.Since(t0)
		st.Candidates += len(candidates)
		if len(candidates) == 0 {
			continue
		}
		t0 = time.Now()
		chk := e.newChecker(cell.left2, cell.right2)
		for _, p := range candidates {
			if !chk.dominates(p.Attrs) && !emit(p) {
				st.RemainingTime += time.Since(t0)
				return finish()
			}
		}
		st.RemainingTime += time.Since(t0)
	}
	return finish()
}
