package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/join"
)

// quickRelation decodes a fixed-shape byte matrix into a relation: two
// join groups, three attributes, tiny value domain to force ties. The
// encoding keeps testing/quick's shrinking useful.
type quickRelation [8][4]uint8

func (qr quickRelation) relation(name string) *dataset.Relation {
	tuples := make([]dataset.Tuple, len(qr))
	for i, row := range qr {
		tuples[i] = dataset.Tuple{
			Key:   string(rune('A' + row[0]%2)),
			Attrs: []float64{float64(row[1] % 4), float64(row[2] % 4), float64(row[3] % 4)},
		}
	}
	return dataset.MustNew(name, 3, 0, tuples)
}

func quickQuery(a, b quickRelation, kRaw uint8) Query {
	q := Query{R1: a.relation("r1"), R2: b.relation("r2"), Spec: join.Spec{Cond: join.Equality}}
	q.K = q.KMin() + int(kRaw)%(q.Width()-q.KMin()+1)
	return q
}

// TestPropertyResultIsSubsetOfJoin: every reported pair is an actual
// join-compatible pair with correctly combined attributes.
func TestPropertyResultIsSubsetOfJoin(t *testing.T) {
	f := func(a, b quickRelation, kRaw uint8) bool {
		q := quickQuery(a, b, kRaw)
		res, err := Run(q, Grouping)
		if err != nil {
			return false
		}
		for _, p := range res.Skyline {
			u, v := q.R1.Tuple(p.Left), q.R2.Tuple(p.Right)
			if u.Key != v.Key {
				return false
			}
			want := append(append([]float64(nil), u.Attrs...), v.Attrs...)
			if len(p.Attrs) != len(want) {
				return false
			}
			for i := range want {
				if p.Attrs[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyResultDefinition: the answer holds exactly the joined tuples
// not k-dominated by any joined tuple (checked from first principles, no
// algorithm machinery).
func TestPropertyResultDefinition(t *testing.T) {
	f := func(a, b quickRelation, kRaw uint8) bool {
		q := quickQuery(a, b, kRaw)
		res, err := Run(q, DominatorBased)
		if err != nil {
			return false
		}
		in := map[[2]int]bool{}
		for _, p := range res.Skyline {
			in[[2]int{p.Left, p.Right}] = true
		}
		pairs, err := join.Pairs(q.R1, q.R2, q.Spec)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			dominated := false
			for _, o := range pairs {
				if (o.Left != p.Left || o.Right != p.Right) && dom.KDominates(o.Attrs, p.Attrs, q.K) {
					dominated = true
					break
				}
			}
			if in[[2]int{p.Left, p.Right}] == dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFateTable: Theorem 1 and Theorem 2 as universal properties —
// SS⋈SS pairs are always in the answer, NN-containing pairs never are.
func TestPropertyFateTable(t *testing.T) {
	f := func(a, b quickRelation, kRaw uint8) bool {
		q := quickQuery(a, b, kRaw)
		if q.R1.Agg >= 2 {
			return true // Theorem 1 does not hold there (see erratum)
		}
		k1p, k2p := q.KPrimes()
		c1 := Categorize(q.R1, k1p, join.Equality, Left)
		c2 := Categorize(q.R2, k2p, join.Equality, Right)
		res, err := Run(q, Grouping)
		if err != nil {
			return false
		}
		in := map[[2]int]bool{}
		for _, p := range res.Skyline {
			in[[2]int{p.Left, p.Right}] = true
		}
		pairs, err := join.Pairs(q.R1, q.R2, q.Spec)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			cat1, cat2 := c1.Cat[p.Left], c2.Cat[p.Right]
			member := in[[2]int{p.Left, p.Right}]
			if cat1 == SS && cat2 == SS && !member {
				return false // Theorem 1 violated
			}
			if (cat1 == NN || cat2 == NN) && member {
				return false // Theorem 2 violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKMonotonicity: Lemma 1 lifted to the query level — the
// answer at k is contained in the answer at k+1.
func TestPropertyKMonotonicity(t *testing.T) {
	f := func(a, b quickRelation) bool {
		q := Query{R1: a.relation("r1"), R2: b.relation("r2"), Spec: join.Spec{Cond: join.Equality}}
		prev := map[[2]int]bool{}
		for k := q.KMin(); k <= q.Width(); k++ {
			q.K = k
			res, err := Run(q, Grouping)
			if err != nil {
				return false
			}
			cur := map[[2]int]bool{}
			for _, p := range res.Skyline {
				cur[[2]int{p.Left, p.Right}] = true
			}
			for key := range prev {
				if !cur[key] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTargetSetsComplete: for every joined dominator pair (x,y) of
// a joined tuple built from (u,v), x lies in u's target set and y in v's —
// the completeness half of Def. 5 that all pruning rests on.
func TestPropertyTargetSetsComplete(t *testing.T) {
	f := func(a, b quickRelation, kRaw uint8) bool {
		q := quickQuery(a, b, kRaw)
		st := Stats{}
		e := newEngine(q, &st)
		pairs, err := join.Pairs(q.R1, q.R2, q.Spec)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			for _, o := range pairs {
				if !dom.KDominates(o.Attrs, p.Attrs, q.K) {
					continue
				}
				if !localLeqAtLeast(q.R1.Attrs(o.Left), q.R1.Attrs(p.Left), e.l1, e.k1pp) {
					return false
				}
				if !localLeqAtLeast(q.R2.Attrs(o.Right), q.R2.Attrs(p.Right), e.l2, e.k2pp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFindKBoundsBracketAnswer: for the k returned by Problem 3,
// every smaller admissible k has fewer than delta skylines.
func TestPropertyFindKBoundsBracketAnswer(t *testing.T) {
	f := func(a, b quickRelation, deltaRaw uint8) bool {
		q := Query{R1: a.relation("r1"), R2: b.relation("r2"), Spec: join.Spec{Cond: join.Equality}}
		delta := int(deltaRaw)%20 + 1
		res, err := FindK(q, delta, FindKBinary)
		if err != nil {
			return false
		}
		for k := q.KMin(); k < res.K; k++ {
			q.K = k
			r, err := Run(q, Grouping)
			if err != nil {
				return false
			}
			if len(r.Skyline) >= delta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
