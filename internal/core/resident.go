package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Resident holds the per-(R1, R2, join condition) structures the engine
// otherwise rebuilds on every Exec: the probe-ordered full-R2 join index,
// the sum-sorted R1 probe order, and the two base-point tables. None of
// them depend on k or on the aggregator, so one Resident serves every
// query over the same relation pair and condition.
//
// A Resident is immutable after construction and safe to share across
// concurrent Execs — it is the resident-relation reuse the service layer
// is built on: relations are loaded once, the index is built once, and
// each admitted query skips straight to categorization and verification.
//
// A Resident is a snapshot: it is valid only while the relations it was
// built from keep the exact contents (and lengths) they had at build time.
// Callers that append to the relations can carry the snapshot forward with
// Absorb instead of rebuilding; any other mutation requires a fresh
// Resident — Exec rejects a stale one.
type Resident struct {
	r1, r2     *dataset.Relation
	n1, n2     int
	cond       join.Condition
	rightIx    *join.Index
	leftSorted []int
	pts1, pts2 [][]float64
	// leftSums caches the attribute sums behind leftSorted's ordering,
	// indexed by R1 row ID; built lazily by the first left-side Absorb so
	// batch merges extend it instead of re-summing the whole relation.
	leftSums []float64
}

// String returns "left" or "right" (Side is declared with the
// categorization machinery; the absorption entry points reuse it).
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// ErrStaleResident is returned by Exec when ExecOptions.Resident does not
// match the query: different relations, a different join condition, or
// relations that grew or shrank since the Resident was built.
var ErrStaleResident = errors.New("core: resident index does not match the query's relations")

// NewResident builds the shared structures for q's relation pair and join
// condition. Unlike Exec it does not validate k: the same Resident serves
// queries at every admissible k.
func NewResident(q Query) (*Resident, error) {
	if q.R1 == nil || q.R2 == nil {
		return nil, errors.New("core: nil relation")
	}
	if err := q.R1.Validate(); err != nil {
		return nil, err
	}
	if err := q.R2.Validate(); err != nil {
		return nil, err
	}
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return nil, err
	}
	// Drive the engine's own lazy builders so the resident structures are
	// bit-identical to what a cold Exec would construct.
	st := Stats{}
	e := newEngine(q, &st)
	e.rightAllIndex()
	e.leftProbeOrder(allIndices(q.R1.Len()))
	e.points2()
	return &Resident{
		r1:         q.R1,
		r2:         q.R2,
		n1:         q.R1.Len(),
		n2:         q.R2.Len(),
		cond:       e.cond,
		rightIx:    e.allRightIx,
		leftSorted: e.allLeftSorted,
		pts1:       e.pts1,
		pts2:       e.pts2,
	}, nil
}

// Absorb advances the snapshot over rows appended to one side's relation:
// ids must be exactly that side's appended tail — the consecutive row IDs
// from the snapshot's recorded length up — each listed once, in order. A
// left absorb merges the new rows into the sum-sorted probe order (a
// stable merge of the sorted tail, reproducing exactly the ordering a
// rebuild would compute); a right absorb extends the full-R2 join index in
// place (join.Index.Extend). Both refresh the side's base-point views
// (appending may have re-backed the attribute column) and advance the
// recorded length, so the post-batch Resident serves queries without
// ErrStaleResident at merge cost instead of rebuild cost.
//
// Absorb writes to structures concurrent Execs read: callers must exclude
// it from readers exactly as they exclude relation mutation. For a
// self-join (one relation on both sides) absorb each side separately.
func (r *Resident) Absorb(side Side, ids []int) error {
	rel, n := r.r2, r.n2
	if side == Left {
		rel, n = r.r1, r.n1
	}
	for i, id := range ids {
		if id != n+i {
			return fmt.Errorf("core: absorb %s ids must be the appended tail starting at %d (got %d at position %d)",
				side, n, id, i)
		}
	}
	if n+len(ids) > rel.Len() {
		return fmt.Errorf("core: absorb %s ids reach row %d, relation %s has %d rows",
			side, n+len(ids)-1, rel.Name, rel.Len())
	}
	if len(ids) == 0 {
		return nil
	}
	if side == Left {
		r.leftSorted = mergeBySum(r.leftSorted, ids, r.extendLeftSums(ids))
		r.pts1 = basePoints(r.r1)
		r.n1 += len(ids)
		return nil
	}
	// Probe-priority for the appended tail mirrors rightProbeOrder: sum
	// order for bucketed conditions, natural order where the index
	// re-sorts by band anyway.
	tail := ids
	if r.cond == join.Equality || r.cond == join.Cross {
		tail = sortBySum(basePoints(r.r2), ids)
	}
	r.rightIx.Extend(tail)
	r.pts2 = basePoints(r.r2)
	r.n2 += len(ids)
	return nil
}

// Retract advances the snapshot over a batch delete on one side's
// relation: ids must be the deleted rows' pre-delete IDs, sorted strictly
// ascending — the same slice handed to dataset.Relation.DeleteBatch — and
// the relation must already be compacted. A left retract filters the
// deleted rows out of the sum-sorted probe order and renumbers the
// survivors (sums are untouched by a delete, so the filtered order is
// exactly what a rebuild would sort); a right retract does the same to the
// full-R2 join index (join.Index.Retract). Both refresh the side's
// base-point views and shrink the recorded length. For a self-join retract
// each side separately, exactly as with Absorb.
//
// Like Absorb, Retract writes to structures concurrent Execs read: callers
// must exclude it from readers.
func (r *Resident) Retract(side Side, ids []int) error {
	rel, n := r.r2, r.n2
	if side == Left {
		rel, n = r.r1, r.n1
	}
	for i, id := range ids {
		if id < 0 || id >= n || (i > 0 && id <= ids[i-1]) {
			return fmt.Errorf("core: retract %s ids must be strictly ascending pre-delete row IDs in [0,%d)", side, n)
		}
	}
	if n-len(ids) != rel.Len() {
		return fmt.Errorf("core: retract %s of %d ids expects relation %s at %d rows, it has %d",
			side, len(ids), rel.Name, n-len(ids), rel.Len())
	}
	if len(ids) == 0 {
		return nil
	}
	if side == Left {
		w := 0
		for _, id := range r.leftSorted {
			j := sort.SearchInts(ids, id)
			if j < len(ids) && ids[j] == id {
				continue
			}
			r.leftSorted[w] = id - j
			w++
		}
		r.leftSorted = r.leftSorted[:w]
		if r.leftSums != nil {
			w, next := 0, 0
			for i, s := range r.leftSums {
				if next < len(ids) && ids[next] == i {
					next++
					continue
				}
				r.leftSums[w] = s
				w++
			}
			r.leftSums = r.leftSums[:w]
		}
		r.pts1 = basePoints(r.r1)
		r.n1 -= len(ids)
		return nil
	}
	r.rightIx.Retract(ids)
	r.pts2 = basePoints(r.r2)
	r.n2 -= len(ids)
	return nil
}

// extendLeftSums brings the cached R1 attribute sums up to date with the
// appended ids and returns the table (indexed by row ID).
func (r *Resident) extendLeftSums(ids []int) []float64 {
	if r.leftSums == nil {
		r.leftSums = make([]float64, 0, r.n1+len(ids))
		for i := 0; i < r.n1; i++ {
			r.leftSums = append(r.leftSums, sumOf(r.r1.Attrs(i)))
		}
	}
	for _, id := range ids {
		r.leftSums = append(r.leftSums, sumOf(r.r1.Attrs(id)))
	}
	return r.leftSums
}

func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// mergeBySum merges the appended ids into an existing ascending-sum
// ordering: the tail is stable-sorted by sum, then merged with existing
// entries winning ties. Because the appended ids all follow the existing
// ones in natural order, this is exactly the stable sort a from-scratch
// rebuild computes.
func mergeBySum(sorted, ids []int, sums []float64) []int {
	tail := append([]int(nil), ids...)
	sort.SliceStable(tail, func(a, b int) bool { return sums[tail[a]] < sums[tail[b]] })
	merged := make([]int, len(sorted)+len(tail))
	i, j := len(sorted)-1, len(tail)-1
	for k := len(merged) - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && sums[sorted[i]] > sums[tail[j]]) {
			merged[k] = sorted[i]
			i--
		} else {
			merged[k] = tail[j]
			j--
		}
	}
	return merged
}

// matches reports whether the resident snapshot is still valid for q.
func (r *Resident) matches(q Query) bool {
	return r.r1 == q.R1 && r.r2 == q.R2 && r.cond == q.Spec.Cond &&
		r.n1 == q.R1.Len() && r.n2 == q.R2.Len()
}

// check returns ErrStaleResident (with detail) when the snapshot no longer
// matches q.
func (r *Resident) check(q Query) error {
	if r.matches(q) {
		return nil
	}
	return fmt.Errorf("%w: built for (%s[%d], %s[%d], %v), query is (%s[%d], %s[%d], %v)",
		ErrStaleResident, r.r1.Name, r.n1, r.r2.Name, r.n2, r.cond,
		q.R1.Name, q.R1.Len(), q.R2.Name, q.R2.Len(), q.Spec.Cond)
}

// Check reports whether the snapshot still serves q: same relations, same
// join condition, unchanged lengths. It returns ErrStaleResident (with the
// mismatch spelled out) otherwise — the test a prepared-query layer runs
// before serving any reused state. Note the limit shared with Exec's
// internal check: a mutation that leaves a relation at its build-time
// length (delete + reinsert) is invisible here; writers that mutate
// through such paths must rebuild.
func (r *Resident) Check(q Query) error { return r.check(q) }

// Exec runs q over the resident snapshot: it is Exec with
// ExecOptions.Resident set to r. This is the one evaluation entry point
// the prepared-query facade and the query service share — both layers own
// a Resident and drive every run through it.
func (r *Resident) Exec(ctx context.Context, q Query, o ExecOptions) (*Result, error) {
	o.Resident = r
	return Exec(ctx, q, o)
}

// FindK solves Problem 3 over the resident snapshot: every probe's
// grouping run and every pair-count bound reuses r's join index and probe
// orders instead of rebuilding them per probed k. The snapshot is
// k-independent, so one Resident serves the whole search.
func (r *Resident) FindK(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return findKContext(ctx, q, delta, alg, r)
}

// FindKAtMost solves Problem 4 over the resident snapshot; see FindK.
func (r *Resident) FindKAtMost(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return findKAtMostContext(ctx, q, delta, alg, r)
}

// Membership tests many joined pairs over the resident snapshot, sharing
// r's structures across probes; see MembershipContext.
func (r *Resident) Membership(ctx context.Context, q Query, pairs [][2]int) ([]bool, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return membershipContext(ctx, q, pairs, r)
}

// AnyDominators checks foreign candidate vectors against the resident
// snapshot's partition, reusing r's join index and base-point tables; see
// AnyDominatorsContext. This is the verification-round primitive a shard
// serves on behalf of its peers.
func (r *Resident) AnyDominators(ctx context.Context, q Query, vectors [][]float64) ([]bool, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return anyDominatorsContext(ctx, q, vectors, r)
}

// seed pre-loads an engine with the resident structures, skipping the
// per-Exec index and probe-order construction.
func (r *Resident) seed(e *engine) {
	e.allRightIx = r.rightIx
	e.allLeftSorted = r.leftSorted
	e.pts1 = r.pts1
	e.pts2 = r.pts2
}

// newEngineResident is newEngine seeded from an optional Resident; res may
// be nil.
func newEngineResident(q Query, stats *Stats, res *Resident) *engine {
	e := newEngine(q, stats)
	if res != nil {
		res.seed(e)
	}
	return e
}
