package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/join"
)

// Resident holds the per-(R1, R2, join condition) structures the engine
// otherwise rebuilds on every Exec: the probe-ordered full-R2 join index,
// the sum-sorted R1 probe order, and the two base-point tables. None of
// them depend on k or on the aggregator, so one Resident serves every
// query over the same relation pair and condition.
//
// A Resident is immutable after construction and safe to share across
// concurrent Execs — it is the resident-relation reuse the service layer
// is built on: relations are loaded once, the index is built once, and
// each admitted query skips straight to categorization and verification.
//
// A Resident is a snapshot: it is valid only while the relations it was
// built from keep the exact contents (and lengths) they had at build time.
// Callers that mutate relations (the maintainer's insert path) must build
// a fresh Resident afterwards; Exec rejects a stale one.
type Resident struct {
	r1, r2     *dataset.Relation
	n1, n2     int
	cond       join.Condition
	rightIx    *join.Index
	leftSorted []int
	pts1, pts2 [][]float64
}

// ErrStaleResident is returned by Exec when ExecOptions.Resident does not
// match the query: different relations, a different join condition, or
// relations that grew or shrank since the Resident was built.
var ErrStaleResident = errors.New("core: resident index does not match the query's relations")

// NewResident builds the shared structures for q's relation pair and join
// condition. Unlike Exec it does not validate k: the same Resident serves
// queries at every admissible k.
func NewResident(q Query) (*Resident, error) {
	if q.R1 == nil || q.R2 == nil {
		return nil, errors.New("core: nil relation")
	}
	if err := q.R1.Validate(); err != nil {
		return nil, err
	}
	if err := q.R2.Validate(); err != nil {
		return nil, err
	}
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return nil, err
	}
	// Drive the engine's own lazy builders so the resident structures are
	// bit-identical to what a cold Exec would construct.
	st := Stats{}
	e := newEngine(q, &st)
	e.rightAllIndex()
	e.leftProbeOrder(allIndices(q.R1.Len()))
	e.points2()
	return &Resident{
		r1:         q.R1,
		r2:         q.R2,
		n1:         q.R1.Len(),
		n2:         q.R2.Len(),
		cond:       e.cond,
		rightIx:    e.allRightIx,
		leftSorted: e.allLeftSorted,
		pts1:       e.pts1,
		pts2:       e.pts2,
	}, nil
}

// matches reports whether the resident snapshot is still valid for q.
func (r *Resident) matches(q Query) bool {
	return r.r1 == q.R1 && r.r2 == q.R2 && r.cond == q.Spec.Cond &&
		r.n1 == q.R1.Len() && r.n2 == q.R2.Len()
}

// check returns ErrStaleResident (with detail) when the snapshot no longer
// matches q.
func (r *Resident) check(q Query) error {
	if r.matches(q) {
		return nil
	}
	return fmt.Errorf("%w: built for (%s[%d], %s[%d], %v), query is (%s[%d], %s[%d], %v)",
		ErrStaleResident, r.r1.Name, r.n1, r.r2.Name, r.n2, r.cond,
		q.R1.Name, q.R1.Len(), q.R2.Name, q.R2.Len(), q.Spec.Cond)
}

// Check reports whether the snapshot still serves q: same relations, same
// join condition, unchanged lengths. It returns ErrStaleResident (with the
// mismatch spelled out) otherwise — the test a prepared-query layer runs
// before serving any reused state. Note the limit shared with Exec's
// internal check: a mutation that leaves a relation at its build-time
// length (delete + reinsert) is invisible here; writers that mutate
// through such paths must rebuild.
func (r *Resident) Check(q Query) error { return r.check(q) }

// Exec runs q over the resident snapshot: it is Exec with
// ExecOptions.Resident set to r. This is the one evaluation entry point
// the prepared-query facade and the query service share — both layers own
// a Resident and drive every run through it.
func (r *Resident) Exec(ctx context.Context, q Query, o ExecOptions) (*Result, error) {
	o.Resident = r
	return Exec(ctx, q, o)
}

// FindK solves Problem 3 over the resident snapshot: every probe's
// grouping run and every pair-count bound reuses r's join index and probe
// orders instead of rebuilding them per probed k. The snapshot is
// k-independent, so one Resident serves the whole search.
func (r *Resident) FindK(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return findKContext(ctx, q, delta, alg, r)
}

// FindKAtMost solves Problem 4 over the resident snapshot; see FindK.
func (r *Resident) FindKAtMost(ctx context.Context, q Query, delta int, alg FindKAlgorithm) (*FindKResult, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return findKAtMostContext(ctx, q, delta, alg, r)
}

// Membership tests many joined pairs over the resident snapshot, sharing
// r's structures across probes; see MembershipContext.
func (r *Resident) Membership(ctx context.Context, q Query, pairs [][2]int) ([]bool, error) {
	if err := r.check(q); err != nil {
		return nil, err
	}
	return membershipContext(ctx, q, pairs, r)
}

// seed pre-loads an engine with the resident structures, skipping the
// per-Exec index and probe-order construction.
func (r *Resident) seed(e *engine) {
	e.allRightIx = r.rightIx
	e.allLeftSorted = r.leftSorted
	e.pts1 = r.pts1
	e.pts2 = r.pts2
}

// newEngineResident is newEngine seeded from an optional Resident; res may
// be nil.
func newEngineResident(q Query, stats *Stats, res *Resident) *engine {
	e := newEngine(q, stats)
	if res != nil {
		res.seed(e)
	}
	return e
}
