package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/join"
)

// TestResidentMatchesCold pins Exec with a shared Resident byte-identical
// to a cold Exec for every algorithm and join condition the resident
// supports.
func TestResidentMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandGreaterEq}
	for trial := 0; trial < 8; trial++ {
		agg := rng.Intn(3)
		local := 1 + rng.Intn(3)
		r1 := randRelation(rng, "r1", 6+rng.Intn(12), local, agg, 1+rng.Intn(3), 6)
		r2 := randRelation(rng, "r2", 6+rng.Intn(12), local, agg, 1+rng.Intn(3), 6)
		cond := conds[trial%len(conds)]
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)

		res, err := NewResident(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Grouping, DominatorBased, Naive} {
			cold, err := Run(q, alg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Exec(context.Background(), q, ExecOptions{Algorithm: alg, Resident: res})
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, "resident "+alg.String(), warm, cold)
		}
		// The same Resident must serve a different k unchanged.
		if q.K > q.KMin() {
			q2 := q
			q2.K = q.KMin()
			cold, err := Run(q2, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Exec(context.Background(), q2, ExecOptions{Algorithm: Grouping, Resident: res})
			if err != nil {
				t.Fatal(err)
			}
			assertSameSkyline(t, "resident other-k", warm, cold)
		}
	}
}

// TestResidentParallelAndEmit checks the resident path composes with the
// grouping algorithm's Workers and Emit modes.
func TestResidentParallelAndEmit(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	r1 := randRelation(rng, "r1", 40, 3, 1, 3, 8)
	r2 := randRelation(rng, "r2", 40, 3, 1, 3, 8)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 6}
	res, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Exec(context.Background(), q, ExecOptions{Algorithm: Grouping, Workers: 4, Resident: res})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSkyline(t, "resident workers", warm, cold)

	var streamed []join.Pair
	if _, err := Exec(context.Background(), q, ExecOptions{
		Algorithm: Grouping,
		Resident:  res,
		Emit:      func(p join.Pair) bool { streamed = append(streamed, p); return true },
	}); err != nil {
		t.Fatal(err)
	}
	got := &Result{Skyline: streamed}
	sortPairs(got.Skyline)
	assertSameSkyline(t, "resident emit", got, cold)
}

// TestResidentStale checks Exec rejects a resident built before the
// relations changed, and one built for a different condition or pair.
func TestResidentStale(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	r1 := randRelation(rng, "r1", 10, 2, 0, 2, 5)
	r2 := randRelation(rng, "r2", 10, 2, 0, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	res, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}

	// Grown relation: the snapshot no longer covers every tuple.
	if _, err := r1.Append(randTuple(rng, 2, 2, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(context.Background(), q, ExecOptions{Algorithm: Grouping, Resident: res}); !errors.Is(err, ErrStaleResident) {
		t.Errorf("grown relation: err = %v, want ErrStaleResident", err)
	}

	// Different condition.
	fresh, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}
	qBand := q
	qBand.Spec.Cond = join.BandLess
	if _, err := Exec(context.Background(), qBand, ExecOptions{Algorithm: Grouping, Resident: fresh}); !errors.Is(err, ErrStaleResident) {
		t.Errorf("other condition: err = %v, want ErrStaleResident", err)
	}

	// Different relation pair (same lengths — pointer identity must catch it).
	qOther := q
	qOther.R1 = r1.Clone()
	if _, err := Exec(context.Background(), qOther, ExecOptions{Algorithm: Grouping, Resident: fresh}); !errors.Is(err, ErrStaleResident) {
		t.Errorf("other relations: err = %v, want ErrStaleResident", err)
	}
}
