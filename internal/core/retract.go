package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/join"
)

// Delete-side incremental maintenance. Deletions break the insert-
// monotonicity the absorb path is built on, but they break it in exactly
// one direction: removing rows only removes joined pairs, so a dominator
// set can shrink but never grow. Two consequences drive everything here:
//
//   - a surviving skyline member can never be displaced by a delete
//     (its dominators were already empty and stay empty), and
//   - a surviving non-member can re-enter ("resurrect") only if every
//     dominator it had was removed — in particular, at least one removed
//     pair k-dominated it.
//
// The second point is the resurrection filter: RetractBatch materializes
// the removed pairs once (RetractSet), tests each non-member candidate
// against them, and runs the expensive dominator verification only on the
// candidates that pass. Everything else is bookkeeping — evicting members
// that reference deleted rows and renumbering the survivors to the
// relation's post-delete IDs.

// RetractSet is the set of joined pairs a batch delete removed from a
// query's join, organized for the resurrection filter: pairs are grouped
// by their deleted component, each group keyed by that component's base
// attributes so one local-prefix reachability test (the same bound the
// verification kernel hoists) can skip the whole group.
type RetractSet struct {
	k          int
	l1, l2     int
	k1pp, k2pp int
	count      int
	// left groups pairs by a deleted R1-side row, right by a deleted
	// R2-side row; a self-join's deleted×deleted pairs live in left.
	left, right []retractGroup
}

type retractGroup struct {
	// local is the deleted component's base attribute vector; its local
	// prefix bounds what any pair in the group can dominate.
	local []float64
	sum   float64
	pairs [][]float64
}

// SnapshotRows materializes the given rows of r as a standalone relation
// with r's schema, in id order, with detached attribute storage — the
// pre-delete snapshot NewRetractSet runs against. ids must be valid rows.
func SnapshotRows(r *dataset.Relation, ids []int) *dataset.Relation {
	ts := make([]dataset.Tuple, len(ids))
	for i, id := range ids {
		t := r.Tuple(id)
		t.Attrs = append([]float64(nil), t.Attrs...)
		ts[i] = t
	}
	del, err := dataset.New(r.Name+" (deleted)", r.Local, r.Agg, ts)
	if err != nil {
		// The rows passed this same validation when they entered r.
		panic(fmt.Sprintf("core: snapshot of %s rows failed validation: %v", r.Name, err))
	}
	return del
}

// NewRetractSet materializes the joined pairs a DeleteBatch removed from
// q's join. q must be the post-delete query (relations already compacted)
// and del a snapshot of the deleted rows (SnapshotRows, taken before the
// physical delete); left/right say which sides of the query the mutated
// relation occupies (both, for a self-join). The removed pairs decompose
// into deleted×survivors, survivors×deleted and — for a self-join —
// deleted×deleted; each part is enumerated by indexing the small deleted
// set (under the reversed condition where the probe direction flips) and
// probing it from the big surviving relation, so the cost is
// O(n log |del| + removed pairs), never O(n²).
func NewRetractSet(q Query, left, right bool, del *dataset.Relation) *RetractSet {
	agg := q.aggregator()
	k1pp, k2pp := q.KDoublePrimes()
	rs := &RetractSet{
		k:    q.K,
		l1:   q.R1.Local,
		l2:   q.R2.Local,
		k1pp: k1pp,
		k2pp: k2pp,
	}
	w := join.Width(q.R1, q.R2)
	if left {
		byU := make([][][]float64, del.Len())
		// Index del under the reversed condition and probe it by each
		// surviving R2 row: Partners answers "which deleted u join with
		// this v", covering del × R2 without indexing the big side.
		ix := join.NewFullIndex(q.R2, del, q.Spec.Cond.Reversed())
		all2 := allIndices(q.R2.Len())
		arena := make([]float64, ix.CountPairs(q.R2, all2)*w)
		pos := 0
		ix.ForEachPair(q.R2, all2, func(j, u int) bool {
			byU[u] = append(byU[u], join.CombineAt(del, q.R2, u, j, agg, arena[pos:pos:pos+w]))
			pos += w
			return false
		})
		if right {
			// Self-join: both deleted rows of a deleted×deleted pair are
			// gone from the survivors, so neither sweep above saw it.
			ixd := join.NewFullIndex(del, del, q.Spec.Cond)
			alld := allIndices(del.Len())
			tail := make([]float64, ixd.CountPairs(del, alld)*w)
			pos = 0
			ixd.ForEachPair(del, alld, func(u, v int) bool {
				byU[u] = append(byU[u], join.CombineAt(del, del, u, v, agg, tail[pos:pos:pos+w]))
				pos += w
				return false
			})
		}
		rs.left = packRetractGroups(del, byU, &rs.count)
	}
	if right {
		byV := make([][][]float64, del.Len())
		// Natural probe direction: index del as the right side, probe by
		// each surviving R1 row.
		ix := join.NewFullIndex(q.R1, del, q.Spec.Cond)
		all1 := allIndices(q.R1.Len())
		arena := make([]float64, ix.CountPairs(q.R1, all1)*w)
		pos := 0
		ix.ForEachPair(q.R1, all1, func(i, v int) bool {
			byV[v] = append(byV[v], join.CombineAt(q.R1, del, i, v, agg, arena[pos:pos:pos+w]))
			pos += w
			return false
		})
		rs.right = packRetractGroups(del, byV, &rs.count)
	}
	return rs
}

// packRetractGroups turns the per-deleted-row pair lists into the sorted
// group form Dominated scans: groups ascending by their component's
// attribute sum, pairs within a group ascending by combined sum, so the
// strongest dominators are met first.
func packRetractGroups(del *dataset.Relation, byRow [][][]float64, count *int) []retractGroup {
	groups := make([]retractGroup, 0, len(byRow))
	for id, pairs := range byRow {
		if len(pairs) == 0 {
			continue
		}
		sort.Slice(pairs, func(a, b int) bool { return sumOf(pairs[a]) < sumOf(pairs[b]) })
		groups = append(groups, retractGroup{
			local: del.Attrs(id),
			sum:   sumOf(del.Attrs(id)),
			pairs: pairs,
		})
		*count += len(pairs)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].sum < groups[b].sum })
	return groups
}

// Pairs returns the number of removed joined pairs the set holds.
func (rs *RetractSet) Pairs() int { return rs.count }

// Dominated reports whether any removed pair k-dominates cand, a combined
// attribute vector in the engine's [left locals, right locals, aggregates]
// layout. A non-member can resurrect after the delete only if this is true
// (all its dominators were removed, and it had at least one); candidates
// that fail skip dominator verification entirely.
func (rs *RetractSet) Dominated(cand []float64) bool {
	for gi := range rs.left {
		g := &rs.left[gi]
		if _, _, ok := localPrefix(g.local, cand, rs.l1, rs.k1pp); !ok {
			continue
		}
		for _, pa := range g.pairs {
			if dom.KDominates(pa, cand, rs.k) {
				return true
			}
		}
	}
	for gi := range rs.right {
		g := &rs.right[gi]
		// The deleted component sits on the right: its locals line up with
		// cand[l1:l1+l2], and the reachability threshold is k2''.
		if _, _, ok := localPrefix(g.local, cand[rs.l1:], rs.l2, rs.k2pp); !ok {
			continue
		}
		for _, pa := range g.pairs {
			if dom.KDominates(pa, cand, rs.k) {
				return true
			}
		}
	}
	return false
}

// retractRecomputeFraction mirrors absorbRecomputeFraction on the delete
// side: a batch of b deleted rows against a post-delete relation of n rows
// takes the from-scratch recompute arm when b*retractRecomputeFraction
// >= n. The incremental arm pays per removed pair and per filtered
// candidate, so its cost grows with the batch while a recompute's is
// fixed; past roughly 1/8 shrinkage the recompute wins.
const retractRecomputeFraction = 8

// RetractPrefersRecompute reports whether RetractBatch will take its
// from-scratch recompute arm for a batch of b deleted rows against a
// post-delete relation of n rows — callers can skip building the
// RetractSet (and retracting residents) in that case.
func RetractPrefersRecompute(b, n int) bool {
	return b*retractRecomputeFraction >= n
}

// RetractBatch folds an already-executed DeleteBatch into the skyline: the
// caller has removed rows ids (pre-delete IDs, strictly ascending — the
// slice handed to dataset.Relation.DeleteBatch) from the relation on the
// given side(s) of the query; left and right are both true for a
// self-join, whose one physical delete shrinks both sides at once. rs is
// the removed-pair set built by NewRetractSet over the post-delete query
// and a pre-delete SnapshotRows of the deleted rows; nil forces the
// recompute arm (callers that know the batch is large skip building it,
// see RetractPrefersRecompute).
//
// Members that reference a deleted row are evicted and the survivors
// renumbered to the post-delete IDs; surviving members are kept without
// re-verification (a delete only shrinks dominator sets). Resurrection
// candidates — non-members some removed pair dominated — are then swept
// through the same categorize/verify cells the grouping recompute would
// run, so the resulting skyline is identical to a from-scratch recompute.
// It returns the number of members evicted (their rows deleted) and the
// number of non-members resurrected.
//
// Like the absorb path, RetractBatch uses the resident handed to
// UseResident only when it matches the post-delete relations; the caller
// that retracted the resident must hand it over after the physical delete.
func (m *Maintainer) RetractBatch(left, right bool, ids []int, rs *RetractSet) (evicted, resurrected int, err error) {
	if m.closed {
		return 0, 0, ErrMaintainerClosed
	}
	if len(ids) == 0 || (!left && !right) {
		return 0, 0, nil
	}
	rel := m.q.R2
	if left {
		rel = m.q.R1
	}
	preLen := rel.Len() + len(ids)
	for i, id := range ids {
		if id < 0 || id >= preLen || (i > 0 && id <= ids[i-1]) {
			return 0, 0, fmt.Errorf("core: retract ids must be strictly ascending pre-delete row IDs in [0,%d)", preLen)
		}
	}

	// Evict members referencing deleted rows; renumber the survivors.
	renum := func(id int) (int, bool) {
		i := sort.SearchInts(ids, id)
		if i < len(ids) && ids[i] == id {
			return 0, false
		}
		return id - i, true
	}
	next := make(map[[2]int]join.Pair, len(m.sky))
	for key, p := range m.sky {
		l, r := key[0], key[1]
		keep := true
		if left {
			l, keep = renum(l)
		}
		if keep && right {
			r, keep = renum(r)
		}
		if !keep {
			evicted++
			continue
		}
		p.Left, p.Right = l, r
		next[[2]int{l, r}] = p
	}
	m.sky = next

	res := m.res
	if res != nil && !res.matches(m.q) {
		res = nil
	}
	if rs == nil || RetractPrefersRecompute(len(ids), rel.Len()) {
		_, resurrected, err = m.recomputeDiff(res)
		return evicted, resurrected, err
	}

	// Resurrection sweep: mirror the grouping recompute's cells, but only
	// verify non-members the removed pairs dominated — everything else
	// keeps its pre-delete verdict.
	st := Stats{}
	e := newEngineResident(m.q, &st, res)
	q := m.q
	k1p, k2p := q.KPrimes()
	c1 := Categorize(q.R1, k1p, e.cond, Left)
	c2 := Categorize(q.R2, k2p, e.cond, Right)
	a1 := targetUnion(q.R1, c1.SS, e.l1, e.k1pp)
	a2 := targetUnion(q.R2, c2.SS, e.l2, e.k2pp)
	all1 := allIndices(q.R1.Len())
	all2 := allIndices(q.R2.Len())
	cells := []struct {
		left, right       []int
		chkLeft, chkRight []int
		yes               bool
	}{
		{c1.SS, c2.SS, a1, a2, true},
		{c1.SS, c2.SN, a1, all2, false},
		{c1.SN, c2.SS, all1, a2, false},
		{c1.SN, c2.SN, all1, all2, false},
	}
	ctx := context.Background()
	var sweep []join.Pair
	for _, cell := range cells {
		candidates := e.pairs(cell.left, cell.right)
		if len(candidates) == 0 {
			continue
		}
		if cell.yes && e.a < 2 {
			// Unchecked cell: every pair is a member by the paper's
			// theorem, so any non-member here resurrects outright.
			for _, p := range candidates {
				key := [2]int{p.Left, p.Right}
				if _, ok := m.sky[key]; !ok {
					m.sky[key] = detach(p)
					resurrected++
				}
			}
			continue
		}
		sweep = sweep[:0]
		for _, p := range candidates {
			if _, ok := m.sky[[2]int{p.Left, p.Right}]; ok {
				continue // surviving member: cannot be displaced by a delete
			}
			if rs.Dominated(p.Attrs) {
				sweep = append(sweep, p)
			}
		}
		if len(sweep) == 0 {
			continue
		}
		chk := e.newChecker(cell.chkLeft, cell.chkRight)
		chk.ensurePartners()
		keep := e.keepBits(len(sweep))
		if err := chk.verifyRange(ctx, sweep, 0, len(sweep), keep); err != nil {
			return evicted, resurrected, err
		}
		for i, p := range sweep {
			if keep[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
				m.sky[[2]int{p.Left, p.Right}] = detach(p)
				resurrected++
			}
		}
	}
	return evicted, resurrected, nil
}
