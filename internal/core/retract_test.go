package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
)

// assertPairsIdentical is assertSameSkyline strengthened to byte-identical
// joined attribute vectors, the contract the service's delete path relies
// on (watch deltas diff attrs-carrying pairs).
func assertPairsIdentical(t *testing.T, label string, got, want []join.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: skyline sizes differ: %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Left != w.Left || g.Right != w.Right {
			t.Fatalf("%s: pair %d differs: (%d,%d) vs (%d,%d)", label, i, g.Left, g.Right, w.Left, w.Right)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("%s: pair %d attr widths differ: %d vs %d", label, i, len(g.Attrs), len(w.Attrs))
		}
		for j := range g.Attrs {
			if g.Attrs[j] != w.Attrs[j] {
				t.Fatalf("%s: pair %d attr %d differs: %v vs %v", label, i, j, g.Attrs, w.Attrs)
			}
		}
	}
}

// pickIDs draws b distinct row IDs from [0, n), sorted ascending.
func pickIDs(rng *rand.Rand, n, b int) []int {
	perm := rng.Perm(n)[:b]
	sort.Ints(perm)
	return perm
}

// TestRetractBatchMatchesRecompute drives random delete batches through
// the full retract pipeline — snapshot, physical DeleteBatch, RetractSet,
// resident retraction, Maintainer.RetractBatch — across every join
// condition and both sides, asserting the maintained skyline is
// byte-identical to a from-scratch recompute after every batch. Batch
// sizes straddle the recompute threshold so both hybrid arms are
// exercised.
func TestRetractBatchMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq}
	for trial := 0; trial < 72; trial++ {
		cond := conds[trial%len(conds)]
		local1 := 1 + rng.Intn(2)
		local2 := 1 + rng.Intn(2)
		agg := rng.Intn(3)
		groups := 1 + rng.Intn(3)
		r1 := randRelation(rng, "r1", 12+rng.Intn(18), local1, agg, groups, 5)
		r2 := randRelation(rng, "r2", 12+rng.Intn(18), local2, agg, groups, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
		m, err := NewMaintainer(q)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 4; step++ {
			left := rng.Intn(2) == 0
			rel := q.R2
			if left {
				rel = q.R1
			}
			if rel.Len() < 5 {
				continue
			}
			b := 1 + rng.Intn(3)
			if rng.Intn(4) == 0 {
				b = 1 + rel.Len()/3 // cross the recompute threshold sometimes
			}
			if b >= rel.Len() {
				b = rel.Len() - 1
			}
			ids := pickIDs(rng, rel.Len(), b)

			var res *Resident
			if rng.Intn(2) == 0 {
				if res, err = NewResident(q); err != nil {
					t.Fatal(err)
				}
			}
			var del *dataset.Relation
			recompute := RetractPrefersRecompute(len(ids), rel.Len()-len(ids))
			if !recompute {
				del = SnapshotRows(rel, ids)
			}
			if err := rel.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			var rs *RetractSet
			if del != nil {
				rs = NewRetractSet(q, left, !left, del)
			}
			if res != nil && !recompute {
				side := Right
				if left {
					side = Left
				}
				if err := res.Retract(side, ids); err != nil {
					t.Fatal(err)
				}
				m.UseResident(res)
			}
			evicted, resurrected, err := m.RetractBatch(left, !left, ids, rs)
			if err != nil {
				t.Fatal(err)
			}
			if evicted < 0 || resurrected < 0 {
				t.Fatalf("negative counters: %d %d", evicted, resurrected)
			}
			fresh, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d step %d cond=%v left=%v b=%d k=%d", trial, step, cond, left, b, q.K)
			assertPairsIdentical(t, label, m.Skyline(), fresh.Skyline)
		}
	}
}

// TestMaintainerDeleteResurrectsMultiple pins the resurrection shape the
// old recompute fallback hid: deleting one skyline member whose pairs were
// the sole dominators of several tuples must re-admit all of them.
func TestMaintainerDeleteResurrectsMultiple(t *testing.T) {
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{
		{Key: "a", Attrs: []float64{0, 0}}, // dominates both weak rows
		{Key: "a", Attrs: []float64{3, 4}},
		{Key: "a", Attrs: []float64{4, 3}},
	})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{
		{Key: "a", Attrs: []float64{0, 0}},
	})
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("initial skyline size %d, want 1", m.Len())
	}
	ids := []int{0}
	del := SnapshotRows(r1, ids)
	if err := r1.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	rs := NewRetractSet(q, true, false, del)
	evicted, resurrected, err := m.RetractBatch(true, false, ids, rs)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 || resurrected != 2 {
		t.Fatalf("evicted=%d resurrected=%d, want 1 and 2", evicted, resurrected)
	}
	fresh, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsIdentical(t, "multi-resurrection", m.Skyline(), fresh.Skyline)
}

// TestMaintainerDeleteSelfJoin deletes from both sides of a self-join: one
// physical delete shrinks R1 and R2 at once, and the retract path must
// evict pairs referencing the row on either side and renumber both pair
// components.
func TestMaintainerDeleteSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	for _, cond := range []join.Condition{join.Equality, join.Cross, join.BandLessEq} {
		r := randRelation(rng, "r", 24, 2, 1, 2, 5)
		q := Query{R1: r, R2: r, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		q.K = q.KMin() + 1
		if q.K > q.Width() {
			q.K = q.Width()
		}
		m, err := NewMaintainer(q)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6 && r.Len() > 10; step++ {
			idx := rng.Intn(r.Len())
			if step%2 == 0 {
				err = m.DeleteLeft(idx)
			} else {
				err = m.DeleteRight(idx)
			}
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(q, Grouping)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("self-join cond=%v step=%d", cond, step)
			assertPairsIdentical(t, label, m.Skyline(), fresh.Skyline)
		}
	}
}

// TestMaintainerDeleteReinsert exercises the length-restoring mutation a
// (pointer, length) staleness check cannot see: delete then reinsert —
// identical values and then different ones — while a resident was in use.
// The maintainer must drop the resident on delete and keep every
// subsequent answer identical to a recompute.
func TestMaintainerDeleteReinsert(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	r1 := randRelation(rng, "r1", 15, 2, 1, 2, 5)
	r2 := randRelation(rng, "r2", 15, 2, 1, 2, 5)
	q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 4}
	m, err := NewMaintainer(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}
	m.UseResident(res)

	// Identical reinsert: the relation returns to its pre-delete length
	// with the same multiset of rows, but row 3's ID has moved to the end.
	tup := r1.Tuple(3)
	tup.Attrs = append([]float64(nil), tup.Attrs...)
	if err := m.DeleteLeft(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.InsertLeft(tup); err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsIdentical(t, "identical reinsert", m.Skyline(), fresh.Skyline)

	// Different reinsert through the same trap, on the right side.
	m.UseResident(res) // stale by contents; must be ignored or dropped, never served
	if err := m.DeleteRight(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.InsertRight(randTuple(rng, 3, 2, 5)); err != nil {
		t.Fatal(err)
	}
	fresh, err = Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsIdentical(t, "different reinsert", m.Skyline(), fresh.Skyline)
}

// TestResidentRetract checks that a retracted resident serves queries
// identically to a fresh build over the shrunken relations, for every
// condition and both sides, including the self-join double retract.
func TestResidentRetract(t *testing.T) {
	rng := rand.New(rand.NewSource(804))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq}
	ctx := context.Background()
	for trial := 0; trial < 36; trial++ {
		cond := conds[trial%len(conds)]
		r1 := randRelation(rng, "r1", 15+rng.Intn(10), 2, 1, 3, 5)
		r2 := randRelation(rng, "r2", 15+rng.Intn(10), 2, 1, 3, 5)
		q := Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond, Agg: join.Sum}, K: 4}
		res, err := NewResident(q)
		if err != nil {
			t.Fatal(err)
		}
		// Force the lazily built left-sum cache into existence on half the
		// trials so its compaction is covered too.
		if trial%2 == 0 {
			id, err := r1.Append(randTuple(rng, 3, 3, 5))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Absorb(Left, []int{id}); err != nil {
				t.Fatal(err)
			}
		}
		left := rng.Intn(2) == 0
		rel, side := r2, Right
		if left {
			rel, side = r1, Left
		}
		ids := pickIDs(rng, rel.Len(), 1+rng.Intn(4))
		if err := rel.DeleteBatch(ids); err != nil {
			t.Fatal(err)
		}
		if err := res.Retract(side, ids); err != nil {
			t.Fatal(err)
		}
		if err := res.Check(q); err != nil {
			t.Fatal(err)
		}
		got, err := res.Exec(ctx, q, ExecOptions{Algorithm: Grouping})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(q, Grouping)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("trial %d cond=%v side=%v", trial, cond, side)
		assertPairsIdentical(t, label, got.Skyline, fresh.Skyline)
	}

	// Self-join: one physical delete, both sides retracted separately.
	r := randRelation(rng, "r", 20, 2, 0, 2, 5)
	q := Query{R1: r, R2: r, Spec: join.Spec{Cond: join.Equality}, K: 3}
	res, err := NewResident(q)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{2, 9, 15}
	if err := r.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := res.Retract(Left, ids); err != nil {
		t.Fatal(err)
	}
	if err := res.Retract(Right, ids); err != nil {
		t.Fatal(err)
	}
	got, err := res.Exec(ctx, q, ExecOptions{Algorithm: Grouping})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(q, Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsIdentical(t, "self-join resident retract", got.Skyline, fresh.Skyline)

	// Misuse is rejected: unsorted ids, out-of-range ids, wrong length.
	if err := res.Retract(Left, []int{5, 3}); err == nil {
		t.Error("unsorted retract ids accepted")
	}
	if err := res.Retract(Left, []int{400}); err == nil {
		t.Error("out-of-range retract ids accepted")
	}
}
