// Package datagen generates the synthetic workloads of the paper's
// evaluation (Sec. 7): independent, correlated and anti-correlated
// relations following the Börzsönyi et al. (ICDE'01) benchmark
// distributions — the same family the paper's randdataset tool produces —
// plus a simulator for the two-legged flight dataset of Sec. 7.4.
//
// All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Distribution selects the attribute-value distribution.
type Distribution int

const (
	// Independent draws every attribute uniformly at random.
	Independent Distribution = iota
	// Correlated draws points close to the main diagonal: a tuple good in
	// one attribute tends to be good in the others.
	Correlated
	// AntiCorrelated draws points close to the anti-diagonal hyperplane: a
	// tuple good in one attribute tends to be bad in the others. Real
	// datasets typically look like this (paper Sec. 1), and it maximizes
	// skyline sizes.
	AntiCorrelated
)

// String returns the label used in the paper's figures.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "Independent"
	case Correlated:
		return "Correlated"
	case AntiCorrelated:
		return "Anti-Correlated"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps the CLI spellings to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "independent", "indep", "I":
		return Independent, nil
	case "correlated", "corr", "C":
		return Correlated, nil
	case "anticorrelated", "anti", "A":
		return AntiCorrelated, nil
	default:
		return 0, fmt.Errorf("datagen: unknown distribution %q", s)
	}
}

// Config describes one synthetic relation.
type Config struct {
	// Name of the generated relation.
	Name string
	// N is the number of tuples.
	N int
	// Local and Agg give the skyline attribute split (d = Local + Agg).
	Local, Agg int
	// Groups is the number of distinct join keys g; keys are assigned
	// round-robin so every group has n/g tuples and the joined relation
	// has n²/g tuples (paper Table 7).
	Groups int
	// Dist selects the distribution (default Independent).
	Dist Distribution
	// Seed makes the relation reproducible.
	Seed int64
}

// Generate builds a synthetic relation per the config.
func Generate(cfg Config) (*dataset.Relation, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("datagen: n must be positive, got %d", cfg.N)
	}
	if cfg.Groups <= 0 {
		return nil, fmt.Errorf("datagen: groups must be positive, got %d", cfg.Groups)
	}
	d := cfg.Local + cfg.Agg
	if d <= 0 {
		return nil, fmt.Errorf("datagen: dimensionality must be positive, got local=%d agg=%d", cfg.Local, cfg.Agg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tuples := make([]dataset.Tuple, cfg.N)
	for i := range tuples {
		tuples[i] = dataset.Tuple{
			Key:   fmt.Sprintf("g%04d", i%cfg.Groups),
			Band:  rng.Float64(),
			Attrs: point(rng, cfg.Dist, d),
		}
	}
	return dataset.New(cfg.Name, cfg.Local, cfg.Agg, tuples)
}

// MustGenerate is Generate but panics on error; for tests and benchmarks
// with literal configs.
func MustGenerate(cfg Config) *dataset.Relation {
	r, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// point draws one d-dimensional attribute vector in [0,1)^d.
func point(rng *rand.Rand, dist Distribution, d int) []float64 {
	attrs := make([]float64, d)
	switch dist {
	case Correlated:
		// A peaked base value shared by all dimensions plus small
		// per-dimension jitter keeps points near the main diagonal.
		base := peaked(rng)
		for i := range attrs {
			attrs[i] = reflect01(base + 0.15*(rng.Float64()-0.5))
		}
	case AntiCorrelated:
		// Deviations that sum to zero around a tightly peaked plane
		// offset: being below the plane in one dimension forces other
		// dimensions above it.
		base := 0.5 + 0.1*(peaked(rng)-0.5)
		dev := make([]float64, d)
		mean := 0.0
		for i := range dev {
			dev[i] = rng.Float64() - 0.5
			mean += dev[i]
		}
		mean /= float64(d)
		for i := range attrs {
			attrs[i] = reflect01(base + dev[i] - mean)
		}
	default: // Independent
		for i := range attrs {
			attrs[i] = rng.Float64()
		}
	}
	return attrs
}

// peaked approximates a normal variate on (0,1) centered at 0.5 by
// averaging 12 uniforms (the classic Irwin–Hall trick the original skyline
// benchmark generator uses).
func peaked(rng *rand.Rand) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += rng.Float64()
	}
	return s / 12
}

// reflect01 folds a value into [0,1) by reflection at the borders, which
// preserves the distribution's shape better than clamping.
func reflect01(v float64) float64 {
	for v < 0 || v >= 1 {
		if v < 0 {
			v = -v
		} else {
			v = 2 - v - 1e-12
		}
	}
	return v
}
