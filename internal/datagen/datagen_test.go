package datagen

import (
	"math"
	"testing"

	"repro/internal/join"
)

func TestGenerateShape(t *testing.T) {
	r := MustGenerate(Config{Name: "r", N: 100, Local: 3, Agg: 2, Groups: 10, Seed: 1})
	if r.Len() != 100 || r.D() != 5 || r.Local != 3 || r.Agg != 2 {
		t.Fatalf("unexpected shape: n=%d d=%d", r.Len(), r.D())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range r.FlatAttrs() {
		if v < 0 || v >= 1 {
			t.Fatalf("attribute %v outside [0,1)", v)
		}
	}
	for _, v := range r.Bands() {
		if v < 0 || v >= 1 {
			t.Fatalf("band %v outside [0,1)", v)
		}
	}
}

func TestGenerateGroupsBalanced(t *testing.T) {
	r := MustGenerate(Config{Name: "r", N: 100, Local: 2, Groups: 10, Seed: 2})
	idx := r.GroupIndex()
	if len(idx) != 10 {
		t.Fatalf("got %d groups, want 10", len(idx))
	}
	for key, members := range idx {
		if len(members) != 10 {
			t.Errorf("group %s has %d members, want 10", key, len(members))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Name: "r", N: 50, Local: 3, Groups: 5, Dist: AntiCorrelated, Seed: 7})
	b := MustGenerate(Config{Name: "r", N: 50, Local: 3, Groups: 5, Dist: AntiCorrelated, Seed: 7})
	for i := 0; i < a.Len(); i++ {
		for j, v := range a.Attrs(i) {
			if v != b.Attrs(i)[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := MustGenerate(Config{Name: "r", N: 50, Local: 3, Groups: 5, Dist: AntiCorrelated, Seed: 8})
	same := true
	for i := 0; i < a.Len(); i++ {
		for j, v := range a.Attrs(i) {
			if v != c.Attrs(i)[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{N: 0, Local: 2, Groups: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Generate(Config{N: 10, Local: 0, Groups: 1}); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Generate(Config{N: 10, Local: 2, Groups: 0}); err == nil {
		t.Error("g=0 accepted")
	}
}

// pairwiseCorrelation computes the mean Pearson correlation across
// attribute pairs.
func pairwiseCorrelation(t *testing.T, dist Distribution) float64 {
	t.Helper()
	r := MustGenerate(Config{Name: "r", N: 3000, Local: 4, Groups: 1, Dist: dist, Seed: 42})
	d := r.D()
	total, pairs := 0.0, 0
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			var sa, sb, saa, sbb, sab float64
			n := float64(r.Len())
			for i := 0; i < r.Len(); i++ {
				x, y := r.Attrs(i)[a], r.Attrs(i)[b]
				sa += x
				sb += y
				saa += x * x
				sbb += y * y
				sab += x * y
			}
			cov := sab/n - (sa/n)*(sb/n)
			va := saa/n - (sa/n)*(sa/n)
			vb := sbb/n - (sb/n)*(sb/n)
			total += cov / math.Sqrt(va*vb)
			pairs++
		}
	}
	return total / float64(pairs)
}

func TestDistributionShapes(t *testing.T) {
	indep := pairwiseCorrelation(t, Independent)
	corr := pairwiseCorrelation(t, Correlated)
	anti := pairwiseCorrelation(t, AntiCorrelated)
	if math.Abs(indep) > 0.1 {
		t.Errorf("independent correlation %.3f, want ~0", indep)
	}
	if corr < 0.5 {
		t.Errorf("correlated correlation %.3f, want strongly positive", corr)
	}
	if anti > -0.2 {
		t.Errorf("anti-correlated correlation %.3f, want clearly negative", anti)
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]Distribution{
		"independent": Independent, "indep": Independent, "I": Independent,
		"correlated": Correlated, "corr": Correlated, "C": Correlated,
		"anticorrelated": AntiCorrelated, "anti": AntiCorrelated, "A": AntiCorrelated,
	} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v,%v, want %v", s, got, err, want)
		}
	}
	if _, err := ParseDistribution("zipf"); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestDistributionString(t *testing.T) {
	if Independent.String() != "Independent" || Correlated.String() != "Correlated" ||
		AntiCorrelated.String() != "Anti-Correlated" {
		t.Error("distribution labels must match the paper's figures")
	}
}

func TestFlightsShape(t *testing.T) {
	out, in, err := Flights(DefaultFlightsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 192 || in.Len() != 155 {
		t.Fatalf("cardinalities %d/%d, want 192/155 (paper Sec 7.4)", out.Len(), in.Len())
	}
	if out.Local != 3 || out.Agg != 2 || in.Local != 3 || in.Agg != 2 {
		t.Fatal("flight schema must be 3 local + 2 aggregate attributes")
	}
	if err := join.CheckSchemas(out, in); err != nil {
		t.Fatal(err)
	}
	if hubs := len(out.Keys()); hubs > 13 {
		t.Errorf("outbound uses %d hubs, want <= 13", hubs)
	}
	joined, err := join.CountPairs(out, in, join.Spec{Cond: join.Equality})
	if err != nil {
		t.Fatal(err)
	}
	// Paper reports 2649 joined tuples for the real data; the simulator
	// should land in the same ballpark (n1*n2/hubs ≈ 2289).
	if joined < 1200 || joined > 4500 {
		t.Errorf("joined relation has %d tuples, want the paper's ballpark (~2649)", joined)
	}
}

func TestFlightsCostTimeAntiCorrelated(t *testing.T) {
	out, _, err := Flights(DefaultFlightsConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Attrs: [fee, pop, amen, cost, flyTime]; cost vs time should be
	// negatively correlated.
	var sa, sb, saa, sbb, sab float64
	n := float64(out.Len())
	for i := 0; i < out.Len(); i++ {
		x, y := out.Attrs(i)[3], out.Attrs(i)[4]
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if r := cov / math.Sqrt(va*vb); r > -0.3 {
		t.Errorf("cost/time correlation %.3f, want clearly negative", r)
	}
}

func TestFlightsErrors(t *testing.T) {
	if _, _, err := Flights(FlightsConfig{Outbound: 0, Inbound: 10, Hubs: 3}); err == nil {
		t.Error("zero outbound accepted")
	}
	if _, _, err := Flights(FlightsConfig{Outbound: 10, Inbound: 10, Hubs: 0}); err == nil {
		t.Error("zero hubs accepted")
	}
}

func TestFlightsConnectionsExist(t *testing.T) {
	out, in := MustFlights(DefaultFlightsConfig())
	// Band joins (arrival < departure) must produce some valid itineraries
	// and fewer than the unconstrained equality join.
	eq, err := join.CountPairs(out, in, join.Spec{Cond: join.Equality})
	if err != nil {
		t.Fatal(err)
	}
	timed := 0
	g2 := in.GroupIndex()
	for i := 0; i < out.Len(); i++ {
		for _, j := range g2[out.Key(i)] {
			if out.Band(i) < in.Band(j) {
				timed++
			}
		}
	}
	if timed == 0 {
		t.Fatal("no time-feasible connections generated")
	}
	if timed >= eq {
		t.Fatalf("timed connections (%d) should be fewer than all hub pairs (%d)", timed, eq)
	}
}
