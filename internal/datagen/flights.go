package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// FlightsConfig describes the simulated two-legged flight dataset of
// Sec. 7.4. The paper crawled makemytrip.com: 192 flights from New Delhi to
// 13 hub cities and 155 flights from those hubs to Mumbai, five attributes
// each (cost, flying time, date-change fee, popularity, amenities), with
// cost and flying time aggregated and the rest local. That crawl is
// proprietary; this simulator reproduces its shape: identical cardinalities
// and schema, the same hub structure, anti-correlation between cost and
// flying time (fast flights are expensive), and popularity correlated with
// amenities. See DESIGN.md §2 for the substitution rationale.
type FlightsConfig struct {
	// Outbound and Inbound are the two leg cardinalities (paper: 192, 155).
	Outbound, Inbound int
	// Hubs is the number of intermediate cities (paper: 13).
	Hubs int
	// Seed makes the dataset reproducible.
	Seed int64
}

// DefaultFlightsConfig matches the paper's real-dataset dimensions.
func DefaultFlightsConfig() FlightsConfig {
	return FlightsConfig{Outbound: 192, Inbound: 155, Hubs: 13, Seed: 2017}
}

// Flights generates the two base relations. Attribute layout (all lower is
// better, as in the paper): locals [date-change fee, popularity rank,
// amenity rank] then aggregates [cost, flying time]; so Local = 3, Agg = 2
// and each joined tuple has 3+3+2 = 8 skyline attributes, matching
// Sec. 7.4. The join key is the hub city; departure/arrival times are
// stored in Band so non-equality (connection-time) joins can be expressed.
func Flights(cfg FlightsConfig) (outbound, inbound *dataset.Relation, err error) {
	if cfg.Outbound <= 0 || cfg.Inbound <= 0 || cfg.Hubs <= 0 {
		return nil, nil, fmt.Errorf("datagen: invalid flights config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	outbound, err = dataset.New("delhi-to-hub", 3, 2, flightLeg(rng, cfg.Outbound, cfg.Hubs, true))
	if err != nil {
		return nil, nil, err
	}
	inbound, err = dataset.New("hub-to-mumbai", 3, 2, flightLeg(rng, cfg.Inbound, cfg.Hubs, false))
	if err != nil {
		return nil, nil, err
	}
	return outbound, inbound, nil
}

// MustFlights is Flights but panics on error.
func MustFlights(cfg FlightsConfig) (outbound, inbound *dataset.Relation) {
	outbound, inbound, err := Flights(cfg)
	if err != nil {
		panic(err)
	}
	return outbound, inbound
}

func flightLeg(rng *rand.Rand, n, hubs int, outbound bool) []dataset.Tuple {
	tuples := make([]dataset.Tuple, n)
	for i := range tuples {
		hub := fmt.Sprintf("hub%02d", rng.Intn(hubs))
		// Flying time in hours; short-haul domestic legs.
		flyTime := 1.0 + 2.5*rng.Float64()
		// Cost anti-correlates with flying time (fast, direct routings
		// cost more) plus airline noise; rupees.
		cost := 7000 - 1200*flyTime + 900*rng.NormFloat64()
		if cost < 1500 {
			cost = 1500 + 100*rng.Float64()
		}
		// Date-change fee: a few discrete airline policies.
		fee := float64(1000 + 500*rng.Intn(5))
		// Popularity rank (lower = more popular) correlates with amenity
		// rank: well-equipped flights are popular.
		amen := rng.Float64() * 100
		pop := 0.7*amen + 0.3*rng.Float64()*100
		// Departure time of day in hours: outbound flights depart Delhi
		// early, inbound legs leave hubs later so connections exist.
		var depart float64
		if outbound {
			depart = 5 + 8*rng.Float64() // arrival at hub ~ depart+flyTime
			tuples[i].Band = depart + flyTime
		} else {
			depart = 8 + 12*rng.Float64()
			tuples[i].Band = depart
		}
		tuples[i].Key = hub
		tuples[i].Attrs = []float64{fee, pop, amen, cost, flyTime}
	}
	return tuples
}
