package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randBatch(rng *rand.Rand, n, local, agg, groups int) []Tuple {
	ts := make([]Tuple, n)
	for i := range ts {
		attrs := make([]float64, local+agg)
		for j := range attrs {
			attrs[j] = rng.Float64() * 100
		}
		ts[i] = Tuple{
			Key:   fmt.Sprintf("g%04d", rng.Intn(groups)),
			Band:  rng.Float64(),
			Attrs: attrs,
		}
	}
	return ts
}

// TestAppendBatchMatchesSequential pins the batched append to the
// per-tuple path: same rows, same symbols, same iteration views.
func TestAppendBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	base := randBatch(rng, 10, 2, 1, 3)
	batch := randBatch(rng, 25, 2, 1, 3)

	seq, err := New("seq", 2, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	bat := seq.Clone()
	for i, tup := range batch {
		id, err := seq.Append(tup)
		if err != nil {
			t.Fatal(err)
		}
		if id != len(base)+i {
			t.Fatalf("Append id = %d, want %d", id, len(base)+i)
		}
	}
	first, err := bat.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != len(base) {
		t.Fatalf("AppendBatch first id = %d, want %d", first, len(base))
	}
	if seq.Len() != bat.Len() {
		t.Fatalf("lengths diverge: sequential %d, batch %d", seq.Len(), bat.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		a, b := seq.Tuple(i), bat.Tuple(i)
		if a.Key != b.Key || a.Key2 != b.Key2 || a.Band != b.Band {
			t.Fatalf("row %d diverges: %+v vs %+v", i, a, b)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatalf("row %d attr %d: %v vs %v", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
		if seq.KeyID(i) != bat.KeyID(i) {
			t.Fatalf("row %d symbol diverges: %d vs %d", i, seq.KeyID(i), bat.KeyID(i))
		}
	}
}

// TestAppendBatchRejectsAtomically pins all-or-nothing validation: a bad
// tuple anywhere in the batch leaves the relation untouched and names the
// offending position.
func TestAppendBatchRejectsAtomically(t *testing.T) {
	r, err := New("r", 2, 0, randBatch(rand.New(rand.NewSource(5)), 4, 2, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	n := r.Len()
	bad := randBatch(rand.New(rand.NewSource(6)), 3, 2, 0, 2)
	bad[2].Attrs[0] = math.NaN()
	if _, err := r.AppendBatch(bad); err == nil {
		t.Fatal("AppendBatch accepted a NaN attribute")
	} else if !strings.Contains(err.Error(), "tuple 2") {
		t.Fatalf("error %q does not name the offending tuple", err)
	} else if !errors.Is(err, ErrBadSchema) {
		t.Fatalf("error %q is not ErrBadSchema", err)
	}
	if r.Len() != n {
		t.Fatalf("failed batch mutated the relation: %d rows, want %d", r.Len(), n)
	}
}
