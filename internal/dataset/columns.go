package dataset

import (
	"fmt"
	"math"
)

// Columns is the raw columnar snapshot of a relation: exactly the storage
// DESIGN.md §8 describes, surfaced as plain slices so a serializer (the
// durable store's segment codec) can dump and reload a relation without
// round-tripping through row-shaped tuples. Attrs is the row-major
// attribute block strided by Local+Agg; Keys and Keys2 index Symbols.
type Columns struct {
	Name    string
	Local   int
	Agg     int
	Attrs   []float64
	Band    []float64
	Keys    []int32
	Keys2   []int32
	Symbols []string
}

// Rows returns the row count the column lengths imply.
func (c *Columns) Rows() int { return len(c.Band) }

// SnapshotColumns returns the relation's columns as views into its live
// storage (no copying): the caller must treat every slice as read-only and
// must not hold the views across a mutation of the relation. The store's
// checkpoint writer uses it to stream a relation to disk straight from the
// resident columns.
func (r *Relation) SnapshotColumns() Columns {
	return Columns{
		Name:    r.Name,
		Local:   r.Local,
		Agg:     r.Agg,
		Attrs:   r.attrs[:r.n*r.D()],
		Band:    r.band[:r.n],
		Keys:    r.keys[:r.n],
		Keys2:   r.keys2[:r.n],
		Symbols: r.syms.Strings(),
	}
}

// NewFromColumns rebuilds a relation from a columnar snapshot, taking
// ownership of the slices (callers that retain them must copy first). It
// re-derives the symbol table from the snapshot's string list and runs the
// full Validate pass, so a corrupt or hand-built snapshot cannot smuggle
// invariant-breaking rows (NaN bands, out-of-table symbols, inconsistent
// column lengths) past the checks New enforces on the row-shaped path.
func NewFromColumns(c Columns) (*Relation, error) {
	d := c.Local + c.Agg
	if c.Local < 0 || c.Agg < 0 || d == 0 {
		return nil, fmt.Errorf("%w: local=%d agg=%d", ErrBadSchema, c.Local, c.Agg)
	}
	n := len(c.Band)
	if len(c.Attrs) != n*d || len(c.Keys) != n || len(c.Keys2) != n {
		return nil, fmt.Errorf("%w: %s: column lengths (attrs=%d band=%d keys=%d keys2=%d) inconsistent with %d rows of width %d",
			ErrBadSchema, c.Name, len(c.Attrs), len(c.Band), len(c.Keys), len(c.Keys2), n, d)
	}
	syms, err := SymbolTableFromStrings(c.Symbols)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSchema, c.Name, err)
	}
	r := &Relation{
		Name:  c.Name,
		Local: c.Local,
		Agg:   c.Agg,
		n:     n,
		attrs: c.Attrs,
		band:  c.Band,
		keys:  c.Keys,
		keys2: c.Keys2,
		syms:  syms,
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// EqualContents reports whether two relations hold byte-identical columns
// (schema, every attribute, band, and join-key string, in the same row
// order). Symbol IDs are compared through their strings, so two relations
// that interned keys in different orders still compare equal when the rows
// agree. Recovery tests use it as the "nothing drifted" oracle.
func (r *Relation) EqualContents(o *Relation) bool {
	if r.Local != o.Local || r.Agg != o.Agg || r.n != o.n {
		return false
	}
	d := r.D()
	for i := 0; i < r.n*d; i++ {
		if r.attrs[i] != o.attrs[i] && !(math.IsNaN(r.attrs[i]) && math.IsNaN(o.attrs[i])) {
			return false
		}
	}
	for i := 0; i < r.n; i++ {
		if r.band[i] != o.band[i] || r.Key(i) != o.Key(i) || r.Key2(i) != o.Key2(i) {
			return false
		}
	}
	return true
}

// Strings returns the table's interned strings in symbol-ID order (index i
// is the string for ID i). The returned slice is a copy.
func (st *SymbolTable) Strings() []string {
	return append([]string(nil), st.strs...)
}

// SymbolTableFromStrings rebuilds a table whose IDs are the slice indexes.
// Duplicate strings are rejected: two IDs for one string would break the
// "equal key ⇔ equal symbol" contract every join structure relies on.
func SymbolTableFromStrings(strs []string) (*SymbolTable, error) {
	st := &SymbolTable{
		ids:  make(map[string]int32, len(strs)),
		strs: append([]string(nil), strs...),
	}
	for i, s := range strs {
		if prev, ok := st.ids[s]; ok {
			return nil, fmt.Errorf("dataset: duplicate symbol %q (ids %d and %d)", s, prev, i)
		}
		st.ids[s] = int32(i)
	}
	return st, nil
}
