package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV layout: the first column is the join key, an optional "band" column
// follows (enabled via ReadOptions.HasBand), and the remaining columns are
// skyline attributes. A header row is required; attribute column names are
// preserved only for error messages.

// ReadOptions controls CSV parsing.
type ReadOptions struct {
	// Name for the resulting relation.
	Name string
	// Local and Agg give the skyline-attribute split; their sum must match
	// the number of attribute columns.
	Local, Agg int
	// HasBand indicates that the second column is the band attribute used
	// for non-equality joins.
	HasBand bool
}

// ReadCSV parses a relation from CSV. The first row must be a header.
func ReadCSV(r io.Reader, opts ReadOptions) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // we validate widths ourselves for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	attrStart := 1
	if opts.HasBand {
		attrStart = 2
	}
	wantCols := attrStart + opts.Local + opts.Agg
	if len(header) != wantCols {
		return nil, fmt.Errorf("%w: header has %d columns, schema requires %d (key%s + %d attrs)",
			ErrBadSchema, len(header), wantCols, bandNote(opts.HasBand), opts.Local+opts.Agg)
	}

	var tuples []Tuple
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != wantCols {
			return nil, fmt.Errorf("%w: line %d has %d columns, want %d", ErrBadSchema, line, len(rec), wantCols)
		}
		t := Tuple{Key: rec[0]}
		if opts.HasBand {
			t.Band, err = strconv.ParseFloat(rec[1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, header[1], err)
			}
		}
		t.Attrs = make([]float64, 0, opts.Local+opts.Agg)
		for c := attrStart; c < wantCols; c++ {
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, header[c], err)
			}
			t.Attrs = append(t.Attrs, v)
		}
		tuples = append(tuples, t)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrEmptyRelation, opts.Name)
	}
	return New(opts.Name, opts.Local, opts.Agg, tuples)
}

func bandNote(hasBand bool) string {
	if hasBand {
		return " + band"
	}
	return ""
}

// WriteCSV emits the relation in the layout ReadCSV expects. Attribute
// columns are named a0..a<d-1>; aggregate columns get an "agg" suffix.
func WriteCSV(w io.Writer, r *Relation, withBand bool) error {
	cw := csv.NewWriter(w)
	header := []string{"key"}
	if withBand {
		header = append(header, "band")
	}
	for i := 0; i < r.Local; i++ {
		header = append(header, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < r.Agg; i++ {
		header = append(header, fmt.Sprintf("a%d_agg", r.Local+i))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < r.Len(); i++ {
		rec = rec[:0]
		rec = append(rec, r.Key(i))
		if withBand {
			rec = append(rec, strconv.FormatFloat(r.Band(i), 'g', -1, 64))
		}
		for _, v := range r.Attrs(i) {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
