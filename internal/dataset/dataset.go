// Package dataset defines the relation and tuple model used throughout the
// KSJQ implementation: relations carrying join keys, optional band
// attributes for non-equality joins, and skyline attribute vectors split
// into local and aggregate parts (Sec. 3 and Sec. 5.6 of the paper).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Tuple is one row of a base relation.
//
// Attrs holds the skyline attributes: first the local attributes, then the
// aggregate ones (Relation.Local and Relation.Agg give the split). Lower
// values are preferred on every attribute.
type Tuple struct {
	// ID identifies the tuple within its relation. IDs are assigned by the
	// relation constructor and are stable across algorithm runs so results
	// can be compared set-wise.
	ID int
	// Key is the equality-join attribute (the h attributes of Eq. 1-3,
	// collapsed to a single comparable key). For the flight example this is
	// the stop-over city.
	Key string
	// Key2 is the secondary equality-join key used when the relation sits
	// in the middle of a cascaded multi-relation join (Sec. 2.3): it joins
	// to the *next* relation's Key. Ignored by two-relation queries.
	Key2 string
	// Band is the attribute used by non-equality join conditions
	// (Sec. 6.6), e.g. an arrival or departure time. Ignored for equality
	// joins.
	Band float64
	// Attrs are the skyline attribute values.
	Attrs []float64
}

// Relation is a base relation: a named list of tuples with a common schema.
type Relation struct {
	// Name is used in error messages and CLI output.
	Name string
	// Local is the number of local skyline attributes (l in Sec. 5.6).
	Local int
	// Agg is the number of aggregate skyline attributes (a in Sec. 5.6).
	// Attrs[Local:Local+Agg] of each tuple are combined with the other
	// relation's aggregate attributes on join.
	Agg int
	// Tuples holds the rows.
	Tuples []Tuple
}

// Errors reported by relation validation.
var (
	ErrEmptyRelation = errors.New("dataset: relation has no tuples")
	ErrBadSchema     = errors.New("dataset: invalid schema")
)

// New creates a relation with the given schema and assigns tuple IDs
// 0..len(tuples)-1 in order. It validates that every tuple matches the
// schema width local+agg.
func New(name string, local, agg int, tuples []Tuple) (*Relation, error) {
	if local < 0 || agg < 0 || local+agg == 0 {
		return nil, fmt.Errorf("%w: local=%d agg=%d", ErrBadSchema, local, agg)
	}
	r := &Relation{Name: name, Local: local, Agg: agg, Tuples: tuples}
	for i := range r.Tuples {
		if len(r.Tuples[i].Attrs) != local+agg {
			return nil, fmt.Errorf("%w: tuple %d has %d attributes, schema requires %d",
				ErrBadSchema, i, len(r.Tuples[i].Attrs), local+agg)
		}
		if math.IsNaN(r.Tuples[i].Band) {
			return nil, fmt.Errorf("%w: tuple %d has NaN band", ErrBadSchema, i)
		}
		r.Tuples[i].ID = i
	}
	return r, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// hand-written literals.
func MustNew(name string, local, agg int, tuples []Tuple) *Relation {
	r, err := New(name, local, agg, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Append validates t against the relation's schema, assigns it the next
// tuple ID, and appends it, returning the assigned ID. It is the one
// supported way to grow a relation after construction: the incremental
// maintainer and the query service both route inserts through it, so the
// invariants New enforces (attribute width, no NaN band) hold for the
// relation's whole life.
func (r *Relation) Append(t Tuple) (int, error) {
	if len(t.Attrs) != r.D() {
		return 0, fmt.Errorf("%w: tuple has %d attributes, relation %s requires %d",
			ErrBadSchema, len(t.Attrs), r.Name, r.D())
	}
	// A NaN band has no position in the band-sorted join index; reject it
	// here exactly like New does.
	if math.IsNaN(t.Band) {
		return 0, fmt.Errorf("%w: tuple has NaN band", ErrBadSchema)
	}
	t.ID = r.Len()
	r.Tuples = append(r.Tuples, t)
	return t.ID, nil
}

// D returns the total number of skyline attributes (d = l + a).
func (r *Relation) D() int { return r.Local + r.Agg }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Validate checks the relation invariants: non-empty, consistent widths,
// IDs matching positions.
func (r *Relation) Validate() error {
	if len(r.Tuples) == 0 {
		return fmt.Errorf("%w: %s", ErrEmptyRelation, r.Name)
	}
	if r.Local < 0 || r.Agg < 0 || r.D() == 0 {
		return fmt.Errorf("%w: %s: local=%d agg=%d", ErrBadSchema, r.Name, r.Local, r.Agg)
	}
	for i, t := range r.Tuples {
		if len(t.Attrs) != r.D() {
			return fmt.Errorf("%w: %s: tuple %d has width %d, want %d",
				ErrBadSchema, r.Name, i, len(t.Attrs), r.D())
		}
		if t.ID != i {
			return fmt.Errorf("%w: %s: tuple at index %d has ID %d", ErrBadSchema, r.Name, i, t.ID)
		}
		// NaN bands have no position in a sorted order, so the band join
		// index cannot represent them; `Matches` comparisons would also
		// silently exclude the tuple from every join.
		if math.IsNaN(t.Band) {
			return fmt.Errorf("%w: %s: tuple %d has NaN band", ErrBadSchema, r.Name, i)
		}
	}
	return nil
}

// Keys returns the distinct join-key values in deterministic (sorted) order.
func (r *Relation) Keys() []string {
	seen := make(map[string]bool)
	for i := range r.Tuples {
		seen[r.Tuples[i].Key] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GroupIndex maps each join-key value to the indices of the tuples holding
// it, preserving tuple order within each group. It is a one-shot
// convenience for tests and tooling; hot paths should build a reusable
// join.Index instead.
func (r *Relation) GroupIndex() map[string][]int {
	idx := make(map[string][]int)
	for i := range r.Tuples {
		idx[r.Tuples[i].Key] = append(idx[r.Tuples[i].Key], i)
	}
	return idx
}

// Clone returns a deep copy of the relation. Algorithms never mutate their
// inputs, but experiments reuse relations across runs and occasionally want
// an isolated copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Local: r.Local, Agg: r.Agg, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t
		c.Tuples[i].Attrs = append([]float64(nil), t.Attrs...)
	}
	return c
}

// HasUVP reports whether the relation satisfies the unique value property
// (Def. 4) with respect to i attributes: no two tuples agree on any i-sized
// subset of skyline attributes. Equivalently, no pair of tuples agrees on i
// or more attribute positions.
func (r *Relation) HasUVP(i int) bool {
	if i <= 0 {
		return len(r.Tuples) <= 1
	}
	for a := 0; a < len(r.Tuples); a++ {
		for b := a + 1; b < len(r.Tuples); b++ {
			eq := 0
			for j, v := range r.Tuples[a].Attrs {
				if v == r.Tuples[b].Attrs[j] {
					eq++
				}
			}
			if eq >= i {
				return false
			}
		}
	}
	return true
}
