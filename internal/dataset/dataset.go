// Package dataset defines the relation and tuple model used throughout the
// KSJQ implementation: relations carrying join keys, optional band
// attributes for non-equality joins, and skyline attribute vectors split
// into local and aggregate parts (Sec. 3 and Sec. 5.6 of the paper).
//
// Storage is columnar (struct of arrays): a relation keeps one flat
// row-major attrs block strided by D(), flat band and key columns, and a
// per-relation SymbolTable interning join-key strings into dense int32
// symbol IDs. The algorithms' dense numeric scans — categorization,
// verification, band-range probes — therefore touch contiguous float64
// memory with no per-row pointer chasing, and group lookups compare
// integers instead of re-hashing strings. Tuple survives as the row-shaped
// view and constructor value: New and Append accept tuples, Tuple(i)
// materializes one, and the public ksjq facade stays row-shaped while the
// engine underneath runs on columns (DESIGN.md §8).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Tuple is one row of a base relation — the row-shaped value used to
// construct relations and to view single rows of the columnar storage.
//
// Attrs holds the skyline attributes: first the local attributes, then the
// aggregate ones (Relation.Local and Relation.Agg give the split). Lower
// values are preferred on every attribute.
type Tuple struct {
	// ID identifies the tuple within its relation. IDs equal the tuple's
	// row index, are assigned by the relation constructor, and are stable
	// across algorithm runs so results can be compared set-wise.
	ID int
	// Key is the equality-join attribute (the h attributes of Eq. 1-3,
	// collapsed to a single comparable key). For the flight example this is
	// the stop-over city.
	Key string
	// Key2 is the secondary equality-join key used when the relation sits
	// in the middle of a cascaded multi-relation join (Sec. 2.3): it joins
	// to the *next* relation's Key. Ignored by two-relation queries.
	Key2 string
	// Band is the attribute used by non-equality join conditions
	// (Sec. 6.6), e.g. an arrival or departure time. Ignored for equality
	// joins.
	Band float64
	// Attrs are the skyline attribute values.
	Attrs []float64
}

// Relation is a base relation: a named set of rows with a common schema,
// stored column-wise.
type Relation struct {
	// Name is used in error messages and CLI output.
	Name string
	// Local is the number of local skyline attributes (l in Sec. 5.6).
	Local int
	// Agg is the number of aggregate skyline attributes (a in Sec. 5.6).
	// Attrs(i)[Local:Local+Agg] are combined with the other relation's
	// aggregate attributes on join.
	Agg int

	// n is the row count; the columns below all have n rows.
	n int
	// attrs is the row-major skyline attribute block: row i occupies
	// attrs[i*D() : (i+1)*D()].
	attrs []float64
	// band is the band-attribute column.
	band []float64
	// keys and keys2 are the interned join-key columns; both index syms.
	keys  []int32
	keys2 []int32
	// syms interns the relation's join-key strings (Key and Key2 share it).
	syms *SymbolTable
}

// Errors reported by relation validation.
var (
	ErrEmptyRelation = errors.New("dataset: relation has no tuples")
	ErrBadSchema     = errors.New("dataset: invalid schema")
)

// checkTuple validates one incoming row against the schema: attribute
// width, finite skyline attributes, and a non-NaN band. NaN skyline
// attributes would make domination comparisons silently false, and ±Inf
// breaks the attribute-sum probe ordering (Inf + -Inf = NaN), so both are
// rejected everywhere tuples enter the system.
func checkTuple(t *Tuple, d int) error {
	if len(t.Attrs) != d {
		return fmt.Errorf("%w: tuple has %d attributes, schema requires %d", ErrBadSchema, len(t.Attrs), d)
	}
	for j, v := range t.Attrs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: attribute %d is %v, skyline attributes must be finite", ErrBadSchema, j, v)
		}
	}
	// A NaN band has no position in the band-sorted join index; `Matches`
	// comparisons would also silently exclude the tuple from every join.
	if math.IsNaN(t.Band) {
		return fmt.Errorf("%w: tuple has NaN band", ErrBadSchema)
	}
	return nil
}

// New creates a relation with the given schema from row-shaped tuples,
// assigning row IDs 0..len(tuples)-1 in order. It validates that every
// tuple matches the schema width local+agg and carries finite skyline
// attributes and a non-NaN band. The tuples' storage is copied into the
// relation's columns; the input slice is not retained or mutated.
// Construction is one AppendBatch over an empty relation, so the bulk
// ingest path and the constructor share one set of invariants.
func New(name string, local, agg int, tuples []Tuple) (*Relation, error) {
	if local < 0 || agg < 0 || local+agg == 0 {
		return nil, fmt.Errorf("%w: local=%d agg=%d", ErrBadSchema, local, agg)
	}
	r := &Relation{
		Name:  name,
		Local: local,
		Agg:   agg,
		syms:  NewSymbolTable(),
	}
	if _, err := r.AppendBatch(tuples); err != nil {
		return nil, err
	}
	return r, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// hand-written literals.
func MustNew(name string, local, agg int, tuples []Tuple) *Relation {
	r, err := New(name, local, agg, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Append validates t against the relation's schema, assigns it the next
// row ID, and appends it to the columns, returning the assigned ID. It is
// the one supported way to grow a relation after construction: the
// incremental maintainer and the query service both route inserts through
// it, so the invariants New enforces (attribute width, finite attributes,
// no NaN band) hold for the relation's whole life.
func (r *Relation) Append(t Tuple) (int, error) {
	if err := checkTuple(&t, r.D()); err != nil {
		return 0, fmt.Errorf("%w (relation %s)", err, r.Name)
	}
	id := r.n
	r.attrs = append(r.attrs, t.Attrs...)
	r.band = append(r.band, t.Band)
	r.keys = append(r.keys, r.syms.Intern(t.Key))
	r.keys2 = append(r.keys2, r.syms.Intern(t.Key2))
	r.n++
	return id, nil
}

// AppendBatch validates ts against the relation's schema and appends all
// of them in one pass, assigning consecutive row IDs; it returns the first
// assigned ID (the batch occupies [first, first+len(ts))). Appending is
// all-or-nothing: every tuple is validated before any column is touched,
// so a bad tuple mid-batch cannot leave the relation half-grown. Each
// column grows at most once for the whole batch, and runs of equal join
// keys are interned with one symbol-table lookup per run — the bulk-ingest
// door group-commit inserts, CSV loads and New itself go through.
// The tuples' storage is copied; the input slice is not retained or
// mutated.
func (r *Relation) AppendBatch(ts []Tuple) (int, error) {
	d := r.D()
	for i := range ts {
		if err := checkTuple(&ts[i], d); err != nil {
			return 0, fmt.Errorf("%w (tuple %d)", err, i)
		}
	}
	first := r.n
	r.attrs = slices.Grow(r.attrs, len(ts)*d)
	r.band = slices.Grow(r.band, len(ts))
	r.keys = slices.Grow(r.keys, len(ts))
	r.keys2 = slices.Grow(r.keys2, len(ts))
	// Run memo: batches arrive grouped by key often enough (CSV exports,
	// per-group generators) that remembering the last interned string of
	// each column skips the table lookup for every repeat. Comparing a
	// repeated string to its own previous occurrence is cheap (equal
	// lengths, usually shared backing), and a miss costs one comparison.
	var lastKey, lastKey2 string
	var lastSym, lastSym2 int32 = -1, -1
	for i := range ts {
		t := &ts[i]
		r.attrs = append(r.attrs, t.Attrs...)
		r.band = append(r.band, t.Band)
		if lastSym < 0 || t.Key != lastKey {
			lastKey, lastSym = t.Key, r.syms.Intern(t.Key)
		}
		r.keys = append(r.keys, lastSym)
		if lastSym2 < 0 || t.Key2 != lastKey2 {
			lastKey2, lastSym2 = t.Key2, r.syms.Intern(t.Key2)
		}
		r.keys2 = append(r.keys2, lastSym2)
	}
	r.n += len(ts)
	return first, nil
}

// Delete removes row i, shifting higher rows down by one (their IDs shrink
// accordingly, matching slice semantics). Interned symbols are never
// reclaimed: a symbol ID stays valid for the life of the relation.
func (r *Relation) Delete(i int) error {
	return r.DeleteBatch([]int{i})
}

// DeleteBatch removes the rows with the given IDs in one pass. IDs refer to
// the relation's state before the call; survivors shift down to close the
// gaps, exactly as if the rows were deleted one by one from highest to
// lowest. Deleting is all-or-nothing: the whole batch is validated (bounds,
// no duplicates) before any column is touched, so a bad ID mid-batch cannot
// leave the relation half-compacted. Each surviving row moves at most once.
// The input slice is not retained or mutated. Interned symbols are never
// reclaimed: a symbol ID stays valid for the life of the relation.
func (r *Relation) DeleteBatch(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	sorted := ids
	if !sort.IntsAreSorted(sorted) {
		sorted = append([]int(nil), ids...)
		sort.Ints(sorted)
	}
	for i, id := range sorted {
		if id < 0 || id >= r.n {
			return fmt.Errorf("dataset: delete index %d out of range [0,%d)", id, r.n)
		}
		if i > 0 && id == sorted[i-1] {
			return fmt.Errorf("dataset: duplicate delete index %d", id)
		}
	}
	d := r.D()
	w, next := 0, 0
	for i := 0; i < r.n; i++ {
		if next < len(sorted) && sorted[next] == i {
			next++
			continue
		}
		if w != i {
			copy(r.attrs[w*d:(w+1)*d], r.attrs[i*d:(i+1)*d])
			r.band[w] = r.band[i]
			r.keys[w] = r.keys[i]
			r.keys2[w] = r.keys2[i]
		}
		w++
	}
	r.n = w
	r.attrs = r.attrs[:w*d]
	r.band = r.band[:w]
	r.keys = r.keys[:w]
	r.keys2 = r.keys2[:w]
	return nil
}

// D returns the total number of skyline attributes (d = l + a).
func (r *Relation) D() int { return r.Local + r.Agg }

// Len returns the number of rows.
func (r *Relation) Len() int { return r.n }

// Attrs returns row i's skyline attribute vector as a view into the
// attribute column. The view is capacity-clipped so appending to it cannot
// clobber the next row; callers must treat it as read-only.
func (r *Relation) Attrs(i int) []float64 {
	d := r.D()
	lo := i * d
	return r.attrs[lo : lo+d : lo+d]
}

// FlatAttrs returns the whole row-major attribute column (length
// Len()·D()), for hot loops that stride it directly. Read-only.
func (r *Relation) FlatAttrs() []float64 { return r.attrs }

// Band returns row i's band attribute.
func (r *Relation) Band(i int) float64 { return r.band[i] }

// Bands returns the band column (length Len()). Read-only.
func (r *Relation) Bands() []float64 { return r.band }

// Key returns row i's join key string.
func (r *Relation) Key(i int) string { return r.syms.String(r.keys[i]) }

// KeyID returns row i's interned join-key symbol. Symbols are comparable
// only within this relation's table (see Symbols).
func (r *Relation) KeyID(i int) int32 { return r.keys[i] }

// Key2 returns row i's secondary (cascade) join key string.
func (r *Relation) Key2(i int) string { return r.syms.String(r.keys2[i]) }

// Key2ID returns row i's interned secondary join-key symbol, in the same
// table as KeyID.
func (r *Relation) Key2ID(i int) int32 { return r.keys2[i] }

// Symbols returns the relation's symbol table. Join machinery uses it to
// build cross-relation key translations; callers must not intern into it.
func (r *Relation) Symbols() *SymbolTable { return r.syms }

// Tuple materializes row i as a row-shaped view. Attrs aliases the
// attribute column (no copy); callers that retain or mutate the vector
// must copy it first.
func (r *Relation) Tuple(i int) Tuple {
	return Tuple{
		ID:    i,
		Key:   r.Key(i),
		Key2:  r.Key2(i),
		Band:  r.band[i],
		Attrs: r.Attrs(i),
	}
}

// Rows materializes every row as a Tuple (attribute vectors are views, as
// in Tuple). A convenience for tests, tooling and the facade's row-shaped
// surface; hot paths read the columns directly.
func (r *Relation) Rows() []Tuple {
	out := make([]Tuple, r.n)
	for i := range out {
		out[i] = r.Tuple(i)
	}
	return out
}

// Validate checks the relation invariants: non-empty, a sane schema,
// consistent column lengths, key symbols covered by the symbol table, and
// finite attribute/band values.
func (r *Relation) Validate() error {
	if r.n == 0 {
		return fmt.Errorf("%w: %s", ErrEmptyRelation, r.Name)
	}
	if r.Local < 0 || r.Agg < 0 || r.D() == 0 {
		return fmt.Errorf("%w: %s: local=%d agg=%d", ErrBadSchema, r.Name, r.Local, r.Agg)
	}
	if len(r.attrs) != r.n*r.D() || len(r.band) != r.n || len(r.keys) != r.n || len(r.keys2) != r.n {
		return fmt.Errorf("%w: %s: column lengths (attrs=%d band=%d keys=%d keys2=%d) inconsistent with %d rows of width %d",
			ErrBadSchema, r.Name, len(r.attrs), len(r.band), len(r.keys), len(r.keys2), r.n, r.D())
	}
	if r.syms == nil {
		return fmt.Errorf("%w: %s: nil symbol table", ErrBadSchema, r.Name)
	}
	nsyms := int32(r.syms.Len())
	for i := 0; i < r.n; i++ {
		if r.keys[i] < 0 || r.keys[i] >= nsyms || r.keys2[i] < 0 || r.keys2[i] >= nsyms {
			return fmt.Errorf("%w: %s: row %d has key symbol outside the table", ErrBadSchema, r.Name, i)
		}
		if math.IsNaN(r.band[i]) {
			return fmt.Errorf("%w: %s: tuple %d has NaN band", ErrBadSchema, r.Name, i)
		}
	}
	for j, v := range r.attrs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s: tuple %d attribute %d is %v, skyline attributes must be finite",
				ErrBadSchema, r.Name, j/r.D(), j%r.D(), v)
		}
	}
	return nil
}

// Keys returns the distinct join-key values in deterministic (sorted) order.
func (r *Relation) Keys() []string {
	seen := make([]bool, r.syms.Len())
	keys := make([]string, 0, r.syms.Len())
	for _, id := range r.keys {
		if !seen[id] {
			seen[id] = true
			keys = append(keys, r.syms.String(id))
		}
	}
	sort.Strings(keys)
	return keys
}

// GroupIndex maps each join-key value to the indices of the rows holding
// it, preserving row order within each group. It is a one-shot convenience
// for tests and tooling; hot paths should build a reusable join.Index
// instead.
func (r *Relation) GroupIndex() map[string][]int {
	idx := make(map[string][]int)
	for i, id := range r.keys {
		k := r.syms.String(id)
		idx[k] = append(idx[k], i)
	}
	return idx
}

// Clone returns a deep copy of the relation (columns and symbol table).
// Algorithms never mutate their inputs, but experiments reuse relations
// across runs and occasionally want an isolated copy.
func (r *Relation) Clone() *Relation {
	return &Relation{
		Name:  r.Name,
		Local: r.Local,
		Agg:   r.Agg,
		n:     r.n,
		attrs: append([]float64(nil), r.attrs...),
		band:  append([]float64(nil), r.band...),
		keys:  append([]int32(nil), r.keys...),
		keys2: append([]int32(nil), r.keys2...),
		syms:  r.syms.clone(),
	}
}

// HasUVP reports whether the relation satisfies the unique value property
// (Def. 4) with respect to i attributes: no two tuples agree on any i-sized
// subset of skyline attributes. Equivalently, no pair of tuples agrees on i
// or more attribute positions.
func (r *Relation) HasUVP(i int) bool {
	if i <= 0 {
		return r.n <= 1
	}
	d := r.D()
	for a := 0; a < r.n; a++ {
		x := r.attrs[a*d : a*d+d]
		for b := a + 1; b < r.n; b++ {
			y := r.attrs[b*d : b*d+d]
			eq := 0
			for j, v := range x {
				if v == y[j] {
					eq++
				}
			}
			if eq >= i {
				return false
			}
		}
	}
	return true
}
