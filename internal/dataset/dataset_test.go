package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func sample() *Relation {
	return MustNew("r", 2, 1, []Tuple{
		{Key: "A", Attrs: []float64{1, 2, 3}},
		{Key: "B", Attrs: []float64{4, 5, 6}},
		{Key: "A", Attrs: []float64{7, 8, 9}},
	})
}

func TestNewAssignsIDs(t *testing.T) {
	r := sample()
	for i := 0; i < r.Len(); i++ {
		if tup := r.Tuple(i); tup.ID != i {
			t.Errorf("tuple %d has ID %d", i, tup.ID)
		}
	}
	if r.D() != 3 {
		t.Errorf("D() = %d, want 3", r.D())
	}
	if r.Len() != 3 {
		t.Errorf("Len() = %d, want 3", r.Len())
	}
}

func TestColumnarAccessors(t *testing.T) {
	r := sample()
	if got := r.Attrs(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("Attrs(1) = %v, want [4 5 6]", got)
	}
	if r.Key(0) != "A" || r.Key(1) != "B" || r.Key(2) != "A" {
		t.Errorf("keys = %q %q %q, want A B A", r.Key(0), r.Key(1), r.Key(2))
	}
	// Equal keys intern to equal symbols, distinct keys to distinct ones.
	if r.KeyID(0) != r.KeyID(2) || r.KeyID(0) == r.KeyID(1) {
		t.Errorf("key symbols = %d %d %d, want id(A)==id(A)!=id(B)", r.KeyID(0), r.KeyID(1), r.KeyID(2))
	}
	if got := r.FlatAttrs(); len(got) != r.Len()*r.D() || got[3] != 4 {
		t.Errorf("FlatAttrs() = %v, want 9 row-major values", got)
	}
	// Attribute views are capacity-clipped: appending must not clobber the
	// next row.
	v := r.Attrs(0)
	_ = append(v, 999)
	if r.Attrs(1)[0] != 4 {
		t.Error("append through a row view clobbered the next row")
	}
	rows := r.Rows()
	if len(rows) != 3 || rows[2].Key != "A" || rows[2].Attrs[0] != 7 {
		t.Errorf("Rows() = %v", rows)
	}
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Fatal("distinct strings interned to the same symbol")
	}
	if st.Intern("alpha") != a {
		t.Error("re-interning is not idempotent")
	}
	if id, ok := st.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := st.Lookup("gamma"); ok {
		t.Error("Lookup of an unknown string succeeded")
	}
	if st.String(a) != "alpha" || st.String(b) != "beta" {
		t.Errorf("String round trip: %q %q", st.String(a), st.String(b))
	}
	if st.String(-1) != "" || st.String(99) != "" {
		t.Error("out-of-range symbol should stringify to empty")
	}
	if st.Len() != 2 {
		t.Errorf("Len() = %d, want 2", st.Len())
	}
}

func TestNewRejectsBadSchema(t *testing.T) {
	if _, err := New("r", 0, 0, nil); !errors.Is(err, ErrBadSchema) {
		t.Errorf("zero-width schema: err = %v, want ErrBadSchema", err)
	}
	if _, err := New("r", -1, 2, nil); !errors.Is(err, ErrBadSchema) {
		t.Errorf("negative local: err = %v, want ErrBadSchema", err)
	}
	_, err := New("r", 2, 0, []Tuple{{Attrs: []float64{1}}})
	if !errors.Is(err, ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
}

func TestAppend(t *testing.T) {
	r := sample()
	id, err := r.Append(Tuple{Key: "C", Attrs: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Errorf("Append assigned ID %d, want 3", id)
	}
	if r.Len() != 4 || r.Tuple(3).ID != 3 {
		t.Errorf("relation after Append: len=%d, last ID=%d", r.Len(), r.Tuple(r.Len()-1).ID)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate after Append: %v", err)
	}
	if _, err := r.Append(Tuple{Key: "C", Attrs: []float64{1}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
	if _, err := r.Append(Tuple{Key: "C", Band: math.NaN(), Attrs: []float64{1, 1, 1}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("NaN band: err = %v, want ErrBadSchema", err)
	}
	if r.Len() != 4 {
		t.Errorf("rejected Append mutated the relation: len=%d", r.Len())
	}
	// Re-using a key re-uses its symbol.
	if r.KeyID(3) == r.KeyID(0) || r.KeyID(3) == r.KeyID(1) {
		t.Error("appended key C collided with an existing symbol")
	}
	id2, err := r.Append(Tuple{Key: "A", Attrs: []float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.KeyID(id2) != r.KeyID(0) {
		t.Error("appended key A did not re-use the interned symbol")
	}
}

func TestDelete(t *testing.T) {
	r := sample()
	if err := r.Delete(5); err == nil {
		t.Error("out-of-range delete succeeded")
	}
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() after delete = %d, want 2", r.Len())
	}
	if r.Key(1) != "A" || r.Attrs(1)[0] != 7 {
		t.Errorf("row 2 did not shift down: key=%q attrs=%v", r.Key(1), r.Attrs(1))
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate after Delete: %v", err)
	}
}

func TestNaNBandRejected(t *testing.T) {
	// A NaN band has no position in the band-sorted join index and is
	// silently unjoinable under Condition.Matches; both constructors and
	// Validate must reject it.
	if _, err := New("r", 1, 0, []Tuple{{Band: math.NaN(), Attrs: []float64{1}}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("New with NaN band: err = %v, want ErrBadSchema", err)
	}
	r := sample()
	r.band[1] = math.NaN()
	if err := r.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("Validate with NaN band: err = %v, want ErrBadSchema", err)
	}
	if _, err := ReadCSV(strings.NewReader("key,band,a0\nA,NaN,1\n"), ReadOptions{Name: "r", Local: 1, HasBand: true}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("ReadCSV with NaN band: err = %v, want ErrBadSchema", err)
	}
}

func TestNonFiniteAttrsRejected(t *testing.T) {
	// NaN skyline attributes make every domination comparison silently
	// false; ±Inf breaks the attribute-sum probe ordering. Every entry
	// point — constructor, Append, CSV load, Validate — must reject them.
	for name, bad := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := New("r", 2, 0, []Tuple{{Attrs: []float64{1, bad}}}); !errors.Is(err, ErrBadSchema) {
				t.Errorf("New: err = %v, want ErrBadSchema", err)
			}
			r := MustNew("r", 2, 0, []Tuple{{Attrs: []float64{1, 2}}})
			if _, err := r.Append(Tuple{Attrs: []float64{bad, 1}}); !errors.Is(err, ErrBadSchema) {
				t.Errorf("Append: err = %v, want ErrBadSchema", err)
			}
			if r.Len() != 1 {
				t.Errorf("rejected Append mutated the relation: len=%d", r.Len())
			}
			r.attrs[0] = bad
			if err := r.Validate(); !errors.Is(err, ErrBadSchema) {
				t.Errorf("Validate: err = %v, want ErrBadSchema", err)
			}
		})
	}
	if _, err := ReadCSV(strings.NewReader("key,a0\nA,NaN\n"), ReadOptions{Name: "r", Local: 1}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("ReadCSV with NaN attribute: err = %v, want ErrBadSchema", err)
	}
	if _, err := ReadCSV(strings.NewReader("key,a0\nA,+Inf\n"), ReadOptions{Name: "r", Local: 1}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("ReadCSV with Inf attribute: err = %v, want ErrBadSchema", err)
	}
}

func TestValidate(t *testing.T) {
	r := sample()
	if err := r.Validate(); err != nil {
		t.Errorf("valid relation failed validation: %v", err)
	}
	empty := &Relation{Name: "e", Local: 1, syms: NewSymbolTable()}
	if err := empty.Validate(); !errors.Is(err, ErrEmptyRelation) {
		t.Errorf("empty relation: err = %v, want ErrEmptyRelation", err)
	}
	bad := sample()
	bad.attrs = bad.attrs[:len(bad.attrs)-1] // torn attribute column
	if err := bad.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("torn column: err = %v, want ErrBadSchema", err)
	}
	badSym := sample()
	badSym.keys[2] = 99 // symbol outside the table
	if err := badSym.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad key symbol: err = %v, want ErrBadSchema", err)
	}
}

func TestKeysAndGroupIndex(t *testing.T) {
	r := sample()
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "A" || keys[1] != "B" {
		t.Errorf("Keys() = %v, want [A B]", keys)
	}
	idx := r.GroupIndex()
	if got := idx["A"]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("GroupIndex()[A] = %v, want [0 2]", got)
	}
	if got := idx["B"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("GroupIndex()[B] = %v, want [1]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.Attrs(0)[0] = 999
	if r.Attrs(0)[0] == 999 {
		t.Error("Clone shares attribute storage with original")
	}
	if _, err := c.Append(Tuple{Key: "Z", Attrs: []float64{0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Error("Append to clone grew the original")
	}
	if _, ok := r.Symbols().Lookup("Z"); ok {
		t.Error("Clone shares the symbol table with original")
	}
}

func TestHasUVP(t *testing.T) {
	r := MustNew("r", 3, 0, []Tuple{
		{Attrs: []float64{1, 2, 3}},
		{Attrs: []float64{1, 5, 6}}, // shares 1 attr with tuple 0
	})
	if !r.HasUVP(2) {
		t.Error("relation should have UVP wrt 2")
	}
	if r.HasUVP(1) {
		t.Error("relation shares a value on one attribute, UVP wrt 1 must fail")
	}
	dup := MustNew("r", 3, 0, []Tuple{
		{Attrs: []float64{1, 2, 3}},
		{Attrs: []float64{1, 2, 6}},
	})
	if dup.HasUVP(2) {
		t.Error("two tuples agree on 2 attributes, UVP wrt 2 must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r, false); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, ReadOptions{Name: "r", Local: 2, Agg: 1})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != r.Len() || got.D() != r.D() {
		t.Fatalf("round trip changed shape: got %dx%d, want %dx%d", got.Len(), got.D(), r.Len(), r.D())
	}
	for i := 0; i < r.Len(); i++ {
		if got.Key(i) != r.Key(i) {
			t.Errorf("tuple %d key = %q, want %q", i, got.Key(i), r.Key(i))
		}
		for j, v := range r.Attrs(i) {
			if got.Attrs(i)[j] != v {
				t.Errorf("tuple %d attr %d = %v, want %v", i, j, got.Attrs(i)[j], v)
			}
		}
	}
}

func TestCSVRoundTripWithBand(t *testing.T) {
	r := MustNew("r", 1, 0, []Tuple{
		{Key: "X", Band: 10.5, Attrs: []float64{1}},
		{Key: "Y", Band: -3, Attrs: []float64{2}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r, true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, ReadOptions{Name: "r", Local: 1, HasBand: true})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Band(0) != 10.5 || got.Band(1) != -3 {
		t.Errorf("band values lost: %v, %v", got.Band(0), got.Band(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		opts ReadOptions
	}{
		{"empty input", "", ReadOptions{Local: 1}},
		{"header width mismatch", "key,a0,a1\n", ReadOptions{Local: 1}},
		{"row width mismatch", "key,a0\nA,1,2\n", ReadOptions{Local: 1}},
		{"non-numeric attribute", "key,a0\nA,abc\n", ReadOptions{Local: 1}},
		{"non-numeric band", "key,band,a0\nA,xx,1\n", ReadOptions{Local: 1, HasBand: true}},
		{"no data rows", "key,a0\n", ReadOptions{Local: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), tt.opts); err == nil {
				t.Error("expected an error, got nil")
			}
		})
	}
}
