package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func sample() *Relation {
	return MustNew("r", 2, 1, []Tuple{
		{Key: "A", Attrs: []float64{1, 2, 3}},
		{Key: "B", Attrs: []float64{4, 5, 6}},
		{Key: "A", Attrs: []float64{7, 8, 9}},
	})
}

func TestNewAssignsIDs(t *testing.T) {
	r := sample()
	for i, tup := range r.Tuples {
		if tup.ID != i {
			t.Errorf("tuple %d has ID %d", i, tup.ID)
		}
	}
	if r.D() != 3 {
		t.Errorf("D() = %d, want 3", r.D())
	}
	if r.Len() != 3 {
		t.Errorf("Len() = %d, want 3", r.Len())
	}
}

func TestNewRejectsBadSchema(t *testing.T) {
	if _, err := New("r", 0, 0, nil); !errors.Is(err, ErrBadSchema) {
		t.Errorf("zero-width schema: err = %v, want ErrBadSchema", err)
	}
	if _, err := New("r", -1, 2, nil); !errors.Is(err, ErrBadSchema) {
		t.Errorf("negative local: err = %v, want ErrBadSchema", err)
	}
	_, err := New("r", 2, 0, []Tuple{{Attrs: []float64{1}}})
	if !errors.Is(err, ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
}

func TestAppend(t *testing.T) {
	r := sample()
	id, err := r.Append(Tuple{Key: "C", Attrs: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Errorf("Append assigned ID %d, want 3", id)
	}
	if r.Len() != 4 || r.Tuples[3].ID != 3 {
		t.Errorf("relation after Append: len=%d, last ID=%d", r.Len(), r.Tuples[r.Len()-1].ID)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate after Append: %v", err)
	}
	if _, err := r.Append(Tuple{Key: "C", Attrs: []float64{1}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
	if _, err := r.Append(Tuple{Key: "C", Band: math.NaN(), Attrs: []float64{1, 1, 1}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("NaN band: err = %v, want ErrBadSchema", err)
	}
	if r.Len() != 4 {
		t.Errorf("rejected Append mutated the relation: len=%d", r.Len())
	}
}

func TestNaNBandRejected(t *testing.T) {
	// A NaN band has no position in the band-sorted join index and is
	// silently unjoinable under Condition.Matches; both constructors and
	// Validate must reject it.
	if _, err := New("r", 1, 0, []Tuple{{Band: math.NaN(), Attrs: []float64{1}}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("New with NaN band: err = %v, want ErrBadSchema", err)
	}
	r := sample()
	r.Tuples[1].Band = math.NaN()
	if err := r.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("Validate with NaN band: err = %v, want ErrBadSchema", err)
	}
	if _, err := ReadCSV(strings.NewReader("key,band,a0\nA,NaN,1\n"), ReadOptions{Name: "r", Local: 1, HasBand: true}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("ReadCSV with NaN band: err = %v, want ErrBadSchema", err)
	}
}

func TestValidate(t *testing.T) {
	r := sample()
	if err := r.Validate(); err != nil {
		t.Errorf("valid relation failed validation: %v", err)
	}
	empty := &Relation{Name: "e", Local: 1}
	if err := empty.Validate(); !errors.Is(err, ErrEmptyRelation) {
		t.Errorf("empty relation: err = %v, want ErrEmptyRelation", err)
	}
	bad := sample()
	bad.Tuples[1].Attrs = bad.Tuples[1].Attrs[:2]
	if err := bad.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("width mismatch: err = %v, want ErrBadSchema", err)
	}
	badID := sample()
	badID.Tuples[2].ID = 99
	if err := badID.Validate(); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad ID: err = %v, want ErrBadSchema", err)
	}
}

func TestKeysAndGroupIndex(t *testing.T) {
	r := sample()
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "A" || keys[1] != "B" {
		t.Errorf("Keys() = %v, want [A B]", keys)
	}
	idx := r.GroupIndex()
	if got := idx["A"]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("GroupIndex()[A] = %v, want [0 2]", got)
	}
	if got := idx["B"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("GroupIndex()[B] = %v, want [1]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.Tuples[0].Attrs[0] = 999
	if r.Tuples[0].Attrs[0] == 999 {
		t.Error("Clone shares attribute storage with original")
	}
}

func TestHasUVP(t *testing.T) {
	r := MustNew("r", 3, 0, []Tuple{
		{Attrs: []float64{1, 2, 3}},
		{Attrs: []float64{1, 5, 6}}, // shares 1 attr with tuple 0
	})
	if !r.HasUVP(2) {
		t.Error("relation should have UVP wrt 2")
	}
	if r.HasUVP(1) {
		t.Error("relation shares a value on one attribute, UVP wrt 1 must fail")
	}
	dup := MustNew("r", 3, 0, []Tuple{
		{Attrs: []float64{1, 2, 3}},
		{Attrs: []float64{1, 2, 6}},
	})
	if dup.HasUVP(2) {
		t.Error("two tuples agree on 2 attributes, UVP wrt 2 must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r, false); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, ReadOptions{Name: "r", Local: 2, Agg: 1})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != r.Len() || got.D() != r.D() {
		t.Fatalf("round trip changed shape: got %dx%d, want %dx%d", got.Len(), got.D(), r.Len(), r.D())
	}
	for i := range r.Tuples {
		if got.Tuples[i].Key != r.Tuples[i].Key {
			t.Errorf("tuple %d key = %q, want %q", i, got.Tuples[i].Key, r.Tuples[i].Key)
		}
		for j, v := range r.Tuples[i].Attrs {
			if got.Tuples[i].Attrs[j] != v {
				t.Errorf("tuple %d attr %d = %v, want %v", i, j, got.Tuples[i].Attrs[j], v)
			}
		}
	}
}

func TestCSVRoundTripWithBand(t *testing.T) {
	r := MustNew("r", 1, 0, []Tuple{
		{Key: "X", Band: 10.5, Attrs: []float64{1}},
		{Key: "Y", Band: -3, Attrs: []float64{2}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r, true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, ReadOptions{Name: "r", Local: 1, HasBand: true})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Tuples[0].Band != 10.5 || got.Tuples[1].Band != -3 {
		t.Errorf("band values lost: %v, %v", got.Tuples[0].Band, got.Tuples[1].Band)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		opts ReadOptions
	}{
		{"empty input", "", ReadOptions{Local: 1}},
		{"header width mismatch", "key,a0,a1\n", ReadOptions{Local: 1}},
		{"row width mismatch", "key,a0\nA,1,2\n", ReadOptions{Local: 1}},
		{"non-numeric attribute", "key,a0\nA,abc\n", ReadOptions{Local: 1}},
		{"non-numeric band", "key,band,a0\nA,xx,1\n", ReadOptions{Local: 1, HasBand: true}},
		{"no data rows", "key,a0\n", ReadOptions{Local: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), tt.opts); err == nil {
				t.Error("expected an error, got nil")
			}
		})
	}
}
