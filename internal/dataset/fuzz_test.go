package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts that arbitrary input never panics and that anything
// successfully parsed survives a write/read round trip unchanged.
func FuzzReadCSV(f *testing.F) {
	f.Add("key,a0,a1\nA,1,2\nB,3,4\n", 2, 0, false)
	f.Add("key,band,a0\nA,0.5,1\n", 1, 0, true)
	f.Add("key,a0\n\"quoted,key\",7\n", 1, 0, false)
	f.Add("", 1, 0, false)
	f.Add("key,a0\nA,not-a-number\n", 1, 0, false)
	f.Fuzz(func(t *testing.T, input string, local, agg int, band bool) {
		if local < 0 || agg < 0 || local+agg > 16 {
			t.Skip()
		}
		r, err := ReadCSV(strings.NewReader(input), ReadOptions{
			Name: "fuzz", Local: local, Agg: agg, HasBand: band,
		})
		if err != nil {
			return // rejecting garbage is the correct behaviour
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("parsed relation fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, r, band); err != nil {
			t.Fatalf("WriteCSV on parsed relation: %v", err)
		}
		again, err := ReadCSV(&buf, ReadOptions{Name: "fuzz", Local: local, Agg: agg, HasBand: band})
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Len() != r.Len() {
			t.Fatalf("round trip changed cardinality: %d -> %d", r.Len(), again.Len())
		}
		for i := 0; i < r.Len(); i++ {
			if again.Key(i) != r.Key(i) {
				t.Fatalf("tuple %d key changed: %q -> %q", i, r.Key(i), again.Key(i))
			}
			for j, v := range r.Attrs(i) {
				if got := again.Attrs(i)[j]; got != v {
					t.Fatalf("tuple %d attr %d changed: %v -> %v", i, j, v, got)
				}
			}
		}
	})
}
