package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// shadowRow is the row-shaped model the fuzzed relation is checked
// against: plain per-row storage with none of the columnar machinery.
type shadowRow struct {
	key, key2 string
	band      float64
	attrs     []float64
}

// applyShadowDelete removes the given sorted ids from the shadow.
func applyShadowDelete(shadow []shadowRow, ids []int) []shadowRow {
	out := shadow[:0]
	next := 0
	for i, row := range shadow {
		if next < len(ids) && ids[next] == i {
			next++
			continue
		}
		out = append(out, row)
	}
	return out
}

// checkShadow asserts every columnar accessor agrees with the row-shaped
// model: lengths, per-row keys/bands/attrs, the flat column strides the
// engine reads directly, and the symbol table's string mapping.
func checkShadow(t *testing.T, r *Relation, shadow []shadowRow) {
	t.Helper()
	if r.Len() != len(shadow) {
		t.Fatalf("length %d, shadow %d", r.Len(), len(shadow))
	}
	d := r.D()
	flat := r.FlatAttrs()
	if len(flat) != r.Len()*d {
		t.Fatalf("flat attrs length %d, want %d", len(flat), r.Len()*d)
	}
	bands := r.Bands()
	if len(bands) != r.Len() {
		t.Fatalf("band column length %d, want %d", len(bands), r.Len())
	}
	for i, row := range shadow {
		if got := r.Key(i); got != row.key {
			t.Fatalf("row %d key %q, shadow %q", i, got, row.key)
		}
		if got := r.Key2(i); got != row.key2 {
			t.Fatalf("row %d key2 %q, shadow %q", i, got, row.key2)
		}
		if got := r.Band(i); got != row.band {
			t.Fatalf("row %d band %v, shadow %v", i, got, row.band)
		}
		if got := r.Symbols().String(r.KeyID(i)); got != row.key {
			t.Fatalf("row %d symbol %q, shadow %q", i, got, row.key)
		}
		attrs := r.Attrs(i)
		if len(attrs) != d {
			t.Fatalf("row %d attr width %d, want %d", i, len(attrs), d)
		}
		for j, v := range row.attrs {
			if attrs[j] != v {
				t.Fatalf("row %d attr %d: %v, shadow %v", i, j, attrs[j], v)
			}
			if flat[i*d+j] != v {
				t.Fatalf("row %d flat attr %d: %v, shadow %v (stride broken)", i, j, flat[i*d+j], v)
			}
		}
		if bands[i] != row.band {
			t.Fatalf("row %d band column %v, shadow %v", i, bands[i], row.band)
		}
	}
	if r.Len() > 0 {
		if err := r.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

// FuzzRelationMutations drives random Append/AppendBatch/Delete/
// DeleteBatch interleavings — the script and values both derived from the
// fuzzed inputs — against the row-shaped shadow model. Every accessor the
// engine relies on (column strides, band permutation inputs, symbol
// tables) must agree with the shadow after every operation, and a rejected
// mutation must leave the relation untouched.
func FuzzRelationMutations(f *testing.F) {
	f.Add([]byte{0, 0, 1, 3, 2, 0, 3, 2}, int64(1))
	f.Add([]byte{1, 8, 3, 4, 1, 2, 3, 9, 0}, int64(2))
	f.Add([]byte{0, 2, 2, 2, 2, 2}, int64(3))
	f.Add([]byte{1, 200, 3, 100}, int64(4))
	f.Add([]byte{}, int64(5))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		if len(script) > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		const local, agg = 2, 1
		d := local + agg
		mk := func() Tuple {
			attrs := make([]float64, d)
			for j := range attrs {
				attrs[j] = float64(rng.Intn(9))
			}
			return Tuple{
				Key:   fmt.Sprintf("g%d", rng.Intn(4)),
				Key2:  fmt.Sprintf("h%d", rng.Intn(3)),
				Band:  float64(rng.Intn(5)),
				Attrs: attrs,
			}
		}
		r := MustNew("fuzz", local, agg, []Tuple{mk()})
		shadow := []shadowRow{{key: r.Key(0), key2: r.Key2(0), band: r.Band(0), attrs: append([]float64(nil), r.Attrs(0)...)}}

		record := func(ts []Tuple) {
			for _, tp := range ts {
				shadow = append(shadow, shadowRow{key: tp.Key, key2: tp.Key2, band: tp.Band, attrs: append([]float64(nil), tp.Attrs...)})
			}
		}
		for pc := 0; pc < len(script); pc++ {
			op := script[pc] % 5
			arg := 0
			if pc+1 < len(script) {
				pc++
				arg = int(script[pc])
			}
			switch op {
			case 0: // Append
				tp := mk()
				if _, err := r.Append(tp); err != nil {
					t.Fatalf("append: %v", err)
				}
				record([]Tuple{tp})
			case 1: // AppendBatch
				n := arg%6 + 1
				ts := make([]Tuple, n)
				for i := range ts {
					ts[i] = mk()
				}
				if _, err := r.AppendBatch(ts); err != nil {
					t.Fatalf("append batch: %v", err)
				}
				record(ts)
			case 2: // Delete one
				if r.Len() == 0 {
					continue
				}
				id := arg % r.Len()
				if err := r.Delete(id); err != nil {
					t.Fatalf("delete %d of %d: %v", id, r.Len(), err)
				}
				shadow = applyShadowDelete(shadow, []int{id})
			case 3: // DeleteBatch
				if r.Len() == 0 {
					continue
				}
				b := arg%r.Len() + 1
				if b > r.Len() {
					b = r.Len()
				}
				ids := rng.Perm(r.Len())[:b]
				if err := r.DeleteBatch(ids); err != nil {
					t.Fatalf("delete batch %v of %d: %v", ids, r.Len(), err)
				}
				sorted := append([]int(nil), ids...)
				sort.Ints(sorted)
				shadow = applyShadowDelete(shadow, sorted)
			case 4: // invalid DeleteBatch: must reject and leave columns alone
				bad := [][]int{
					{r.Len()},
					{-1},
					{0, 0},
				}[arg%3]
				if r.Len() == 0 {
					continue
				}
				if err := r.DeleteBatch(bad); err == nil {
					t.Fatalf("invalid delete batch %v accepted at len %d", bad, r.Len())
				}
			}
			checkShadow(t, r, shadow)
		}
	})
}
