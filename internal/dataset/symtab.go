package dataset

// SymbolTable interns join-key strings into dense int32 symbol IDs. Every
// relation owns one table covering both of its key columns (Key and Key2),
// so two tuples of the same relation share a key exactly when their symbol
// IDs are equal — group membership, hash-bucket lookup and cascade key
// chaining all become integer comparisons. IDs are assigned in first-intern
// order, are stable for the life of the table, and are dense: 0..Len()-1.
//
// A SymbolTable is not safe for concurrent mutation; like the relation
// columns it backs, it is grown only through the relation constructor and
// Append, and read-only everywhere else.
type SymbolTable struct {
	ids  map[string]int32
	strs []string
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]int32)}
}

// Intern returns the symbol ID for s, assigning the next dense ID on first
// sight.
func (st *SymbolTable) Intern(s string) int32 {
	if id, ok := st.ids[s]; ok {
		return id
	}
	id := int32(len(st.strs))
	st.ids[s] = id
	st.strs = append(st.strs, s)
	return id
}

// Lookup returns the symbol ID for s without interning it.
func (st *SymbolTable) Lookup(s string) (int32, bool) {
	id, ok := st.ids[s]
	return id, ok
}

// String returns the string a symbol ID stands for. IDs outside
// [0, Len()) return the empty string rather than panicking: they can only
// come from a column the table does not back, and callers treat the empty
// answer as "no such key".
func (st *SymbolTable) String(id int32) string {
	if id < 0 || int(id) >= len(st.strs) {
		return ""
	}
	return st.strs[id]
}

// Len returns the number of distinct interned strings.
func (st *SymbolTable) Len() int { return len(st.strs) }

// clone returns a deep copy sharing no storage.
func (st *SymbolTable) clone() *SymbolTable {
	c := &SymbolTable{
		ids:  make(map[string]int32, len(st.ids)),
		strs: append([]string(nil), st.strs...),
	}
	for s, id := range st.ids {
		c.ids[s] = id
	}
	return c
}
