// Package distributed simulates KSJQ over a partitioned cluster — the
// paper's second future-work item ("extend the algorithms to work in
// parallel, distributed ... settings", Sec. 8), in the spirit of the
// MapReduce k-dominant work it cites (Tian et al., Data4U'14).
//
// Partitioning is by join key: every group of both relations lives wholly
// on one node, so any joined tuple — candidate or dominator — is local to
// exactly one node. Evaluation then has two rounds:
//
//  1. Local round: each node runs the grouping algorithm on its partition
//     and produces local skyline candidates. A globally undominated pair
//     is locally undominated, so the global answer is a subset of the
//     union of local candidates.
//  2. Verification round: every node broadcasts its candidates' attribute
//     vectors; each peer checks them against its local join (with the
//     usual target-set pruning) and votes. A candidate survives if no
//     peer finds a dominator.
//
// The simulator counts exchanged messages and floats so the communication
// cost of the scheme is observable, which is the interesting metric a
// real deployment would tune.
package distributed

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// Stats describes one distributed run.
type Stats struct {
	Nodes int
	// CandidatesPerNode is the number of local candidates each node
	// produced in round 1.
	CandidatesPerNode []int
	// MessagesSent counts point-to-point messages (candidate batches and
	// verdict batches).
	MessagesSent int
	// FloatsShipped counts attribute values moved across the simulated
	// network.
	FloatsShipped int
	// LocalTime and VerifyTime are the summed per-node busy times of the
	// two rounds (wall time on a real cluster would be the max, but sums
	// are deterministic enough for tests).
	LocalTime  time.Duration
	VerifyTime time.Duration
	Total      time.Duration
}

// Result is the distributed answer; pairs reference the original
// relations' tuple indices, exactly like core.Result.
type Result struct {
	Skyline []join.Pair
	Stats   Stats
}

// ErrBadNodes is returned for a non-positive node count.
var ErrBadNodes = errors.New("distributed: node count must be positive")

// ErrNotShardable is returned when a join cannot be key-partitioned
// across more than one node: only equality joins place every joined pair
// wholly on one node. A single-node cluster trivially co-locates
// everything, so any condition is admitted there.
var ErrNotShardable = errors.New("distributed: only equality joins can be key-partitioned across multiple nodes")

// LocalAlgorithm returns the algorithm the local round runs on each
// partition: the grouping algorithm, except under a non-strict aggregator
// (where target-set pruning is unsound and the naive algorithm is the
// correct fallback). The verification round makes the matching choice
// inside core.AnyDominators.
func LocalAlgorithm(q core.Query) core.Algorithm {
	if q.R1 != nil && q.R1.Agg > 0 && q.Spec.Agg.Fn != nil && !q.Spec.Agg.Strict {
		return core.Naive
	}
	return core.Grouping
}

// Run evaluates q on a simulated cluster of n nodes. Only equality joins
// can be key-partitioned across several nodes; other conditions are
// admitted only at nodes == 1, where the single partition holds both
// relations whole and the verification round is empty.
func Run(q core.Query, nodes int) (*Result, error) {
	if nodes <= 0 {
		return nil, ErrBadNodes
	}
	if nodes > 1 && q.Spec.Cond != join.Equality {
		return nil, fmt.Errorf("%w: got %v with %d nodes", ErrNotShardable, q.Spec.Cond, nodes)
	}
	alg := LocalAlgorithm(q)
	if err := q.Validate(alg); err != nil {
		return nil, err
	}
	start := time.Now()
	st := Stats{Nodes: nodes, CandidatesPerNode: make([]int, nodes)}

	// Partition both relations by hashed join key. origin maps the
	// partition-local tuple index back to the original index. The row
	// views carry attribute-column aliases; dataset.New copies them into
	// each partition's own columns.
	parts := make([]partition, nodes)
	for i := 0; i < q.R1.Len(); i++ {
		n := NodeOf(q.R1.Key(i), nodes)
		parts[n].left = append(parts[n].left, q.R1.Tuple(i))
		parts[n].leftOrigin = append(parts[n].leftOrigin, i)
	}
	for i := 0; i < q.R2.Len(); i++ {
		n := NodeOf(q.R2.Key(i), nodes)
		parts[n].right = append(parts[n].right, q.R2.Tuple(i))
		parts[n].rightOrigin = append(parts[n].rightOrigin, i)
	}

	// Round 1: local grouping-algorithm runs.
	t0 := time.Now()
	type candidate struct {
		node        int
		left, right int // original indices
		attrs       []float64
	}
	var candidates []candidate
	queries := make([]core.Query, nodes)
	for n := range parts {
		p := &parts[n]
		if len(p.left) == 0 || len(p.right) == 0 {
			continue
		}
		lq, err := p.query(q)
		if err != nil {
			return nil, err
		}
		queries[n] = lq
		res, err := core.Run(lq, alg)
		if err != nil {
			return nil, err
		}
		st.CandidatesPerNode[n] = len(res.Skyline)
		for _, pr := range res.Skyline {
			candidates = append(candidates, candidate{
				node:  n,
				left:  p.leftOrigin[pr.Left],
				right: p.rightOrigin[pr.Right],
				attrs: pr.Attrs,
			})
		}
	}
	st.LocalTime = time.Since(t0)

	// Round 2: every verifier node receives one batch holding all foreign
	// candidates, checks them against its local join, and returns one
	// verdict batch. A candidate's home node already vouched for it in
	// round 1.
	t0 = time.Now()
	dominated := make([]bool, len(candidates))
	for n := range parts {
		if len(parts[n].left) == 0 || len(parts[n].right) == 0 {
			continue
		}
		var batch [][]float64
		var batchIdx []int
		for ci, c := range candidates {
			if c.node != n && !dominated[ci] {
				batch = append(batch, c.attrs)
				batchIdx = append(batchIdx, ci)
			}
		}
		if len(batch) == 0 {
			continue
		}
		st.MessagesSent += 2 // candidate batch in, verdict batch out
		for _, v := range batch {
			st.FloatsShipped += len(v)
		}
		verdicts, err := core.AnyDominators(queries[n], batch)
		if err != nil {
			return nil, err
		}
		for bi, dom := range verdicts {
			if dom {
				dominated[batchIdx[bi]] = true
			}
		}
	}
	var skyline []join.Pair
	for ci, c := range candidates {
		if !dominated[ci] {
			skyline = append(skyline, join.Pair{Left: c.left, Right: c.right, Attrs: c.attrs})
		}
	}
	st.VerifyTime = time.Since(t0)

	SortPairs(skyline)
	st.Total = time.Since(start)
	return &Result{Skyline: skyline, Stats: st}, nil
}

type partition struct {
	left, right             []dataset.Tuple
	leftOrigin, rightOrigin []int
}

// query builds the node-local core.Query over this partition.
func (p *partition) query(q core.Query) (core.Query, error) {
	r1, err := dataset.New(q.R1.Name, q.R1.Local, q.R1.Agg, p.left)
	if err != nil {
		return core.Query{}, err
	}
	r2, err := dataset.New(q.R2.Name, q.R2.Local, q.R2.Agg, p.right)
	if err != nil {
		return core.Query{}, err
	}
	return core.Query{R1: r1, R2: r2, Spec: q.Spec, K: q.K}, nil
}

// NodeOf places a join-key symbol on a node: FNV-32a of the key modulo
// the node count. The real sharded deployment (internal/shard) uses the
// same function, so gateway placement and the simulator oracle agree on
// which node owns every group.
func NodeOf(key string, nodes int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nodes))
}

// SortPairs orders a merged skyline by (Left, Right) — the canonical order
// core.Run emits — so partition-merged answers compare byte-identical to
// single-node ones. Insertion sort: merged skylines are short and mostly
// ordered.
func SortPairs(pairs []join.Pair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0; j-- {
			a, b := pairs[j-1], pairs[j]
			if a.Left < b.Left || (a.Left == b.Left && a.Right <= b.Right) {
				break
			}
			pairs[j-1], pairs[j] = b, a
		}
	}
}
