package distributed

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
)

func assertSameAnswer(t *testing.T, label string, got *Result, want *core.Result) {
	t.Helper()
	if len(got.Skyline) != len(want.Skyline) {
		t.Fatalf("%s: %d skylines, want %d", label, len(got.Skyline), len(want.Skyline))
	}
	for i := range want.Skyline {
		g, w := got.Skyline[i], want.Skyline[i]
		if g.Left != w.Left || g.Right != w.Right {
			t.Fatalf("%s: skyline[%d] = (%d,%d), want (%d,%d)", label, i, g.Left, g.Right, w.Left, w.Right)
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 25; trial++ {
		agg := rng.Intn(2)
		local := 2 + rng.Intn(2)
		groups := 1 + rng.Intn(8)
		mk := func(seed int64) *dataset.Relation {
			return datagen.MustGenerate(datagen.Config{
				Name: "r", N: 10 + rng.Intn(40), Local: local, Agg: agg,
				Groups: groups, Dist: datagen.Independent, Seed: seed,
			})
		}
		q := core.Query{
			R1: mk(int64(trial*2 + 1)), R2: mk(int64(trial*2 + 2)),
			Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
		}
		q.K = q.KMin() + rng.Intn(q.Width()-q.KMin()+1)
		serial, err := core.Run(q, core.Grouping)
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3, 5, 16} {
			dist, err := Run(q, nodes)
			if err != nil {
				t.Fatalf("trial %d nodes %d: %v", trial, nodes, err)
			}
			assertSameAnswer(t, fmt.Sprintf("trial %d nodes=%d k=%d g=%d", trial, nodes, q.K, groups), dist, serial)
		}
	}
}

func TestDistributedStats(t *testing.T) {
	q := core.Query{
		R1: datagen.MustGenerate(datagen.Config{
			Name: "r1", N: 100, Local: 3, Groups: 8, Seed: 1,
		}),
		R2: datagen.MustGenerate(datagen.Config{
			Name: "r2", N: 100, Local: 3, Groups: 8, Seed: 2,
		}),
		Spec: join.Spec{Cond: join.Equality},
		K:    4,
	}
	res, err := Run(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Nodes != 4 || len(st.CandidatesPerNode) != 4 {
		t.Errorf("stats shape: %+v", st)
	}
	totalCand := 0
	for _, c := range st.CandidatesPerNode {
		totalCand += c
	}
	if totalCand < len(res.Skyline) {
		t.Errorf("candidates %d < answer %d: local round must over-approximate", totalCand, len(res.Skyline))
	}
	if totalCand > 0 && st.MessagesSent == 0 {
		t.Error("no messages recorded despite candidates")
	}
	if st.MessagesSent%2 != 0 {
		t.Errorf("messages come in request/verdict pairs, got %d", st.MessagesSent)
	}
	if st.FloatsShipped == 0 && st.MessagesSent > 0 {
		t.Error("messages sent but no payload recorded")
	}
}

func TestDistributedSingleNodeEqualsLocal(t *testing.T) {
	// One node = the serial grouping algorithm with no verification
	// traffic.
	q := core.Query{
		R1: datagen.MustGenerate(datagen.Config{
			Name: "r1", N: 60, Local: 3, Groups: 4, Seed: 7,
		}),
		R2: datagen.MustGenerate(datagen.Config{
			Name: "r2", N: 60, Local: 3, Groups: 4, Seed: 8,
		}),
		Spec: join.Spec{Cond: join.Equality},
		K:    4,
	}
	res, err := Run(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MessagesSent != 0 || res.Stats.FloatsShipped != 0 {
		t.Errorf("single node should exchange nothing, got %d msgs / %d floats",
			res.Stats.MessagesSent, res.Stats.FloatsShipped)
	}
	serial, err := core.Run(q, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswer(t, "single node", res, serial)
}

func TestDistributedErrors(t *testing.T) {
	r := datagen.MustGenerate(datagen.Config{Name: "r", N: 10, Local: 2, Groups: 2, Seed: 1})
	q := core.Query{R1: r, R2: r.Clone(), Spec: join.Spec{Cond: join.Equality}, K: 3}
	if _, err := Run(q, 0); !errors.Is(err, ErrBadNodes) {
		t.Errorf("nodes=0: err = %v, want ErrBadNodes", err)
	}
	q.Spec.Cond = join.Cross
	if _, err := Run(q, 2); err == nil {
		t.Error("non-equality join accepted")
	}
	q.Spec.Cond = join.Equality
	q.K = 99
	if _, err := Run(q, 2); err == nil {
		t.Error("invalid k accepted")
	}
}

func TestNodeOfDeterministicAndBounded(t *testing.T) {
	for _, key := range []string{"", "a", "hub07", "Δ"} {
		n1 := NodeOf(key, 7)
		n2 := NodeOf(key, 7)
		if n1 != n2 {
			t.Errorf("NodeOf(%q) not deterministic", key)
		}
		if n1 < 0 || n1 >= 7 {
			t.Errorf("NodeOf(%q) = %d out of range", key, n1)
		}
	}
}
