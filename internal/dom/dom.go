// Package dom provides the dominance-comparison kernels shared by every
// layer of the KSJQ implementation: full (Pareto) dominance, k-dominance,
// and the counting primitives the paper's categorization and target-set
// machinery are built from.
//
// Throughout the repository a lower attribute value is preferred, matching
// Sec. 2.1 of the paper ("without loss of generality, the preference is
// assumed to be less than").
package dom

// CountLeq returns the number of positions i with a[i] <= b[i].
// Both slices must have the same length.
func CountLeq(a, b []float64) int {
	n := 0
	for i, av := range a {
		if av <= b[i] {
			n++
		}
	}
	return n
}

// CountLess returns the number of positions i with a[i] < b[i].
func CountLess(a, b []float64) int {
	n := 0
	for i, av := range a {
		if av < b[i] {
			n++
		}
	}
	return n
}

// CountEq returns the number of positions i with a[i] == b[i].
func CountEq(a, b []float64) int {
	n := 0
	for i, av := range a {
		if av == b[i] {
			n++
		}
	}
	return n
}

// Dominates reports whether a fully dominates b: a is preferred-or-equal on
// every attribute and strictly preferred on at least one.
func Dominates(a, b []float64) bool {
	strict := false
	for i, av := range a {
		switch {
		case av > b[i]:
			return false
		case av < b[i]:
			strict = true
		}
	}
	return strict
}

// KDominates reports whether a k-dominates b: a is preferred-or-equal on at
// least k attributes and strictly preferred on at least one attribute
// (Sec. 2.2). This is equivalent to the subset formulation of Chan et al.:
// any strictly-better attribute is also a <=-attribute, so it can always be
// placed inside a k-sized subset of the <=-attributes.
//
// The loop is branch-minimized: the two comparisons compile to flag-setting
// increments, and the reachability bound (even winning every remaining
// attribute cannot reach k <=-positions) is re-checked only at positions a
// just lost — a won position cannot newly violate a bound that held before
// it.
func KDominates(a, b []float64, k int) bool {
	leq, less := 0, 0
	d := len(a)
	for i, av := range a {
		bv := b[i]
		if av <= bv {
			leq++
		} else if leq+(d-i-1) < k {
			return false
		}
		if av < bv {
			less++
		}
	}
	return leq >= k && less > 0
}

// LeqLess counts, in one pass, the positions where a is preferred-or-equal
// to b and the positions where a is strictly preferred. Both k-dominance
// directions derive from the two counts (for NaN-free inputs, which the
// dataset layer guarantees): b is preferred-or-equal to a exactly where a
// is not strictly preferred to b, so count(b<=a) = d-less and
// count(b<a) = d-leq. This is the branch-minimized core of KDomCompare and
// of the two-scan window sweeps.
func LeqLess(a, b []float64) (leq, less int) {
	for i, av := range a {
		bv := b[i]
		if av <= bv {
			leq++
		}
		if av < bv {
			less++
		}
	}
	return leq, less
}

// KDomCompare classifies the k-dominance relationship between a and b in a
// single pass. It returns two booleans: whether a k-dominates b and whether
// b k-dominates a. With k <= d/2 both can be true simultaneously
// (Sec. 2.2 notes the relation is cyclic and non-transitive).
func KDomCompare(a, b []float64, k int) (abDom, baDom bool) {
	leq, less := LeqLess(a, b)
	d := len(a)
	return leq >= k && less > 0, d-less >= k && d-leq > 0
}

// Equal reports whether a and b agree on every attribute.
func Equal(a, b []float64) bool {
	for i, av := range a {
		if av != b[i] {
			return false
		}
	}
	return true
}

// InTargetSet reports whether x belongs to the target set of u with respect
// to k' attributes (Def. 5 collapsed into a single predicate): x can
// contribute the left/right half of a joined dominator of any tuple built
// from u if and only if x is preferred-or-equal to u on at least k'
// attributes. This single test covers the paper's three-way union of
// "k'-dominators of u", "tuples equal to u on some k'-subset", and "u
// itself".
func InTargetSet(x, u []float64, kPrime int) bool {
	d := len(x)
	leq := 0
	for i, xv := range x {
		if xv <= u[i] {
			leq++
		}
		if leq+(d-i-1) < kPrime {
			return false
		}
	}
	return leq >= kPrime
}
