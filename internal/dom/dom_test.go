package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountLeq(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want int
	}{
		{"all leq", []float64{1, 2, 3}, []float64{1, 3, 4}, 3},
		{"none leq", []float64{5, 6, 7}, []float64{1, 2, 3}, 0},
		{"mixed", []float64{1, 9, 3}, []float64{2, 2, 3}, 2},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountLeq(tt.a, tt.b); got != tt.want {
				t.Errorf("CountLeq(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCountLess(t *testing.T) {
	if got := CountLess([]float64{1, 2, 3}, []float64{1, 3, 4}); got != 2 {
		t.Errorf("CountLess = %d, want 2", got)
	}
	if got := CountLess([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("CountLess on equal vectors = %d, want 0", got)
	}
}

func TestCountEq(t *testing.T) {
	if got := CountEq([]float64{1, 2, 3}, []float64{1, 9, 3}); got != 2 {
		t.Errorf("CountEq = %d, want 2", got)
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want bool
	}{
		{"strictly better everywhere", []float64{1, 1}, []float64{2, 2}, true},
		{"better on one equal on other", []float64{1, 2}, []float64{2, 2}, true},
		{"equal vectors", []float64{1, 2}, []float64{1, 2}, false},
		{"incomparable", []float64{1, 3}, []float64{2, 2}, false},
		{"worse", []float64{3, 3}, []float64{1, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dominates(tt.a, tt.b); got != tt.want {
				t.Errorf("Dominates(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestKDominates(t *testing.T) {
	a := []float64{1, 1, 9, 9}
	b := []float64{2, 2, 2, 2}
	// a is better on 2 of 4 attributes.
	if !KDominates(a, b, 2) {
		t.Error("a should 2-dominate b")
	}
	if KDominates(a, b, 3) {
		t.Error("a should not 3-dominate b")
	}
	// Both can k-dominate each other when k <= d/2.
	if !KDominates(b, a, 2) {
		t.Error("b should 2-dominate a (cyclic k-dominance)")
	}
	// Equal vectors never k-dominate (no strict attribute).
	if KDominates(a, a, 1) {
		t.Error("a vector must not k-dominate itself")
	}
	// Full dominance is d-dominance.
	if !KDominates([]float64{1, 1}, []float64{1, 2}, 2) {
		t.Error("d-dominance should match full dominance")
	}
}

func TestKDomCompare(t *testing.T) {
	a := []float64{1, 1, 9, 9}
	b := []float64{2, 2, 2, 2}
	ab, ba := KDomCompare(a, b, 2)
	if !ab || !ba {
		t.Errorf("KDomCompare = (%v,%v), want (true,true)", ab, ba)
	}
	ab, ba = KDomCompare(a, b, 3)
	if ab || ba {
		t.Errorf("KDomCompare k=3 = (%v,%v), want (false,false)", ab, ba)
	}
}

func TestInTargetSet(t *testing.T) {
	u := []float64{5, 5, 5}
	if !InTargetSet(u, u, 3) {
		t.Error("a tuple is always in its own target set")
	}
	if !InTargetSet([]float64{4, 5, 9}, u, 2) {
		t.Error("tuple leq on 2 attrs should be in 2-target set")
	}
	if InTargetSet([]float64{9, 9, 1}, u, 2) {
		t.Error("tuple leq on only 1 attr should not be in 2-target set")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]float64{1, 2}, []float64{1, 2}) {
		t.Error("identical vectors should be Equal")
	}
	if Equal([]float64{1, 2}, []float64{1, 3}) {
		t.Error("different vectors should not be Equal")
	}
}

// vec is a fixed-width attribute vector for testing/quick generation.
type vec [5]float64

func (v vec) slice() []float64 { return v[:] }

func TestPropertyDominanceTransitive(t *testing.T) {
	// Full dominance is transitive: a dom b && b dom c => a dom c.
	f := func(a, b, c vec) bool {
		if Dominates(a.slice(), b.slice()) && Dominates(b.slice(), c.slice()) {
			return Dominates(a.slice(), c.slice())
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDominanceAsymmetric(t *testing.T) {
	f := func(a, b vec) bool {
		if Dominates(a.slice(), b.slice()) {
			return !Dominates(b.slice(), a.slice())
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyKDominanceMonotoneInK(t *testing.T) {
	// Lemma 1 (contrapositive at the pair level): if a k-dominates b then a
	// j-dominates b for every j <= k.
	f := func(a, b vec) bool {
		for k := 5; k >= 1; k-- {
			if KDominates(a.slice(), b.slice(), k) && !KDominates(a.slice(), b.slice(), k-1+1) {
				return false
			}
			if KDominates(a.slice(), b.slice(), k) {
				for j := 1; j < k; j++ {
					if !KDominates(a.slice(), b.slice(), j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFullDominanceIsDDominance(t *testing.T) {
	f := func(a, b vec) bool {
		return Dominates(a.slice(), b.slice()) == KDominates(a.slice(), b.slice(), 5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyKDomCompareConsistent(t *testing.T) {
	f := func(a, b vec, kRaw uint8) bool {
		k := int(kRaw)%5 + 1
		ab, ba := KDomCompare(a.slice(), b.slice(), k)
		return ab == KDominates(a.slice(), b.slice(), k) &&
			ba == KDominates(b.slice(), a.slice(), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountsConsistent(t *testing.T) {
	f := func(a, b vec) bool {
		leq := CountLeq(a.slice(), b.slice())
		less := CountLess(a.slice(), b.slice())
		eq := CountEq(a.slice(), b.slice())
		return leq == less+eq && leq <= 5 && less >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyInTargetSetSupersetOfDominators(t *testing.T) {
	// Every k'-dominator of u is in u's k'-target set, and so is u itself.
	f := func(x, u vec, kRaw uint8) bool {
		k := int(kRaw)%5 + 1
		if KDominates(x.slice(), u.slice(), k) && !InTargetSet(x.slice(), u.slice(), k) {
			return false
		}
		return InTargetSet(u.slice(), u.slice(), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKDominates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const d = 8
	x := make([]float64, d)
	y := make([]float64, d)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KDominates(x, y, d-2)
	}
}
