package dom

import (
	"math"
	"testing"
)

// refKDominates is an intentionally naive reference implementation: count
// preferred-or-equal positions without early exit, then require at least
// one strict win.
func refKDominates(a, b []float64, k int) bool {
	leq, strict := 0, false
	for i := range a {
		if a[i] <= b[i] {
			leq++
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return leq >= k && strict
}

func FuzzKDominates(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 3.0, 2.0, 1.0, 2)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1)
	f.Add(-1.5, 2.25, 1e300, 1.5, -2.25, -1e300, 3)
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2 float64, k int) {
		for _, v := range []float64{a0, a1, a2, b0, b1, b2} {
			if math.IsNaN(v) {
				t.Skip("NaN ordering is unspecified for skyline attributes")
			}
		}
		if k < 1 || k > 3 {
			t.Skip()
		}
		a := []float64{a0, a1, a2}
		b := []float64{b0, b1, b2}
		if got, want := KDominates(a, b, k), refKDominates(a, b, k); got != want {
			t.Errorf("KDominates(%v,%v,%d) = %v, reference %v", a, b, k, got, want)
		}
		ab, ba := KDomCompare(a, b, k)
		if ab != refKDominates(a, b, k) || ba != refKDominates(b, a, k) {
			t.Errorf("KDomCompare(%v,%v,%d) = (%v,%v), references (%v,%v)",
				a, b, k, ab, ba, refKDominates(a, b, k), refKDominates(b, a, k))
		}
		if Dominates(a, b) != refKDominates(a, b, 3) {
			t.Errorf("Dominates(%v,%v) disagrees with 3-dominance", a, b)
		}
	})
}
