package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Chart renders rows as horizontal stacked bars mirroring the paper's
// figures: one bar per (setting, algorithm), split into the grouping /
// join / dominator-generation / remaining phases. Bars are normalized to
// the figure's slowest total so relative heights read exactly like the
// paper's plots.
//
// Phase glyphs: G '▓' (grouping), J '█' (join), D '▒' (dominator
// generation), R '░' (remaining).
func Chart(w io.Writer, rows []Row, width int) {
	if len(rows) == 0 || w == nil {
		return
	}
	if width <= 0 {
		width = 48
	}
	byFigure := make(map[string][]Row)
	var order []string
	for _, r := range rows {
		if _, seen := byFigure[r.Figure]; !seen {
			order = append(order, r.Figure)
		}
		byFigure[r.Figure] = append(byFigure[r.Figure], r)
	}
	for _, fig := range order {
		chartFigure(w, fig, byFigure[fig], width)
	}
}

func chartFigure(w io.Writer, fig string, rows []Row, width int) {
	var max time.Duration
	for _, r := range rows {
		if r.Total > max {
			max = r.Total
		}
	}
	if max == 0 {
		max = time.Nanosecond
	}
	fmt.Fprintf(w, "Figure %s  (phases: ▓ grouping, █ join, ▒ dominators, ░ remaining; full bar = %s)\n",
		fig, round(max))
	prevSetting := ""
	for _, r := range rows {
		if r.Setting != prevSetting {
			fmt.Fprintf(w, "  %s\n", r.Setting)
			prevSetting = r.Setting
		}
		bar := stackedBar(r, max, width)
		result := fmt.Sprintf("|S|=%d", r.Skyline)
		if r.K > 0 {
			result = fmt.Sprintf("k=%d", r.K)
		}
		fmt.Fprintf(w, "    %-2s %-*s %10s %9s\n", r.Alg, width, bar, round(r.Total), result)
	}
}

// stackedBar builds the glyph run for one row, scaled to width at max.
func stackedBar(r Row, max time.Duration, width int) string {
	segment := func(d time.Duration) int {
		return int(float64(d) / float64(max) * float64(width))
	}
	var b strings.Builder
	b.WriteString(strings.Repeat("▓", segment(r.Grouping)))
	b.WriteString(strings.Repeat("█", segment(r.Join)))
	b.WriteString(strings.Repeat("▒", segment(r.Dominator)))
	b.WriteString(strings.Repeat("░", segment(r.Remaining)))
	if b.Len() == 0 && r.Total > 0 {
		return "·" // sub-pixel bar: visible but honest about its size
	}
	return b.String()
}
