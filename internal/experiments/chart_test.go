package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func chartRows() []Row {
	return []Row{
		{Figure: "1a", Setting: "k=8", Alg: "G", Grouping: 10 * time.Millisecond, Remaining: 10 * time.Millisecond, Total: 20 * time.Millisecond, Skyline: 5},
		{Figure: "1a", Setting: "k=8", Alg: "D", Dominator: 20 * time.Millisecond, Remaining: 20 * time.Millisecond, Total: 40 * time.Millisecond, Skyline: 5},
		{Figure: "1a", Setting: "k=8", Alg: "N", Join: 40 * time.Millisecond, Remaining: 40 * time.Millisecond, Total: 80 * time.Millisecond, Skyline: 5},
		{Figure: "8a", Setting: "delta=10", Alg: "B", Grouping: time.Millisecond, Total: time.Millisecond, K: 7},
	}
}

func TestChartStructure(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, chartRows(), 40)
	out := buf.String()
	for _, want := range []string{"Figure 1a", "Figure 8a", "k=8", "delta=10", "|S|=5", "k=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The slowest bar (N, 80ms) should be about full width; the fastest
	// KSJQ bar (G, 20ms) about a quarter.
	lines := strings.Split(out, "\n")
	var gBar, nBar int
	for _, line := range lines {
		runes := []rune(line)
		bar := 0
		for _, r := range runes {
			switch r {
			case '▓', '█', '▒', '░':
				bar++
			}
		}
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "G ") {
			gBar = bar
		}
		if strings.HasPrefix(trimmed, "N ") {
			nBar = bar
		}
	}
	if nBar < 35 || nBar > 41 {
		t.Errorf("N bar width %d, want ~40", nBar)
	}
	if gBar < 7 || gBar > 12 {
		t.Errorf("G bar width %d, want ~10", gBar)
	}
}

func TestChartTinyBarStillVisible(t *testing.T) {
	rows := []Row{
		{Figure: "x", Setting: "s", Alg: "G", Remaining: time.Nanosecond, Total: time.Nanosecond},
		{Figure: "x", Setting: "s", Alg: "N", Remaining: time.Second, Total: time.Second},
	}
	var buf bytes.Buffer
	Chart(&buf, rows, 30)
	if !strings.Contains(buf.String(), "·") {
		t.Errorf("sub-pixel bar not rendered:\n%s", buf.String())
	}
}

func TestChartEmptyAndNil(t *testing.T) {
	Chart(nil, chartRows(), 10) // must not panic
	var buf bytes.Buffer
	Chart(&buf, nil, 10)
	if buf.Len() != 0 {
		t.Errorf("empty rows produced output: %q", buf.String())
	}
}

func TestChartDefaultsWidth(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, chartRows(), 0)
	if buf.Len() == 0 {
		t.Error("no output with default width")
	}
}
