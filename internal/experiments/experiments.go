// Package experiments regenerates every figure of the paper's evaluation
// (Sec. 7). Each runner sweeps the same parameter the paper varies, runs
// the three KSJQ algorithms (G/D/N) or the three find-k algorithms (B/R/N),
// and reports the same per-phase time breakdown the paper's stacked bars
// plot: grouping time, join time, dominator generation, and remaining.
//
// Scales: the paper's defaults (Table 7: n=3300, joined relation ≈ 1.09M
// tuples) take minutes per figure; the Small scale shrinks n while keeping
// every ratio the paper's claims depend on, so the full suite runs in
// seconds and the qualitative shape (who wins, how phases stack) is
// preserved. DESIGN.md §4 records how the scales relate.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Smoke is for unit tests: tiny inputs, shape checks only.
	Smoke Scale = iota
	// Small is the default for benchmarks and the CLI: seconds per figure.
	Small
	// Full matches the paper's Table 7 (n=3300, sweeps to n=33000).
	Full
)

// ParseScale maps CLI spellings to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want smoke, small or full)", s)
	}
}

// baseN returns the base-relation size n for the scale (paper default 3300).
func (s Scale) baseN() int {
	switch s {
	case Smoke:
		return 60
	case Small:
		return 300
	default:
		return 3300
	}
}

// sweepN returns the dataset-size sweep (paper: 100..33000).
func (s Scale) sweepN() []int {
	switch s {
	case Smoke:
		return []int{30, 60}
	case Small:
		return []int{50, 100, 200, 400, 800}
	default:
		return []int{100, 330, 1000, 3300, 10000, 33000}
	}
}

// sweepG returns the join-group sweep (paper: 1..100).
func (s Scale) sweepG() []int {
	switch s {
	case Smoke:
		return []int{1, 5}
	default:
		return []int{1, 2, 5, 10, 25, 50, 100}
	}
}

// sweepDelta returns the find-k threshold sweep (paper: 10..100K).
func (s Scale) sweepDelta() []int {
	switch s {
	case Smoke:
		return []int{5, 1000}
	case Small:
		return []int{10, 100, 1000, 10000, 100000}
	default:
		return []int{10, 100, 1000, 10000, 100000}
	}
}

// defaultDelta is the find-k default threshold (paper: 10000), scaled with
// the joined-relation size.
func (s Scale) defaultDelta() int {
	switch s {
	case Smoke:
		return 20
	case Small:
		return 250
	default:
		return 10000
	}
}

// Row is one bar of a figure: one algorithm at one parameter setting.
type Row struct {
	Figure  string // e.g. "1a"
	Setting string // e.g. "k=8"
	Alg     string // G, D, N (KSJQ) or B, R, N (find-k)

	Grouping  time.Duration
	Join      time.Duration
	Dominator time.Duration
	Remaining time.Duration
	Total     time.Duration

	// Skyline is the answer size (KSJQ figures) and K the chosen value
	// (find-k figures).
	Skyline int
	K       int
}

// Suite runs figures at one scale, writing rows to Out as they complete.
type Suite struct {
	Scale Scale
	Seed  int64
	// Out receives a formatted row per run; nil discards output.
	Out io.Writer
}

// NewSuite returns a suite with the canonical seed.
func NewSuite(scale Scale, out io.Writer) *Suite {
	return &Suite{Scale: scale, Seed: 2017, Out: out}
}

func (s *Suite) printf(format string, args ...any) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// Header prints the column header for row output.
func (s *Suite) Header() {
	s.printf("%-4s %-22s %-3s %10s %10s %10s %10s %10s %9s\n",
		"fig", "setting", "alg", "grouping", "join", "dominator", "remaining", "total", "result")
}

func (s *Suite) emit(r Row) {
	result := fmt.Sprintf("|S|=%d", r.Skyline)
	if r.K > 0 {
		result = fmt.Sprintf("k=%d", r.K)
	}
	s.printf("%-4s %-22s %-3s %10s %10s %10s %10s %10s %9s\n",
		r.Figure, r.Setting, r.Alg,
		round(r.Grouping), round(r.Join), round(r.Dominator), round(r.Remaining), round(r.Total), result)
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// workload bundles the generator parameters of one experimental point.
type workload struct {
	n, local, agg, groups int
	dist                  datagen.Distribution
}

// relations generates the two base relations for a workload with
// deterministic but distinct seeds.
func (s *Suite) relations(w workload) (*dataset.Relation, *dataset.Relation) {
	r1 := datagen.MustGenerate(datagen.Config{
		Name: "R1", N: w.n, Local: w.local, Agg: w.agg, Groups: w.groups, Dist: w.dist, Seed: s.Seed,
	})
	r2 := datagen.MustGenerate(datagen.Config{
		Name: "R2", N: w.n, Local: w.local, Agg: w.agg, Groups: w.groups, Dist: w.dist, Seed: s.Seed + 1,
	})
	return r1, r2
}

// runKSJQ runs all three KSJQ algorithms on one setting and emits a row
// each.
func (s *Suite) runKSJQ(fig, setting string, w workload, k int) []Row {
	r1, r2 := s.relations(w)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: k}
	return s.runQuery(fig, setting, q)
}

// runQuery runs all three KSJQ algorithms on a prepared query.
func (s *Suite) runQuery(fig, setting string, q core.Query) []Row {
	rows := make([]Row, 0, len(core.Algorithms))
	for _, alg := range core.Algorithms {
		res, err := core.Run(q, alg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s %s %v: %v", fig, setting, alg, err))
		}
		row := Row{
			Figure: fig, Setting: setting, Alg: alg.String(),
			Grouping: res.Stats.GroupingTime, Join: res.Stats.JoinTime,
			Dominator: res.Stats.DominatorTime, Remaining: res.Stats.RemainingTime,
			Total: res.Stats.Total, Skyline: len(res.Skyline),
		}
		s.emit(row)
		rows = append(rows, row)
	}
	return rows
}

// runFindK runs all three find-k algorithms on one setting.
func (s *Suite) runFindK(fig, setting string, w workload, delta int) []Row {
	r1, r2 := s.relations(w)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}}
	rows := make([]Row, 0, len(core.FindKAlgorithms))
	for _, alg := range core.FindKAlgorithms {
		res, err := core.FindK(q, delta, alg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s %s %v: %v", fig, setting, alg, err))
		}
		row := Row{
			Figure: fig, Setting: setting, Alg: alg.String(),
			Grouping: res.Stats.GroupingTime, Join: res.Stats.JoinTime,
			Remaining: res.Stats.RemainingTime, Total: res.Stats.Total,
			K: res.K,
		}
		s.emit(row)
		rows = append(rows, row)
	}
	return rows
}
