package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smokeSuite() *Suite {
	return NewSuite(Smoke, nil)
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"smoke": Smoke, "small": Small, "full": Full} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScaleParameters(t *testing.T) {
	if Full.baseN() != 3300 {
		t.Errorf("Full baseN = %d, want the paper's 3300", Full.baseN())
	}
	full := Full.sweepN()
	if full[len(full)-1] != 33000 {
		t.Errorf("Full sweepN tops at %d, want 33000", full[len(full)-1])
	}
	g := Full.sweepG()
	if g[0] != 1 || g[len(g)-1] != 100 {
		t.Errorf("group sweep %v, want paper's 1..100", g)
	}
	if Full.defaultDelta() != 10000 {
		t.Errorf("Full defaultDelta = %d, want 10000", Full.defaultDelta())
	}
}

// TestFiguresRunAtSmokeScale executes every figure end to end at smoke
// scale and checks structural invariants of the rows.
func TestFiguresRunAtSmokeScale(t *testing.T) {
	s := smokeSuite()
	for _, fig := range s.Figures() {
		fig := fig
		t.Run("fig"+fig.Name, func(t *testing.T) {
			rows := fig.Run()
			if len(rows) == 0 {
				t.Fatal("no rows produced")
			}
			findK := strings.HasPrefix(fig.Name, "8") || strings.HasPrefix(fig.Name, "9") || fig.Name == "10"
			for _, r := range rows {
				if r.Figure != fig.Name {
					t.Errorf("row figure %q, want %q", r.Figure, fig.Name)
				}
				if r.Total <= 0 {
					t.Errorf("row %+v has no total time", r)
				}
				if findK {
					if r.K <= 0 {
						t.Errorf("find-k row has no k: %+v", r)
					}
					if r.Alg != "B" && r.Alg != "R" && r.Alg != "N" {
						t.Errorf("find-k row alg %q", r.Alg)
					}
				} else {
					if r.Alg != "G" && r.Alg != "D" && r.Alg != "N" {
						t.Errorf("KSJQ row alg %q", r.Alg)
					}
				}
			}
		})
	}
}

// TestAlgorithmsAgreeWithinFigure: rows of the same setting must report
// identical skyline sizes (all three algorithms compute the same answer)
// and identical chosen k for the find-k figures.
func TestAlgorithmsAgreeWithinFigure(t *testing.T) {
	s := smokeSuite()
	rows := s.All()
	bySetting := map[string][]Row{}
	for _, r := range rows {
		key := r.Figure + "|" + r.Setting
		bySetting[key] = append(bySetting[key], r)
	}
	for key, group := range bySetting {
		if len(group) != 3 {
			t.Errorf("%s: %d rows, want 3 (one per algorithm)", key, len(group))
			continue
		}
		for _, r := range group[1:] {
			if r.Skyline != group[0].Skyline {
				t.Errorf("%s: skyline size disagreement: %s=%d vs %s=%d",
					key, group[0].Alg, group[0].Skyline, r.Alg, r.Skyline)
			}
			if r.K != group[0].K {
				t.Errorf("%s: chosen k disagreement: %s=%d vs %s=%d",
					key, group[0].Alg, group[0].K, r.Alg, r.K)
			}
		}
	}
}

func TestRowFormatting(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(Smoke, &buf)
	s.Header()
	s.Fig11()
	out := buf.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "flights k=6") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// All three algorithms should appear.
	for _, alg := range []string{" G ", " D ", " N "} {
		if !strings.Contains(out, alg) {
			t.Errorf("output missing algorithm %q:\n%s", alg, out)
		}
	}
}

// TestFindKMonotoneInDelta: the k chosen by find-k must not decrease as
// delta grows (Lemma 1).
func TestFindKMonotoneInDelta(t *testing.T) {
	s := smokeSuite()
	rows := s.Fig8a()
	var prev int
	for _, r := range rows {
		if r.Alg != "B" {
			continue
		}
		if r.K < prev {
			t.Errorf("chosen k decreased from %d to %d as delta grew", prev, r.K)
		}
		prev = r.K
	}
}
