package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteRowsCSV exports rows in a layout convenient for external plotting
// tools (one row per bar, durations in microseconds). The column set is
// stable; downstream tables and charts are derived from this output.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "setting", "alg", "grouping_us", "join_us", "dominator_us", "remaining_us", "total_us", "skyline", "k"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for i, r := range rows {
		rec := []string{
			r.Figure, r.Setting, r.Alg,
			strconv.FormatInt(r.Grouping.Microseconds(), 10),
			strconv.FormatInt(r.Join.Microseconds(), 10),
			strconv.FormatInt(r.Dominator.Microseconds(), 10),
			strconv.FormatInt(r.Remaining.Microseconds(), 10),
			strconv.FormatInt(r.Total.Microseconds(), 10),
			strconv.Itoa(r.Skyline),
			strconv.Itoa(r.K),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRowsCSV parses rows previously written by WriteRowsCSV; used by
// tooling that post-processes archived runs.
func ReadRowsCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("experiments: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: empty rows CSV")
	}
	rows := make([]Row, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 10 {
			return nil, fmt.Errorf("experiments: row %d has %d columns, want 10", i+1, len(rec))
		}
		var row Row
		row.Figure, row.Setting, row.Alg = rec[0], rec[1], rec[2]
		durs := make([]int64, 5)
		for j := 0; j < 5; j++ {
			durs[j], err = strconv.ParseInt(rec[3+j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: row %d column %d: %w", i+1, 3+j, err)
			}
		}
		row.Grouping = microseconds(durs[0])
		row.Join = microseconds(durs[1])
		row.Dominator = microseconds(durs[2])
		row.Remaining = microseconds(durs[3])
		row.Total = microseconds(durs[4])
		if row.Skyline, err = strconv.Atoi(rec[8]); err != nil {
			return nil, fmt.Errorf("experiments: row %d skyline: %w", i+1, err)
		}
		if row.K, err = strconv.Atoi(rec[9]); err != nil {
			return nil, fmt.Errorf("experiments: row %d k: %w", i+1, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func microseconds(us int64) (d time.Duration) { return time.Duration(us) * time.Microsecond }
