package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRowsCSVRoundTrip(t *testing.T) {
	rows := []Row{
		{Figure: "1a", Setting: "k=8 d=7 a=2", Alg: "G",
			Grouping: 120 * time.Microsecond, Join: 30 * time.Microsecond,
			Remaining: 999 * time.Microsecond, Total: 1149 * time.Microsecond, Skyline: 42},
		{Figure: "8a", Setting: "delta=10", Alg: "B",
			Grouping: time.Millisecond, Total: 2 * time.Millisecond, K: 9},
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("round trip changed rows:\n got %+v\nwant %+v", got, rows)
	}
}

func TestRowsCSVRealRows(t *testing.T) {
	s := NewSuite(Smoke, nil)
	rows := s.Fig11()
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("row count changed: %d -> %d", len(rows), len(got))
	}
	for i := range rows {
		if got[i].Figure != rows[i].Figure || got[i].Alg != rows[i].Alg || got[i].Skyline != rows[i].Skyline {
			t.Errorf("row %d changed: %+v -> %+v", i, rows[i], got[i])
		}
	}
}

func TestReadRowsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"short row":       "figure,setting,alg,grouping_us,join_us,dominator_us,remaining_us,total_us,skyline,k\n1a,s,G,1\n",
		"bad duration":    "figure,setting,alg,grouping_us,join_us,dominator_us,remaining_us,total_us,skyline,k\n1a,s,G,x,0,0,0,0,0,0\n",
		"bad skyline":     "figure,setting,alg,grouping_us,join_us,dominator_us,remaining_us,total_us,skyline,k\n1a,s,G,0,0,0,0,0,x,0\n",
		"bad k":           "figure,setting,alg,grouping_us,join_us,dominator_us,remaining_us,total_us,skyline,k\n1a,s,G,0,0,0,0,0,0,x\n",
		"ragged csv rows": "a,b\nc\n",
	}
	for name, input := range cases {
		if _, err := ReadRowsCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
