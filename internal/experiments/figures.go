package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/join"
)

// Paper defaults (Table 7): d=7 with a=2 aggregate attributes, k=11, g=10,
// independent data. n comes from the scale.

func (s *Suite) defaultAggWorkload() workload {
	return workload{n: s.Scale.baseN(), local: 5, agg: 2, groups: 10, dist: datagen.Independent}
}

// Fig1a reproduces Fig. 1a: effect of k with d=7, a=2.
func (s *Suite) Fig1a() []Row {
	var rows []Row
	for _, k := range []int{8, 9, 10, 11} {
		rows = append(rows, s.runKSJQ("1a", fmt.Sprintf("k=%d d=7 a=2", k), s.defaultAggWorkload(), k)...)
	}
	return rows
}

// Fig1b reproduces Fig. 1b: effect of k with d=6, a=1.
func (s *Suite) Fig1b() []Row {
	w := s.defaultAggWorkload()
	w.local, w.agg = 5, 1
	var rows []Row
	for _, k := range []int{7, 8, 9, 10} {
		rows = append(rows, s.runKSJQ("1b", fmt.Sprintf("k=%d d=6 a=1", k), w, k)...)
	}
	return rows
}

// Fig2a reproduces Fig. 2a: effect of the number of aggregate attributes
// with d=7, k=11.
func (s *Suite) Fig2a() []Row {
	var rows []Row
	for _, a := range []int{0, 1, 2, 3} {
		w := s.defaultAggWorkload()
		w.local, w.agg = 7-a, a
		rows = append(rows, s.runKSJQ("2a", fmt.Sprintf("a=%d d=7 k=11", a), w, 11)...)
	}
	return rows
}

// Fig2b reproduces Fig. 2b: the (d,k,a) medley.
func (s *Suite) Fig2b() []Row {
	var rows []Row
	for _, p := range [][3]int{{5, 7, 1}, {5, 7, 2}, {6, 7, 1}, {6, 7, 2}, {6, 8, 2}} {
		d, k, a := p[0], p[1], p[2]
		w := s.defaultAggWorkload()
		w.local, w.agg = d-a, a
		rows = append(rows, s.runKSJQ("2b", fmt.Sprintf("d=%d k=%d a=%d", d, k, a), w, k)...)
	}
	return rows
}

// Fig3a reproduces Fig. 3a: effect of the number of join groups
// (aggregate defaults). g=1 is the Cartesian-product special case.
func (s *Suite) Fig3a() []Row {
	var rows []Row
	for _, g := range s.Scale.sweepG() {
		w := s.defaultAggWorkload()
		w.groups = g
		rows = append(rows, s.runKSJQ("3a", fmt.Sprintf("g=%d", g), w, 11)...)
	}
	return rows
}

// Fig3b reproduces Fig. 3b: effect of dataset size (aggregate defaults).
func (s *Suite) Fig3b() []Row {
	var rows []Row
	for _, n := range s.Scale.sweepN() {
		w := s.defaultAggWorkload()
		w.n = n
		rows = append(rows, s.runKSJQ("3b", fmt.Sprintf("n=%d", n), w, 11)...)
	}
	return rows
}

// Fig4 reproduces Fig. 4: effect of the data distribution (aggregate
// defaults).
func (s *Suite) Fig4() []Row {
	var rows []Row
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		w := s.defaultAggWorkload()
		w.dist = dist
		rows = append(rows, s.runKSJQ("4", dist.String(), w, 11)...)
	}
	return rows
}

func (s *Suite) noAggWorkload(d int) workload {
	return workload{n: s.Scale.baseN(), local: d, agg: 0, groups: 10, dist: datagen.Independent}
}

// Fig5a reproduces Fig. 5a: effect of k without aggregation (d=5).
func (s *Suite) Fig5a() []Row {
	var rows []Row
	for _, k := range []int{6, 7, 8, 9} {
		rows = append(rows, s.runKSJQ("5a", fmt.Sprintf("k=%d d=5 a=0", k), s.noAggWorkload(5), k)...)
	}
	return rows
}

// Fig5b reproduces Fig. 5b: the (d,k) medley without aggregation.
func (s *Suite) Fig5b() []Row {
	var rows []Row
	for _, p := range [][2]int{{4, 7}, {5, 7}, {6, 7}, {6, 11}, {7, 11}, {10, 11}} {
		d, k := p[0], p[1]
		rows = append(rows, s.runKSJQ("5b", fmt.Sprintf("d=%d k=%d", d, k), s.noAggWorkload(d), k)...)
	}
	return rows
}

// Fig6a reproduces Fig. 6a: group sweep without aggregation (d=4, k=7).
func (s *Suite) Fig6a() []Row {
	var rows []Row
	for _, g := range s.Scale.sweepG() {
		w := s.noAggWorkload(4)
		w.groups = g
		rows = append(rows, s.runKSJQ("6a", fmt.Sprintf("g=%d", g), w, 7)...)
	}
	return rows
}

// Fig6b reproduces Fig. 6b: dataset-size sweep without aggregation
// (d=5, k=7).
func (s *Suite) Fig6b() []Row {
	var rows []Row
	for _, n := range s.Scale.sweepN() {
		w := s.noAggWorkload(5)
		w.n = n
		rows = append(rows, s.runKSJQ("6b", fmt.Sprintf("n=%d", n), w, 7)...)
	}
	return rows
}

// Fig7 reproduces Fig. 7: data distributions without aggregation
// (d=5, k=7).
func (s *Suite) Fig7() []Row {
	var rows []Row
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		w := s.noAggWorkload(5)
		w.dist = dist
		rows = append(rows, s.runKSJQ("7", dist.String(), w, 7)...)
	}
	return rows
}

// Fig8a reproduces Fig. 8a: find-k versus the threshold δ (d=5, a=0).
func (s *Suite) Fig8a() []Row {
	var rows []Row
	for _, delta := range s.Scale.sweepDelta() {
		rows = append(rows, s.runFindK("8a", fmt.Sprintf("delta=%d", delta), s.noAggWorkload(5), delta)...)
	}
	return rows
}

// Fig8b reproduces Fig. 8b: find-k versus dimensionality (δ at the
// scale's default, paper 10000).
func (s *Suite) Fig8b() []Row {
	var rows []Row
	for _, d := range []int{3, 4, 5, 7, 10} {
		rows = append(rows, s.runFindK("8b", fmt.Sprintf("d=%d", d), s.noAggWorkload(d), s.Scale.defaultDelta())...)
	}
	return rows
}

// Fig9a reproduces Fig. 9a: find-k versus the number of join groups.
func (s *Suite) Fig9a() []Row {
	var rows []Row
	for _, g := range s.Scale.sweepG() {
		w := s.noAggWorkload(5)
		w.groups = g
		rows = append(rows, s.runFindK("9a", fmt.Sprintf("g=%d", g), w, s.Scale.defaultDelta())...)
	}
	return rows
}

// Fig9b reproduces Fig. 9b: find-k versus dataset size (paper: δ=1000,
// scaled with the joined-relation size).
func (s *Suite) Fig9b() []Row {
	delta := s.Scale.defaultDelta() / 10
	if delta < 1 {
		delta = 1
	}
	var rows []Row
	for _, n := range s.Scale.sweepN() {
		w := s.noAggWorkload(5)
		w.n = n
		rows = append(rows, s.runFindK("9b", fmt.Sprintf("n=%d", n), w, delta)...)
	}
	return rows
}

// Fig10 reproduces Fig. 10: find-k versus the data distribution.
func (s *Suite) Fig10() []Row {
	var rows []Row
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		w := s.noAggWorkload(5)
		w.dist = dist
		rows = append(rows, s.runFindK("10", dist.String(), w, s.Scale.defaultDelta())...)
	}
	return rows
}

// Fig11 reproduces Fig. 11: the (simulated) real flight dataset, k=6..8
// over 3 local + 3 local + 2 aggregate = 8 joined attributes.
func (s *Suite) Fig11() []Row {
	cfg := datagen.DefaultFlightsConfig()
	if s.Scale == Smoke {
		cfg.Outbound, cfg.Inbound = 40, 30
	}
	out, in := datagen.MustFlights(cfg)
	var rows []Row
	for _, k := range []int{6, 7, 8} {
		q := core.Query{R1: out, R2: in, Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: k}
		rows = append(rows, s.runQuery("11", fmt.Sprintf("flights k=%d", k), q)...)
	}
	return rows
}

// Figures maps figure names to runners, in the paper's order.
func (s *Suite) Figures() []struct {
	Name string
	Run  func() []Row
} {
	return []struct {
		Name string
		Run  func() []Row
	}{
		{"1a", s.Fig1a}, {"1b", s.Fig1b},
		{"2a", s.Fig2a}, {"2b", s.Fig2b},
		{"3a", s.Fig3a}, {"3b", s.Fig3b},
		{"4", s.Fig4},
		{"5a", s.Fig5a}, {"5b", s.Fig5b},
		{"6a", s.Fig6a}, {"6b", s.Fig6b},
		{"7", s.Fig7},
		{"8a", s.Fig8a}, {"8b", s.Fig8b},
		{"9a", s.Fig9a}, {"9b", s.Fig9b},
		{"10", s.Fig10},
		{"11", s.Fig11},
	}
}

// All runs every figure and returns the concatenated rows.
func (s *Suite) All() []Row {
	var rows []Row
	for _, fig := range s.Figures() {
		rows = append(rows, fig.Run()...)
	}
	return rows
}
