// Package httpapi is the HTTP JSON codec over the KSJQ query service:
// every endpoint decodes a request, calls the same service method an
// embedder would, and encodes the response. No query logic lives here.
// cmd/ksjqd serves it directly; the sharded gateway (internal/shard)
// speaks it as a client against each shard process and re-serves the
// same surface cluster-wide, which is why the wire types are exported.
//
//	POST   /v1/relations  {"name","local","agg","tuples":[{"key","band","attrs"}],"window_ms":60000}
//	POST   /v1/relations?format=csv&name=r1&local=3&agg=1[&band=1][&window_ms=60000]   (CSV body)
//	GET    /v1/relations
//	DELETE /v1/relations?name=r1
//	POST   /v1/query      {"r1","r2","k","join","agg","algorithm","workers","timeout_ms","no_cache"}
//	POST   /v1/verify     {"r1","r2","k","join","agg","vectors":[[...],...],"timeout_ms"}
//	POST   /v1/watch      same body as /v1/query; responds with NDJSON answer deltas
//	POST   /v1/insert     {"relation","tuple":{"key","band","attrs"}}
//	                      or {"relation","tuples":[{...},...]} (one group commit)
//	POST   /v1/delete     {"relation","id":3} or {"relation","ids":[0,4,7]}
//	                      (one group commit; ids are current row indexes)
//	GET    /v1/stats
//	GET    /healthz
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/service"
)

// TupleJSON is the wire form of one tuple.
type TupleJSON struct {
	Key   string    `json:"key"`
	Key2  string    `json:"key2,omitempty"`
	Band  float64   `json:"band,omitempty"`
	Attrs []float64 `json:"attrs"`
}

// Tuple converts to the dataset form.
func (t TupleJSON) Tuple() dataset.Tuple {
	return dataset.Tuple{Key: t.Key, Key2: t.Key2, Band: t.Band, Attrs: t.Attrs}
}

// FromTuple converts a dataset tuple to its wire form.
func FromTuple(t dataset.Tuple) TupleJSON {
	return TupleJSON{Key: t.Key, Key2: t.Key2, Band: t.Band, Attrs: t.Attrs}
}

// PairJSON is the wire form of one skyline tuple.
type PairJSON struct {
	Left  int       `json:"left"`
	Right int       `json:"right"`
	Attrs []float64 `json:"attrs"`
}

// QueryJSON is the wire form of a query (and watch) request.
type QueryJSON struct {
	R1        string `json:"r1"`
	R2        string `json:"r2"`
	K         int    `json:"k"`
	Join      string `json:"join,omitempty"`
	Agg       string `json:"agg,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

// QueryResponseJSON is the wire form of one answer.
type QueryResponseJSON struct {
	Skyline   []PairJSON `json:"skyline"`
	Count     int        `json:"count"`
	Source    string     `json:"source"`
	Algorithm string     `json:"algorithm"`
	Versions  [2]uint64  `json:"versions"`
	ElapsedUS int64      `json:"elapsed_us"`
	Stats     *StatsJSON `json:"stats,omitempty"`
}

// StatsJSON flattens the engine's per-phase breakdown to microseconds.
type StatsJSON struct {
	GroupingUS  int64 `json:"grouping_us"`
	JoinUS      int64 `json:"join_us"`
	DominatorUS int64 `json:"dominator_us"`
	RemainingUS int64 `json:"remaining_us"`
	TotalUS     int64 `json:"total_us"`
	Candidates  int   `json:"candidates"`
	YesEmitted  int   `json:"yes_emitted"`
	DomTests    int64 `json:"domination_tests"`
}

// RegisterJSON is the wire form of a JSON relation registration.
type RegisterJSON struct {
	Name     string      `json:"name"`
	Local    int         `json:"local"`
	Agg      int         `json:"agg"`
	Tuples   []TupleJSON `json:"tuples"`
	WindowMS int64       `json:"window_ms,omitempty"`
}

// RegisterResponseJSON acknowledges a registration.
type RegisterResponseJSON struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Tuples  int    `json:"tuples"`
}

// InsertJSON is the wire form of an insert: one tuple or a batch.
type InsertJSON struct {
	Relation string      `json:"relation"`
	Tuple    *TupleJSON  `json:"tuple,omitempty"`
	Tuples   []TupleJSON `json:"tuples,omitempty"`
}

// InsertResponseJSON reports one ingest group commit.
type InsertResponseJSON struct {
	ID          int    `json:"id"`
	Count       int    `json:"count"`
	Version     uint64 `json:"version"`
	Maintained  int    `json:"maintained"`
	Invalidated int    `json:"invalidated"`
	Displaced   int    `json:"displaced"`
	Admitted    int    `json:"admitted"`
}

// DeleteJSON is the wire form of a delete: one row id or a batch.
type DeleteJSON struct {
	Relation string `json:"relation"`
	ID       *int   `json:"id,omitempty"`
	IDs      []int  `json:"ids,omitempty"`
}

// DeleteResponseJSON reports one delete group commit.
type DeleteResponseJSON struct {
	Count       int    `json:"count"`
	Version     uint64 `json:"version"`
	Maintained  int    `json:"maintained"`
	Invalidated int    `json:"invalidated"`
	Evicted     int    `json:"evicted"`
	Resurrected int    `json:"resurrected"`
}

// VerifyJSON is the wire form of a verification-round request: foreign
// candidate vectors to check against the local join.
type VerifyJSON struct {
	R1        string      `json:"r1"`
	R2        string      `json:"r2"`
	K         int         `json:"k"`
	Join      string      `json:"join,omitempty"`
	Agg       string      `json:"agg,omitempty"`
	Vectors   [][]float64 `json:"vectors"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// VerifyResponseJSON reports the votes, parallel to the request vectors.
type VerifyResponseJSON struct {
	Dominated []bool    `json:"dominated"`
	Versions  [2]uint64 `json:"versions"`
	ElapsedUS int64     `json:"elapsed_us"`
}

// WatchEventJSON is the wire form of one answer delta on the NDJSON
// stream: the initial snapshot (seq 0, all added), then one line per
// mutation batch that touched the watched relations.
type WatchEventJSON struct {
	Seq      uint64     `json:"seq"`
	Added    []PairJSON `json:"added,omitempty"`
	Removed  []PairJSON `json:"removed,omitempty"`
	Versions [2]uint64  `json:"versions"`
}

// handler carries the wire surface's operator-level policy: clients may
// tighten the per-request deadline but never loosen it past maxTimeout
// (0 = the operator disabled the bound).
type handler struct {
	svc        *service.Service
	maxTimeout time.Duration
}

// NewHandler builds the ksjqd HTTP surface over svc. maxTimeout is the
// operator's per-request deadline bound; 0 disables it.
func NewHandler(svc *service.Service, maxTimeout time.Duration) http.Handler {
	h := &handler{svc: svc, maxTimeout: maxTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/relations", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			WriteJSON(w, http.StatusOK, map[string]any{"relations": svc.Relations()})
		case http.MethodPost:
			h.handleLoad(w, r)
		case http.MethodDelete:
			h.handleUnregister(w, r)
		default:
			WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET, POST or DELETE"))
		}
	})
	post := func(path string, fn func(http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				WriteError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
				return
			}
			fn(w, r)
		})
	}
	post("/v1/query", h.handleQuery)
	post("/v1/verify", h.handleVerify)
	post("/v1/watch", h.handleWatch)
	post("/v1/insert", h.handleInsert)
	post("/v1/delete", h.handleDelete)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

// clamp applies the operator bound: a wire client may tighten the
// deadline but never loosen it. Negative values (the service's
// embedder-only "no deadline" escape hatch) and anything beyond the
// bound fall back to the bound, so no client can pin a worker slot past
// it.
func (h *handler) clamp(timeoutMS int64) time.Duration {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if timeout < 0 || (h.maxTimeout > 0 && (timeout == 0 || timeout > h.maxTimeout)) {
		timeout = h.maxTimeout
	}
	return timeout
}

func (h *handler) handleLoad(w http.ResponseWriter, r *http.Request) {
	svc := h.svc
	if r.URL.Query().Get("format") == "csv" {
		q := r.URL.Query()
		name := q.Get("name")
		local, agg := atoi(q.Get("local")), atoi(q.Get("agg"))
		hasBand := q.Get("band") != "" && q.Get("band") != "0"
		window := time.Duration(atoi(q.Get("window_ms"))) * time.Millisecond
		rel, err := dataset.ReadCSV(r.Body, dataset.ReadOptions{
			Name: name, Local: local, Agg: agg, HasBand: hasBand,
		})
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		version, err := svc.RegisterWindow(name, rel, window)
		if err != nil {
			WriteServiceError(w, err)
			return
		}
		h.writeLoadResponse(w, name, version)
		return
	}
	var req RegisterJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	tuples := make([]dataset.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		tuples[i] = t.Tuple()
	}
	rel, err := dataset.New(req.Name, req.Local, req.Agg, tuples)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	version, err := svc.RegisterWindow(req.Name, rel, time.Duration(req.WindowMS)*time.Millisecond)
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	h.writeLoadResponse(w, req.Name, version)
}

func (h *handler) writeLoadResponse(w http.ResponseWriter, name string, version uint64) {
	info, err := h.svc.RelationInfo(name)
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, RegisterResponseJSON{Name: name, Version: version, Tuples: info.Tuples})
}

func (h *handler) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		WriteError(w, http.StatusBadRequest, errors.New("missing ?name="))
		return
	}
	if err := h.svc.Unregister(name); err != nil {
		WriteServiceError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"name": name, "unregistered": true})
}

func (h *handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := h.svc.Query(r.Context(), service.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
		Timeout: h.clamp(req.TimeoutMS),
		NoCache: req.NoCache,
	})
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	out := QueryResponseJSON{
		Skyline:   make([]PairJSON, len(resp.Skyline)),
		Count:     len(resp.Skyline),
		Source:    string(resp.Source),
		Algorithm: resp.Algorithm,
		Versions:  resp.Versions,
		ElapsedUS: resp.Elapsed.Microseconds(),
	}
	for i, p := range resp.Skyline {
		out.Skyline[i] = PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs}
	}
	if st := resp.Stats; st != nil {
		out.Stats = &StatsJSON{
			GroupingUS:  st.GroupingTime.Microseconds(),
			JoinUS:      st.JoinTime.Microseconds(),
			DominatorUS: st.DominatorTime.Microseconds(),
			RemainingUS: st.RemainingTime.Microseconds(),
			TotalUS:     st.Total.Microseconds(),
			Candidates:  st.Candidates,
			YesEmitted:  st.YesEmitted,
			DomTests:    st.DominationTests,
		}
	}
	WriteJSON(w, http.StatusOK, out)
}

func (h *handler) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := h.svc.Verify(r.Context(), service.VerifyRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg,
		Vectors: req.Vectors,
		Timeout: h.clamp(req.TimeoutMS),
	})
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	dominated := resp.Dominated
	if dominated == nil {
		dominated = []bool{}
	}
	WriteJSON(w, http.StatusOK, VerifyResponseJSON{
		Dominated: dominated,
		Versions:  resp.Versions,
		ElapsedUS: resp.Elapsed.Microseconds(),
	})
}

// handleWatch upgrades a query into a standing subscription: the response
// is an unbounded application/x-ndjson stream of answer deltas, one JSON
// object per line, flushed as they happen. The stream ends when the
// client disconnects (the request context cancels the watch) or the
// service shuts down. The timeout clamp is deliberately not applied —
// a watch is long-lived by design; its lifetime is the connection's.
func (h *handler) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req QueryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	watch, err := h.svc.Watch(r.Context(), service.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
	})
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	defer watch.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range watch.Events() {
		out := WatchEventJSON{Seq: ev.Seq, Versions: ev.Versions}
		for _, p := range ev.Added {
			out.Added = append(out.Added, PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		for _, p := range ev.Removed {
			out.Removed = append(out.Removed, PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		if err := enc.Encode(out); err != nil {
			return // client went away; the deferred Close tears down
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleInsert accepts the original single-tuple form ("tuple") and the
// batch form ("tuples"); both run through the service's group-commit
// ingest, a batch paying one version bump and one maintenance pass for
// the whole set.
func (h *handler) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var tuples []dataset.Tuple
	switch {
	case req.Tuple != nil && len(req.Tuples) > 0:
		WriteError(w, http.StatusBadRequest, errors.New(`give "tuple" or "tuples", not both`))
		return
	case req.Tuple != nil:
		tuples = []dataset.Tuple{req.Tuple.Tuple()}
	default:
		tuples = make([]dataset.Tuple, len(req.Tuples))
		for i, t := range req.Tuples {
			tuples[i] = t.Tuple()
		}
	}
	res, err := h.svc.InsertBatch(req.Relation, tuples)
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, InsertResponseJSON{
		ID: res.ID, Count: res.Count, Version: res.Version,
		Maintained: res.Maintained, Invalidated: res.Invalidated,
		Displaced: res.Displaced, Admitted: res.Admitted,
	})
}

// handleDelete accepts a single row id ("id") or a batch ("ids"); both
// run through the service's group-commit delete, a batch paying one
// version bump and one maintenance pass for the whole set. Ids are the
// rows' current indexes — surviving rows renumber after the commit, so
// batch members are resolved against the same pre-delete numbering.
func (h *handler) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var ids []int
	switch {
	case req.ID != nil && len(req.IDs) > 0:
		WriteError(w, http.StatusBadRequest, errors.New(`give "id" or "ids", not both`))
		return
	case req.ID != nil:
		ids = []int{*req.ID}
	default:
		ids = req.IDs
	}
	res, err := h.svc.DeleteBatch(req.Relation, ids)
	if err != nil {
		WriteServiceError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, DeleteResponseJSON{
		Count: res.Count, Version: res.Version,
		Maintained: res.Maintained, Invalidated: res.Invalidated,
		Evicted: res.Evicted, Resurrected: res.Resurrected,
	})
}

// WriteServiceError maps service errors onto HTTP status codes.
func WriteServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrUnknownRelation):
		WriteError(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrDuplicateRelation):
		WriteError(w, http.StatusConflict, err)
	case errors.Is(err, service.ErrOverloaded):
		WriteError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, service.ErrBadRequest):
		WriteError(w, http.StatusBadRequest, err)
	case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDurability):
		// Both mean "this process can't take mutations anymore; restart":
		// 503 tells well-behaved clients to back off, not retry in place.
		WriteError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		WriteError(w, http.StatusGatewayTimeout, err)
	default:
		WriteError(w, http.StatusInternalServerError, err)
	}
}

// WriteError encodes an error as the standard {"error": "..."} body.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}

// WriteJSON encodes v with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// atoi parses a non-negative query parameter, treating anything else as 0
// (schema validation downstream produces the real error message).
func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
