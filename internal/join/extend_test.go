package join

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func extendTestRelation(t *testing.T, name string, rng *rand.Rand, n, groups int) *dataset.Relation {
	t.Helper()
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		ts[i] = dataset.Tuple{
			Key:   fmt.Sprintf("g%03d", rng.Intn(groups)),
			Band:  rng.Float64(),
			Attrs: []float64{rng.Float64() * 100, rng.Float64() * 100},
		}
	}
	r, err := dataset.New(name, 2, 0, ts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExtendMatchesRebuild pins Index.Extend to the constructor: an index
// built over a prefix and extended with the appended tail must answer
// every probe exactly like one built from scratch over the full relation
// — same partner sets, same order.
func TestExtendMatchesRebuild(t *testing.T) {
	conds := []Condition{Equality, Cross, BandLess, BandLessEq, BandGreater, BandGreaterEq}
	for _, cond := range conds {
		t.Run(cond.Token(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cond)*31 + 7))
			probe := extendTestRelation(t, "probe", rng, 40, 6)
			target := extendTestRelation(t, "target", rng, 30, 6)

			prefix := 18
			subset := make([]int, prefix)
			for i := range subset {
				subset[i] = i
			}
			extended := NewIndex(probe, target, subset, cond)
			tail := make([]int, target.Len()-prefix)
			for i := range tail {
				tail[i] = prefix + i
			}
			extended.Extend(tail)

			full := make([]int, target.Len())
			for i := range full {
				full[i] = i
			}
			rebuilt := NewIndex(probe, target, full, cond)

			assertIndexesAgree(t, probe, extended, rebuilt)
		})
	}
}

// TestExtendSparseBuckets drives Extend through the map-backed bucket
// representation (small subset over a large symbol space), which the
// dense-bucket path of TestExtendMatchesRebuild never reaches.
func TestExtendSparseBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// ~126 expected distinct symbols: deep into the map-backed regime
	// (nsyms > 64, subset < nsyms/8).
	probe := extendTestRelation(t, "probe", rng, 200, 200)
	target := extendTestRelation(t, "target", rng, 200, 200)

	subset := []int{3, 11, 27, 40}
	extended := NewIndex(probe, target, subset, Equality)
	extended.Extend([]int{55, 61})

	rebuilt := NewIndex(probe, target, []int{3, 11, 27, 40, 55, 61}, Equality)
	assertIndexesAgree(t, probe, extended, rebuilt)
}

// TestExtendAfterSymbolGrowth pins the stale-KeyTrans hazard: the appended
// tail interns a key the probe already had but the target did not, so the
// extension must refresh the translation or the probe row would silently
// lose its partners.
func TestExtendAfterSymbolGrowth(t *testing.T) {
	mk := func(name string, keys ...string) *dataset.Relation {
		ts := make([]dataset.Tuple, len(keys))
		for i, k := range keys {
			ts[i] = dataset.Tuple{Key: k, Attrs: []float64{float64(i), 1}}
		}
		r, err := dataset.New(name, 2, 0, ts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	probe := mk("probe", "a", "b", "z")
	target := mk("target", "a", "b")

	ix := NewIndex(probe, target, []int{0, 1}, Equality)
	if got := ix.Partners(probe, 2); len(got) != 0 {
		t.Fatalf("probe z has partners %v before the append", got)
	}
	if _, err := target.Append(dataset.Tuple{Key: "z", Attrs: []float64{9, 1}}); err != nil {
		t.Fatal(err)
	}
	ix.Extend([]int{2})
	got := ix.Partners(probe, 2)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("probe z partners = %v after extend, want [2]", got)
	}
}

func assertIndexesAgree(t *testing.T, probe *dataset.Relation, got, want *Index) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("index sizes diverge: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < probe.Len(); i++ {
		g, w := got.Partners(probe, i), want.Partners(probe, i)
		if len(g) != len(w) {
			t.Fatalf("probe %d: %d partners extended, %d rebuilt", i, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("probe %d partner %d: %d extended, %d rebuilt (extended %v, rebuilt %v)",
					i, j, g[j], w[j], g, w)
			}
		}
	}
}
