package join

import (
	"sort"

	"repro/internal/dataset"
)

// Index is an immutable join index over (a subset of) one side of a join —
// by convention the right side, R2. It replaces per-probe condition scans
// with O(log n + matches) partner enumeration:
//
//   - Equality: hash buckets keyed on Tuple.Key; Partners is one map
//     lookup returning the co-keyed bucket.
//   - Band conditions: a permutation of the indexed subset sorted by
//     ascending Tuple.Band; Partners binary-searches the boundary and
//     returns the matching contiguous range of the permutation.
//   - Cross: Partners returns the whole subset.
//
// An Index is built once and never mutated, so it is safe to share across
// concurrent readers (the parallel checker relies on this). Partner slices
// are views into the index: callers must not modify them.
type Index struct {
	cond Condition
	// all is the indexed subset in build order (Cross fast path, and the
	// universe every other representation permutes).
	all []int
	// byKey buckets the subset per join key (Equality only). Bucket order
	// follows build order, so a probe-priority ordering of the subset is
	// preserved within each bucket.
	byKey map[string][]int
	// perm is the subset sorted by ascending Band (band conditions only);
	// bands[i] is the Band of tuple perm[i], kept separate so the binary
	// search touches a flat float64 array instead of chasing tuple pointers.
	perm  []int
	bands []float64
}

// NewIndex builds the index for the given condition over subset, a list of
// tuple indices into r — taken literally, so a nil or empty subset yields
// an empty index (cell lists are often legitimately empty). Use
// NewFullIndex to index the whole relation. The subset is copied; the
// relation is only read.
func NewIndex(r *dataset.Relation, subset []int, cond Condition) *Index {
	subset = append([]int(nil), subset...)
	ix := &Index{cond: cond, all: subset}
	switch cond {
	case Equality:
		ix.byKey = make(map[string][]int)
		for _, j := range subset {
			k := r.Tuples[j].Key
			ix.byKey[k] = append(ix.byKey[k], j)
		}
	case Cross:
		// all is the whole answer.
	default:
		ix.perm = append([]int(nil), subset...)
		sort.SliceStable(ix.perm, func(a, b int) bool {
			return r.Tuples[ix.perm[a]].Band < r.Tuples[ix.perm[b]].Band
		})
		ix.bands = make([]float64, len(ix.perm))
		for i, j := range ix.perm {
			ix.bands[i] = r.Tuples[j].Band
		}
	}
	return ix
}

// NewFullIndex indexes every tuple of r in natural order.
func NewFullIndex(r *dataset.Relation, cond Condition) *Index {
	subset := make([]int, r.Len())
	for i := range subset {
		subset[i] = i
	}
	return NewIndex(r, subset, cond)
}

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.all) }

// Partners returns the indexed tuples that join with left tuple u under
// the index condition, as a read-only view. Equality costs one hash
// lookup; band conditions cost one binary search; Cross is free.
func (ix *Index) Partners(u *dataset.Tuple) []int {
	switch ix.cond {
	case Equality:
		return ix.byKey[u.Key]
	case Cross:
		return ix.all
	case BandLess: // v.Band > u.Band: suffix of the band-sorted permutation
		lo := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] > u.Band })
		return ix.perm[lo:]
	case BandLessEq: // v.Band >= u.Band
		lo := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] >= u.Band })
		return ix.perm[lo:]
	case BandGreater: // v.Band < u.Band: prefix of the permutation
		hi := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] >= u.Band })
		return ix.perm[:hi]
	case BandGreaterEq: // v.Band <= u.Band
		hi := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] > u.Band })
		return ix.perm[:hi]
	default:
		return nil
	}
}

// PartnersKey returns the equality bucket for a raw key value, for probes
// that carry a join key without a tuple (e.g. the accumulated out-key of a
// cascaded chain join). Only valid on Equality indexes.
func (ix *Index) PartnersKey(key string) []int {
	return ix.byKey[key]
}

// ForEachPair calls fn for every join-compatible (i, j) with i drawn from
// left and j a partner of r1.Tuples[i], stopping early when fn returns
// true; it reports whether fn stopped the iteration. Total cost is
// O(|left| log n + matches) for band conditions and O(|left| + matches)
// for equality, versus the O(|left|·n) of a condition scan.
func (ix *Index) ForEachPair(r1 *dataset.Relation, left []int, fn func(i, j int) bool) bool {
	for _, i := range left {
		for _, j := range ix.Partners(&r1.Tuples[i]) {
			if fn(i, j) {
				return true
			}
		}
	}
	return false
}

// CountPairs returns the number of join-compatible pairs between left and
// the indexed subset without enumerating them: partner ranges are counted
// by their width, so the cost is O(|left| log n) even when the match count
// is quadratic.
func (ix *Index) CountPairs(r1 *dataset.Relation, left []int) int {
	n := 0
	for _, i := range left {
		n += len(ix.Partners(&r1.Tuples[i]))
	}
	return n
}

// Materialize builds the joined pairs for left × index. All attribute
// vectors share one arena: a single []float64 allocation sized
// pairs × width, carved into per-pair views. A cell therefore costs O(1)
// allocations regardless of how many pairs it holds (the arena stays
// reachable while any of its pairs is).
func Materialize(r1, r2 *dataset.Relation, left []int, ix *Index, agg Aggregator) []Pair {
	n := ix.CountPairs(r1, left)
	if n == 0 {
		return nil
	}
	w := Width(r1, r2)
	arena := make([]float64, n*w)
	out := make([]Pair, 0, n)
	pos := 0
	ix.ForEachPair(r1, left, func(i, j int) bool {
		attrs := Combine(r1, r2, &r1.Tuples[i], &r2.Tuples[j], agg, arena[pos:pos:pos+w])
		out = append(out, Pair{Left: i, Right: j, Attrs: attrs[:w:w]})
		pos += w
		return false
	})
	return out
}
