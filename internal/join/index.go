package join

import (
	"sort"

	"repro/internal/dataset"
)

// Index is an immutable join index over (a subset of) one side of a join —
// by convention the right side, R2. It replaces per-probe condition scans
// with O(log n + matches) partner enumeration:
//
//   - Equality: dense buckets keyed on the target relation's interned key
//     symbols, plus a translation table mapping the probe relation's
//     symbols onto the target's — built once at index construction, so a
//     probe is two array lookups with no string hashing.
//   - Band conditions: a permutation of the indexed subset sorted by
//     ascending band; Partners binary-searches the boundary and returns
//     the matching contiguous range of the permutation.
//   - Cross: Partners returns the whole subset.
//
// An Index is never mutated by readers, so it is safe to share across
// concurrent readers (the parallel checker relies on this). Partner slices
// are views into the index: callers must not modify them. The one writer
// entry point is Extend, which folds newly appended target rows into the
// existing structures; it requires the same exclusion from readers that
// mutating the underlying relation does.
type Index struct {
	cond Condition
	// all is the indexed subset in build order (Cross fast path, and the
	// universe every other representation permutes).
	all []int
	// probe is the relation the index is probed by (it may equal target);
	// Extend rebuilds the key translation from it when either symbol table
	// has grown since construction.
	probe *dataset.Relation
	// target is the indexed relation; its symbol table resolves probe
	// symbols interned after the index was built.
	target *dataset.Relation
	// buckets holds the subset per target key symbol (Equality only),
	// indexed densely by symbol ID — used when the subset is a meaningful
	// fraction of the symbol space. Bucket order follows build order, so a
	// probe-priority ordering of the subset is preserved within each
	// bucket.
	buckets [][]int
	// bucketMap replaces buckets for small subsets over large symbol
	// spaces, keeping index construction O(|subset|) instead of
	// O(|symbols|) (the dominator algorithm builds one index per
	// candidate's target set).
	bucketMap map[int32][]int
	// kt translates probe key symbols onto target symbols.
	kt *KeyTrans
	// perm is the subset sorted by ascending band (band conditions only);
	// bands[i] is the band of tuple perm[i], kept separate so the binary
	// search touches a flat float64 array instead of chasing row accessors.
	perm  []int
	bands []float64
}

// NewIndex builds the index for the given condition over subset, a list of
// tuple indices into r — taken literally, so a nil or empty subset yields
// an empty index (cell lists are often legitimately empty). probe is the
// relation whose tuples will probe the index (it may be r itself); for
// equality it fixes the symbol translation, for other conditions it is
// ignored. Use NewFullIndex to index the whole relation. The subset is
// copied; the relations are only read.
func NewIndex(probe, r *dataset.Relation, subset []int, cond Condition) *Index {
	return NewIndexTrans(probe, r, subset, cond, nil)
}

// NewIndexTrans is NewIndex with a caller-supplied key translation. The
// translation depends only on the two relations' append-only symbol
// tables, so callers that build many subset indexes over one relation
// pair (the engine: one per cell, one per dominator-set checker) build a
// KeyTrans once and amortize the per-symbol pass; kt == nil builds one.
func NewIndexTrans(probe, r *dataset.Relation, subset []int, cond Condition, kt *KeyTrans) *Index {
	subset = append([]int(nil), subset...)
	ix := &Index{cond: cond, all: subset, probe: probe, target: r}
	switch cond {
	case Equality:
		if kt == nil {
			kt = NewKeyTrans(probe, r)
		}
		ix.kt = kt
		// Dense buckets give O(1) array probes but cost O(|symbols|) to
		// allocate; a map keeps construction O(|subset|) when the subset is
		// tiny relative to the symbol space (near-unique keys).
		if nsyms := r.Symbols().Len(); nsyms <= 64 || len(subset) >= nsyms/8 {
			ix.buckets = make([][]int, nsyms)
			for _, j := range subset {
				k := r.KeyID(j)
				ix.buckets[k] = append(ix.buckets[k], j)
			}
		} else {
			ix.bucketMap = make(map[int32][]int, len(subset))
			for _, j := range subset {
				k := r.KeyID(j)
				ix.bucketMap[k] = append(ix.bucketMap[k], j)
			}
		}
	case Cross:
		// all is the whole answer.
	default:
		ix.perm = append([]int(nil), subset...)
		bands := r.Bands()
		sort.SliceStable(ix.perm, func(a, b int) bool {
			return bands[ix.perm[a]] < bands[ix.perm[b]]
		})
		ix.bands = make([]float64, len(ix.perm))
		for i, j := range ix.perm {
			ix.bands[i] = bands[j]
		}
	}
	return ix
}

// KeyTrans maps a probe relation's key symbols onto a target relation's:
// one pass over the probe's symbol table at construction buys string-free
// equality probes for every index built over the pair afterwards. A
// KeyTrans is immutable and safe to share across indexes and goroutines.
type KeyTrans struct {
	// identity marks a shared symbol table (self-join): symbols translate
	// to themselves.
	identity bool
	// trans[s] is the target symbol for probe symbol s, -1 where the
	// target never interned the string.
	trans []int32
}

// NewKeyTrans builds the probe→target key-symbol translation. A nil probe
// or a shared symbol table yields the identity translation.
func NewKeyTrans(probe, target *dataset.Relation) *KeyTrans {
	if probe == nil || probe.Symbols() == target.Symbols() {
		return &KeyTrans{identity: true}
	}
	ps, ts := probe.Symbols(), target.Symbols()
	trans := make([]int32, ps.Len())
	for s := range trans {
		if id, ok := ts.Lookup(ps.String(int32(s))); ok {
			trans[s] = id
		} else {
			trans[s] = -1
		}
	}
	return &KeyTrans{trans: trans}
}

// NewFullIndex indexes every tuple of r in natural order, probed by probe.
func NewFullIndex(probe, r *dataset.Relation, cond Condition) *Index {
	subset := make([]int, r.Len())
	for i := range subset {
		subset[i] = i
	}
	return NewIndex(probe, r, subset, cond)
}

// Extend folds rows appended to the target relation since the index was
// built into the existing structures, in the order given: equality rows
// are appended to their key buckets (the bucket table growing to cover
// symbols interned by the batch), band rows are sorted among themselves
// and merged into the band permutation from the end — O(b log b + n)
// for a batch of b against an index of n, instead of the O(n log n)
// rebuild. The resulting index answers Partners with exactly the partner
// sets a rebuild over the grown relation would; within an equality bucket
// the batch rows probe after the pre-existing ones rather than in global
// probe-priority order, which affects probe order only, never membership.
//
// newIDs must be target rows that are not yet indexed, each listed once —
// the appended tail of the relation, in whatever probe-priority order the
// caller wants bucket tails to keep. Extend is a write: callers must
// exclude it from concurrent readers exactly as they would a mutation of
// the relation itself (the ingest path extends only residents it has
// taken out of circulation).
func (ix *Index) Extend(newIDs []int) {
	if len(newIDs) == 0 {
		return
	}
	ix.all = append(ix.all, newIDs...)
	switch ix.cond {
	case Equality:
		// The batch may have interned strings into either symbol table: a
		// new probe symbol is handled lazily by bucketForSym's fallback,
		// but a target symbol interned for a string the probe already knew
		// would leave a stale -1 in the translation and silently miss the
		// new partners. Rebuilding the translation (one pass over the probe
		// table) restores the invariant; the shared KeyTrans other indexes
		// hold is immutable, so this index gets its own.
		if ix.kt != nil && !ix.kt.identity {
			ix.kt = NewKeyTrans(ix.probe, ix.target)
		}
		if ix.buckets != nil {
			if nsyms := ix.target.Symbols().Len(); nsyms > len(ix.buckets) {
				ix.buckets = append(ix.buckets, make([][]int, nsyms-len(ix.buckets))...)
			}
			for _, j := range newIDs {
				k := ix.target.KeyID(j)
				ix.buckets[k] = append(ix.buckets[k], j)
			}
		} else {
			for _, j := range newIDs {
				k := ix.target.KeyID(j)
				ix.bucketMap[k] = append(ix.bucketMap[k], j)
			}
		}
	case Cross:
		// all is the whole answer; already extended above.
	default:
		bands := ix.target.Bands()
		tail := append([]int(nil), newIDs...)
		sort.SliceStable(tail, func(a, b int) bool {
			return bands[tail[a]] < bands[tail[b]]
		})
		// Merge from the end, new rows placed after equal-band old rows:
		// together with the stable tail sort this reproduces the exact
		// permutation a stable rebuild sort over [old order, newIDs] would.
		perm := make([]int, len(ix.perm)+len(tail))
		merged := make([]float64, len(perm))
		i, j := len(ix.perm)-1, len(tail)-1
		for k := len(perm) - 1; k >= 0; k-- {
			if j < 0 || (i >= 0 && ix.bands[i] > bands[tail[j]]) {
				perm[k], merged[k] = ix.perm[i], ix.bands[i]
				i--
			} else {
				perm[k], merged[k] = tail[j], bands[tail[j]]
				j--
			}
		}
		ix.perm, ix.bands = perm, merged
	}
}

// Retract removes target rows from the index after a batch delete on the
// target relation and renumbers the survivors to the post-delete IDs.
// removed must be the deleted rows' pre-delete IDs, sorted strictly
// ascending — the same slice handed to dataset.Relation.DeleteBatch. Every
// representation is filtered in place, preserving relative order, so probe
// priority inside equality buckets and the band permutation's stable order
// are exactly what a rebuild over the shrunken relation would produce
// (survivors' keys and bands are untouched by a delete). Symbols are never
// reclaimed, so the key translation stays valid as is. Like Extend, Retract
// is a write: exclude it from concurrent readers.
func (ix *Index) Retract(removed []int) {
	if len(removed) == 0 {
		return
	}
	renum := func(id int) (int, bool) {
		i := sort.SearchInts(removed, id)
		if i < len(removed) && removed[i] == id {
			return 0, false
		}
		return id - i, true
	}
	filter := func(list []int) []int {
		w := 0
		for _, id := range list {
			if nid, ok := renum(id); ok {
				list[w] = nid
				w++
			}
		}
		return list[:w]
	}
	ix.all = filter(ix.all)
	switch ix.cond {
	case Equality:
		if ix.buckets != nil {
			for k, b := range ix.buckets {
				if len(b) > 0 {
					ix.buckets[k] = filter(b)
				}
			}
		} else {
			for k, b := range ix.bucketMap {
				if nb := filter(b); len(nb) > 0 {
					ix.bucketMap[k] = nb
				} else {
					delete(ix.bucketMap, k)
				}
			}
		}
	case Cross:
		// all is the whole answer; already filtered above.
	default:
		w := 0
		for i, id := range ix.perm {
			if nid, ok := renum(id); ok {
				ix.perm[w] = nid
				ix.bands[w] = ix.bands[i]
				w++
			}
		}
		ix.perm = ix.perm[:w]
		ix.bands = ix.bands[:w]
	}
}

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.all) }

// Partners returns the indexed tuples that join with tuple i of the probe
// relation r1 under the index condition, as a read-only view. r1 must be
// the probe relation the index was built with. Equality costs two array
// lookups; band conditions cost one binary search; Cross is free.
func (ix *Index) Partners(r1 *dataset.Relation, i int) []int {
	switch ix.cond {
	case Equality:
		return ix.bucketForSym(r1, r1.KeyID(i))
	case Cross:
		return ix.all
	case BandLess: // v.band > u.band: suffix of the band-sorted permutation
		u := r1.Band(i)
		lo := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] > u })
		return ix.perm[lo:]
	case BandLessEq: // v.band >= u.band
		u := r1.Band(i)
		lo := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] >= u })
		return ix.perm[lo:]
	case BandGreater: // v.band < u.band: prefix of the permutation
		u := r1.Band(i)
		hi := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] >= u })
		return ix.perm[:hi]
	case BandGreaterEq: // v.band <= u.band
		u := r1.Band(i)
		hi := sort.Search(len(ix.bands), func(i int) bool { return ix.bands[i] > u })
		return ix.perm[:hi]
	default:
		return nil
	}
}

// bucketForSym resolves a probe-side key symbol to its equality bucket.
// Symbols interned into the probe relation after the index was built (an
// appended tuple with a previously unseen key) fall back to one string
// lookup in the target's table; everything else is array indexing.
func (ix *Index) bucketForSym(r1 *dataset.Relation, sym int32) []int {
	if !ix.kt.identity {
		if int(sym) < len(ix.kt.trans) {
			sym = ix.kt.trans[sym]
		} else {
			id, ok := ix.target.Symbols().Lookup(r1.Symbols().String(sym))
			if !ok {
				return nil
			}
			sym = id
		}
		if sym < 0 {
			return nil
		}
	}
	if ix.buckets != nil {
		// Identity translation (shared table): a symbol at or beyond the
		// bucket range was interned after the build, so no indexed tuple
		// carries it.
		if int(sym) >= len(ix.buckets) {
			return nil
		}
		return ix.buckets[sym]
	}
	return ix.bucketMap[sym]
}

// PartnersSym returns the equality bucket for a probe-side key symbol of
// probe relation r1, for probes that carry a key without a tuple (the
// accumulated out-key of a cascaded chain join). Only valid on Equality
// indexes.
func (ix *Index) PartnersSym(r1 *dataset.Relation, sym int32) []int {
	return ix.bucketForSym(r1, sym)
}

// ForEachPair calls fn for every join-compatible (i, j) with i drawn from
// left and j a partner of r1's tuple i, stopping early when fn returns
// true; it reports whether fn stopped the iteration. Total cost is
// O(|left| log n + matches) for band conditions and O(|left| + matches)
// for equality, versus the O(|left|·n) of a condition scan.
func (ix *Index) ForEachPair(r1 *dataset.Relation, left []int, fn func(i, j int) bool) bool {
	for _, i := range left {
		for _, j := range ix.Partners(r1, i) {
			if fn(i, j) {
				return true
			}
		}
	}
	return false
}

// CountPairs returns the number of join-compatible pairs between left and
// the indexed subset without enumerating them: partner ranges are counted
// by their width, so the cost is O(|left| log n) even when the match count
// is quadratic.
func (ix *Index) CountPairs(r1 *dataset.Relation, left []int) int {
	n := 0
	for _, i := range left {
		n += len(ix.Partners(r1, i))
	}
	return n
}

// Materialize builds the joined pairs for left × index. All attribute
// vectors share one arena: a single []float64 allocation sized
// pairs × width, carved into per-pair views. A cell therefore costs O(1)
// allocations regardless of how many pairs it holds (the arena stays
// reachable while any of its pairs is).
func Materialize(r1, r2 *dataset.Relation, left []int, ix *Index, agg Aggregator) []Pair {
	n := ix.CountPairs(r1, left)
	if n == 0 {
		return nil
	}
	w := Width(r1, r2)
	arena := make([]float64, n*w)
	out := make([]Pair, 0, n)
	pos := 0
	ix.ForEachPair(r1, left, func(i, j int) bool {
		attrs := CombineAt(r1, r2, i, j, agg, arena[pos:pos:pos+w])
		out = append(out, Pair{Left: i, Right: j, Attrs: attrs[:w:w]})
		pos += w
		return false
	})
	return out
}
