package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
)

var allConditions = []Condition{Equality, Cross, BandLess, BandLessEq, BandGreater, BandGreaterEq}

func randIndexedRelation(rng *rand.Rand, name string, n int) *dataset.Relation {
	tuples := make([]dataset.Tuple, n)
	for i := range tuples {
		tuples[i] = dataset.Tuple{
			Key:  string(rune('A' + rng.Intn(4))),
			Band: float64(rng.Intn(10)),
			Attrs: []float64{
				float64(rng.Intn(5)),
				float64(rng.Intn(5)),
				float64(rng.Intn(100)), // aggregate
			},
		}
	}
	return dataset.MustNew(name, 2, 1, tuples)
}

func pairSet(pairs []Pair) map[[2]int][]float64 {
	m := make(map[[2]int][]float64, len(pairs))
	for _, p := range pairs {
		m[[2]int{p.Left, p.Right}] = p.Attrs
	}
	return m
}

// TestPropertyIndexedPairsMatchScanOracle: for all six conditions and
// random relations, the indexed Pairs/CountPairs agree exactly — pair sets
// and combined attribute vectors — with the retained nested-scan oracle.
func TestPropertyIndexedPairsMatchScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		r1 := randIndexedRelation(rng, "r1", 1+rng.Intn(25))
		r2 := randIndexedRelation(rng, "r2", 1+rng.Intn(25))
		for _, cond := range allConditions {
			spec := Spec{Cond: cond, Agg: Sum}
			got, err := Pairs(r1, r2, spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ScanPairs(r1, r2, spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d cond %v: indexed %d pairs, oracle %d", trial, cond, len(got), len(want))
			}
			gotSet, wantSet := pairSet(got), pairSet(want)
			for key, attrs := range wantSet {
				ga, ok := gotSet[key]
				if !ok {
					t.Fatalf("trial %d cond %v: indexed join missing pair %v", trial, cond, key)
				}
				if !reflect.DeepEqual(ga, attrs) {
					t.Fatalf("trial %d cond %v: pair %v attrs = %v, oracle %v", trial, cond, key, ga, attrs)
				}
			}
			n, err := CountPairs(r1, r2, spec)
			if err != nil {
				t.Fatal(err)
			}
			sn, err := ScanCountPairs(r1, r2, spec)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(want) || sn != len(want) {
				t.Fatalf("trial %d cond %v: CountPairs=%d ScanCountPairs=%d, want %d", trial, cond, n, sn, len(want))
			}
		}
	}
}

// TestPropertyIndexSubsetPartners: an index over a random subset
// enumerates, for every probe tuple, exactly the subset members satisfying
// the condition, in O(log n) located ranges.
func TestPropertyIndexSubsetPartners(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		r1 := randIndexedRelation(rng, "r1", 1+rng.Intn(20))
		r2 := randIndexedRelation(rng, "r2", 1+rng.Intn(20))
		var subset []int
		for j := 0; j < r2.Len(); j++ {
			if rng.Intn(2) == 0 {
				subset = append(subset, j)
			}
		}
		for _, cond := range allConditions {
			ix := NewIndex(r1, r2, subset, cond)
			if ix.Len() != len(subset) {
				t.Fatalf("trial %d cond %v: Len=%d, want %d", trial, cond, ix.Len(), len(subset))
			}
			for i := 0; i < r1.Len(); i++ {
				u := r1.Tuple(i)
				var want []int
				for _, j := range subset {
					v := r2.Tuple(j)
					if cond.Matches(&u, &v) {
						want = append(want, j)
					}
				}
				got := append([]int(nil), ix.Partners(r1, i)...)
				sort.Ints(got)
				sort.Ints(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d cond %v probe %d: partners %v, want %v", trial, cond, i, got, want)
				}
			}
		}
	}
}

// TestPropertyForEachPairMatchesOracle: ForEachPair over random left lists
// and right subsets visits exactly the oracle pair set, and early exit
// stops enumeration.
func TestPropertyForEachPairMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		r1 := randIndexedRelation(rng, "r1", 1+rng.Intn(20))
		r2 := randIndexedRelation(rng, "r2", 1+rng.Intn(20))
		var left, right []int
		for i := 0; i < r1.Len(); i++ {
			if rng.Intn(2) == 0 {
				left = append(left, i)
			}
		}
		for j := 0; j < r2.Len(); j++ {
			if rng.Intn(2) == 0 {
				right = append(right, j)
			}
		}
		for _, cond := range allConditions {
			ix := NewIndex(r1, r2, right, cond)
			got := map[[2]int]bool{}
			ix.ForEachPair(r1, left, func(i, j int) bool {
				if got[[2]int{i, j}] {
					t.Fatalf("trial %d cond %v: pair (%d,%d) visited twice", trial, cond, i, j)
				}
				got[[2]int{i, j}] = true
				return false
			})
			want := map[[2]int]bool{}
			for _, i := range left {
				u := r1.Tuple(i)
				for _, j := range right {
					v := r2.Tuple(j)
					if cond.Matches(&u, &v) {
						want[[2]int{i, j}] = true
					}
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d cond %v: ForEachPair visited %v, want %v", trial, cond, got, want)
			}
			if ix.CountPairs(r1, left) != len(want) {
				t.Fatalf("trial %d cond %v: CountPairs=%d, want %d", trial, cond, ix.CountPairs(r1, left), len(want))
			}
			if len(want) > 0 {
				visited := 0
				stopped := ix.ForEachPair(r1, left, func(i, j int) bool {
					visited++
					return true
				})
				if !stopped || visited != 1 {
					t.Fatalf("trial %d cond %v: early exit visited %d pairs (stopped=%v)", trial, cond, visited, stopped)
				}
			}
		}
	}
}

// TestMaterializeArena: one Materialize call backs every attribute vector
// with a single arena and the vectors match per-pair Combine output.
func TestMaterializeArena(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r1 := randIndexedRelation(rng, "r1", 12)
	r2 := randIndexedRelation(rng, "r2", 15)
	for _, cond := range allConditions {
		left := make([]int, r1.Len())
		for i := range left {
			left[i] = i
		}
		pairs := Materialize(r1, r2, left, NewFullIndex(r1, r2, cond), Sum)
		w := Width(r1, r2)
		for n, p := range pairs {
			if len(p.Attrs) != w || cap(p.Attrs) != w {
				t.Fatalf("cond %v pair %d: len/cap = %d/%d, want %d/%d", cond, n, len(p.Attrs), cap(p.Attrs), w, w)
			}
			u, v := r1.Tuple(p.Left), r2.Tuple(p.Right)
			want := Combine(r1, r2, &u, &v, Sum, nil)
			if !reflect.DeepEqual(p.Attrs, want) {
				t.Fatalf("cond %v pair %d: attrs %v, want %v", cond, n, p.Attrs, want)
			}
		}
		// Vectors must not alias each other.
		seen := map[string]bool{}
		for n := range pairs {
			p := fmt.Sprintf("%p", pairs[n].Attrs)
			if seen[p] {
				t.Fatalf("cond %v: two pairs alias the same arena cell %s", cond, p)
			}
			seen[p] = true
		}
	}
}

// TestEmptyIndex: nil and empty subsets index nothing — a regression guard
// for the empty-cell case (an empty SN list must never mean "everything").
func TestEmptyIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r1 := randIndexedRelation(rng, "r1", 5)
	r2 := randIndexedRelation(rng, "r2", 5)
	for _, cond := range allConditions {
		for _, subset := range [][]int{nil, {}} {
			ix := NewIndex(r1, r2, subset, cond)
			if ix.Len() != 0 {
				t.Fatalf("cond %v: empty subset has Len %d", cond, ix.Len())
			}
			if n := ix.CountPairs(r1, []int{0, 1, 2}); n != 0 {
				t.Fatalf("cond %v: empty index counted %d pairs", cond, n)
			}
		}
	}
}

// TestPartnersAfterProbeAppend: a probe tuple appended (with a previously
// unseen key symbol) after the index was built must still resolve its
// equality bucket — the symbol translation falls back to one string lookup
// for symbols beyond the table size captured at build time.
func TestPartnersAfterProbeAppend(t *testing.T) {
	r1 := dataset.MustNew("r1", 1, 0, []dataset.Tuple{
		{Key: "A", Attrs: []float64{1}},
	})
	r2 := dataset.MustNew("r2", 1, 0, []dataset.Tuple{
		{Key: "A", Attrs: []float64{1}},
		{Key: "B", Attrs: []float64{2}},
		{Key: "B", Attrs: []float64{3}},
	})
	ix := NewFullIndex(r1, r2, Equality)
	// "B" exists in r2 but was unknown to r1 when the index (and its
	// translation table) was built.
	id, err := r1.Append(dataset.Tuple{Key: "B", Attrs: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Partners(r1, id)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Partners for late-appended key B = %v, want [1 2]", got)
	}
	// A key unknown to both sides must stay partnerless.
	id, err = r1.Append(dataset.Tuple{Key: "C", Attrs: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Partners(r1, id); len(got) != 0 {
		t.Fatalf("Partners for unknown key C = %v, want none", got)
	}
	// Self-join identity path: a fresh symbol appended to the indexed
	// relation itself has no bucket (no indexed tuple carries it).
	selfIx := NewFullIndex(r2, r2, Equality)
	id, err = r2.Append(dataset.Tuple{Key: "Z", Attrs: []float64{6}})
	if err != nil {
		t.Fatal(err)
	}
	if got := selfIx.Partners(r2, id); len(got) != 0 {
		t.Fatalf("identity Partners for late key Z = %v, want none", got)
	}
}
