// Package join provides the join machinery under the KSJQ algorithms:
// equality (hash) joins, the Cartesian product, non-equality band joins
// (Sec. 6.6), and the monotonic aggregation operators (Assumption 2) that
// combine aggregate attributes when two base tuples join.
package join

import (
	"errors"
	"fmt"
	"reflect"
	"strings"

	"repro/internal/dataset"
)

// Condition selects the join predicate between two base tuples u ∈ R1 and
// v ∈ R2.
type Condition int

const (
	// Equality joins on u.Key == v.Key (Assumption 1).
	Equality Condition = iota
	// Cross is the Cartesian product: every pair joins (Sec. 6.5).
	Cross
	// BandLess joins on u.Band < v.Band (e.g. arrival before departure).
	BandLess
	// BandLessEq joins on u.Band <= v.Band.
	BandLessEq
	// BandGreater joins on u.Band > v.Band.
	BandGreater
	// BandGreaterEq joins on u.Band >= v.Band.
	BandGreaterEq
)

// String returns the SQL-ish rendering of the condition.
func (c Condition) String() string {
	switch c {
	case Equality:
		return "R1.key = R2.key"
	case Cross:
		return "true"
	case BandLess:
		return "R1.band < R2.band"
	case BandLessEq:
		return "R1.band <= R2.band"
	case BandGreater:
		return "R1.band > R2.band"
	case BandGreaterEq:
		return "R1.band >= R2.band"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Token returns the condition's canonical short spelling — the one the
// CLI -join flag and the service's JSON API accept, and the one the answer
// cache normalizes query keys to.
func (c Condition) Token() string {
	switch c {
	case Equality:
		return "eq"
	case Cross:
		return "cross"
	case BandLess:
		return "lt"
	case BandLessEq:
		return "le"
	case BandGreater:
		return "gt"
	case BandGreaterEq:
		return "ge"
	default:
		return fmt.Sprintf("cond%d", int(c))
	}
}

// Reversed returns the condition with the operand roles swapped:
// c.Matches(u, v) == c.Reversed().Matches(v, u) for all tuples. Equality
// and Cross are symmetric; the band inequalities flip. The delete path uses
// this to probe a small index over removed rows from the surviving
// relation's side without materializing the transposed join.
func (c Condition) Reversed() Condition {
	switch c {
	case BandLess:
		return BandGreater
	case BandLessEq:
		return BandGreaterEq
	case BandGreater:
		return BandLess
	case BandGreaterEq:
		return BandLessEq
	default:
		return c
	}
}

// ParseCondition maps CLI and API spellings to a Condition. The empty
// string defaults to Equality.
func ParseCondition(s string) (Condition, error) {
	switch strings.ToLower(s) {
	case "", "eq", "equality":
		return Equality, nil
	case "cross", "cartesian":
		return Cross, nil
	case "lt":
		return BandLess, nil
	case "le":
		return BandLessEq, nil
	case "gt":
		return BandGreater, nil
	case "ge":
		return BandGreaterEq, nil
	default:
		return 0, fmt.Errorf("join: unknown join condition %q (want eq, cross, lt, le, gt or ge)", s)
	}
}

// Matches reports whether tuples u and v satisfy the condition. It reads
// row-shaped tuple values; hot paths use MatchesAt on the columns instead.
func (c Condition) Matches(u, v *dataset.Tuple) bool {
	switch c {
	case Equality:
		return u.Key == v.Key
	case Cross:
		return true
	case BandLess:
		return u.Band < v.Band
	case BandLessEq:
		return u.Band <= v.Band
	case BandGreater:
		return u.Band > v.Band
	case BandGreaterEq:
		return u.Band >= v.Band
	default:
		return false
	}
}

// MatchesAt reports whether tuple i of r1 and tuple j of r2 satisfy the
// condition, reading the relations' columns directly. Equality compares
// symbols when the relations share a table (self-join) and strings
// otherwise.
func (c Condition) MatchesAt(r1 *dataset.Relation, i int, r2 *dataset.Relation, j int) bool {
	switch c {
	case Equality:
		if r1.Symbols() == r2.Symbols() {
			return r1.KeyID(i) == r2.KeyID(j)
		}
		return r1.Key(i) == r2.Key(j)
	case Cross:
		return true
	case BandLess:
		return r1.Band(i) < r2.Band(j)
	case BandLessEq:
		return r1.Band(i) <= r2.Band(j)
	case BandGreater:
		return r1.Band(i) > r2.Band(j)
	case BandGreaterEq:
		return r1.Band(i) >= r2.Band(j)
	default:
		return false
	}
}

// Aggregator combines one aggregate attribute from each side of the join.
// Every provided aggregator is monotonic (Assumption 2): x1 <= x2 and
// y1 <= y2 imply Fn(x1,y1) <= Fn(x2,y2), which is what makes the SS/SN/NN
// categorization carry over to the aggregate variant unchanged.
type Aggregator struct {
	Name string
	Fn   func(x, y float64) float64
	// Strict reports strict monotonicity in each argument (x1 < x2 implies
	// Fn(x1,y) < Fn(x2,y)). The optimized KSJQ algorithms require it: a
	// non-strict aggregator can erase the strict attribute the pruning
	// theorems rely on.
	Strict bool
}

// IsSum reports whether agg is the built-in Sum aggregator, by function
// identity — a user-built aggregator that happens to be named "sum" does
// not qualify. Hot loops use it to inline the addition instead of calling
// through the function value on every aggregate attribute.
func IsSum(agg Aggregator) bool {
	return agg.Fn != nil &&
		reflect.ValueOf(agg.Fn).Pointer() == reflect.ValueOf(Sum.Fn).Pointer()
}

// Built-in monotonic aggregators.
var (
	Sum = Aggregator{Name: "sum", Strict: true, Fn: func(x, y float64) float64 { return x + y }}
	Max = Aggregator{Name: "max", Fn: func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	}}
	Min = Aggregator{Name: "min", Fn: func(x, y float64) float64 {
		if x < y {
			return x
		}
		return y
	}}
)

// ParseAggregator maps CLI and API spellings to a built-in aggregator. The
// empty string defaults to Sum, the only aggregator the optimized
// algorithms accept.
func ParseAggregator(s string) (Aggregator, error) {
	switch strings.ToLower(s) {
	case "", "sum":
		return Sum, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	default:
		return Aggregator{}, fmt.Errorf("join: unknown aggregator %q (want sum, max or min)", s)
	}
}

// Spec describes how two relations are joined.
type Spec struct {
	Cond Condition
	// Agg combines aggregate attributes. Zero value means Sum.
	Agg Aggregator
}

func (s Spec) aggregator() Aggregator {
	if s.Agg.Fn == nil {
		return Sum
	}
	return s.Agg
}

// ErrSchemaMismatch is returned when two relations cannot be joined because
// their aggregate-attribute counts differ.
var ErrSchemaMismatch = errors.New("join: relations have different aggregate attribute counts")

// CheckSchemas validates that r1 and r2 can be joined: the paper requires
// the a aggregate attributes to pair up one-to-one (Sec. 2.3).
func CheckSchemas(r1, r2 *dataset.Relation) error {
	if r1.Agg != r2.Agg {
		return fmt.Errorf("%w: %s has a=%d, %s has a=%d", ErrSchemaMismatch, r1.Name, r1.Agg, r2.Name, r2.Agg)
	}
	return nil
}

// Width returns the number of skyline attributes in the joined relation:
// l1 + l2 + a (Sec. 5.6); with a = 0 this is d1 + d2.
func Width(r1, r2 *dataset.Relation) int {
	return r1.Local + r2.Local + r1.Agg
}

// Combine materializes the joined attribute vector for u ∈ r1, v ∈ r2 into
// dst (allocating if dst lacks capacity) and returns it. Layout:
// [u.local..., v.local..., agg(u.agg_i, v.agg_i)...]. It reads row-shaped
// tuple values; hot paths use CombineAt on the columns instead.
func Combine(r1, r2 *dataset.Relation, u, v *dataset.Tuple, agg Aggregator, dst []float64) []float64 {
	dst = dst[:0]
	dst = append(dst, u.Attrs[:r1.Local]...)
	dst = append(dst, v.Attrs[:r2.Local]...)
	for i := 0; i < r1.Agg; i++ {
		dst = append(dst, agg.Fn(u.Attrs[r1.Local+i], v.Attrs[r2.Local+i]))
	}
	return dst
}

// CombineAt is Combine over row indices, reading the relations' attribute
// columns directly: contiguous stride-D() copies with no row
// materialization.
func CombineAt(r1, r2 *dataset.Relation, i, j int, agg Aggregator, dst []float64) []float64 {
	x, y := r1.Attrs(i), r2.Attrs(j)
	dst = dst[:0]
	dst = append(dst, x[:r1.Local]...)
	dst = append(dst, y[:r2.Local]...)
	for t := 0; t < r1.Agg; t++ {
		dst = append(dst, agg.Fn(x[r1.Local+t], y[r2.Local+t]))
	}
	return dst
}

// Pair is one joined tuple: indices of its two base tuples plus the
// materialized skyline attribute vector.
type Pair struct {
	Left, Right int
	Attrs       []float64
}

// Pairs materializes the full join r1 ⋈ r2 under the spec via an Index
// over r2 (hash buckets for equality, a band-sorted permutation for band
// conditions), so enumeration costs O((n1+n2) log n + matches) instead of
// O(n1·n2). Used by the naive KSJQ algorithm and by tests; the optimized
// algorithms avoid full materialization.
func Pairs(r1, r2 *dataset.Relation, spec Spec) ([]Pair, error) {
	if err := CheckSchemas(r1, r2); err != nil {
		return nil, err
	}
	left := make([]int, r1.Len())
	for i := range left {
		left[i] = i
	}
	return Materialize(r1, r2, left, NewFullIndex(r1, r2, spec.Cond), spec.aggregator()), nil
}

// CountPairs returns |r1 ⋈ r2| without materializing attribute vectors.
// Band conditions count partner ranges by binary search, so the cost is
// O((n1+n2) log n2) even when the answer is quadratic.
func CountPairs(r1, r2 *dataset.Relation, spec Spec) (int, error) {
	if err := CheckSchemas(r1, r2); err != nil {
		return 0, err
	}
	if spec.Cond == Cross {
		return r1.Len() * r2.Len(), nil
	}
	ix := NewFullIndex(r1, r2, spec.Cond)
	n := 0
	for i := 0; i < r1.Len(); i++ {
		n += len(ix.Partners(r1, i))
	}
	return n, nil
}

// ScanPairs is the retained O(n1·n2) nested-scan reference implementation
// of Pairs. It is the oracle the index property tests and the
// BenchmarkBandJoinNaive baseline compare against; production paths use
// the indexed Pairs.
func ScanPairs(r1, r2 *dataset.Relation, spec Spec) ([]Pair, error) {
	if err := CheckSchemas(r1, r2); err != nil {
		return nil, err
	}
	agg := spec.aggregator()
	var out []Pair
	for i := 0; i < r1.Len(); i++ {
		u := r1.Tuple(i)
		for j := 0; j < r2.Len(); j++ {
			v := r2.Tuple(j)
			if spec.Cond.Matches(&u, &v) {
				attrs := Combine(r1, r2, &u, &v, agg, make([]float64, 0, Width(r1, r2)))
				out = append(out, Pair{Left: i, Right: j, Attrs: attrs})
			}
		}
	}
	return out, nil
}

// ScanCountPairs is the nested-scan reference implementation of
// CountPairs, retained alongside ScanPairs as the benchmark baseline.
func ScanCountPairs(r1, r2 *dataset.Relation, spec Spec) (int, error) {
	if err := CheckSchemas(r1, r2); err != nil {
		return 0, err
	}
	n := 0
	for i := 0; i < r1.Len(); i++ {
		u := r1.Tuple(i)
		for j := 0; j < r2.Len(); j++ {
			v := r2.Tuple(j)
			if spec.Cond.Matches(&u, &v) {
				n++
			}
		}
	}
	return n, nil
}
