package join

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func rel(name string, local, agg int, tuples []dataset.Tuple) *dataset.Relation {
	return dataset.MustNew(name, local, agg, tuples)
}

func TestConditionMatches(t *testing.T) {
	u := &dataset.Tuple{Key: "A", Band: 5}
	v := &dataset.Tuple{Key: "A", Band: 7}
	w := &dataset.Tuple{Key: "B", Band: 5}
	tests := []struct {
		cond    Condition
		a, b    *dataset.Tuple
		want    bool
		display string
	}{
		{Equality, u, v, true, "R1.key = R2.key"},
		{Equality, u, w, false, "R1.key = R2.key"},
		{Cross, u, w, true, "true"},
		{BandLess, u, v, true, "R1.band < R2.band"},
		{BandLess, u, w, false, "R1.band < R2.band"},
		{BandLessEq, u, w, true, "R1.band <= R2.band"},
		{BandGreater, v, u, true, "R1.band > R2.band"},
		{BandGreaterEq, u, w, true, "R1.band >= R2.band"},
	}
	for _, tt := range tests {
		if got := tt.cond.Matches(tt.a, tt.b); got != tt.want {
			t.Errorf("%v.Matches = %v, want %v", tt.cond, got, tt.want)
		}
		if tt.cond.String() != tt.display {
			t.Errorf("%d.String() = %q, want %q", int(tt.cond), tt.cond.String(), tt.display)
		}
	}
}

func TestAggregators(t *testing.T) {
	if got := Sum.Fn(2, 3); got != 5 {
		t.Errorf("Sum(2,3) = %v", got)
	}
	if got := Max.Fn(2, 3); got != 3 {
		t.Errorf("Max(2,3) = %v", got)
	}
	if got := Min.Fn(2, 3); got != 2 {
		t.Errorf("Min(2,3) = %v", got)
	}
}

func TestPropertyAggregatorsMonotone(t *testing.T) {
	// Assumption 2: x1<=x2 && y1<=y2 => agg(x1,y1) <= agg(x2,y2).
	for _, agg := range []Aggregator{Sum, Max, Min} {
		f := func(x1, y1 float64, dx, dy uint8) bool {
			x2 := x1 + float64(dx)
			y2 := y1 + float64(dy)
			return agg.Fn(x1, y1) <= agg.Fn(x2, y2)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", agg.Name, err)
		}
	}
}

func TestCombineLayout(t *testing.T) {
	r1 := rel("r1", 2, 1, []dataset.Tuple{{Attrs: []float64{1, 2, 10}}})
	r2 := rel("r2", 1, 1, []dataset.Tuple{{Attrs: []float64{3, 20}}})
	u, v := r1.Tuple(0), r2.Tuple(0)
	got := Combine(r1, r2, &u, &v, Sum, nil)
	if got2 := CombineAt(r1, r2, 0, 0, Sum, nil); !reflect.DeepEqual(got, got2) {
		t.Errorf("CombineAt = %v, Combine = %v", got2, got)
	}
	want := []float64{1, 2, 3, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Combine = %v, want %v", got, want)
	}
	if Width(r1, r2) != 4 {
		t.Errorf("Width = %d, want 4", Width(r1, r2))
	}
}

func TestCombineReusesBuffer(t *testing.T) {
	r1 := rel("r1", 1, 0, []dataset.Tuple{{Attrs: []float64{1}}})
	r2 := rel("r2", 1, 0, []dataset.Tuple{{Attrs: []float64{2}}})
	buf := make([]float64, 0, 8)
	u, v := r1.Tuple(0), r2.Tuple(0)
	got := Combine(r1, r2, &u, &v, Sum, buf)
	if &got[:1][0] != &buf[:1][0] {
		t.Error("Combine did not reuse the provided buffer")
	}
}

func TestCheckSchemas(t *testing.T) {
	r1 := rel("r1", 2, 1, []dataset.Tuple{{Attrs: []float64{1, 2, 3}}})
	r2 := rel("r2", 1, 2, []dataset.Tuple{{Attrs: []float64{1, 2, 3}}})
	if err := CheckSchemas(r1, r2); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("CheckSchemas = %v, want ErrSchemaMismatch", err)
	}
	r3 := rel("r3", 2, 1, []dataset.Tuple{{Attrs: []float64{1, 2, 3}}})
	if err := CheckSchemas(r1, r3); err != nil {
		t.Errorf("CheckSchemas on matching schemas = %v", err)
	}
}

func TestPairsEquality(t *testing.T) {
	r1 := rel("r1", 1, 0, []dataset.Tuple{
		{Key: "A", Attrs: []float64{1}},
		{Key: "B", Attrs: []float64{2}},
		{Key: "A", Attrs: []float64{3}},
	})
	r2 := rel("r2", 1, 0, []dataset.Tuple{
		{Key: "A", Attrs: []float64{10}},
		{Key: "C", Attrs: []float64{20}},
	})
	pairs, err := Pairs(r1, r2, Spec{Cond: Equality})
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{
		{Left: 0, Right: 0, Attrs: []float64{1, 10}},
		{Left: 2, Right: 0, Attrs: []float64{3, 10}},
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("Pairs = %+v, want %+v", pairs, want)
	}
	n, err := CountPairs(r1, r2, Spec{Cond: Equality})
	if err != nil || n != 2 {
		t.Errorf("CountPairs = %d,%v, want 2,nil", n, err)
	}
}

func TestPairsCross(t *testing.T) {
	r1 := rel("r1", 1, 0, []dataset.Tuple{{Key: "A", Attrs: []float64{1}}, {Key: "B", Attrs: []float64{2}}})
	r2 := rel("r2", 1, 0, []dataset.Tuple{{Key: "X", Attrs: []float64{3}}})
	pairs, err := Pairs(r1, r2, Spec{Cond: Cross})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Errorf("Cross join produced %d pairs, want 2", len(pairs))
	}
	n, _ := CountPairs(r1, r2, Spec{Cond: Cross})
	if n != 2 {
		t.Errorf("CountPairs = %d, want 2", n)
	}
}

func TestPairsBand(t *testing.T) {
	r1 := rel("r1", 1, 0, []dataset.Tuple{
		{Band: 1, Attrs: []float64{1}},
		{Band: 5, Attrs: []float64{2}},
	})
	r2 := rel("r2", 1, 0, []dataset.Tuple{
		{Band: 3, Attrs: []float64{3}},
	})
	pairs, err := Pairs(r1, r2, Spec{Cond: BandLess})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Left != 0 {
		t.Errorf("BandLess join = %+v, want only (0,0)", pairs)
	}
	n, _ := CountPairs(r1, r2, Spec{Cond: BandLess})
	if n != 1 {
		t.Errorf("CountPairs = %d, want 1", n)
	}
}

func TestPairsAggregation(t *testing.T) {
	r1 := rel("r1", 1, 1, []dataset.Tuple{{Key: "A", Attrs: []float64{1, 100}}})
	r2 := rel("r2", 1, 1, []dataset.Tuple{{Key: "A", Attrs: []float64{2, 200}}})
	pairs, err := Pairs(r1, r2, Spec{Cond: Equality, Agg: Sum})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 300}
	if !reflect.DeepEqual(pairs[0].Attrs, want) {
		t.Errorf("aggregated attrs = %v, want %v", pairs[0].Attrs, want)
	}
	pairs, _ = Pairs(r1, r2, Spec{Cond: Equality, Agg: Max})
	if pairs[0].Attrs[2] != 200 {
		t.Errorf("max-aggregated attr = %v, want 200", pairs[0].Attrs[2])
	}
}

func TestPairsSchemaMismatch(t *testing.T) {
	r1 := rel("r1", 1, 1, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	r2 := rel("r2", 2, 0, []dataset.Tuple{{Attrs: []float64{1, 2}}})
	if _, err := Pairs(r1, r2, Spec{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("Pairs = %v, want ErrSchemaMismatch", err)
	}
	if _, err := CountPairs(r1, r2, Spec{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("CountPairs = %v, want ErrSchemaMismatch", err)
	}
}

func TestCountPairsMatchesPairsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conds := []Condition{Equality, Cross, BandLess, BandLessEq, BandGreater, BandGreaterEq}
	for trial := 0; trial < 100; trial++ {
		mk := func(name string) *dataset.Relation {
			n := 1 + rng.Intn(20)
			tuples := make([]dataset.Tuple, n)
			for i := range tuples {
				tuples[i] = dataset.Tuple{
					Key:   string(rune('A' + rng.Intn(4))),
					Band:  float64(rng.Intn(10)),
					Attrs: []float64{rng.Float64()},
				}
			}
			return rel(name, 1, 0, tuples)
		}
		r1, r2 := mk("r1"), mk("r2")
		for _, cond := range conds {
			pairs, err := Pairs(r1, r2, Spec{Cond: cond})
			if err != nil {
				t.Fatal(err)
			}
			n, err := CountPairs(r1, r2, Spec{Cond: cond})
			if err != nil {
				t.Fatal(err)
			}
			if n != len(pairs) {
				t.Fatalf("trial %d cond %v: CountPairs = %d, len(Pairs) = %d", trial, cond, n, len(pairs))
			}
		}
	}
}

// TestParseRoundTrip pins the canonical token spellings: every condition
// and built-in aggregator parses back from its own token, and unknown
// spellings are rejected.
func TestParseRoundTrip(t *testing.T) {
	conds := []Condition{Equality, Cross, BandLess, BandLessEq, BandGreater, BandGreaterEq}
	for _, c := range conds {
		got, err := ParseCondition(c.Token())
		if err != nil || got != c {
			t.Errorf("ParseCondition(%q) = %v, %v; want %v", c.Token(), got, err, c)
		}
	}
	if c, err := ParseCondition(""); err != nil || c != Equality {
		t.Errorf("ParseCondition(\"\") = %v, %v; want Equality", c, err)
	}
	if _, err := ParseCondition("bogus"); err == nil {
		t.Error("ParseCondition accepted bogus condition")
	}
	for _, name := range []string{"sum", "max", "min"} {
		agg, err := ParseAggregator(name)
		if err != nil || agg.Name != name {
			t.Errorf("ParseAggregator(%q) = %q, %v", name, agg.Name, err)
		}
	}
	if agg, err := ParseAggregator(""); err != nil || agg.Name != "sum" {
		t.Errorf("ParseAggregator(\"\") = %q, %v; want sum", agg.Name, err)
	}
	if _, err := ParseAggregator("avg"); err == nil {
		t.Error("ParseAggregator accepted non-monotonic avg")
	}
}
