package join

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// TestRetractMatchesRebuild pins Index.Retract to the constructor: an
// index retracted after a batch delete on its target relation must answer
// every probe exactly like one built from scratch over the compacted
// relation — same partner sets, same order.
func TestRetractMatchesRebuild(t *testing.T) {
	conds := []Condition{Equality, Cross, BandLess, BandLessEq, BandGreater, BandGreaterEq}
	for _, cond := range conds {
		t.Run(cond.Token(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cond)*37 + 11))
			probe := extendTestRelation(t, "probe", rng, 40, 6)
			target := extendTestRelation(t, "target", rng, 30, 6)

			retracted := NewFullIndex(probe, target, cond)
			ids := rng.Perm(target.Len())[:7]
			sort.Ints(ids)
			if err := target.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			retracted.Retract(ids)

			rebuilt := NewFullIndex(probe, target, cond)
			assertIndexesAgree(t, probe, retracted, rebuilt)
		})
	}
}

// TestRetractSubsetIndex deletes rows both inside and outside an indexed
// subset: outside rows must only renumber the survivors, inside rows must
// leave the index as a rebuild over the subset's survivors.
func TestRetractSubsetIndex(t *testing.T) {
	conds := []Condition{Equality, Cross, BandLessEq}
	for _, cond := range conds {
		t.Run(cond.Token(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cond)*41 + 3))
			probe := extendTestRelation(t, "probe", rng, 30, 5)
			target := extendTestRelation(t, "target", rng, 30, 5)
			subset := rng.Perm(target.Len())[:12]

			retracted := NewIndex(probe, target, subset, cond)
			ids := []int{1, 5, 11, 12, 28} // mix of subset members and outsiders
			if err := target.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			retracted.Retract(ids)

			// The surviving subset under post-delete IDs, in original order.
			var survivors []int
			for _, id := range subset {
				i := sort.SearchInts(ids, id)
				if i < len(ids) && ids[i] == id {
					continue
				}
				survivors = append(survivors, id-i)
			}
			rebuilt := NewIndex(probe, target, survivors, cond)
			assertIndexesAgree(t, probe, retracted, rebuilt)
		})
	}
}

// TestRetractBucketMap forces the sparse bucketMap representation (large
// symbol space, small subset) through a retract.
func TestRetractBucketMap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	probe := extendTestRelation(t, "probe", rng, 60, 200)
	target := extendTestRelation(t, "target", rng, 200, 200)
	subset := rng.Perm(target.Len())[:10]

	retracted := NewIndex(probe, target, subset, Equality)
	ids := append([]int(nil), subset[:4]...)
	ids = append(ids, 150, 180)
	sort.Ints(ids)
	if err := target.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	retracted.Retract(ids)

	var survivors []int
	for _, id := range subset {
		i := sort.SearchInts(ids, id)
		if i < len(ids) && ids[i] == id {
			continue
		}
		survivors = append(survivors, id-i)
	}
	rebuilt := NewIndex(probe, target, survivors, Equality)
	assertIndexesAgree(t, probe, retracted, rebuilt)
}

// TestRetractThenExtend interleaves the two maintenance directions: a
// retract followed by an extend must still agree with a rebuild.
func TestRetractThenExtend(t *testing.T) {
	conds := []Condition{Equality, Cross, BandLess, BandGreaterEq}
	for _, cond := range conds {
		t.Run(cond.Token(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cond)*13 + 29))
			probe := extendTestRelation(t, "probe", rng, 30, 4)
			target := extendTestRelation(t, "target", rng, 25, 4)

			ix := NewFullIndex(probe, target, cond)
			ids := []int{0, 7, 19}
			if err := target.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			ix.Retract(ids)

			var tail []int
			for i := 0; i < 5; i++ {
				id, err := target.Append(dataset.Tuple{
					Key:   fmt.Sprintf("g%03d", rng.Intn(4)),
					Band:  rng.Float64(),
					Attrs: []float64{rng.Float64() * 100, rng.Float64() * 100},
				})
				if err != nil {
					t.Fatal(err)
				}
				tail = append(tail, id)
			}
			ix.Extend(tail)

			rebuilt := NewFullIndex(probe, target, cond)
			assertIndexesAgree(t, probe, ix, rebuilt)
		})
	}
}
