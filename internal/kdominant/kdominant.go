// Package kdominant implements k-dominant skyline computation (Chan et al.,
// SIGMOD'06), the substrate the paper's KSJQ algorithms build on: the naive
// O(n²) method, the Two-Scan Algorithm (TSA), and a skyline-verifier method
// that exploits the fact that any k-dominated point is k-dominated by a
// full-skyline point.
//
// k-dominance is neither transitive nor acyclic (Sec. 2.2 of the KSJQ
// paper), so window-based skyline algorithms cannot be reused directly; the
// two optimized methods here restore correctness with a verification pass.
//
// All functions return indices into the input slice, in ascending order.
package kdominant

import (
	bits64 "math/bits"
	"sort"

	"repro/internal/dom"
	"repro/internal/skyline"
)

// Naive returns the k-dominant skyline by comparing every pair of points.
// It is the correctness oracle for the optimized algorithms.
func Naive(points [][]float64, k int) []int {
	all := identity(len(points))
	return NaiveSubset(points, all, k)
}

// NaiveSubset is Naive restricted to the points whose indices appear in
// subset. Only subset members may act as dominators, matching the paper's
// per-group categorization (Defs. 1-3).
func NaiveSubset(points [][]float64, subset []int, k int) []int {
	var result []int
	for _, i := range subset {
		dominated := false
		for _, j := range subset {
			if i != j && dom.KDominates(points[j], points[i], k) {
				dominated = true
				break
			}
		}
		if !dominated {
			result = append(result, i)
		}
	}
	return result
}

// TwoScan returns the k-dominant skyline with the Two-Scan Algorithm.
//
// Scan 1 maintains a candidate window: an incoming point is dropped if a
// window point k-dominates it and evicts window points it k-dominates.
// Because k-dominance is cyclic, a point evicted (or never admitted) in
// scan 1 may still k-dominate a surviving candidate, so scan 2 re-verifies
// every candidate against all non-candidate points.
func TwoScan(points [][]float64, k int) []int {
	return TwoScanSubset(points, identity(len(points)), k)
}

// TwoScanSubset is TwoScan restricted to a subset of point indices.
//
// Both scans run over a flat copy of the window's attribute vectors (one
// d-strided []float64), so the hot sweeps are contiguous passes instead of
// per-point pointer chases, and window eviction is in-place compaction.
// Scan 2 tracks surviving candidates in a bitset and skips dead candidates
// a word (64) at a time.
func TwoScanSubset(points [][]float64, subset []int, k int) []int {
	if len(subset) == 0 {
		return nil
	}
	d := len(points[subset[0]])

	// Scan 1: candidate filtering. winIDs[w] is the window's w-th point;
	// its attributes live in winAttrs[w*d : (w+1)*d].
	winIDs := make([]int, 0, 16)
	winAttrs := make([]float64, 0, 16*d)
	for _, i := range subset {
		p := points[i]
		dominated := false
		nw := len(winIDs)
		keep := 0
		for w := 0; w < nw; w++ {
			wa := winAttrs[w*d : w*d+d]
			leq, less := dom.LeqLess(wa, p)
			if leq >= k && less > 0 { // w k-dominates p
				dominated = true
				// w stays even if p also k-dominates w: p is out, so w's
				// fate is decided by scan 2 like every other candidate —
				// and so does everything after w, uncompared.
				for ; w < nw; w++ {
					if keep != w {
						winIDs[keep] = winIDs[w]
						copy(winAttrs[keep*d:keep*d+d], winAttrs[w*d:w*d+d])
					}
					keep++
				}
				break
			}
			if d-less >= k && d-leq > 0 { // p k-dominates w: evict w
				continue
			}
			if keep != w {
				winIDs[keep] = winIDs[w]
				copy(winAttrs[keep*d:keep*d+d], winAttrs[w*d:w*d+d])
			}
			keep++
		}
		winIDs = winIDs[:keep]
		winAttrs = winAttrs[:keep*d]
		if !dominated {
			winIDs = append(winIDs, i)
			winAttrs = append(winAttrs, p...)
		}
	}

	// Scan 2: verify candidates against non-candidates, non-candidate-outer
	// so window membership is decided once per point instead of once per
	// (candidate, point) pair. The visited (candidate, point) comparisons
	// are exactly the candidate-outer loop's — a candidate stops being
	// scanned past its first dominator either way — so the surviving set is
	// identical. Membership stays a binary search over a sorted copy of the
	// window: cost bounded by the window, never by the full point array
	// (this runs once per join group). live is a bitset over window
	// positions: dead candidates cost one word load per 64, and the sweep
	// touches only the flat window copy.
	sorted := append([]int(nil), winIDs...)
	sort.Ints(sorted)
	live := make([]uint64, (len(winIDs)+63)/64)
	for w := range live {
		live[w] = ^uint64(0)
	}
	if rem := len(winIDs) % 64; rem != 0 {
		live[len(live)-1] = uint64(1)<<rem - 1
	}
	alive := len(winIDs)
	for _, j := range subset {
		if p := sort.SearchInts(sorted, j); p < len(sorted) && sorted[p] == j {
			continue // candidates are verified against non-candidates only
		}
		pj := points[j]
		for w, bits := range live {
			for bits != 0 {
				t := bits & (-bits)
				bits ^= t
				wi := w*64 + bits64.TrailingZeros64(t)
				if dom.KDominates(pj, winAttrs[wi*d:wi*d+d], k) {
					live[w] ^= t
					alive--
				}
			}
		}
		if alive == 0 {
			break
		}
	}
	var result []int
	for wi, c := range winIDs {
		if live[wi>>6]&(1<<(wi&63)) != 0 {
			result = append(result, c)
		}
	}
	sort.Ints(result)
	return result
}

// SkylineVerify returns the k-dominant skyline by first computing the full
// (d-dominance) skyline S with SFS and then keeping exactly the points not
// k-dominated by any member of S.
//
// Correctness rests on: if q k-dominates p then some full-skyline point s
// k-dominates p. (Take s ∈ S with s fully dominating q, or s = q itself;
// s ≤ q componentwise carries q's k ≤-positions and strict position over
// to s.) Full dominance is transitive, so the chain terminates in S.
func SkylineVerify(points [][]float64, k int) []int {
	sky := skyline.SFS(points)
	var result []int
	for i, p := range points {
		dominated := false
		for _, s := range sky {
			if s != i && dom.KDominates(points[s], p, k) {
				dominated = true
				break
			}
		}
		if !dominated {
			result = append(result, i)
		}
	}
	return result
}

// IsKDominated reports whether points[i] is k-dominated by any point in
// subset (excluding itself).
func IsKDominated(points [][]float64, subset []int, i, k int) bool {
	for _, j := range subset {
		if j != i && dom.KDominates(points[j], points[i], k) {
			return true
		}
	}
	return false
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
