// Package kdominant implements k-dominant skyline computation (Chan et al.,
// SIGMOD'06), the substrate the paper's KSJQ algorithms build on: the naive
// O(n²) method, the Two-Scan Algorithm (TSA), and a skyline-verifier method
// that exploits the fact that any k-dominated point is k-dominated by a
// full-skyline point.
//
// k-dominance is neither transitive nor acyclic (Sec. 2.2 of the KSJQ
// paper), so window-based skyline algorithms cannot be reused directly; the
// two optimized methods here restore correctness with a verification pass.
//
// All functions return indices into the input slice, in ascending order.
package kdominant

import (
	"sort"

	"repro/internal/dom"
	"repro/internal/skyline"
)

// Naive returns the k-dominant skyline by comparing every pair of points.
// It is the correctness oracle for the optimized algorithms.
func Naive(points [][]float64, k int) []int {
	all := identity(len(points))
	return NaiveSubset(points, all, k)
}

// NaiveSubset is Naive restricted to the points whose indices appear in
// subset. Only subset members may act as dominators, matching the paper's
// per-group categorization (Defs. 1-3).
func NaiveSubset(points [][]float64, subset []int, k int) []int {
	var result []int
	for _, i := range subset {
		dominated := false
		for _, j := range subset {
			if i != j && dom.KDominates(points[j], points[i], k) {
				dominated = true
				break
			}
		}
		if !dominated {
			result = append(result, i)
		}
	}
	return result
}

// TwoScan returns the k-dominant skyline with the Two-Scan Algorithm.
//
// Scan 1 maintains a candidate window: an incoming point is dropped if a
// window point k-dominates it and evicts window points it k-dominates.
// Because k-dominance is cyclic, a point evicted (or never admitted) in
// scan 1 may still k-dominate a surviving candidate, so scan 2 re-verifies
// every candidate against all non-candidate points.
func TwoScan(points [][]float64, k int) []int {
	return TwoScanSubset(points, identity(len(points)), k)
}

// TwoScanSubset is TwoScan restricted to a subset of point indices.
func TwoScanSubset(points [][]float64, subset []int, k int) []int {
	// Scan 1: candidate filtering.
	window := make([]int, 0, 16)
	for _, i := range subset {
		p := points[i]
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			wDomP, pDomW := dom.KDomCompare(points[w], p, k)
			if wDomP {
				dominated = true
				// w stays even if p also k-dominates w: p is out, so w's
				// fate is decided by scan 2 like every other candidate.
				keep = append(keep, w)
				continue
			}
			if !pDomW {
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, i)
		}
	}

	// Scan 2: verify candidates against non-candidates, non-candidate-outer
	// so window membership is decided once per point instead of once per
	// (candidate, point) pair. The visited (candidate, point) comparisons
	// are exactly the candidate-outer loop's — a candidate stops being
	// scanned past its first dominator either way — so the surviving set is
	// identical. Membership stays a binary search over a sorted copy: cost
	// bounded by the window, never by the full point array (this runs once
	// per join group).
	sorted := append([]int(nil), window...)
	sort.Ints(sorted)
	dominated := make([]bool, len(window))
	alive := len(window)
	for _, j := range subset {
		if p := sort.SearchInts(sorted, j); p < len(sorted) && sorted[p] == j {
			continue // candidates are verified against non-candidates only
		}
		pj := points[j]
		for wi, c := range window {
			if !dominated[wi] && dom.KDominates(pj, points[c], k) {
				dominated[wi] = true
				alive--
			}
		}
		if alive == 0 {
			break
		}
	}
	var result []int
	for wi, c := range window {
		if !dominated[wi] {
			result = append(result, c)
		}
	}
	sort.Ints(result)
	return result
}

// SkylineVerify returns the k-dominant skyline by first computing the full
// (d-dominance) skyline S with SFS and then keeping exactly the points not
// k-dominated by any member of S.
//
// Correctness rests on: if q k-dominates p then some full-skyline point s
// k-dominates p. (Take s ∈ S with s fully dominating q, or s = q itself;
// s ≤ q componentwise carries q's k ≤-positions and strict position over
// to s.) Full dominance is transitive, so the chain terminates in S.
func SkylineVerify(points [][]float64, k int) []int {
	sky := skyline.SFS(points)
	var result []int
	for i, p := range points {
		dominated := false
		for _, s := range sky {
			if s != i && dom.KDominates(points[s], p, k) {
				dominated = true
				break
			}
		}
		if !dominated {
			result = append(result, i)
		}
	}
	return result
}

// IsKDominated reports whether points[i] is k-dominated by any point in
// subset (excluding itself).
func IsKDominated(points [][]float64, subset []int, i, k int) bool {
	for _, j := range subset {
		if j != i && dom.KDominates(points[j], points[i], k) {
			return true
		}
	}
	return false
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
