package kdominant

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

var algorithms = map[string]func([][]float64, int) []int{
	"Naive":         Naive,
	"TwoScan":       TwoScan,
	"SkylineVerify": SkylineVerify,
	"OneScan":       OneScan,
}

func TestKDominantSimple(t *testing.T) {
	// d=4, k=3. Point {2,2,2,2} 3-dominates {1,3,3,3} (leq on attrs 1,2,3,
	// strict there), and {1,3,3,3} does not 3-dominate back (leq only on
	// attr 0).
	points := [][]float64{
		{2, 2, 2, 2},
		{1, 3, 3, 3},
		{9, 9, 9, 9}, // fully dominated
	}
	want := []int{0}
	for name, fn := range algorithms {
		if got := fn(points, 3); !reflect.DeepEqual(got, want) {
			t.Errorf("%s(k=3) = %v, want %v", name, got, want)
		}
	}
}

func TestKDominantEqualsFullSkylineAtKEqualsD(t *testing.T) {
	points := [][]float64{{1, 4}, {2, 3}, {3, 3}, {4, 1}, {5, 5}}
	want := []int{0, 1, 3}
	for name, fn := range algorithms {
		if got := fn(points, 2); !reflect.DeepEqual(got, want) {
			t.Errorf("%s(k=d) = %v, want %v", name, got, want)
		}
	}
}

func TestKDominantCyclic(t *testing.T) {
	// Classic cyclic instance (d=3, k=2): a 2-dom b, b 2-dom c, c 2-dom a.
	// Every point is 2-dominated, so the 2-dominant skyline is empty.
	a := []float64{0, 2, 1}
	b := []float64{1, 0, 2}
	c := []float64{2, 1, 0}
	if !dom.KDominates(a, b, 2) || !dom.KDominates(b, c, 2) || !dom.KDominates(c, a, 2) {
		t.Fatal("test fixture is not cyclic as intended")
	}
	points := [][]float64{a, b, c}
	for name, fn := range algorithms {
		if got := fn(points, 2); len(got) != 0 {
			t.Errorf("%s on cyclic instance = %v, want empty", name, got)
		}
	}
}

func TestKDominantDuplicates(t *testing.T) {
	points := [][]float64{{1, 1, 1}, {1, 1, 1}}
	for name, fn := range algorithms {
		if got := fn(points, 2); !reflect.DeepEqual(got, []int{0, 1}) {
			t.Errorf("%s on duplicates = %v, want [0 1]", name, got)
		}
	}
}

func TestKDominantEmptyAndSingle(t *testing.T) {
	for name, fn := range algorithms {
		if got := fn(nil, 2); len(got) != 0 {
			t.Errorf("%s(nil) = %v, want empty", name, got)
		}
		if got := fn([][]float64{{5, 5}}, 1); !reflect.DeepEqual(got, []int{0}) {
			t.Errorf("%s(single) = %v, want [0]", name, got)
		}
	}
}

func TestNaiveSubset(t *testing.T) {
	points := [][]float64{
		{1, 1, 1}, // would dominate everything, but excluded from subset
		{2, 2, 2},
		{3, 3, 3},
	}
	got := NaiveSubset(points, []int{1, 2}, 2)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("NaiveSubset = %v, want [1]", got)
	}
}

func TestTwoScanSubset(t *testing.T) {
	points := [][]float64{
		{1, 1, 1},
		{2, 2, 2},
		{3, 3, 3},
	}
	got := TwoScanSubset(points, []int{1, 2}, 2)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("TwoScanSubset = %v, want [1]", got)
	}
}

func TestIsKDominated(t *testing.T) {
	points := [][]float64{{1, 1}, {2, 2}}
	if !IsKDominated(points, []int{0, 1}, 1, 2) {
		t.Error("point 1 should be 2-dominated by point 0")
	}
	if IsKDominated(points, []int{0, 1}, 0, 2) {
		t.Error("point 0 should not be dominated")
	}
	if IsKDominated(points, []int{1}, 1, 2) {
		t.Error("a point is never dominated by itself")
	}
}

func randomPoints(rng *rand.Rand, n, d, domain int) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, d)
		for j := range points[i] {
			points[i][j] = float64(rng.Intn(domain))
		}
	}
	return points
}

func TestAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(5)
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(d)
		points := randomPoints(rng, n, d, 5)
		naive := Naive(points, k)
		if tsa := TwoScan(points, k); !reflect.DeepEqual(tsa, naive) {
			t.Fatalf("trial %d (n=%d d=%d k=%d): TwoScan = %v, Naive = %v\npoints=%v",
				trial, n, d, k, tsa, naive, points)
		}
		if sv := SkylineVerify(points, k); !reflect.DeepEqual(sv, naive) {
			t.Fatalf("trial %d (n=%d d=%d k=%d): SkylineVerify = %v, Naive = %v\npoints=%v",
				trial, n, d, k, sv, naive, points)
		}
		if osa := OneScan(points, k); !reflect.DeepEqual(osa, naive) {
			t.Fatalf("trial %d (n=%d d=%d k=%d): OneScan = %v, Naive = %v\npoints=%v",
				trial, n, d, k, osa, naive, points)
		}
	}
}

func BenchmarkOneScan(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := randomPoints(rng, 2000, 7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OneScan(points, 5)
	}
}

func BenchmarkSkylineVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := randomPoints(rng, 2000, 7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SkylineVerify(points, 5)
	}
}

func TestSubsetVariantsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(4)
		n := 2 + rng.Intn(40)
		k := 1 + rng.Intn(d)
		points := randomPoints(rng, n, d, 4)
		var subset []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				subset = append(subset, i)
			}
		}
		naive := NaiveSubset(points, subset, k)
		tsa := TwoScanSubset(points, subset, k)
		if !reflect.DeepEqual(tsa, naive) {
			t.Fatalf("trial %d: TwoScanSubset = %v, NaiveSubset = %v", trial, tsa, naive)
		}
	}
}

// TestPropertyLemma1 checks Lemma 1 at the set level: the j-dominant
// skyline is a subset of the i-dominant skyline for i >= j (more attributes
// required to dominate => harder to be excluded).
func TestPropertyLemma1(t *testing.T) {
	f := func(raw [][4]uint8) bool {
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r[0] % 8), float64(r[1] % 8), float64(r[2] % 8), float64(r[3] % 8)}
		}
		prev := map[int]bool{}
		for k := 1; k <= 4; k++ {
			cur := map[int]bool{}
			for _, i := range TwoScan(points, k) {
				cur[i] = true
			}
			if k > 1 {
				for i := range prev {
					if !cur[i] {
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMembersUndominated verifies the defining property of the
// result set against the raw definition.
func TestPropertyMembersUndominated(t *testing.T) {
	f := func(raw [][3]uint8, kRaw uint8) bool {
		k := int(kRaw)%3 + 1
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r[0] % 6), float64(r[1] % 6), float64(r[2] % 6)}
		}
		in := map[int]bool{}
		for _, i := range TwoScan(points, k) {
			in[i] = true
		}
		for i := range points {
			dominated := false
			for j := range points {
				if i != j && dom.KDominates(points[j], points[i], k) {
					dominated = true
					break
				}
			}
			if in[i] == dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTwoScan(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := randomPoints(rng, 2000, 7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoScan(points, 5)
	}
}

func BenchmarkNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := randomPoints(rng, 2000, 7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Naive(points, 5)
	}
}
