package kdominant

import (
	"sort"

	"repro/internal/dom"
)

// OneScan computes the k-dominant skyline in a single pass (the One-Scan
// Algorithm of Chan et al., SIGMOD'06).
//
// It exploits two facts. First, every k-dominant skyline point is a full
// skyline point (full domination implies k-domination). Second, a point
// that is k-dominated but not *fully* dominated can still k-dominate
// others, so it cannot simply be discarded: it is retained in a shadow set
// D of pruners. Fully dominated points can be dropped outright because
// their dominator inherits their entire pruning power (full dominance is
// componentwise, so it composes with any later k-domination).
//
// Invariant: after processing a prefix, T holds the prefix's k-dominant
// skyline and T ∪ D contains every full-skyline point of the prefix.
// Incoming points are checked against T (both directions) and D (one
// direction), which is exactly enough: any eventual dominator of a T
// member is represented in T ∪ D by itself or by a full dominator.
func OneScan(points [][]float64, k int) []int {
	var T, D []int
	for i, p := range points {
		dominated := false // p is k-dominated by some earlier point
		fully := false     // p is fully dominated (useless even as pruner)

		keepT := T[:0]
		var demoted []int
		for _, t := range T {
			tDomP, pDomT := dom.KDomCompare(points[t], p, k)
			if tDomP {
				dominated = true
				if dom.Dominates(points[t], p) {
					fully = true
				}
			}
			if pDomT {
				// t is no longer a k-dominant skyline candidate; keep it
				// as a pruner unless p fully dominates it.
				if !dom.Dominates(p, points[t]) {
					demoted = append(demoted, t)
				}
			} else {
				keepT = append(keepT, t)
			}
		}
		T = keepT

		keepD := D[:0]
		for _, q := range D {
			if !fully && dom.KDominates(points[q], p, k) {
				dominated = true
				if dom.Dominates(points[q], p) {
					fully = true
				}
			}
			if dom.Dominates(p, points[q]) {
				continue // p inherits q's pruning power
			}
			keepD = append(keepD, q)
		}
		D = append(keepD, demoted...)

		switch {
		case !dominated:
			T = append(T, i)
		case !fully:
			D = append(D, i)
		}
	}
	if len(T) == 0 {
		return nil
	}
	sort.Ints(T)
	return T
}
