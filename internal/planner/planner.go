// Package planner estimates KSJQ answer cardinalities by sampling and
// chooses an evaluation algorithm from those estimates — the query-
// optimizer layer a system shipping KSJQ would need. The paper leaves the
// algorithm choice to the user (its experiments sweep all three); the
// estimator follows the spirit of the sampling-based cardinality work it
// cites (Hwang et al., SIAM J. Comput. 2013: threshold phenomena in
// k-dominant skylines of random samples).
package planner

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/core"
	"repro/internal/join"
)

// Estimate summarizes sampled statistics of one KSJQ instance.
type Estimate struct {
	// JoinedSize is the exact size of R1 ⋈ R2 (cheap to count).
	JoinedSize int
	// SampleSize is the number of joined pairs probed.
	SampleSize int
	// SkylineFraction is the sampled probability that a joined tuple is a
	// k-dominant skyline member.
	SkylineFraction float64
	// Cardinality is SkylineFraction × JoinedSize, rounded.
	Cardinality int
}

// Options controls estimation and planning.
type Options struct {
	// SampleSize bounds how many joined pairs are probed (default 200).
	SampleSize int
	// Seed makes sampling reproducible (default 1).
	Seed int64
	// NaiveJoinCap is the joined-relation size below which the naive
	// algorithm is considered competitive (default 2048): joining
	// everything is then cheaper than categorizing both relations.
	NaiveJoinCap int
}

func (o Options) withDefaults() Options {
	if o.SampleSize <= 0 {
		o.SampleSize = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NaiveJoinCap <= 0 {
		o.NaiveJoinCap = 2048
	}
	return o
}

// ErrEmptyJoin is returned when the two relations produce no joined pairs.
var ErrEmptyJoin = errors.New("planner: join is empty")

// EstimateCardinality samples joined pairs uniformly and probes their
// skyline membership with core.MembershipContext. The estimator is
// unbiased for SkylineFraction; its variance shrinks as 1/SampleSize. A
// cancelled context aborts the membership probes with ctx.Err().
func EstimateCardinality(ctx context.Context, q core.Query, opts Options) (*Estimate, error) {
	opts = opts.withDefaults()
	if err := q.Validate(core.Grouping); err != nil {
		return nil, err
	}
	ix, prefix := rankSpace(q)
	total := prefix[len(prefix)-1]
	if total == 0 {
		return nil, ErrEmptyJoin
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pairs := samplePairs(q, ix, prefix, opts)
	members, err := core.MembershipContext(ctx, q, pairs)
	if err != nil {
		return nil, err
	}
	hits := 0
	for _, m := range members {
		if m {
			hits++
		}
	}
	frac := float64(hits) / float64(len(pairs))
	return &Estimate{
		JoinedSize:      total,
		SampleSize:      len(pairs),
		SkylineFraction: frac,
		Cardinality:     int(frac*float64(total) + 0.5),
	}, nil
}

// rankSpace lays the join's rank space out over a join index of R2: for
// each R1 tuple i, its partners occupy the contiguous rank range
// [prefix[i], prefix[i+1]), whose width is the partner-range size.
// Building the prefix sums costs O(n₁ log n₂) — no per-tuple partner
// materialization and no O(n₁·n₂) scan — and prefix[n₁] is the exact
// join size, so one pass serves both counting and sampling.
func rankSpace(q core.Query) (*join.Index, []int) {
	ix := join.NewFullIndex(q.R1, q.R2, q.Spec.Cond)
	prefix := make([]int, q.R1.Len()+1)
	for i := 0; i < q.R1.Len(); i++ {
		prefix[i+1] = prefix[i] + len(ix.Partners(q.R1, i))
	}
	return ix, prefix
}

// samplePairs draws min(SampleSize, join size) joined pairs uniformly at
// random, without replacement. Decoding a sampled rank is one binary
// search on the prefix array plus one indexed partner lookup.
func samplePairs(q core.Query, ix *join.Index, prefix []int, opts Options) [][2]int {
	rng := rand.New(rand.NewPCG(uint64(opts.Seed), 0x9e3779b97f4a7c15))
	total := prefix[len(prefix)-1]
	m := opts.SampleSize
	if m > total {
		m = total
	}
	out := make([][2]int, 0, m)
	for _, r := range sampleRanks(rng, total, m) {
		i := sort.SearchInts(prefix, r+1) - 1
		out = append(out, [2]int{i, ix.Partners(q.R1, i)[r-prefix[i]]})
	}
	return out
}

// sampleRanks draws m distinct ranks uniformly from [0, total) with a
// partial Fisher–Yates shuffle: only the m swaps that matter are
// performed, with displaced values tracked in a sparse map, so the cost is
// O(m) time and space instead of the O(total) of materializing a full
// permutation (total is the join size, which can be quadratic).
func sampleRanks(rng *rand.Rand, total, m int) []int {
	ranks := make([]int, m)
	displaced := make(map[int]int, m)
	for t := 0; t < m; t++ {
		j := t + rng.IntN(total-t)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vt, ok := displaced[t]
		if !ok {
			vt = t
		}
		ranks[t] = vj
		displaced[j] = vt
	}
	return ranks
}

// Plan is the planner's decision with its rationale.
type Plan struct {
	Algorithm core.Algorithm
	Estimate  *Estimate
	Reason    string
}

// Choose picks an evaluation algorithm for the query:
//
//   - tiny joins go to the naive algorithm — materializing everything is
//     cheaper than categorizing two relations;
//   - a high sampled skyline fraction favors the dominator-based
//     algorithm: most candidates survive their checks, so bounding each
//     verification by an explicit (small) dominator join beats the
//     grouping algorithm's scans of R1 ⋈ R2;
//   - otherwise the grouping algorithm, the paper's overall winner.
func Choose(ctx context.Context, q core.Query, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	est, err := EstimateCardinality(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	switch {
	case est.JoinedSize <= opts.NaiveJoinCap:
		return &Plan{
			Algorithm: core.Naive,
			Estimate:  est,
			Reason:    fmt.Sprintf("joined size %d <= cap %d: join-then-compute is cheapest", est.JoinedSize, opts.NaiveJoinCap),
		}, nil
	case est.SkylineFraction >= 0.5:
		return &Plan{
			Algorithm: core.DominatorBased,
			Estimate:  est,
			Reason: fmt.Sprintf("sampled skyline fraction %.2f: most candidates survive, explicit dominator sets bound their checks",
				est.SkylineFraction),
		}, nil
	default:
		return &Plan{
			Algorithm: core.Grouping,
			Estimate:  est,
			Reason:    fmt.Sprintf("sampled skyline fraction %.2f: grouping prunes most of the join", est.SkylineFraction),
		}, nil
	}
}

// Run plans and executes in one call, on the unified execution path.
func Run(ctx context.Context, q core.Query, opts Options) (*core.Result, *Plan, error) {
	plan, err := Choose(ctx, q, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Exec(ctx, q, core.ExecOptions{Algorithm: plan.Algorithm})
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}
