// Package planner estimates KSJQ answer cardinalities by sampling and
// chooses an evaluation algorithm from those estimates — the query-
// optimizer layer a system shipping KSJQ would need. The paper leaves the
// algorithm choice to the user (its experiments sweep all three); the
// estimator follows the spirit of the sampling-based cardinality work it
// cites (Hwang et al., SIAM J. Comput. 2013: threshold phenomena in
// k-dominant skylines of random samples).
package planner

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/join"
)

// Estimate summarizes sampled statistics of one KSJQ instance.
type Estimate struct {
	// JoinedSize is the exact size of R1 ⋈ R2 (cheap to count).
	JoinedSize int
	// SampleSize is the number of joined pairs probed.
	SampleSize int
	// SkylineFraction is the sampled probability that a joined tuple is a
	// k-dominant skyline member.
	SkylineFraction float64
	// Cardinality is SkylineFraction × JoinedSize, rounded.
	Cardinality int
}

// Options controls estimation and planning.
type Options struct {
	// SampleSize bounds how many joined pairs are probed (default 200).
	SampleSize int
	// Seed makes sampling reproducible (default 1).
	Seed int64
	// NaiveJoinCap is the joined-relation size below which the naive
	// algorithm is considered competitive (default 2048): joining
	// everything is then cheaper than categorizing both relations.
	NaiveJoinCap int
}

func (o Options) withDefaults() Options {
	if o.SampleSize <= 0 {
		o.SampleSize = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NaiveJoinCap <= 0 {
		o.NaiveJoinCap = 2048
	}
	return o
}

// ErrEmptyJoin is returned when the two relations produce no joined pairs.
var ErrEmptyJoin = errors.New("planner: join is empty")

// EstimateCardinality samples joined pairs uniformly and probes their
// skyline membership with core.Membership. The estimator is unbiased for
// SkylineFraction; its variance shrinks as 1/SampleSize.
func EstimateCardinality(q core.Query, opts Options) (*Estimate, error) {
	opts = opts.withDefaults()
	if err := q.Validate(core.Grouping); err != nil {
		return nil, err
	}
	total, err := join.CountPairs(q.R1, q.R2, q.Spec)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, ErrEmptyJoin
	}

	pairs := samplePairs(q, total, opts)
	members, err := core.Membership(q, pairs)
	if err != nil {
		return nil, err
	}
	hits := 0
	for _, m := range members {
		if m {
			hits++
		}
	}
	frac := float64(hits) / float64(len(pairs))
	return &Estimate{
		JoinedSize:      total,
		SampleSize:      len(pairs),
		SkylineFraction: frac,
		Cardinality:     int(frac*float64(total) + 0.5),
	}, nil
}

// samplePairs draws min(SampleSize, total) joined pairs uniformly at
// random (without replacement when the join is small enough to enumerate
// ranks).
func samplePairs(q core.Query, total int, opts Options) [][2]int {
	rng := rand.New(rand.NewSource(opts.Seed))
	m := opts.SampleSize
	if m > total {
		m = total
	}
	// Rank space: for each R1 tuple i, its partners occupy a contiguous
	// rank range; rank -> (i, j) decodes by binary search on the prefix
	// sums.
	partners := make([][]int, q.R1.Len())
	prefix := make([]int, q.R1.Len()+1)
	for i := range q.R1.Tuples {
		partners[i] = partnerIndices(q, i)
		prefix[i+1] = prefix[i] + len(partners[i])
	}
	ranks := rng.Perm(total)[:m]
	out := make([][2]int, 0, m)
	for _, r := range ranks {
		i := sort.SearchInts(prefix, r+1) - 1
		out = append(out, [2]int{i, partners[i][r-prefix[i]]})
	}
	return out
}

func partnerIndices(q core.Query, i int) []int {
	var out []int
	for j := range q.R2.Tuples {
		if q.Spec.Cond == join.Cross || q.Spec.Cond.Matches(&q.R1.Tuples[i], &q.R2.Tuples[j]) {
			out = append(out, j)
		}
	}
	return out
}

// Plan is the planner's decision with its rationale.
type Plan struct {
	Algorithm core.Algorithm
	Estimate  *Estimate
	Reason    string
}

// Choose picks an evaluation algorithm for the query:
//
//   - tiny joins go to the naive algorithm — materializing everything is
//     cheaper than categorizing two relations;
//   - a high sampled skyline fraction favors the dominator-based
//     algorithm: most candidates survive their checks, so bounding each
//     verification by an explicit (small) dominator join beats the
//     grouping algorithm's scans of R1 ⋈ R2;
//   - otherwise the grouping algorithm, the paper's overall winner.
func Choose(q core.Query, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	est, err := EstimateCardinality(q, opts)
	if err != nil {
		return nil, err
	}
	switch {
	case est.JoinedSize <= opts.NaiveJoinCap:
		return &Plan{
			Algorithm: core.Naive,
			Estimate:  est,
			Reason:    fmt.Sprintf("joined size %d <= cap %d: join-then-compute is cheapest", est.JoinedSize, opts.NaiveJoinCap),
		}, nil
	case est.SkylineFraction >= 0.5:
		return &Plan{
			Algorithm: core.DominatorBased,
			Estimate:  est,
			Reason: fmt.Sprintf("sampled skyline fraction %.2f: most candidates survive, explicit dominator sets bound their checks",
				est.SkylineFraction),
		}, nil
	default:
		return &Plan{
			Algorithm: core.Grouping,
			Estimate:  est,
			Reason:    fmt.Sprintf("sampled skyline fraction %.2f: grouping prunes most of the join", est.SkylineFraction),
		}, nil
	}
}

// Run plans and executes in one call.
func Run(q core.Query, opts Options) (*core.Result, *Plan, error) {
	plan, err := Choose(q, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Run(q, plan.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}
