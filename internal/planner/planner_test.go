package planner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	randv2 "math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
)

func synthetic(n, local, groups int, dist datagen.Distribution, seed int64) *dataset.Relation {
	return datagen.MustGenerate(datagen.Config{
		Name: fmt.Sprintf("r%d", seed), N: n, Local: local, Groups: groups, Dist: dist, Seed: seed,
	})
}

func TestMembershipMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 20; trial++ {
		r1 := synthetic(10+rng.Intn(20), 3, 2, datagen.Independent, int64(trial*2+1))
		r2 := synthetic(10+rng.Intn(20), 3, 2, datagen.Independent, int64(trial*2+2))
		q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
		res, err := core.Run(q, core.Grouping)
		if err != nil {
			t.Fatal(err)
		}
		inSky := map[[2]int]bool{}
		for _, p := range res.Skyline {
			inSky[[2]int{p.Left, p.Right}] = true
		}
		var pairs [][2]int
		g2 := r2.GroupIndex()
		for i := 0; i < r1.Len(); i++ {
			for _, j := range g2[r1.Key(i)] {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		members, err := core.Membership(q, pairs)
		if err != nil {
			t.Fatal(err)
		}
		for n, pr := range pairs {
			if members[n] != inSky[pr] {
				t.Fatalf("trial %d: membership of %v = %v, Run says %v", trial, pr, members[n], inSky[pr])
			}
		}
	}
}

func TestMembershipErrors(t *testing.T) {
	r1 := synthetic(10, 3, 2, datagen.Independent, 1)
	r2 := synthetic(10, 3, 2, datagen.Independent, 2)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	if _, err := core.Membership(q, [][2]int{{-1, 0}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
	// Find a non-compatible pair (different keys).
	for j := 0; j < r2.Len(); j++ {
		if r2.Key(j) != r1.Key(0) {
			if _, err := core.Membership(q, [][2]int{{0, j}}); err == nil {
				t.Error("join-incompatible pair accepted")
			}
			break
		}
	}
}

func TestEstimateCardinalityExactWhenSampleCoversJoin(t *testing.T) {
	// SampleSize >= joined size: the estimate must be exact.
	r1 := synthetic(30, 3, 3, datagen.Independent, 11)
	r2 := synthetic(30, 3, 3, datagen.Independent, 12)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	est, err := EstimateCardinality(context.Background(), q, Options{SampleSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(q, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality != len(res.Skyline) {
		t.Errorf("full-sample estimate %d, actual %d", est.Cardinality, len(res.Skyline))
	}
	if est.SampleSize != est.JoinedSize {
		t.Errorf("sample size %d, want joined size %d", est.SampleSize, est.JoinedSize)
	}
}

func TestEstimateCardinalityApproximates(t *testing.T) {
	r1 := synthetic(200, 4, 5, datagen.AntiCorrelated, 21)
	r2 := synthetic(200, 4, 5, datagen.AntiCorrelated, 22)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 6}
	res, err := core.Run(q, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(len(res.Skyline))
	est, err := EstimateCardinality(context.Background(), q, Options{SampleSize: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With 400 samples the binomial standard error is below 0.025; allow a
	// generous 4-sigma band plus slack for small counts.
	frac := actual / float64(est.JoinedSize)
	if math.Abs(est.SkylineFraction-frac) > 0.1+4*math.Sqrt(frac*(1-frac)/400) {
		t.Errorf("estimated fraction %.3f, actual %.3f (joined %d, actual skyline %.0f)",
			est.SkylineFraction, frac, est.JoinedSize, actual)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	r1 := synthetic(100, 3, 4, datagen.Independent, 31)
	r2 := synthetic(100, 3, 4, datagen.Independent, 32)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	a, err := EstimateCardinality(context.Background(), q, Options{SampleSize: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateCardinality(context.Background(), q, Options{SampleSize: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cardinality != b.Cardinality || a.SkylineFraction != b.SkylineFraction {
		t.Error("same seed produced different estimates")
	}
}

func TestChooseTinyJoinPicksNaive(t *testing.T) {
	r1 := synthetic(20, 3, 4, datagen.Independent, 41)
	r2 := synthetic(20, 3, 4, datagen.Independent, 42)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	plan, err := Choose(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != core.Naive {
		t.Errorf("tiny join planned %v, want Naive (%s)", plan.Algorithm, plan.Reason)
	}
}

func TestChooseLargeJoinAvoidsNaive(t *testing.T) {
	r1 := synthetic(300, 5, 10, datagen.Independent, 51)
	r2 := synthetic(300, 5, 10, datagen.Independent, 52)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 7}
	plan, err := Choose(context.Background(), q, Options{SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm == core.Naive {
		t.Errorf("large join planned Naive (%s)", plan.Reason)
	}
	if plan.Estimate == nil || plan.Reason == "" {
		t.Error("plan missing estimate or rationale")
	}
}

func TestPlannerRun(t *testing.T) {
	r1 := synthetic(80, 3, 4, datagen.Independent, 61)
	r2 := synthetic(80, 3, 4, datagen.Independent, 62)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 4}
	res, plan, err := Run(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(q, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != len(want.Skyline) {
		t.Errorf("planned run returned %d skylines, want %d (alg %v)", len(res.Skyline), len(want.Skyline), plan.Algorithm)
	}
}

func TestPlannerErrors(t *testing.T) {
	if _, err := EstimateCardinality(context.Background(), core.Query{}, Options{}); err == nil {
		t.Error("invalid query accepted")
	}
	// Empty join: keys never match.
	r1 := dataset.MustNew("r1", 2, 0, []dataset.Tuple{{Key: "a", Attrs: []float64{1, 2}}})
	r2 := dataset.MustNew("r2", 2, 0, []dataset.Tuple{{Key: "b", Attrs: []float64{1, 2}}})
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 3}
	if _, err := EstimateCardinality(context.Background(), q, Options{}); !errors.Is(err, ErrEmptyJoin) {
		t.Errorf("empty join: err = %v, want ErrEmptyJoin", err)
	}
}

func TestSampleRanksDistinctAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		total := 1 + rng.Intn(5000)
		m := 1 + rng.Intn(total)
		got := sampleRanksForTest(int64(trial+1), total, m)
		seen := map[int]bool{}
		for _, r := range got {
			if r < 0 || r >= total {
				t.Fatalf("trial %d: rank %d out of [0,%d)", trial, r, total)
			}
			if seen[r] {
				t.Fatalf("trial %d: duplicate rank %d", trial, r)
			}
			seen[r] = true
		}
		if len(got) != m {
			t.Fatalf("trial %d: got %d ranks, want %d", trial, len(got), m)
		}
	}
}

func TestSampleRanksFullCoverage(t *testing.T) {
	// m == total must yield a permutation of 0..total-1.
	const total = 257
	got := sampleRanksForTest(9, total, total)
	seen := make([]bool, total)
	for _, r := range got {
		if seen[r] {
			t.Fatalf("duplicate rank %d in full sample", r)
		}
		seen[r] = true
	}
}

func TestSamplePairsJoinCompatibleAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	conds := []join.Condition{join.Equality, join.Cross, join.BandLess, join.BandGreaterEq}
	for trial := 0; trial < 30; trial++ {
		r1 := synthetic(20+rng.Intn(60), 3, 3, datagen.Independent, int64(100+trial*2))
		r2 := synthetic(20+rng.Intn(60), 3, 3, datagen.Independent, int64(101+trial*2))
		cond := conds[rng.Intn(len(conds))]
		q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: cond}, K: 4}
		total, err := join.CountPairs(r1, r2, q.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if total == 0 {
			continue
		}
		ix, prefix := rankSpace(q)
		if got := prefix[len(prefix)-1]; got != total {
			t.Fatalf("trial %d: rank space holds %d pairs, CountPairs says %d", trial, got, total)
		}
		m := 1 + rng.Intn(total)
		pairs := samplePairs(q, ix, prefix, Options{SampleSize: m, Seed: int64(trial + 1)})
		if len(pairs) != m {
			t.Fatalf("trial %d: sampled %d pairs, want %d", trial, len(pairs), m)
		}
		seen := map[[2]int]bool{}
		for _, pr := range pairs {
			if seen[pr] {
				t.Fatalf("trial %d: duplicate pair %v", trial, pr)
			}
			seen[pr] = true
			if cond != join.Cross && !cond.MatchesAt(r1, pr[0], r2, pr[1]) {
				t.Fatalf("trial %d: sampled pair %v not join-compatible under %v", trial, pr, cond)
			}
		}
	}
}

func TestEstimateCancelled(t *testing.T) {
	r1 := synthetic(200, 4, 5, datagen.AntiCorrelated, 81)
	r2 := synthetic(200, 4, 5, datagen.AntiCorrelated, 82)
	q := core.Query{R1: r1, R2: r2, Spec: join.Spec{Cond: join.Equality}, K: 6}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateCardinality(ctx, q, Options{SampleSize: 400}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled estimate returned %v, want context.Canceled", err)
	}
	if _, _, err := Run(ctx, q, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled planner run returned %v, want context.Canceled", err)
	}
}

// sampleRanksForTest drives sampleRanks from a v2 PCG source. The seed
// words are arbitrary (and unrelated to samplePairs' seeding): the tests
// assert distribution-level properties, not specific streams.
func sampleRanksForTest(seed int64, total, m int) []int {
	return sampleRanks(randv2.New(randv2.NewPCG(uint64(seed), 1)), total, m)
}
