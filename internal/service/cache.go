package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/join"
)

// cacheKey is the normalized identity of an answer: the two registered
// relations at specific versions, the canonical join and aggregator
// tokens, and k. Algorithm and parallel degree are deliberately absent —
// every strategy computes the same skyline, so a result computed by one
// serves requests asking for another.
type cacheKey struct {
	r1, r2 string
	v1, v2 uint64
	cond   join.Condition
	agg    string
	k      int
}

// entry is one cached answer. While m is nil the entry is a plain
// snapshot: it dies when either relation's version moves. Once promoted
// (m non-nil) the entry is live: the insert path advances its versions in
// place and refreshes skyline from the maintainer after each absorb —
// skyline is therefore always the served answer, and lookups never pay
// the maintainer's copy-and-sort.
type entry struct {
	key     cacheKey
	q       core.Query // normalized query; relation pointers are stable
	skyline []join.Pair
	algo    string // strategy that originally computed the answer
	m       *core.Maintainer
	elem    *list.Element
}

// answerCache is a bounded LRU of query answers. Its mutex covers only
// map/list bookkeeping — never query execution — so hits stay O(1) and
// uncontended. Maintainer mutation (absorb on insert) happens under the
// service's exclusive lock, not here.
type answerCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[cacheKey]*entry
	lru       *list.List // front = most recently used
	evictions uint64
}

func newAnswerCache(capacity int) *answerCache {
	return &answerCache{
		cap:     capacity,
		entries: make(map[cacheKey]*entry, capacity),
		lru:     list.New(),
	}
}

// lookup returns the cached skyline for key, the algorithm that computed
// it, and whether the entry is live-maintained. The returned slice must be
// treated as read-only by callers.
func (c *answerCache) lookup(key cacheKey) (sky []join.Pair, algo string, maintained, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, "", false, false
	}
	c.lru.MoveToFront(e.elem)
	return e.skyline, e.algo, e.m != nil, true
}

// store inserts an answer snapshot, evicting the least-recently-used
// entry when over capacity. Storing an already-present key refreshes it.
func (c *answerCache) store(key cacheKey, q core.Query, sky []join.Pair, algo string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.skyline = sky
		e.algo = algo
		if e.m != nil {
			e.m.Close()
			e.m = nil
		}
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: key, q: q, skyline: sky, algo: algo}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.cap {
		c.evictOldest()
	}
}

func (c *answerCache) evictOldest() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*entry)
	c.removeLocked(e)
	c.evictions++
}

func (c *answerCache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	if e.m != nil {
		e.m.Close()
		e.m = nil
	}
}

// takeForRelation removes and returns every entry whose key references the
// relation name on either side, without closing maintainers — the insert
// path decides which of them to promote, absorb, and restore, and which to
// drop for good.
func (c *answerCache) takeForRelation(name string) []*entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*entry
	for key, e := range c.entries {
		if key.r1 == name || key.r2 == name {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
			out = append(out, e)
		}
	}
	return out
}

// restore puts back an entry removed by takeForRelation under its
// re-stamped key. The ingest path absorbs maintainers outside the service
// lock, so a concurrent query may have computed and stored a snapshot at
// the same post-batch key in the meantime; the maintained entry supersedes
// it (same answer, but live across future inserts).
func (c *answerCache) restore(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[e.key]; ok {
		c.removeLocked(prev)
	}
	e.elem = c.lru.PushFront(e)
	c.entries[e.key] = e
	for len(c.entries) > c.cap {
		c.evictOldest()
	}
}

// drop discards an entry removed by takeForRelation, closing its
// maintainer.
func (c *answerCache) drop(e *entry) {
	if e.m != nil {
		e.m.Close()
		e.m = nil
	}
}

// stats returns entry counts for the stats endpoint.
func (c *answerCache) stats() (entries, maintained int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.m != nil {
			maintained++
		}
	}
	return len(c.entries), maintained, c.evictions
}

// closeAll drops every entry, closing maintainers. Used by Service.Close.
func (c *answerCache) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.m != nil {
			e.m.Close()
			e.m = nil
		}
	}
	c.entries = make(map[cacheKey]*entry)
	c.lru.Init()
}
