package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// deleteIDs draws b distinct in-range row ids, sorted ascending.
func deleteIDs(rng *rand.Rand, n, b int) []int {
	ids := append([]int(nil), rng.Perm(n)[:b]...)
	sort.Ints(ids)
	return ids
}

// TestDeleteMatchesOracle interleaves maintained deletes and inserts and
// checks the served skyline against a from-scratch recompute over
// mirrored clones after every step. Batch sizes straddle the hybrid
// threshold so both the incremental retract arm and the recompute arm are
// exercised through the service.
func TestDeleteMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for trial := 0; trial < 4; trial++ {
		s := newTestService(t, Config{SweepInterval: -1})
		agg := rng.Intn(2)
		local := 2 + rng.Intn(2)
		groups := 2 + rng.Intn(3)
		r1 := testRelation("r1", 30+rng.Intn(20), local, agg, groups, int64(trial)*2+1)
		r2 := testRelation("r2", 30+rng.Intn(20), local, agg, groups, int64(trial)*2+2)
		oracle := core.Query{
			R1: r1.Clone(), R2: r2.Clone(),
			Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
		}
		oracle.K = oracle.KMin() + rng.Intn(oracle.Width()-oracle.KMin()+1)
		if _, err := s.Register("r1", r1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Register("r2", r2); err != nil {
			t.Fatal(err)
		}
		req := QueryRequest{R1: "r1", R2: "r2", K: oracle.K, Algorithm: "grouping"}
		if _, err := s.Query(context.Background(), req); err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 12; step++ {
			name, rel := "r1", oracle.R1
			if rng.Intn(2) == 1 {
				name, rel = "r2", oracle.R2
			}
			if step%3 == 2 {
				// Every third step inserts, so deletes hit fresh rows too.
				tup := randTuple(rng)
				tup.Attrs = tup.Attrs[:local+agg]
				if _, err := s.Insert(name, tup); err != nil {
					t.Fatal(err)
				}
				if _, err := rel.Append(tup); err != nil {
					t.Fatal(err)
				}
			} else {
				b := 1 + rng.Intn(2)
				if step%4 == 1 {
					b = 1 + rel.Len()/4 // deep into recompute territory
				}
				ids := deleteIDs(rng, rel.Len(), b)
				res, err := s.DeleteBatch(name, ids)
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != len(ids) {
					t.Fatalf("trial %d step %d: deleted %d, want %d", trial, step, res.Count, len(ids))
				}
				if res.Maintained == 0 {
					t.Fatalf("trial %d step %d: delete maintained no entries", trial, step)
				}
				if err := rel.DeleteBatch(ids); err != nil {
					t.Fatal(err)
				}
			}

			got, err := s.Query(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Source != SourceMaintained {
				t.Fatalf("trial %d step %d: source = %q, want maintained", trial, step, got.Source)
			}
			want, err := core.Run(oracle, core.Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertPairsEqual(t, fmt.Sprintf("trial %d step %d", trial, step), got.Skyline, want.Skyline)
		}
		st := s.Stats()
		if st.Computed != 1 {
			t.Errorf("trial %d: %d full computations across 12 mutations, want 1", trial, st.Computed)
		}
		s.Close()
	}
}

// TestDeleteBadRequests pins the validate-before-mutate contract: every
// malformed batch is rejected whole, with the relation's contents and
// version untouched.
func TestDeleteBadRequests(t *testing.T) {
	s := newTestService(t, Config{SweepInterval: -1})
	registerPair(t, s, 10)

	if _, err := s.DeleteBatch("nope", []int{0}); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: err = %v", err)
	}
	cases := [][]int{
		nil,                            // empty batch
		{10},                           // out of range
		{-1},                           // negative
		{3, 3},                         // duplicate
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // deletes every row
	}
	for _, ids := range cases {
		if _, err := s.DeleteBatch("r1", ids); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ids %v: err = %v, want bad request", ids, err)
		}
	}
	info, err := s.RelationInfo("r1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Tuples != 10 {
		t.Errorf("rejected deletes moved r1 to version %d with %d tuples", info.Version, info.Tuples)
	}

	// Unsorted input is not malformed — ids are order-insensitive.
	if _, err := s.DeleteBatch("r1", []int{7, 2, 5}); err != nil {
		t.Errorf("unsorted ids rejected: %v", err)
	}
}

// TestDeleteWatchDeltas drives deletes (and a few inserts) through a
// watched query: every event's Removed deltas must reference pairs the
// subscriber was shown, and replaying the stream must reproduce a
// from-scratch recompute after each mutation.
func TestDeleteWatchDeltas(t *testing.T) {
	s := newTestService(t, Config{SweepInterval: -1})
	oracle := registerPair(t, s, 50)
	// K near the width keeps the skyline populated (~170 pairs) so deletes
	// generate real eviction/resurrection traffic.
	req := QueryRequest{R1: "r1", R2: "r2", K: 7}

	w, err := s.Watch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	replica := make(map[[2]int][]float64)
	applyDelta(t, replica, nextEvent(t, w))

	rng := rand.New(rand.NewSource(802))
	removedSeen := 0
	for i := 0; i < 12; i++ {
		name, rel := "r1", oracle.R1
		if i%2 == 1 {
			name, rel = "r2", oracle.R2
		}
		if i%4 == 3 {
			tup := randTuple(rng)
			if _, err := s.Insert(name, tup); err != nil {
				t.Fatal(err)
			}
			if _, err := rel.Append(tup); err != nil {
				t.Fatal(err)
			}
		} else {
			// Aim at the answer: alongside random rows, delete one current
			// member's row so genuine eviction (and possible resurrection)
			// traffic flows through the deltas.
			pick := make(map[int]struct{})
			for _, id := range deleteIDs(rng, rel.Len(), 1+rng.Intn(3)) {
				pick[id] = struct{}{}
			}
			for key := range replica {
				id := key[0]
				if name == "r2" {
					id = key[1]
				}
				if id < rel.Len() {
					pick[id] = struct{}{}
				}
				break
			}
			ids := make([]int, 0, len(pick))
			for id := range pick {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			if _, err := s.DeleteBatch(name, ids); err != nil {
				t.Fatal(err)
			}
			if err := rel.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
		}
		ev := nextEvent(t, w)
		removedSeen += len(ev.Removed)
		applyDelta(t, replica, ev) // fails on a Removed the replica never held

		fresh, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 7, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(fresh.Skyline) != len(replica) {
			t.Fatalf("step %d: replica has %d pairs, oracle %d", i, len(replica), len(fresh.Skyline))
		}
		for _, p := range fresh.Skyline {
			attrs, ok := replica[[2]int{p.Left, p.Right}]
			if !ok {
				t.Fatalf("step %d: oracle pair (%d,%d) missing from replica", i, p.Left, p.Right)
			}
			for a := range attrs {
				if attrs[a] != p.Attrs[a] {
					t.Fatalf("step %d: pair (%d,%d) attr %d = %v, oracle %v", i, p.Left, p.Right, a, attrs[a], p.Attrs[a])
				}
			}
		}
	}
	if removedSeen == 0 {
		t.Error("twelve mutations over a 50-row pair produced no Removed deltas; the test lost its teeth")
	}
}

// TestWindowExpiry drives sliding-window expiry with a fake clock and
// manual sweeps: expired prefixes leave through the delete path (version
// bump, maintained entries, Expired counter) and the newest row survives
// even a fully expired relation.
func TestWindowExpiry(t *testing.T) {
	s := newTestService(t, Config{SweepInterval: -1})
	var (
		clockMu sync.Mutex
		current = time.Unix(1000, 0)
	)
	s.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return current
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		current = current.Add(d)
		clockMu.Unlock()
	}

	r1 := testRelation("r1", 20, 3, 1, 5, 42)
	r2 := testRelation("r2", 20, 3, 1, 5, 43)
	oracle := core.Query{
		R1: r1.Clone(), R2: r2.Clone(),
		Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 5,
	}
	if _, err := s.RegisterWindow("r1", r1, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("r2", r2); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{R1: "r1", R2: "r2", K: 5}
	if _, err := s.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// Nothing is due yet: a sweep inside the window is a no-op.
	advance(30 * time.Second)
	if n := s.Sweep(); n != 0 {
		t.Fatalf("sweep inside the window removed %d rows", n)
	}

	// Rows arriving now outlive the registration-time rows by 30s.
	rng := rand.New(rand.NewSource(803))
	for i := 0; i < 5; i++ {
		tup := randTuple(rng)
		if _, err := s.Insert("r1", tup); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.R1.Append(tup); err != nil {
			t.Fatal(err)
		}
	}

	// Cross the registration rows' deadline: exactly the 20-row prefix
	// expires, and the maintained answer tracks the oracle mirror.
	advance(31 * time.Second)
	if n := s.Sweep(); n != 20 {
		t.Fatalf("sweep removed %d rows, want the 20 registration-time rows", n)
	}
	prefix := make([]int, 20)
	for i := range prefix {
		prefix[i] = i
	}
	if err := oracle.R1.DeleteBatch(prefix); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != SourceMaintained {
		t.Fatalf("post-sweep source = %q, want maintained", got.Source)
	}
	want, err := core.Run(oracle, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, "post-sweep", got.Skyline, want.Skyline)
	if st := s.Stats(); st.Expired != 20 {
		t.Errorf("Expired counter = %d, want 20", st.Expired)
	}

	// Let everything expire: the newest row is retained so the relation
	// never empties, and a repeat sweep is a no-op.
	advance(time.Hour)
	if n := s.Sweep(); n != 4 {
		t.Fatalf("final sweep removed %d rows, want 4 (newest retained)", n)
	}
	if info, _ := s.RelationInfo("r1"); info.Tuples != 1 {
		t.Fatalf("fully expired relation holds %d rows, want 1", info.Tuples)
	}
	if n := s.Sweep(); n != 0 {
		t.Fatalf("repeat sweep removed %d rows", n)
	}

	// The wire-facing metadata carries the window.
	if info, _ := s.RelationInfo("r1"); info.WindowMS != time.Minute.Milliseconds() {
		t.Errorf("r1 WindowMS = %d, want %d", info.WindowMS, time.Minute.Milliseconds())
	}
	if info, _ := s.RelationInfo("r2"); info.WindowMS != 0 {
		t.Errorf("unwindowed r2 WindowMS = %d", info.WindowMS)
	}

	if _, err := s.RegisterWindow("r3", testRelation("r3", 5, 3, 1, 2, 44), -time.Second); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative window: err = %v", err)
	}
}

// TestBackgroundSweeper lets the real ticker age a windowed relation out:
// the relation must shrink to its retained newest row without any
// explicit delete, and Close must join the sweeper cleanly.
func TestBackgroundSweeper(t *testing.T) {
	s := newTestService(t, Config{SweepInterval: 5 * time.Millisecond})
	if _, err := s.RegisterWindow("r1", testRelation("r1", 12, 3, 1, 4, 42), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := s.RelationInfo("r1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Tuples == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper left %d rows after 5s", info.Tuples)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMutationStormRace is the concurrency pin: queries, a watch, insert
// batches, and delete batches all run at once. The watch replica rejects
// any Removed delta for a pair the subscriber was never shown, event
// sequence numbers must stay contiguous (no event lost or reordered), and
// the replayed stream must land exactly on a final recompute. Run under
// -race this also pins the delete path's locking discipline.
func TestMutationStormRace(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrent: 4, MaxQueue: 256, SweepInterval: -1})
	registerPair(t, s, 40)

	w, err := s.Watch(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const inserts, deletes = 15, 15
	var wg sync.WaitGroup
	for worker := 0; worker < 3; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := 5 + (i+worker)%2
				if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: k}); err != nil {
					t.Errorf("query worker %d step %d: %v", worker, i, err)
					return
				}
			}
		}(worker)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(804))
		for i := 0; i < inserts; i++ {
			name := "r1"
			if i%2 == 1 {
				name = "r2"
			}
			batch := make([]dataset.Tuple, 1+rng.Intn(3))
			for j := range batch {
				batch[j] = randTuple(rng)
			}
			if _, err := s.InsertBatch(name, batch); err != nil {
				t.Errorf("insert batch %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(805))
		// This goroutine is the only deleter, so a floor tracked from its
		// own deletes under-approximates both relations' true lengths:
		// concurrent inserts only grow them, keeping every id valid.
		floor := map[string]int{"r1": 40, "r2": 40}
		for i := 0; i < deletes; i++ {
			name := "r1"
			if i%2 == 1 {
				name = "r2"
			}
			b := 1 + rng.Intn(3)
			if floor[name]-b < 5 {
				b = 1
			}
			ids := deleteIDs(rng, floor[name], b)
			if _, err := s.DeleteBatch(name, ids); err != nil {
				t.Errorf("delete batch %d: %v", i, err)
				return
			}
			floor[name] -= b
		}
	}()

	replica := make(map[[2]int][]float64)
	for seq := 0; seq <= inserts+deletes; seq++ {
		ev := nextEvent(t, w)
		if ev.Seq != uint64(seq) {
			t.Fatalf("event seq %d, want %d", ev.Seq, seq)
		}
		applyDelta(t, replica, ev) // fails on a Removed never shown
	}
	wg.Wait()

	fresh, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 7, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Skyline) != len(replica) {
		t.Fatalf("post-storm replica has %d pairs, oracle %d", len(replica), len(fresh.Skyline))
	}
	for _, p := range fresh.Skyline {
		if _, ok := replica[[2]int{p.Left, p.Right}]; !ok {
			t.Fatalf("post-storm oracle pair (%d,%d) missing from replica", p.Left, p.Right)
		}
	}
}
