// Durability integration: the WAL hooks the mutation paths call, the
// recovering constructor Open, and the background checkpointer. See
// DESIGN.md §14 and internal/store for the on-disk format.
//
// The contract with the store is narrow. Every acknowledged mutation
// appends one WAL record while the commit's exclusive section still holds
// s.mu — so log order is commit order — and fsyncs before the caller is
// acknowledged (the fsync itself runs after the lock drops, overlapping
// the absorption phase; concurrent batches coalesce into one group
// commit). Recovery replays the log through the same mutation paths that
// produced it, so registry versions advance exactly as they did live and
// the recovered service is indistinguishable from one that never stopped.
package service

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/store"
)

// durableOK fails mutations once a WAL write has failed: the in-memory
// state may be ahead of the log, and accepting more mutations would widen
// the window of acknowledged-but-unlogged data. Queries never call it.
func (s *Service) durableOK() error {
	if s.store != nil && s.storeBroken.Load() {
		return ErrDurability
	}
	return nil
}

// logAppend appends one WAL record in commit order; the caller holds the
// exclusive lock that ordered the commit. In-memory services and replay
// skip it. A failed append latches storeBroken.
func (s *Service) logAppend(rec store.Record) (uint64, error) {
	if s.store == nil || s.replaying {
		return 0, nil
	}
	seq, err := s.store.Append(rec)
	if err != nil {
		s.storeBroken.Store(true)
		return 0, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return seq, nil
}

// logSync group-commits the WAL through seq — the durability point an
// acknowledgment waits on. After a successful sync it kicks the
// checkpointer if the WAL has outgrown the size trigger.
func (s *Service) logSync(seq uint64) error {
	if s.store == nil || s.replaying || seq == 0 {
		return nil
	}
	if err := s.store.Sync(seq); err != nil {
		s.storeBroken.Store(true)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	if lim := s.cfg.CheckpointWALBytes; lim > 0 && s.ckptKick != nil && s.store.WALBytes() > lim {
		select {
		case s.ckptKick <- struct{}{}:
		default: // a kick is already pending
		}
	}
	return nil
}

// logSynced appends and fsyncs in one step — for Register/Unregister,
// which log before mutating (durable before visible) and so cannot
// overlap the fsync with any later phase.
func (s *Service) logSynced(rec store.Record) error {
	seq, err := s.logAppend(rec)
	if err != nil {
		return err
	}
	return s.logSync(seq)
}

// Open builds a durable Service backed by the data directory: segments
// and the WAL tail recovered by store.Open are replayed through the
// normal mutation paths, resident indexes recorded at the last checkpoint
// are rebuilt eagerly (warm restart), and every subsequent acknowledged
// mutation is logged. A missing or empty directory starts fresh; a torn
// WAL tail is truncated to the last complete record.
func Open(cfg Config, dir string) (*Service, error) {
	return open(cfg, dir, nil)
}

// open is Open with an injectable clock (nil = time.Now): recovery stamps
// windowed relations' arrival times, and in-package tests drive those
// stamps deterministically.
func open(cfg Config, dir string, clock func() time.Time) (*Service, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	s := newService(cfg)
	if clock != nil {
		s.now = clock
	}
	s.store = st
	// Replay is single-threaded — no other goroutine can observe the
	// service until Open returns — so the plain flag suffices, and the
	// logging hooks skip rather than re-log recovery's own input.
	s.replaying = true
	for _, sd := range st.Recovered() {
		if err := s.registerRecovered(sd); err != nil {
			st.Close()
			return nil, fmt.Errorf("service: recovering segment %q: %w", sd.Name, err)
		}
	}
	for i, rec := range st.WALTail() {
		if err := s.replayRecord(rec); err != nil {
			st.Close()
			return nil, fmt.Errorf("service: replaying WAL record %d (%s %q): %w",
				i, recordTypeName(rec.Type), rec.Relation, err)
		}
	}
	s.replaying = false
	s.rebuildResidents(st.ResidentCombos())
	s.startBackground()
	return s, nil
}

// registerRecovered installs one checkpoint segment at its recorded
// version, bypassing RegisterWindow (which would restart the version at
// 1). Window arrival stamps are not persisted: recovered rows arrive "at
// recovery", so a windowed relation's rows age out one window after the
// restart rather than instantly — the conservative reading of a clock
// that did not run while the server was down.
func (s *Service) registerRecovered(sd store.SegmentData) error {
	if _, ok := s.rels[sd.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateRelation, sd.Name)
	}
	rr := &regRelation{rel: sd.Rel, version: sd.Version, window: sd.Window}
	if sd.Window > 0 {
		now := s.now().UnixNano()
		rr.arrivals = make([]int64, sd.Rel.Len())
		for i := range rr.arrivals {
			rr.arrivals[i] = now
		}
	}
	s.rels[sd.Name] = rr
	return nil
}

// replayRecord applies one WAL record through the normal mutation path it
// was logged from. Expiry deletes replay verbatim — recovery never
// re-derives them from a clock that no longer matches arrival times.
func (s *Service) replayRecord(rec store.Record) error {
	switch rec.Type {
	case store.RecRegister:
		_, err := s.RegisterWindow(rec.Relation, rec.Rel, rec.Window)
		return err
	case store.RecInsert:
		_, err := s.InsertBatch(rec.Relation, rec.Tuples)
		return err
	case store.RecDelete:
		s.ingestMu.Lock()
		_, err := s.deleteBatchLocked(rec.Relation, rec.IDs, rec.Expiry)
		s.ingestMu.Unlock()
		return err
	case store.RecUnregister:
		return s.Unregister(rec.Relation)
	default:
		return fmt.Errorf("%w: unknown record type %d", store.ErrCorrupt, rec.Type)
	}
}

func recordTypeName(t store.RecordType) string {
	switch t {
	case store.RecRegister:
		return "register"
	case store.RecInsert:
		return "insert"
	case store.RecDelete:
		return "delete"
	case store.RecUnregister:
		return "unregister"
	}
	return fmt.Sprintf("type%d", t)
}

// rebuildResidents eagerly reconstructs the resident join indexes the
// manifest recorded at the last checkpoint, so the restarted server
// answers its pre-crash working set without a cold O(n log n) build on
// the first query. Best effort: a combo whose relations are gone (an
// unregister in the WAL tail) or whose condition no longer parses is
// skipped — the query path rebuilds on demand as always.
func (s *Service) rebuildResidents(combos []store.ResidentCombo) {
	for _, c := range combos {
		cond, err := join.ParseCondition(c.Cond)
		if err != nil {
			continue
		}
		rr1, ok1 := s.rels[c.R1]
		rr2, ok2 := s.rels[c.R2]
		if !ok1 || !ok2 {
			continue
		}
		// Residents are k- and aggregator-independent (core.NewResident),
		// so any well-formed query over the pair serves as the builder's
		// input.
		q := core.Query{R1: rr1.rel, R2: rr2.rel, Spec: join.Spec{Cond: cond, Agg: join.Sum}}
		key := residentKey{r1: c.R1, r2: c.R2, v1: rr1.version, v2: rr2.version, cond: cond}
		s.residents.get(key, q)
	}
}

// Checkpoint folds the WAL into a fresh segment generation now,
// regardless of the configured interval: one columnar segment per
// relation at its current version, the resident combos worth rebuilding
// warm, and a truncated WAL. Mutations are held quiescent for the
// duration (ingestMu plus a read lock — RegisterWindow needs the write
// lock, so it too is excluded); queries keep running. A no-op on an
// in-memory service.
func (s *Service) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.durableOK(); err != nil {
		return err
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkpointLocked()
}

// checkpointLocked snapshots the registry and hands it to the store. The
// caller holds ingestMu and at least a read lock on mu: every mutation
// path is excluded, so the WAL is quiescent and full truncation is safe,
// and the columns handed over as live views cannot move underneath the
// segment writer.
func (s *Service) checkpointLocked() error {
	rels := make([]store.CheckpointRelation, 0, len(s.rels))
	for name, rr := range s.rels {
		rels = append(rels, store.CheckpointRelation{
			Name:    name,
			Version: rr.version,
			Window:  rr.window,
			Cols:    rr.rel.SnapshotColumns(),
		})
	}
	var combos []store.ResidentCombo
	seen := make(map[store.ResidentCombo]bool)
	for _, k := range s.residents.keys() {
		if _, ok := s.rels[k.r1]; !ok {
			continue
		}
		if _, ok := s.rels[k.r2]; !ok {
			continue
		}
		c := store.ResidentCombo{R1: k.r1, R2: k.r2, Cond: k.cond.Token()}
		if seen[c] {
			continue
		}
		seen[c] = true
		combos = append(combos, c)
	}
	return s.store.Checkpoint(rels, combos)
}

// checkpointLoop is the background checkpointer goroutine: one Checkpoint
// per tick, plus any size-trigger kicks from logSync, until Close.
func (s *Service) checkpointLoop(interval time.Duration) {
	defer close(s.ckptDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
		case <-s.ckptKick:
		}
		// Best effort on the ticker: a failed checkpoint leaves the old
		// generation valid and the WAL growing; the next tick retries.
		s.Checkpoint()
	}
}
