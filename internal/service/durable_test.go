package service

// The restart-warm oracle suite: seeded mutation schedules against a
// durable service whose process "dies" (the instance is abandoned without
// Close, exactly what kill -9 leaves behind: an open WAL with every
// acknowledged record fsync'd) at random points and is reopened from the
// data directory. After every recovery — and at every interleaved query —
// relation contents, registry versions, and skylines must be
// byte-identical to plain mirrors that replayed the same acknowledged
// mutations without ever crashing. Checkpoints are interleaved too, so
// recovery exercises every mix of segment generation + WAL tail.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// durableConfig disables every background goroutine so an abandoned
// instance is inert: nothing sweeps or checkpoints behind the test's
// back, and dropping the instance on the floor models a hard kill.
func durableConfig() Config {
	return Config{SweepInterval: -1, CheckpointInterval: -1}
}

func TestDurableRestartOracle(t *testing.T) {
	conds := []join.Condition{join.Equality, join.BandLess}
	for i, cond := range conds {
		cond, seed := cond, int64(4100+31*i)
		t.Run(cond.Token(), func(t *testing.T) {
			t.Parallel()
			runDurableRestartOracle(t, cond, seed)
		})
	}
}

func runDurableRestartOracle(t *testing.T, cond join.Condition, seed int64) {
	const (
		window    = 45 * time.Second
		mutations = 150
	)
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	// One fake clock shared by every incarnation of the service, injected
	// into recovery too, so window arrival stamps live in fake time across
	// crashes and the shadow arrival log below predicts every sweep cut.
	var (
		clockMu sync.Mutex
		current = time.Unix(1_700_000_000, 0)
	)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return current
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		current = current.Add(d)
		clockMu.Unlock()
	}

	s, err := open(durableConfig(), dir, clock)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			s.Close()
		}
	}()

	r1 := testRelation("r1", 35, 3, 1, 5, seed)
	r2 := testRelation("r2", 35, 3, 1, 5, seed+1)
	mirrors := map[string]*dataset.Relation{"r1": r1.Clone(), "r2": r2.Clone()}
	versions := map[string]uint64{"r1": 1, "r2": 1}
	arrivals := make([]int64, r1.Len())
	for i := range arrivals {
		arrivals[i] = clock().UnixNano()
	}
	if _, err := s.RegisterWindow("r1", r1, window); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("r2", r2); err != nil {
		t.Fatal(err)
	}

	tok := cond.Token()
	ctx := context.Background()
	recompute := func(k int) []join.Pair {
		t.Helper()
		q := core.Query{
			R1: mirrors["r1"].Clone(), R2: mirrors["r2"].Clone(),
			Spec: join.Spec{Cond: cond, Agg: join.Sum}, K: k,
		}
		res, err := core.Run(q, core.Grouping)
		if err != nil {
			t.Fatal(err)
		}
		return res.Skyline
	}
	// verifyRegistry is the recovery assertion: every mirror present at its
	// exact version with byte-equal contents, nothing extra registered.
	verifyRegistry := func(label string) {
		t.Helper()
		infos := s.Relations()
		if len(infos) != len(mirrors) {
			t.Fatalf("%s: registry holds %d relations, mirrors hold %d", label, len(infos), len(mirrors))
		}
		for name, m := range mirrors {
			rel, v, err := s.Relation(name)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if v != versions[name] {
				t.Fatalf("%s: %s at version %d, mirror says %d", label, name, v, versions[name])
			}
			if !m.EqualContents(rel) {
				t.Fatalf("%s: %s contents differ from mirror", label, name)
			}
		}
	}

	var crashes, checkpoints, registerCycles int
	for done, step := 0, 0; done < mutations; step++ {
		switch op := rng.Intn(20); {
		case op < 7: // insert batch
			name := "r1"
			if rng.Intn(2) == 1 {
				name = "r2"
			}
			ts := make([]dataset.Tuple, 1+rng.Intn(4))
			for i := range ts {
				ts[i] = oracleTuple(rng)
			}
			if _, err := s.InsertBatch(name, ts); err != nil {
				t.Fatalf("step %d: insert into %s: %v", step, name, err)
			}
			if _, err := mirrors[name].AppendBatch(ts); err != nil {
				t.Fatal(err)
			}
			versions[name]++
			if name == "r1" {
				now := clock().UnixNano()
				for range ts {
					arrivals = append(arrivals, now)
				}
			}
			done++
		case op < 12: // delete batch
			name := "r1"
			if rng.Intn(2) == 1 {
				name = "r2"
			}
			m := mirrors[name]
			if m.Len() < 2 {
				continue
			}
			b := 1 + rng.Intn(3)
			if rng.Intn(5) == 0 {
				b = 1 + m.Len()/4
			}
			if b > m.Len()-1 {
				b = m.Len() - 1
			}
			ids := deleteIDs(rng, m.Len(), b)
			if _, err := s.DeleteBatch(name, ids); err != nil {
				t.Fatalf("step %d: delete %v from %s: %v", step, ids, name, err)
			}
			if err := m.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			versions[name]++
			if name == "r1" {
				arrivals = compactInt64(arrivals, ids)
			}
			done++
		case op < 14: // window expiry via Sweep (logged, so replay reproduces it)
			advance(time.Duration(5+rng.Intn(36)) * time.Second)
			deadline := clock().UnixNano() - int64(window)
			j := sort.Search(len(arrivals), func(i int) bool { return arrivals[i] > deadline })
			if j >= len(arrivals) {
				j = len(arrivals) - 1
			}
			if got := s.Sweep(); got != j {
				t.Fatalf("step %d: Sweep expired %d rows, want %d", step, got, j)
			}
			if j > 0 {
				ids := make([]int, j)
				for i := range ids {
					ids[i] = i
				}
				if err := mirrors["r1"].DeleteBatch(ids); err != nil {
					t.Fatal(err)
				}
				versions["r1"]++
				arrivals = append(arrivals[:0], arrivals[j:]...)
				done++
			}
		case op < 15: // register/unregister a third relation (both paths logged)
			if _, ok := mirrors["r3"]; ok {
				if err := s.Unregister("r3"); err != nil {
					t.Fatalf("step %d: unregister r3: %v", step, err)
				}
				delete(mirrors, "r3")
				delete(versions, "r3")
			} else {
				r3 := testRelation("r3", 10+rng.Intn(10), 3, 1, 5, seed+int64(step))
				mirrors["r3"] = r3.Clone()
				versions["r3"] = 1
				if _, err := s.Register("r3", r3); err != nil {
					t.Fatalf("step %d: register r3: %v", step, err)
				}
			}
			registerCycles++
			done++
		case op < 16: // checkpoint: fold the WAL into a fresh segment generation
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
			checkpoints++
		case op < 18: // crash: abandon without Close, reopen from the dir
			crashes++
			s, err = open(durableConfig(), dir, clock)
			if err != nil {
				t.Fatalf("step %d: reopening after crash %d: %v", step, crashes, err)
			}
			// Recovered rows arrive "at recovery" (stamps are not persisted);
			// the shadow log mirrors that reset.
			now := clock().UnixNano()
			for i := range arrivals {
				arrivals[i] = now
			}
			verifyRegistry(fmt.Sprintf("step %d: after crash %d", step, crashes))
		default: // query: byte-identical to a from-scratch run over the mirrors
			k := 5 + rng.Intn(3)
			resp, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: k, Join: tok, NoCache: rng.Intn(4) == 0})
			if err != nil {
				t.Fatalf("step %d: query k=%d: %v", step, k, err)
			}
			if resp.Versions != [2]uint64{versions["r1"], versions["r2"]} {
				t.Fatalf("step %d: answer at versions %v, mirrors at (%d,%d)",
					step, resp.Versions, versions["r1"], versions["r2"])
			}
			assertPairsIdentical(t, fmt.Sprintf("step %d k=%d", step, k), resp.Skyline, recompute(k))
		}
	}
	if crashes == 0 || checkpoints == 0 || registerCycles == 0 {
		t.Fatalf("schedule had no teeth: %d crashes, %d checkpoints, %d register cycles",
			crashes, checkpoints, registerCycles)
	}

	// Clean shutdown folds everything into segments; the next boot replays
	// no WAL and still agrees with the mirrors at every k.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = open(durableConfig(), dir, clock)
	if err != nil {
		t.Fatal(err)
	}
	closed = true
	defer s.Close()
	verifyRegistry("after clean restart")
	st := s.Stats()
	if !st.Durable || st.Segments != len(mirrors) || st.WALRecords != 0 {
		t.Fatalf("post-Close recovery stats: durable=%v segments=%d wal_records=%d (want true, %d, 0)",
			st.Durable, st.Segments, st.WALRecords, len(mirrors))
	}
	for k := 5; k <= 7; k++ {
		resp, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: k, Join: tok})
		if err != nil {
			t.Fatal(err)
		}
		assertPairsIdentical(t, fmt.Sprintf("final k=%d", k), resp.Skyline, recompute(k))
	}
}

// TestDurableAckSurvivesCrash is the headline guarantee in miniature:
// an insert whose call returned is on disk, a crash immediately after
// (no checkpoint, no Close) loses nothing.
func TestDurableAckSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := testRelation("r1", 20, 3, 1, 5, 7)
	mirror := r1.Clone()
	if _, err := s.Register("r1", r1); err != nil {
		t.Fatal(err)
	}
	tup := dataset.Tuple{Key: "g0001", Band: 0.5, Attrs: []float64{0.1, 0.2, 0.3, 0.4}}
	if _, err := s.Insert("r1", tup); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.AppendBatch([]dataset.Tuple{tup}); err != nil {
		t.Fatal(err)
	}
	// Crash: the instance is abandoned with its WAL fd open, like the
	// process image a kill -9 destroys.
	s2, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rel, v, err := s2.Relation("r1")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("recovered version %d, want 2 (register + one insert)", v)
	}
	if !mirror.EqualContents(rel) {
		t.Fatal("acknowledged insert missing after crash recovery")
	}
}

// TestDurableWarmRestart: resident combos recorded at checkpoint are
// rebuilt eagerly by recovery — the first post-restart query finds a warm
// index instead of paying the cold build.
func TestDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	registerPair(t, s, 40)
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // final checkpoint records the warm combo
		t.Fatal(err)
	}

	s2, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.residents.len(); got != 1 {
		t.Fatalf("recovery rebuilt %d residents, want 1", got)
	}
	st := s2.Stats()
	if st.Residents != 1 {
		t.Fatalf("stats report %d residents after warm restart, want 1", st.Residents)
	}
}

// TestDurabilityFailureLatches: once a WAL write fails, every mutation is
// refused with ErrDurability — no acknowledged-but-unlogged window — while
// queries keep serving.
func TestDurabilityFailureLatches(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	registerPair(t, s, 30)
	// Sever the WAL out from under the service: the next append fails the
	// way a full or failing disk would.
	if err := s.store.Close(); err != nil {
		t.Fatal(err)
	}
	tup := dataset.Tuple{Key: "g0001", Band: 0.5, Attrs: []float64{1, 2, 3, 4}}
	if _, err := s.Insert("r1", tup); !errors.Is(err, ErrDurability) {
		t.Fatalf("insert after WAL failure: %v, want ErrDurability", err)
	}
	// Latched: later mutations fail fast, before touching in-memory state.
	if _, err := s.DeleteBatch("r1", []int{0}); !errors.Is(err, ErrDurability) {
		t.Fatalf("delete after latch: %v, want ErrDurability", err)
	}
	if _, err := s.RegisterWindow("r3", testRelation("r3", 5, 3, 1, 5, 9), 0); !errors.Is(err, ErrDurability) {
		t.Fatalf("register after latch: %v, want ErrDurability", err)
	}
	if err := s.Unregister("r1"); !errors.Is(err, ErrDurability) {
		t.Fatalf("unregister after latch: %v, want ErrDurability", err)
	}
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5}); err != nil {
		t.Fatalf("query after latch should still serve: %v", err)
	}
}

// TestDurableRejectedMutationNotLogged: a mutation the service rejects
// (validation failure) must leave no WAL record — otherwise replay would
// apply what the caller was told failed.
func TestDurableRejectedMutationNotLogged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	registerPair(t, s, 10)
	before := s.Stats().WALRecords
	if _, err := s.DeleteBatch("r1", []int{999}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if _, err := s.InsertBatch("r1", []dataset.Tuple{{Key: "g", Attrs: []float64{1}}}); err == nil {
		t.Fatal("schema-violating insert accepted")
	}
	if _, err := s.Register("r1", testRelation("x", 5, 3, 1, 5, 1)); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if got := s.Stats().WALRecords; got != before {
		t.Fatalf("rejected mutations appended %d WAL records", got-before)
	}
	s.Close()

	s2, err := Open(durableConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, v, err := s2.Relation("r1"); err != nil || v != 1 {
		t.Fatalf("recovered r1 at version %d (err=%v), want 1", v, err)
	}
}

// TestCheckpointWALSizeTrigger: a durable service with a tiny
// CheckpointWALBytes checkpoints on its own once the WAL outgrows it,
// without waiting for the interval tick.
func TestCheckpointWALSizeTrigger(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		SweepInterval:      -1,
		CheckpointInterval: time.Hour, // the tick never fires in this test
		CheckpointWALBytes: 256,
	}
	s, err := Open(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	registerPair(t, s, 20)
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size trigger never fired a checkpoint")
		}
		tup := dataset.Tuple{Key: "g0001", Band: 0.5, Attrs: []float64{1, 2, 3, 4}}
		if _, err := s.Insert("r1", tup); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LastCheckpointMS < 0 {
		t.Fatalf("last_checkpoint_ms = %d after a checkpoint", st.LastCheckpointMS)
	}
}
