package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// drainWatch collects every event currently deliverable on w, waiting
// briefly for the pump to catch up, and returns them.
func drainWatch(t *testing.T, w *Watch, want int) []WatchEvent {
	t.Helper()
	evs := make([]WatchEvent, 0, want)
	for len(evs) < want {
		evs = append(evs, nextEvent(t, w))
	}
	select {
	case ev := <-w.Events():
		t.Fatalf("watch delivered %d events, want %d (extra: %+v)", want+1, want, ev)
	case <-time.After(50 * time.Millisecond):
	}
	return evs
}

// TestInsertBatchMatchesOracle is the three-way ingest oracle the batch
// pipeline is pinned by: inserting a tuple set one at a time, as one
// group-committed batch, and recomputing from scratch must land on
// byte-identical skylines — across join conditions and aggregators — and
// the watch streams must replay to the same answer, the batch stream
// coalesced to one event per batch.
func TestInsertBatchMatchesOracle(t *testing.T) {
	conds := []struct {
		token string
		cond  join.Condition
	}{{"eq", join.Equality}, {"cross", join.Cross}, {"lt", join.BandLess}}
	aggs := []struct {
		token string
		agg   join.Aggregator
		alg   string
	}{{"sum", join.Sum, "grouping"}, {"max", join.Max, "naive"}}

	for _, tc := range conds {
		for _, ta := range aggs {
			t.Run(tc.token+"/"+ta.token, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(tc.token)*100 + len(ta.token))))
				r1 := testRelation("r1", 30, 3, 1, 5, 91)
				r2 := testRelation("r2", 30, 3, 1, 5, 92)
				oracle := core.Query{
					R1: r1.Clone(), R2: r2.Clone(),
					Spec: join.Spec{Cond: tc.cond, Agg: ta.agg}, K: 5,
				}
				batch1 := make([]dataset.Tuple, 8)
				for i := range batch1 {
					batch1[i] = randTuple(rng)
				}
				batch2 := make([]dataset.Tuple, 6)
				for i := range batch2 {
					batch2[i] = randTuple(rng)
				}

				req := QueryRequest{
					R1: "r1", R2: "r2", K: 5,
					Join: tc.token, Agg: ta.token, Algorithm: ta.alg,
				}
				newSvc := func() *Service {
					s := newTestService(t, Config{})
					if _, err := s.Register("r1", r1.Clone()); err != nil {
						t.Fatal(err)
					}
					if _, err := s.Register("r2", r2.Clone()); err != nil {
						t.Fatal(err)
					}
					if _, err := s.Query(context.Background(), req); err != nil {
						t.Fatal(err)
					}
					return s
				}
				seq, bat := newSvc(), newSvc()

				// Watches ride along where the maintainer admits the query
				// (strict aggregator only).
				var wSeq, wBat *Watch
				if ta.agg.Strict {
					var err error
					if wSeq, err = seq.Watch(context.Background(), req); err != nil {
						t.Fatal(err)
					}
					defer wSeq.Close()
					if wBat, err = bat.Watch(context.Background(), req); err != nil {
						t.Fatal(err)
					}
					defer wBat.Close()
				}

				// Sequential path: one Insert per tuple.
				for _, tup := range batch1 {
					if _, err := seq.Insert("r1", tup); err != nil {
						t.Fatal(err)
					}
				}
				for _, tup := range batch2 {
					if _, err := seq.Insert("r2", tup); err != nil {
						t.Fatal(err)
					}
				}
				// Batch path: one group commit per relation.
				ins1, err := bat.InsertBatch("r1", batch1)
				if err != nil {
					t.Fatal(err)
				}
				if ins1.ID != 30 || ins1.Count != len(batch1) || ins1.Version != 2 {
					t.Fatalf("r1 batch result = %+v, want ID 30, Count %d, Version 2", ins1, len(batch1))
				}
				ins2, err := bat.InsertBatch("r2", batch2)
				if err != nil {
					t.Fatal(err)
				}
				if ins2.ID != 30 || ins2.Count != len(batch2) || ins2.Version != 2 {
					t.Fatalf("r2 batch result = %+v, want ID 30, Count %d, Version 2", ins2, len(batch2))
				}

				// Oracle path: from-scratch recompute over mirrored clones.
				if _, err := oracle.R1.AppendBatch(batch1); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.R2.AppendBatch(batch2); err != nil {
					t.Fatal(err)
				}
				alg := core.Grouping
				if !ta.agg.Strict {
					alg = core.Naive
				}
				want, err := core.Run(oracle, alg)
				if err != nil {
					t.Fatal(err)
				}

				gotSeq, err := seq.Query(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				gotBat, err := bat.Query(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				label := tc.token + "/" + ta.token
				assertPairsEqual(t, label+" sequential", gotSeq.Skyline, want.Skyline)
				assertPairsEqual(t, label+" batch", gotBat.Skyline, want.Skyline)
				if wantV := [2]uint64{1 + uint64(len(batch1)), 1 + uint64(len(batch2))}; gotSeq.Versions != wantV {
					t.Fatalf("%s sequential versions = %v, want %v", label, gotSeq.Versions, wantV)
				}
				if gotBat.Versions != [2]uint64{2, 2} {
					t.Fatalf("%s batch versions = %v, want [2 2]", label, gotBat.Versions)
				}
				if ta.agg.Strict {
					// Both paths must serve from live maintenance, not a
					// recompute.
					if gotSeq.Source != SourceMaintained || gotBat.Source != SourceMaintained {
						t.Fatalf("%s sources = %q/%q, want maintained/maintained", label, gotSeq.Source, gotBat.Source)
					}
					// Sequential stream: snapshot + one delta per insert.
					// Batch stream: snapshot + one coalesced delta per batch.
					evSeq := drainWatch(t, wSeq, 1+len(batch1)+len(batch2))
					evBat := drainWatch(t, wBat, 3)
					repSeq := make(map[[2]int][]float64)
					for _, ev := range evSeq {
						applyDelta(t, repSeq, ev)
					}
					repBat := make(map[[2]int][]float64)
					for _, ev := range evBat {
						applyDelta(t, repBat, ev)
					}
					if evBat[1].Versions != [2]uint64{2, 1} || evBat[2].Versions != [2]uint64{2, 2} {
						t.Fatalf("%s batch event versions = %v, %v, want [2 1], [2 2]",
							label, evBat[1].Versions, evBat[2].Versions)
					}
					for _, p := range want.Skyline {
						if _, ok := repSeq[[2]int{p.Left, p.Right}]; !ok {
							t.Fatalf("%s sequential replay lost (%d,%d)", label, p.Left, p.Right)
						}
						if _, ok := repBat[[2]int{p.Left, p.Right}]; !ok {
							t.Fatalf("%s batch replay lost (%d,%d)", label, p.Left, p.Right)
						}
					}
					if len(repSeq) != len(want.Skyline) || len(repBat) != len(want.Skyline) {
						t.Fatalf("%s replays hold %d/%d pairs, oracle %d",
							label, len(repSeq), len(repBat), len(want.Skyline))
					}
				}
			})
		}
	}
}

// TestInsertBatchValidation pins the request-level contracts: empty
// batches and invalid tuples are client errors, and a failed batch leaves
// the relation (and its version) untouched.
func TestInsertBatchValidation(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	if _, err := s.InsertBatch("r1", nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch error = %v, want ErrBadRequest", err)
	}
	if _, err := s.InsertBatch("nope", []dataset.Tuple{randTuple(rand.New(rand.NewSource(1)))}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation error = %v, want ErrUnknownRelation", err)
	}
	bad := []dataset.Tuple{randTuple(rand.New(rand.NewSource(2))), {Key: "g0", Attrs: []float64{1}}}
	if _, err := s.InsertBatch("r1", bad); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("short tuple error = %v, want ErrBadRequest", err)
	}
	info, err := s.RelationInfo("r1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Tuples != 20 {
		t.Fatalf("failed batch moved the relation: version %d, %d tuples", info.Version, info.Tuples)
	}
}

// TestInsertBatchStats pins the counter semantics: Inserts counts tuples
// (so per-tuple dashboards keep working), Batches counts group commits.
func TestInsertBatchStats(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	rng := rand.New(rand.NewSource(3))
	batch := make([]dataset.Tuple, 5)
	for i := range batch {
		batch[i] = randTuple(rng)
	}
	if _, err := s.InsertBatch("r1", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("r2", randTuple(rng)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Inserts != 6 {
		t.Errorf("Inserts = %d, want 6 (tuples, not batches)", st.Inserts)
	}
	if st.Batches != 2 {
		t.Errorf("Batches = %d, want 2", st.Batches)
	}
}

// TestInsertBatchDoesNotBlockQuery is the concurrency pin: the expensive
// absorption phase of a batch must run with the registry lock released,
// so concurrent queries — on unrelated pairs, and on the ingesting pair
// at its new version — complete while the batch is still in flight. Run
// under -race this also exercises the phase handoffs for data races.
func TestInsertBatchDoesNotBlockQuery(t *testing.T) {
	s := newTestService(t, Config{})
	// The ingesting pair is sized so a batch absorb takes real time.
	r1 := testRelation("r1", 2000, 3, 1, 10, 51)
	r2 := testRelation("r2", 2000, 3, 1, 10, 52)
	for name, r := range map[string]*dataset.Relation{"r1": r1, "r2": r2} {
		if _, err := s.Register(name, r); err != nil {
			t.Fatal(err)
		}
	}
	// A small unrelated pair whose warm answer must stay reachable.
	if _, err := s.Register("s1", testRelation("s1", 30, 3, 1, 5, 53)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("s2", testRelation("s2", 30, 3, 1, 5, 54)); err != nil {
		t.Fatal(err)
	}
	big := QueryRequest{R1: "r1", R2: "r2", K: 5, Algorithm: "grouping"}
	small := QueryRequest{R1: "s1", R2: "s2", K: 5, Algorithm: "grouping"}
	for _, req := range []QueryRequest{big, small} {
		if _, err := s.Query(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	w, err := s.Watch(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	nextEvent(t, w) // consume the snapshot

	rng := rand.New(rand.NewSource(55))
	batch := make([]dataset.Tuple, 400)
	for i := range batch {
		batch[i] = dataset.Tuple{
			Key:   fmt.Sprintf("g%04d", rng.Intn(10)),
			Attrs: []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100},
		}
	}
	var inFlight atomic.Bool
	inFlight.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := s.InsertBatch("r1", batch)
		inFlight.Store(false)
		done <- err
	}()

	overlapped := 0
	sawNewVersion := false
	for inFlight.Load() {
		resp, err := s.Query(context.Background(), small)
		if err != nil {
			t.Fatal(err)
		}
		// Only queries that finished while the batch was still running
		// demonstrate the lock was free.
		if inFlight.Load() {
			overlapped++
			if resp.Source != SourceCached {
				t.Fatalf("unrelated warm query source = %q mid-batch, want cached", resp.Source)
			}
		}
		if bigResp, err := s.Query(context.Background(), big); err != nil {
			t.Fatal(err)
		} else if bigResp.Versions[0] == 2 && inFlight.Load() {
			sawNewVersion = true
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if overlapped == 0 {
		t.Error("no unrelated query completed while the batch was in flight — ingest is blocking readers")
	}
	if !sawNewVersion {
		t.Log("no query observed the post-batch version mid-flight (absorb finished too fast to overlap)")
	}
	// The watch still coalesces to exactly one delta for the batch.
	ev := nextEvent(t, w)
	if ev.Versions != [2]uint64{2, 1} {
		t.Fatalf("batch watch event versions = %v, want [2 1]", ev.Versions)
	}
}
