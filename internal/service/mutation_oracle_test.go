package service

// The mixed-mutation oracle suite: a seeded randomized replayer that
// interleaves insert batches, delete batches, sliding-window expiry,
// queries and a standing watch against one service instance, mirroring
// every mutation onto plain relation clones. At every query step and at
// the end of every schedule the service's answer — maintained, cached or
// recomputed — must be byte-identical (index pairs AND joined attribute
// vectors) to a from-scratch engine run over the mirrors, for all six
// join conditions under the strict aggregator. The watch replica must
// reconcile exactly: snapshot + the sum of all deltas ≡ the final
// recompute. This is the pin for the whole delete/expiry path: if any
// layer (dataset compaction, index retract, maintainer resurrection
// sweep, service group commit, watch diffing) drifts, a schedule here
// catches it.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// oracleTuple draws an insert in the datagen shape: a key shared with the
// generated base rows (so equality joins stay meaty), a band in [0,1) for
// the band conditions, and 3 local + 1 aggregate attributes in [0,1).
func oracleTuple(rng *rand.Rand) dataset.Tuple {
	attrs := make([]float64, 4)
	for i := range attrs {
		attrs[i] = rng.Float64()
	}
	return dataset.Tuple{
		Key:   fmt.Sprintf("g%04d", rng.Intn(5)),
		Band:  rng.Float64(),
		Attrs: attrs,
	}
}

// assertPairsIdentical is assertPairsEqual plus attribute bytes: the
// oracle suite demands byte-identical answers, not just identical
// membership, because a delete renumbers rows and a stale attribute
// vector under a reused index pair is exactly the bug class this suite
// exists to catch.
func assertPairsIdentical(t *testing.T, label string, got, want []join.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: skyline size %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Left != want[i].Left || got[i].Right != want[i].Right {
			t.Fatalf("%s: pair %d = (%d,%d), want (%d,%d)",
				label, i, got[i].Left, got[i].Right, want[i].Left, want[i].Right)
		}
		if !equalAttrs(got[i].Attrs, want[i].Attrs) {
			t.Fatalf("%s: pair (%d,%d) attrs %v, want %v",
				label, got[i].Left, got[i].Right, got[i].Attrs, want[i].Attrs)
		}
	}
}

// compactInt64 removes the sorted positions ids from arr in place —
// the shadow of the service's own arrival-stamp compaction.
func compactInt64(arr []int64, ids []int) []int64 {
	out, di := arr[:0], 0
	for i, v := range arr {
		if di < len(ids) && ids[di] == i {
			di++
			continue
		}
		out = append(out, v)
	}
	return out
}

// TestMutationOracleSuite replays one seeded schedule of ≥200 mixed
// mutations per join condition. Each schedule runs against its own
// service: r1 is a 45-second sliding window driven by a fake clock and
// manual Sweep calls, r2 is unwindowed, a watch at full width follows
// every mutation, and a second cached K keeps two maintained shapes
// live at once.
func TestMutationOracleSuite(t *testing.T) {
	conds := []join.Condition{
		join.Equality, join.Cross,
		join.BandLess, join.BandLessEq, join.BandGreater, join.BandGreaterEq,
	}
	for i, cond := range conds {
		cond, seed := cond, int64(9000+17*i)
		t.Run(cond.Token(), func(t *testing.T) {
			t.Parallel()
			runMutationOracle(t, cond, seed)
		})
	}
}

func runMutationOracle(t *testing.T, cond join.Condition, seed int64) {
	const (
		window    = 45 * time.Second
		watchK    = 7 // full joined width: 3+3 local + 1 aggregate
		mutations = 200
	)
	rng := rand.New(rand.NewSource(seed))
	s := newTestService(t, Config{SweepInterval: -1}) // expiry only via Sweep

	// A fake clock injected before registration: RegisterWindow stamps the
	// base rows at "now", inserts stamp at "now", and Sweep's deadline is
	// "now − window" — so the shadow arrival log below predicts every cut.
	var (
		clockMu sync.Mutex
		current = time.Unix(1_700_000_000, 0)
	)
	s.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return current
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		current = current.Add(d)
		clockMu.Unlock()
	}
	nowNanos := func() int64 {
		clockMu.Lock()
		defer clockMu.Unlock()
		return current.UnixNano()
	}

	r1 := testRelation("r1", 40, 3, 1, 5, seed)
	r2 := testRelation("r2", 40, 3, 1, 5, seed+1)
	m1, m2 := r1.Clone(), r2.Clone() // the oracle mirrors
	arrivals := make([]int64, m1.Len())
	for i := range arrivals {
		arrivals[i] = nowNanos()
	}
	if _, err := s.RegisterWindow("r1", r1, window); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("r2", r2); err != nil {
		t.Fatal(err)
	}

	tok := cond.Token()
	recompute := func(k int) []join.Pair {
		t.Helper()
		q := core.Query{
			R1: m1.Clone(), R2: m2.Clone(),
			Spec: join.Spec{Cond: cond, Agg: join.Sum}, K: k,
		}
		res, err := core.Run(q, core.Grouping)
		if err != nil {
			t.Fatal(err)
		}
		return res.Skyline
	}

	ctx := context.Background()
	w, err := s.Watch(ctx, QueryRequest{R1: "r1", R2: "r2", K: watchK, Join: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	replica := make(map[[2]int][]float64)
	snap := nextEvent(t, w)
	if snap.Seq != 0 {
		t.Fatalf("first watch event seq %d, want 0", snap.Seq)
	}
	applyDelta(t, replica, snap)

	// Prime a second maintained shape: a cache entry at a smaller K whose
	// prune thresholds differ from the watch's, so every mutation batch
	// exercises two retract/extend paths at once.
	if _, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: 5, Join: tok}); err != nil {
		t.Fatal(err)
	}

	var (
		wantSeq            uint64 = 1
		addedSeen, removed int
	)
	expectEvent := func() {
		t.Helper()
		ev := nextEvent(t, w)
		if ev.Seq != wantSeq {
			t.Fatalf("watch event seq %d, want %d", ev.Seq, wantSeq)
		}
		wantSeq++
		addedSeen += len(ev.Added)
		removed += len(ev.Removed)
		applyDelta(t, replica, ev)
	}

	for done, step := 0, 0; done < mutations; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert batch
			name, m := "r1", m1
			if rng.Intn(2) == 1 {
				name, m = "r2", m2
			}
			ts := make([]dataset.Tuple, 1+rng.Intn(4))
			for i := range ts {
				ts[i] = oracleTuple(rng)
			}
			if _, err := s.InsertBatch(name, ts); err != nil {
				t.Fatalf("step %d: insert %d into %s: %v", step, len(ts), name, err)
			}
			if _, err := m.AppendBatch(ts); err != nil {
				t.Fatal(err)
			}
			if name == "r1" {
				now := nowNanos()
				for range ts {
					arrivals = append(arrivals, now)
				}
			}
			done++
			expectEvent()
		case op < 7: // delete batch (sizes straddle the retract/rebuild threshold)
			name, m := "r1", m1
			if rng.Intn(2) == 1 {
				name, m = "r2", m2
			}
			if m.Len() < 2 {
				continue
			}
			b := 1 + rng.Intn(3)
			if rng.Intn(5) == 0 { // occasionally large enough to prefer recompute
				b = 1 + m.Len()/4
			}
			if b > m.Len()-1 {
				b = m.Len() - 1
			}
			ids := deleteIDs(rng, m.Len(), b)
			if _, err := s.DeleteBatch(name, ids); err != nil {
				t.Fatalf("step %d: delete %v from %s: %v", step, ids, name, err)
			}
			if err := m.DeleteBatch(ids); err != nil {
				t.Fatal(err)
			}
			if name == "r1" {
				arrivals = compactInt64(arrivals, ids)
			}
			done++
			expectEvent()
		case op < 8: // window expiry
			advance(time.Duration(5+rng.Intn(36)) * time.Second)
			deadline := nowNanos() - int64(window)
			j := sort.Search(len(arrivals), func(i int) bool { return arrivals[i] > deadline })
			if j >= len(arrivals) {
				j = len(arrivals) - 1 // the newest row is always retained
			}
			if got := s.Sweep(); got != j {
				t.Fatalf("step %d: Sweep expired %d rows, want %d", step, got, j)
			}
			if j > 0 {
				ids := make([]int, j)
				for i := range ids {
					ids[i] = i
				}
				if err := m1.DeleteBatch(ids); err != nil {
					t.Fatal(err)
				}
				arrivals = append(arrivals[:0], arrivals[j:]...)
				done++
				expectEvent()
			}
		default: // query: interleaved from-scratch comparison
			k := 5 + rng.Intn(3)
			req := QueryRequest{R1: "r1", R2: "r2", K: k, Join: tok, NoCache: rng.Intn(4) == 0}
			resp, err := s.Query(ctx, req)
			if err != nil {
				t.Fatalf("step %d: query k=%d: %v", step, k, err)
			}
			assertPairsIdentical(t, fmt.Sprintf("step %d k=%d", step, k), resp.Skyline, recompute(k))
		}
	}

	// Final skylines, byte-identical to from-scratch recomputes at every
	// shape the schedule touched.
	for k := 5; k <= watchK; k++ {
		resp, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: k, Join: tok})
		if err != nil {
			t.Fatal(err)
		}
		assertPairsIdentical(t, fmt.Sprintf("final k=%d", k), resp.Skyline, recompute(k))
	}

	// Watch reconciliation: snapshot + Σdeltas ≡ final recompute, with the
	// attribute vectors of every surviving pair intact.
	final := recompute(watchK)
	if len(replica) != len(final) {
		t.Fatalf("watch replica holds %d pairs, recompute has %d", len(replica), len(final))
	}
	for _, p := range final {
		attrs, ok := replica[[2]int{p.Left, p.Right}]
		if !ok {
			t.Fatalf("watch replica is missing pair (%d,%d)", p.Left, p.Right)
		}
		if !equalAttrs(attrs, p.Attrs) {
			t.Fatalf("watch replica attrs for (%d,%d) = %v, want %v", p.Left, p.Right, attrs, p.Attrs)
		}
	}
	if addedSeen == 0 || removed == 0 {
		t.Fatalf("schedule had no teeth: %d added / %d removed across all deltas", addedSeen, removed)
	}

	// The service's own mutation counters saw every batch the mirrors did.
	st := s.Stats()
	if st.Deletes == 0 || st.Inserts == 0 || st.Expired == 0 {
		t.Fatalf("stats did not move: inserts=%d deletes=%d expired=%d", st.Inserts, st.Deletes, st.Expired)
	}
}
