package service

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// Registry errors.
var (
	ErrUnknownRelation   = errors.New("service: unknown relation")
	ErrDuplicateRelation = errors.New("service: relation already registered")
)

// regRelation is one resident dataset: loaded once, mutated only through
// the service's insert path, with a version that moves on every mutation.
// Versions are what keep the answer cache coherent — every cache key and
// every response is stamped with the versions it was computed at.
type regRelation struct {
	rel     *dataset.Relation
	version uint64
	// window, when positive, makes the relation a sliding window: every
	// row's arrival instant is recorded in arrivals and the service's
	// sweeper ages out rows older than window through the same delete path
	// an explicit DeleteBatch takes.
	window time.Duration
	// arrivals holds one unix-nano arrival stamp per row, in row order.
	// Inserts only append and the clock is monotone within one service, so
	// the slice stays ascending — expired rows are always a prefix, and the
	// sweeper finds the cut with one binary search. Nil unless window > 0.
	arrivals []int64
}

// RelationInfo describes one registered relation for stats and listings.
type RelationInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Tuples  int    `json:"tuples"`
	Local   int    `json:"local"`
	Agg     int    `json:"agg"`
	// WindowMS is the sliding-window length in milliseconds; 0 means the
	// relation is unwindowed (rows live until explicitly deleted).
	WindowMS int64 `json:"window_ms,omitempty"`
}

// residentKey identifies one shared core.Resident: a relation pair at
// exact versions under one join condition. A version bump orphans the old
// key, so stale residents can never serve a query.
type residentKey struct {
	r1, r2 string
	v1, v2 uint64
	cond   join.Condition
}

// maxResidents bounds the resident-index cache. Residents are cheap to
// rebuild (O(n log n)) relative to queries, so the bound just prevents
// unbounded growth under adversarial (pair, condition) churn.
const maxResidents = 64

// residentSlot is one build-once cell: the sync.Once dedups concurrent
// first queries for the same key without holding the cache-wide mutex
// across the O(n log n) build, so unrelated pairs never wait on each
// other's construction.
type residentSlot struct {
	once sync.Once
	res  *core.Resident
	err  error
}

// residentCache shares prebuilt core.Resident structures across queries.
type residentCache struct {
	mu        sync.Mutex
	residents map[residentKey]*residentSlot
}

func newResidentCache() *residentCache {
	return &residentCache{residents: make(map[residentKey]*residentSlot)}
}

// get returns the resident for the key, building it from q on first use.
func (rc *residentCache) get(key residentKey, q core.Query) (*core.Resident, error) {
	rc.mu.Lock()
	slot, ok := rc.residents[key]
	if !ok {
		if len(rc.residents) >= maxResidents {
			// Arbitrary eviction: map iteration order is as good as any
			// when the cache is this oversized relative to realistic pair
			// counts.
			for k := range rc.residents {
				delete(rc.residents, k)
				break
			}
		}
		slot = &residentSlot{}
		rc.residents[key] = slot
	}
	rc.mu.Unlock()
	slot.once.Do(func() { slot.res, slot.err = core.NewResident(q) })
	return slot.res, slot.err
}

// put seeds the cache with an externally built resident (the insert path
// builds one per affected relation pair for maintainer absorbs, and the
// same snapshot warm-starts the next query at the new versions).
func (rc *residentCache) put(key residentKey, res *core.Resident) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.residents[key]; ok {
		return
	}
	if len(rc.residents) >= maxResidents {
		for k := range rc.residents {
			delete(rc.residents, k)
			break
		}
	}
	slot := &residentSlot{res: res}
	slot.once.Do(func() {}) // mark built so get never re-runs the builder
	rc.residents[key] = slot
}

// take removes and returns the resident for the key, or nil when the
// cache holds none (or the slot errored). The ingest path calls it under
// the service's exclusive lock to reclaim the pre-batch snapshot for
// in-place extension; that lock has drained every query that could be
// mid-build inside the slot's once, so reading slot.res without waiting
// on it is safe.
func (rc *residentCache) take(key residentKey) *core.Resident {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	slot, ok := rc.residents[key]
	if !ok {
		return nil
	}
	delete(rc.residents, key)
	return slot.res
}

// dropRelation removes every resident referencing the named relation;
// called after an insert bumps its version.
func (rc *residentCache) dropRelation(name string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for k := range rc.residents {
		if k.r1 == name || k.r2 == name {
			delete(rc.residents, k)
		}
	}
}

// keys lists the live combo keys; the checkpointer records them (version
// free) so recovery knows which resident indexes to rebuild eagerly.
func (rc *residentCache) keys() []residentKey {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]residentKey, 0, len(rc.residents))
	for k := range rc.residents {
		out = append(out, k)
	}
	return out
}

func (rc *residentCache) len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.residents)
}

// clear drops every resident; used by Service.Close.
func (rc *residentCache) clear() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.residents = make(map[residentKey]*residentSlot)
}

// relationInfos renders the registry sorted by name.
func relationInfos(rels map[string]*regRelation) []RelationInfo {
	out := make([]RelationInfo, 0, len(rels))
	for name, rr := range rels {
		out = append(out, RelationInfo{
			Name:     name,
			Version:  rr.version,
			Tuples:   rr.rel.Len(),
			Local:    rr.rel.Local,
			Agg:      rr.rel.Agg,
			WindowMS: rr.window.Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
