package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when a query cannot even be queued: every
// worker slot is busy and the wait queue is at capacity. Callers should
// shed the request (HTTP 429) rather than retry immediately.
var ErrOverloaded = errors.New("service: overloaded: worker pool and queue are full")

// scheduler is the admission controller: at most maxConcurrent queries
// execute at once, at most maxQueue more wait for a slot, and anything
// beyond that is rejected outright with ErrOverloaded. Waiting respects
// the request context, so a per-request deadline bounds queue time and
// execution together.
type scheduler struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

func newScheduler(maxConcurrent, maxQueue int) *scheduler {
	return &scheduler{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire admits one request, returning the release function, or fails
// with ErrOverloaded (queue full) or ctx.Err() (deadline hit while
// queued).
func (s *scheduler) acquire(ctx context.Context) (func(), error) {
	release := func() { <-s.slots }
	// Fast path: a slot is free right now.
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	if s.waiting.Add(1) > s.maxQueue {
		s.waiting.Add(-1)
		return nil, ErrOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queued reports how many requests are currently waiting for a slot.
func (s *scheduler) queued() int64 { return s.waiting.Load() }

// busy reports how many slots are currently held.
func (s *scheduler) busy() int { return len(s.slots) }
