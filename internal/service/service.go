// Package service implements ksjqd, the long-lived KSJQ query service: a
// relation registry whose datasets are loaded once and kept resident, an
// answer cache keyed by (relation versions, normalized query) whose
// entries are promoted to live incremental maintenance when inserts
// arrive, and an admission scheduler that runs queries through the
// engine's unified Exec path with per-request deadlines and a bounded
// worker pool.
//
// The point of the layer is amortization — the substrate PR 2 built makes
// every query cancellable and uniform, but each invocation still paid to
// rebuild join indexes and recompute answers from scratch. Here the
// expensive structures become resident:
//
//   - relations are registered once and versioned; every mutation goes
//     through the service, so a (name, version) pair pins exact contents;
//   - the engine's per-(pair, condition) structures (core.Resident: the
//     full-R2 join index, probe orders, base-point tables) are built once
//     and shared by every admitted query over that pair;
//   - answers are cached under the normalized query (versions, condition,
//     aggregator, k — algorithm is deliberately not part of the key, every
//     strategy computes the same skyline);
//   - an insert does not blow the cache away: entries at the current
//     version are promoted, for free, to core.Maintainer-backed live
//     entries (core.NewMaintainerFrom) and the new tuple is absorbed
//     incrementally, so dashboard-style repeated queries keep hitting
//     warm answers across updates;
//   - the same maintainer machinery points outward through Watch
//     (watch.go): a query becomes a standing subscription whose
//     Added/Removed deltas are published on every mutation;
//   - deletes ride the same rails in the other direction: DeleteBatch is
//     a group commit that retracts resident indexes in place, evicts
//     skyline members whose pairs died, and re-verifies only the
//     resurrection candidates the deleted pairs could have suppressed
//     (core.RetractSet) — or recomputes when the batch is large enough
//     that the filter would not pay;
//   - sliding-window relations (RegisterWindow) age rows out through that
//     same delete path on a background sweeper, so expiry is just a
//     delete nobody had to issue.
//
// Concurrency model: queries hold the service's read lock while they
// execute (relations are read-only during evaluation). Ingest is a group
// commit in three phases: a short exclusive section appends the whole
// batch, bumps the version once, and pulls every affected cache entry,
// watch set, and resident out of reach; the expensive maintainer
// absorption then runs with no service lock held at all — concurrent
// queries proceed, recomputing at the new versions; a second short
// exclusive section publishes the updated entries and residents and fans
// one coalesced delta per batch out to watchers. Batches themselves are
// serialized by a dedicated ingest mutex (single writer), so version
// history stays linear. The answer cache has its own mutex for O(1) hit
// bookkeeping, and entries being mutated by an ingest are removed from
// the cache first, so a cache hit never observes a half-absorbed answer.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/planner"
	"repro/internal/store"
)

// Service errors (beyond the registry's and scheduler's).
var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("service: closed")
	// ErrBadRequest wraps request validation failures (unknown spellings,
	// schema violations, k out of range) so transports can map them to
	// client errors (HTTP 400) rather than server faults.
	ErrBadRequest = errors.New("service: bad request")
	// ErrDurability is returned by every mutation after a WAL write has
	// failed on a durable service: the in-memory state may be ahead of the
	// log, so accepting further mutations would let acknowledged data
	// silently miss recovery. Queries keep working; restart to recover.
	ErrDurability = errors.New("service: durability failure, mutations disabled (restart to recover)")
)

// DefaultRequestTimeout is the per-request deadline applied when neither
// the configuration nor the request sets one. ksjqd's wire-facing clamp
// shares this constant so the operator bound and the service default
// cannot drift.
const DefaultRequestTimeout = 30 * time.Second

// Config tunes one Service. The zero value picks sensible defaults.
type Config struct {
	// MaxConcurrent bounds queries executing at once. Default: GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a worker slot; anything beyond
	// is rejected with ErrOverloaded. Default: 64.
	MaxQueue int
	// DefaultTimeout bounds each request (queue wait + execution) when the
	// request itself does not set one. Default: 30s. Negative: no deadline.
	DefaultTimeout time.Duration
	// CacheEntries bounds the answer cache (LRU). Default: 256.
	CacheEntries int
	// SweepInterval is how often the background sweeper ages expired rows
	// out of windowed relations (RegisterWindow). 0 means 1s; negative
	// disables the sweeper entirely — tests drive expiry deterministically
	// through Sweep instead.
	SweepInterval time.Duration
	// CheckpointInterval is how often a durable service (Open) folds the
	// WAL into fresh segment files. 0 means 60s; negative disables the
	// background checkpointer — tests drive it through Checkpoint instead.
	// Ignored by New (no data dir, nothing to checkpoint).
	CheckpointInterval time.Duration
	// CheckpointWALBytes triggers an early checkpoint once the live WAL
	// outgrows this size, bounding recovery's replay work independent of
	// the interval. 0 means 64 MiB; negative disables the size trigger.
	CheckpointWALBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = DefaultRequestTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = time.Minute
	}
	if c.CheckpointWALBytes == 0 {
		c.CheckpointWALBytes = 64 << 20
	}
	return c
}

// QueryRequest is one query against registered relations. Join, Agg and
// Algorithm use the CLI spellings ("eq"/"cross"/"lt"/"le"/"gt"/"ge",
// "sum"/"max"/"min", "auto"/"naive"/"grouping"/"dominator"); empty strings
// mean equality join, sum, and the sampling planner respectively.
type QueryRequest struct {
	R1, R2    string
	K         int
	Join      string
	Agg       string
	Algorithm string
	// Workers > 1 parallelizes candidate verification; the execution
	// degree is clamped to GOMAXPROCS (requests arrive over the wire; an
	// oversized degree must not spawn goroutines beyond the machine).
	// The requested value implies the grouping algorithm: combined with
	// "auto" the planner is skipped and grouping runs; combined with
	// another explicit algorithm the request is rejected (same
	// contradiction the CLI rejects).
	Workers int
	// Timeout bounds this request (queue wait + execution); 0 defers to
	// Config.DefaultTimeout, negative means no deadline.
	Timeout time.Duration
	// NoCache skips the answer-cache lookup (the result still refreshes
	// the cache) — for callers that need a recompute, not a warm answer.
	NoCache bool
}

// Source says where an answer came from.
type Source string

const (
	// SourceComputed: a full engine run (over the resident index).
	SourceComputed Source = "computed"
	// SourceCached: the answer cache, unchanged since it was computed.
	SourceCached Source = "cached"
	// SourceMaintained: a live entry kept current incrementally by a
	// core.Maintainer across inserts.
	SourceMaintained Source = "maintained"
)

// QueryResponse is one answer. Skyline is shared with the service's cache
// and must be treated as read-only.
type QueryResponse struct {
	Skyline []join.Pair
	Source  Source
	// Algorithm is the strategy that computed the answer — for cache and
	// maintained hits, the one that computed it originally.
	Algorithm string
	// Versions are the (R1, R2) registry versions the answer is valid at.
	Versions [2]uint64
	// Elapsed is the service-side wall time for this request.
	Elapsed time.Duration
	// Stats carries the engine's per-phase breakdown; nil unless the
	// answer was computed by this request.
	Stats *core.Stats
}

// DeleteResult reports what one delete batch (explicit or expiry-driven)
// did to the resident state.
type DeleteResult struct {
	// Count is the number of tuples removed.
	Count int
	// Version is the relation's version after the delete. A batch moves
	// the version once, not once per tuple.
	Version uint64
	// Maintained counts cache entries updated in place through their
	// maintainer; Invalidated counts entries dropped as stale.
	Maintained, Invalidated int
	// Evicted and Resurrected sum the skyline churn across maintained
	// entries: members removed because their pairs were deleted (or
	// renumber-evicted), and former non-members readmitted because every
	// pair that k-dominated them is gone (see core.Maintainer).
	Evicted, Resurrected int
}

// InsertResult reports what one ingest (a single tuple or a whole batch)
// did to the resident state.
type InsertResult struct {
	// ID is the first inserted tuple's assigned index within its
	// relation; a batch occupies IDs [ID, ID+Count).
	ID int
	// Count is the number of tuples appended.
	Count int
	// Version is the relation's version after the insert. A batch moves
	// the version once, not once per tuple.
	Version uint64
	// Maintained counts cache entries updated in place through their
	// maintainer; Invalidated counts entries dropped as stale.
	Maintained, Invalidated int
	// Displaced and Admitted sum the skyline churn across maintained
	// entries (see core.Maintainer).
	Displaced, Admitted int
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Queries        uint64 `json:"queries"`
	CacheHits      uint64 `json:"cache_hits"`
	MaintainedHits uint64 `json:"maintained_hits"`
	Computed       uint64 `json:"computed"`
	Inserts        uint64 `json:"inserts"`
	Batches        uint64 `json:"batches"`
	Deletes        uint64 `json:"deletes"`
	DeleteBatches  uint64 `json:"delete_batches"`
	Expired        uint64 `json:"expired"`
	Rejected       uint64 `json:"rejected"`
	Evictions      uint64 `json:"evictions"`
	Verifies       uint64 `json:"verifies"`

	CacheEntries      int   `json:"cache_entries"`
	MaintainedEntries int   `json:"maintained_entries"`
	Residents         int   `json:"residents"`
	Watches           int   `json:"watches"`
	Busy              int   `json:"busy"`
	Queued            int64 `json:"queued"`

	// Durability counters (DESIGN.md §14). Durable is false for a purely
	// in-memory service, and the rest stay zero. WALRecords/WALBytes
	// measure the live WAL since the last checkpoint — together they bound
	// how much replay a crash now would cost. LastCheckpointMS is
	// milliseconds since the last completed checkpoint (-1: none yet), so
	// recovery lag is observable from /v1/stats alone.
	Durable          bool   `json:"durable"`
	WALRecords       uint64 `json:"wal_records"`
	WALBytes         int64  `json:"wal_bytes"`
	Segments         int    `json:"segments"`
	Checkpoints      uint64 `json:"checkpoints"`
	LastCheckpointMS int64  `json:"last_checkpoint_ms"`

	Relations []RelationInfo `json:"relations"`
}

// Service is the long-lived query service. Create with New, share freely
// across goroutines, Close when done.
type Service struct {
	cfg       Config
	sched     *scheduler
	cache     *answerCache
	residents *residentCache

	// ingestMu serializes ingest batches end to end (single writer) so
	// version history stays linear even though each batch releases mu for
	// its absorption phase. Lock order: ingestMu before mu.
	ingestMu sync.Mutex

	// mu guards the registry and — via read-locking for the whole of
	// query execution — the relations' contents. Ingest takes it
	// exclusively only for its two short commit sections; absorption runs
	// with mu released so readers are never blocked behind maintainer
	// work.
	mu      sync.RWMutex
	rels    map[string]*regRelation
	watches map[watchKey]*watchSet
	closed  atomic.Bool

	// now is the clock windowed relations age against. Production uses
	// time.Now; in-package tests substitute a fake to drive expiry
	// deterministically. Set once in New, before any other goroutine can
	// observe the service.
	now func() time.Time
	// sweepStop/sweepDone bracket the background sweeper's lifetime; nil
	// when Config.SweepInterval disabled it.
	sweepStop chan struct{}
	sweepDone chan struct{}

	// store is the durability subsystem (nil for a purely in-memory
	// service built with New). Every acknowledged mutation appends a WAL
	// record before the commit's exclusive section ends and fsyncs before
	// the caller is acknowledged; the checkpointer periodically folds the
	// WAL into columnar segment files (see Open and DESIGN.md §14).
	store *store.Store
	// replaying is true while Open replays recovered state through the
	// normal mutation paths; the logging hooks skip so recovery does not
	// re-log its own input. Set and cleared before any other goroutine can
	// observe the service.
	replaying bool
	// storeBroken latches after a WAL append or sync failure; every
	// subsequent mutation fails with ErrDurability (see durable.go).
	storeBroken atomic.Bool
	// ckptStop/ckptDone/ckptKick run the background checkpointer; nil
	// when the service is not durable or the interval disabled it.
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptKick chan struct{}

	queries, cacheHits, maintainedHits atomic.Uint64
	computed, inserts, batches         atomic.Uint64
	deletes, deleteBatches, expired    atomic.Uint64
	rejected, verifies                 atomic.Uint64
}

// New builds a Service with the given configuration. State lives only in
// memory and dies with the process; Open builds the durable variant.
func New(cfg Config) *Service {
	s := newService(cfg)
	s.startBackground()
	return s
}

// newService builds the service without starting background goroutines,
// so Open can replay recovered state before the sweeper (whose expiry
// deletes must be logged, not replayed) observes it.
func newService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:       cfg,
		sched:     newScheduler(cfg.MaxConcurrent, cfg.MaxQueue),
		cache:     newAnswerCache(cfg.CacheEntries),
		residents: newResidentCache(),
		rels:      make(map[string]*regRelation),
		watches:   make(map[watchKey]*watchSet),
		now:       time.Now,
	}
}

// startBackground launches the sweeper and (durable services only) the
// checkpointer, honoring the configured intervals.
func (s *Service) startBackground() {
	if s.cfg.SweepInterval >= 0 {
		iv := s.cfg.SweepInterval
		if iv == 0 {
			iv = time.Second
		}
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop(iv)
	}
	if s.store != nil && s.cfg.CheckpointInterval >= 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		s.ckptKick = make(chan struct{}, 1)
		go s.checkpointLoop(s.cfg.CheckpointInterval)
	}
}

// Register adds a relation to the registry at version 1. The service owns
// the relation afterwards: callers must not mutate it except through the
// service's insert and delete paths.
func (s *Service) Register(name string, r *dataset.Relation) (uint64, error) {
	return s.RegisterWindow(name, r, 0)
}

// RegisterWindow registers r as a sliding-window relation: rows older
// than window (counted from their arrival at the service; pre-registered
// rows arrive at registration time) are aged out by the background
// sweeper through the same delete path an explicit DeleteBatch takes, so
// maintained entries and watches see expiry as ordinary deletion. The
// newest row is always retained — registered relations stay non-empty.
// A zero window is exactly Register; a negative one is rejected.
func (s *Service) RegisterWindow(name string, r *dataset.Relation, window time.Duration) (uint64, error) {
	if window < 0 {
		return 0, fmt.Errorf("%w: negative window %v", ErrBadRequest, window)
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if err := s.durableOK(); err != nil {
		return 0, err
	}
	if name == "" {
		return 0, fmt.Errorf("%w: empty relation name", ErrBadRequest)
	}
	if r == nil {
		return 0, fmt.Errorf("%w: nil relation", ErrBadRequest)
	}
	if err := r.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if _, ok := s.rels[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateRelation, name)
	}
	// The same relation under two names would break version coherence:
	// an insert through one name mutates the shared tuples but bumps only
	// that name's version, leaving the alias's cache entries "current"
	// over changed data. Self-joins don't need aliases — use one name on
	// both sides of the request.
	for other, rr := range s.rels {
		if rr.rel == r {
			return 0, fmt.Errorf("%w: relation already registered as %q", ErrDuplicateRelation, other)
		}
	}
	// Registration is durable before it is visible: the WAL record (full
	// columnar payload, so a relation registered after the last checkpoint
	// recovers from the log alone) is appended and fsync'd while the
	// exclusive lock is still held. A failed log leaves the registry
	// untouched.
	if err := s.logSynced(store.Record{Type: store.RecRegister, Relation: name, Rel: r, Window: window}); err != nil {
		return 0, err
	}
	rr := &regRelation{rel: r, version: 1, window: window}
	if window > 0 {
		now := s.now().UnixNano()
		rr.arrivals = make([]int64, r.Len())
		for i := range rr.arrivals {
			rr.arrivals[i] = now
		}
	}
	s.rels[name] = rr
	return 1, nil
}

// RegisterCSV loads a relation from CSV (see dataset.ReadCSV) and
// registers it under name.
func (s *Service) RegisterCSV(name string, rd io.Reader, opts dataset.ReadOptions) (uint64, error) {
	if opts.Name == "" {
		opts.Name = name
	}
	r, err := dataset.ReadCSV(rd, opts)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return s.Register(name, r)
}

// Relations lists the registry, sorted by name.
func (s *Service) Relations() []RelationInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return relationInfos(s.rels)
}

// Relation returns the registered relation and its current version. The
// relation is owned by the service: treat it as read-only, and do not
// read it concurrently with Insert (which appends in place) — callers
// that only need metadata should use RelationInfo, which snapshots under
// the service lock.
func (s *Service) Relation(name string) (*dataset.Relation, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rr, ok := s.rels[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return rr.rel, rr.version, nil
}

// RelationInfo snapshots one relation's metadata (name, version, sizes)
// under the service lock, safe against concurrent inserts.
func (s *Service) RelationInfo(name string) (RelationInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rr, ok := s.rels[name]
	if !ok {
		return RelationInfo{}, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return RelationInfo{
		Name:     name,
		Version:  rr.version,
		Tuples:   rr.rel.Len(),
		Local:    rr.rel.Local,
		Agg:      rr.rel.Agg,
		WindowMS: rr.window.Milliseconds(),
	}, nil
}

// parsed is a QueryRequest after spelling resolution.
type parsed struct {
	cond join.Condition
	agg  join.Aggregator
	alg  core.Algorithm
	auto bool
}

func parseRequest(req QueryRequest) (parsed, error) {
	var p parsed
	var err error
	if p.cond, err = join.ParseCondition(req.Join); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if p.agg, err = join.ParseAggregator(req.Agg); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if p.alg, p.auto, err = core.ParseAlgorithm(req.Algorithm); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Workers > 1 {
		if p.auto {
			// A parallel degree implies the one algorithm that can honor
			// it; skipping the planner is the only non-contradictory
			// reading.
			p.alg, p.auto = core.Grouping, false
		} else if p.alg != core.Grouping {
			return p, fmt.Errorf("%w: workers require the grouping algorithm (got %q)", ErrBadRequest, req.Algorithm)
		}
	}
	return p, nil
}

// resolveLocked builds the normalized query and cache key; the caller
// holds s.mu (read or write).
func (s *Service) resolveLocked(req QueryRequest, p parsed) (core.Query, cacheKey, error) {
	rr1, ok := s.rels[req.R1]
	if !ok {
		return core.Query{}, cacheKey{}, fmt.Errorf("%w: %q", ErrUnknownRelation, req.R1)
	}
	rr2, ok := s.rels[req.R2]
	if !ok {
		return core.Query{}, cacheKey{}, fmt.Errorf("%w: %q", ErrUnknownRelation, req.R2)
	}
	q := core.Query{
		R1:   rr1.rel,
		R2:   rr2.rel,
		Spec: join.Spec{Cond: p.cond, Agg: p.agg},
		K:    req.K,
	}
	key := cacheKey{
		r1: req.R1, r2: req.R2,
		v1: rr1.version, v2: rr2.version,
		cond: p.cond, agg: p.agg.Name, k: req.K,
	}
	return q, key, nil
}

// resolveAndValidate resolves the request and fail-fasts malformed
// queries under one read lock. Validation here is O(1) on purpose:
// registered relations were content-validated by Register and Append
// preserves the invariants, so per-request checks only need the schema
// geometry (k range, aggregate pairing, aggregator strictness) — a full
// q.Validate would rescan every tuple on every request, warm hits
// included. The computed path still runs the full validation inside
// core.Exec, under the same read lock.
func (s *Service) resolveAndValidate(req QueryRequest, p parsed) (core.Query, cacheKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q, key, err := s.resolveLocked(req, p)
	if err != nil {
		return q, key, err
	}
	if err := checkRequest(q, p); err != nil {
		return q, key, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return q, key, nil
}

// checkRequest is the O(1) structural subset of core's query validation.
func checkRequest(q core.Query, p parsed) error {
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return err
	}
	if q.K < q.KMin() || q.K > q.Width() {
		return fmt.Errorf("%v: k=%d, admissible range (%d, %d]", core.ErrBadK, q.K, q.KMin()-1, q.Width())
	}
	// Only the naive algorithm accepts a non-strict aggregator, and the
	// planner never picks on strictness — reject auto here rather than
	// let a planner choice fail deep inside Exec as a server error.
	if q.R1.Agg > 0 && !p.agg.Strict && (p.auto || p.alg != core.Naive) {
		return fmt.Errorf("%v: aggregator %q requires algorithm \"naive\"", core.ErrNonStrictAgg, p.agg.Name)
	}
	return nil
}

// hitResponse assembles a cache/maintained-hit response and bumps the
// counters.
func (s *Service) hitResponse(sky []join.Pair, algo string, maintained bool, key cacheKey, start time.Time) *QueryResponse {
	src := SourceCached
	if maintained {
		src = SourceMaintained
		s.maintainedHits.Add(1)
	} else {
		s.cacheHits.Add(1)
	}
	return &QueryResponse{
		Skyline:   sky,
		Source:    src,
		Algorithm: algo,
		Versions:  [2]uint64{key.v1, key.v2},
		Elapsed:   time.Since(start),
	}
}

// Query answers one request: answer-cache hit, or an admitted engine run
// over the resident index. It is safe for arbitrary concurrent use.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	start := time.Now()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.queries.Add(1)
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	// Bound the execution degree after parsing: the requested value
	// decides algorithm implication and conflicts, but an over-the-wire
	// degree must never spawn goroutines beyond the machine.
	if max := runtime.GOMAXPROCS(0); req.Workers > max {
		req.Workers = max
	}

	// Resolve and validate first — even a request the cache could serve
	// must be rejected if it is malformed, so accept/reject behavior
	// never depends on cache state. Then the fast path: a warm answer
	// needs no admission and no engine work.
	q, key, err := s.resolveAndValidate(req, p)
	if err != nil {
		return nil, err
	}
	if !req.NoCache {
		if sky, algo, maintained, ok := s.cache.lookup(key); ok {
			return s.hitResponse(sky, algo, maintained, key, start), nil
		}
	}

	// Admission: the deadline covers queue wait and execution together.
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.sched.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	defer release()

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// Versions may have moved while the request was queued; resolve again
	// and re-check the cache — an identical query ahead of us in the pool
	// may already have warmed it.
	if q, key, err = s.resolveLocked(req, p); err != nil {
		return nil, err
	}
	if !req.NoCache {
		if sky, algo, maintained, ok := s.cache.lookup(key); ok {
			return s.hitResponse(sky, algo, maintained, key, start), nil
		}
	}

	// The naive algorithm materializes the full join instead of probing
	// and ignores resident structures; don't build them for it.
	var res *core.Resident
	if p.auto || p.alg != core.Naive {
		res, err = s.residents.get(residentKey{r1: key.r1, r2: key.r2, v1: key.v1, v2: key.v2, cond: key.cond}, q)
		if err != nil {
			return nil, err
		}
	}
	alg := p.alg
	if p.auto {
		plan, err := planner.Choose(ctx, q, planner.Options{})
		switch {
		case errors.Is(err, planner.ErrEmptyJoin):
			// Deletes and window expiry can drain the join entirely; that
			// is a valid state whose answer is the empty skyline, not a
			// planning failure. Any algorithm computes it instantly.
			alg = core.Grouping
		case err != nil:
			return nil, err
		default:
			alg = plan.Algorithm
		}
	}
	// The service's query path is built on the same prepared-state surface
	// the ksjq.Prepared facade exposes: every run over resident relations
	// goes through the snapshot's own Exec.
	var out *core.Result
	if res != nil {
		out, err = res.Exec(ctx, q, core.ExecOptions{Algorithm: alg, Workers: req.Workers})
	} else {
		out, err = core.Exec(ctx, q, core.ExecOptions{Algorithm: alg, Workers: req.Workers})
	}
	if err != nil {
		return nil, err
	}
	s.computed.Add(1)
	algo := alg.Token()
	s.cache.store(key, q, out.Skyline, algo)
	return &QueryResponse{
		Skyline:   out.Skyline,
		Source:    SourceComputed,
		Algorithm: algo,
		Versions:  [2]uint64{key.v1, key.v2},
		Elapsed:   time.Since(start),
		Stats:     &out.Stats,
	}, nil
}

// Insert appends one tuple to a registered relation and brings the
// resident state with it. It is InsertBatch with a one-tuple batch —
// the per-tuple path IS the batch path, so the two can never diverge.
func (s *Service) Insert(name string, t dataset.Tuple) (*InsertResult, error) {
	return s.InsertBatch(name, []dataset.Tuple{t})
}

// ingestCombo is the per-(pair, condition) state one batch threads through
// its phases: a representative query (the resident structures are k- and
// aggregator-independent, so any query over the combo serves) and the
// shared Resident every maintained entry and watch set over the combo
// absorbs through.
type ingestCombo struct {
	q   core.Query
	res *core.Resident
}

// InsertBatch appends a batch of tuples to a registered relation as one
// group commit: one physical append, one version bump, one resident
// build (or in-place extension) per affected (pair, condition), one
// maintainer absorption per cache entry and watch set, one coalesced
// WatchEvent per subscriber. The final skyline is identical to inserting
// the tuples one at a time (insert-monotonicity makes batch absorption
// order-insensitive); only the intermediate versions are skipped.
//
// Locking: the batch runs in three phases. Phase 1 (exclusive) appends
// and unhooks every affected entry, watch set, and resident. Phase 2
// holds no service lock — the expensive verification work runs while
// concurrent queries execute freely, recomputing at the new versions.
// Phase 3 (exclusive) publishes the absorbed state and watch deltas.
// Batches are serialized against each other by ingestMu.
func (s *Service) InsertBatch(name string, ts []dataset.Tuple) (*InsertResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.durableOK(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}

	// Phase 1 — group commit under the exclusive lock: append the batch,
	// bump the version, and pull everything the batch must update out of
	// reach of concurrent readers.
	s.mu.Lock()
	rr, ok := s.rels[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	first, err := rr.rel.AppendBatch(ts)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if rr.window > 0 {
		now := s.now().UnixNano()
		for range ts {
			rr.arrivals = append(rr.arrivals, now)
		}
	}
	oldV := rr.version
	rr.version++
	newV := rr.version
	s.inserts.Add(uint64(len(ts)))
	s.batches.Add(1)
	ids := make([]int, len(ts))
	for i := range ids {
		ids[i] = first + i
	}
	out := &InsertResult{ID: first, Count: len(ts), Version: newV}
	plan, invalidated := s.takeAffectedLocked(name, oldV, newV)
	out.Invalidated += invalidated
	// WAL append happens inside the exclusive section so the log order is
	// the commit order; the fsync (the durability point the ack waits on)
	// runs after the lock drops, overlapping the absorption phase.
	walSeq, walErr := s.logAppend(store.Record{Type: store.RecInsert, Relation: name, Tuples: ts})
	s.mu.Unlock()
	if walErr == nil {
		walErr = s.logSync(walSeq)
	}

	// Phase 2 — absorb with no service lock held. Everything touched here
	// (taken entries, watch maintainers, reclaimed residents) is
	// unreachable by concurrent queries; readers run freely and recompute
	// at the new versions.
	for key, cs := range plan.combos {
		if cs.res != nil {
			if err := extendResident(cs.res, key.r1 == name, key.r2 == name, ids); err != nil {
				cs.res = nil // fall back to a fresh build
			}
		}
		if cs.res == nil {
			// Best effort: a failed build (unreachable for registry-owned
			// relations) just means this combo absorbs without sharing.
			cs.res, _ = core.NewResident(cs.q)
		}
	}
	entOut := make([]mutationOutcome, len(plan.live))
	for i, e := range plan.live {
		if res := plan.combos[plan.liveCombos[i]].res; res != nil {
			e.m.UseResident(res)
		}
		d, a, err := absorbBatchInto(e.m, e.key.r1 == name, e.key.r2 == name, ids)
		if err != nil {
			entOut[i].err = err
			continue
		}
		entOut[i].churnA, entOut[i].churnB = d, a
		// Refresh the served snapshot once per batch so cache hits stay
		// O(1) instead of paying the maintainer's copy-and-sort.
		e.skyline = e.m.Skyline()
	}
	wsOut := make([]mutationOutcome, len(plan.wsets))
	for i, ws := range plan.wsets {
		if res := plan.combos[plan.wsCombos[i]].res; res != nil {
			ws.m.UseResident(res)
		}
		if _, _, err := absorbBatchInto(ws.m, ws.key.r1 == name, ws.key.r2 == name, ids); err != nil {
			wsOut[i].err = err
			continue
		}
		wsOut[i].cur = ws.m.Skyline()
	}

	// Phase 3.
	s.mu.Lock()
	maintained, invalidated, displaced, admitted := s.publishLocked(plan, entOut, wsOut)
	s.mu.Unlock()
	out.Maintained += maintained
	out.Invalidated += invalidated
	out.Displaced += displaced
	out.Admitted += admitted
	if walErr != nil {
		// The batch is applied in memory (phases ran, so resident state
		// stays coherent) but its durability is unknown — refuse the ack.
		// logAppend/logSync already latched storeBroken.
		return nil, walErr
	}
	return out, nil
}

// mutationPlan is everything one mutation batch (insert or delete) pulled
// out of reach of concurrent readers during its first exclusive section:
// the still-current cache entries (promoted to live maintenance), the
// affected watch sets (flagged absorbing), and one shared resident slot
// per (pair, condition) combo.
type mutationPlan struct {
	live       []*entry
	liveCombos []residentKey
	wsets      []*watchSet
	wsCombos   []residentKey
	wsVersions [][2]uint64
	combos     map[residentKey]*ingestCombo
}

// mutationOutcome is what phase 2 produced for one taken entry or watch
// set. churnA/churnB are displaced/admitted for inserts and
// evicted/resurrected for deletes.
type mutationOutcome struct {
	churnA, churnB int
	cur            []join.Pair
	err            error
}

// takeAffectedLocked is the shared tail of phase 1: with the relation
// already mutated and its version bumped oldV→newV, pull every affected
// cache entry, watch set, and resident out of reach. Stale entries are
// dropped (counted in the returned invalidated); current ones are
// promoted to live maintenance and re-stamped at newV. The caller holds
// s.mu exclusively.
func (s *Service) takeAffectedLocked(name string, oldV, newV uint64) (*mutationPlan, int) {
	plan := &mutationPlan{combos: make(map[residentKey]*ingestCombo)}
	invalidated := 0

	// Cache entries still current at the old version are promoted to live
	// maintenance; stale ones drop. Taken entries are unreachable by
	// lookups until phase 3 restores them.
	for _, e := range s.cache.takeForRelation(name) {
		if !s.entryCurrent(e, name, oldV) {
			s.cache.drop(e)
			invalidated++
			continue
		}
		if e.key.r1 == name {
			e.key.v1 = newV
		}
		if e.key.r2 == name {
			e.key.v2 = newV
		}
		if e.m == nil {
			// Promotion is free: the cached skyline at the pre-batch
			// version seeds the maintainer, no recomputation. Queries the
			// maintainer cannot take (non-strict aggregators) fall back
			// to invalidation.
			m, err := core.NewMaintainerFrom(e.q, e.skyline)
			if err != nil {
				s.cache.drop(e)
				invalidated++
				continue
			}
			e.m = m
		}
		plan.live = append(plan.live, e)
		plan.liveCombos = append(plan.liveCombos, residentKey{r1: e.key.r1, r2: e.key.r2, v1: e.key.v1, v2: e.key.v2, cond: e.key.cond})
	}

	// Affected watch sets: flag them as absorbing so a last unsubscribe
	// during phase 2 cannot close the maintainer out from under us —
	// phase 3 finishes such a teardown itself.
	for wkey, ws := range s.watches {
		if wkey.r1 != name && wkey.r2 != name {
			continue
		}
		v1, v2 := s.rels[wkey.r1].version, s.rels[wkey.r2].version
		ws.absorbing = true
		plan.wsets = append(plan.wsets, ws)
		plan.wsCombos = append(plan.wsCombos, residentKey{r1: wkey.r1, r2: wkey.r2, v1: v1, v2: v2, cond: wkey.cond})
		plan.wsVersions = append(plan.wsVersions, [2]uint64{v1, v2})
	}

	// One shared Resident per affected combo. Reclaim the pre-batch
	// snapshot where the cache has one — phase 2 advances it in place
	// instead of rebuilding — then orphan whatever else references the
	// mutated relation.
	addCombo := func(key residentKey, q core.Query) {
		if _, ok := plan.combos[key]; !ok {
			plan.combos[key] = &ingestCombo{q: q}
		}
	}
	for i, e := range plan.live {
		addCombo(plan.liveCombos[i], e.q)
	}
	for i, ws := range plan.wsets {
		addCombo(plan.wsCombos[i], ws.q)
	}
	for key, cs := range plan.combos {
		oldKey := key
		if oldKey.r1 == name {
			oldKey.v1 = oldV
		}
		if oldKey.r2 == name {
			oldKey.v2 = oldV
		}
		cs.res = s.residents.take(oldKey)
	}
	s.residents.dropRelation(name)
	return plan, invalidated
}

// publishLocked is the shared phase 3: restore maintained entries, fan
// one coalesced delta per batch out to watchers, seed the resident cache
// for the next query. Returns the maintained/invalidated entry counts and
// the summed churn. The caller holds s.mu exclusively.
func (s *Service) publishLocked(plan *mutationPlan, entOut, wsOut []mutationOutcome) (maintained, invalidated, churnA, churnB int) {
	for i, e := range plan.live {
		if entOut[i].err != nil {
			s.cache.drop(e)
			invalidated++
			continue
		}
		churnA += entOut[i].churnA
		churnB += entOut[i].churnB
		s.cache.restore(e)
		maintained++
	}
	for i, ws := range plan.wsets {
		ws.absorbing = false
		if wsOut[i].err != nil {
			// Unreachable for registry-owned relations; fail loudly rather
			// than silently drift: every subscriber ends with the error.
			if s.watches[ws.key] == ws {
				delete(s.watches, ws.key)
			}
			ws.m.Close()
			for sub := range ws.subs {
				sub.terminate(wsOut[i].err)
			}
			continue
		}
		if len(ws.subs) == 0 {
			// The last subscriber left during phase 2; removeWatch deferred
			// the teardown to us.
			if s.watches[ws.key] == ws {
				delete(s.watches, ws.key)
			}
			ws.m.Close()
			continue
		}
		added, removed := diffPairs(ws.last, wsOut[i].cur)
		ws.last = wsOut[i].cur
		ws.versions = plan.wsVersions[i]
		for sub := range ws.subs {
			sub.enqueue(WatchEvent{Added: added, Removed: removed, Versions: ws.versions})
		}
	}
	for key, cs := range plan.combos {
		if cs.res != nil {
			s.residents.put(key, cs.res)
		}
	}
	return maintained, invalidated, churnA, churnB
}

// entryCurrent reports whether a cache entry is valid at the registry
// state immediately before the current insert: the inserted relation at
// its pre-bump version, every other relation at its live version. The
// caller holds s.mu.
func (s *Service) entryCurrent(e *entry, name string, oldV uint64) bool {
	versionOf := func(rel string) (uint64, bool) {
		if rel == name {
			return oldV, true
		}
		rr, ok := s.rels[rel]
		if !ok {
			return 0, false
		}
		return rr.version, true
	}
	v1, ok1 := versionOf(e.key.r1)
	v2, ok2 := versionOf(e.key.r2)
	return ok1 && ok2 && e.key.v1 == v1 && e.key.v2 == v2
}

// extendResident advances a reclaimed pre-batch Resident over the
// appended tail, on every side the mutated relation occupies (both, for a
// self-join).
func extendResident(res *core.Resident, left, right bool, ids []int) error {
	if left {
		if err := res.Absorb(core.Left, ids); err != nil {
			return err
		}
	}
	if right {
		if err := res.Absorb(core.Right, ids); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes one tuple from a registered relation and brings the
// resident state with it. It is DeleteBatch with a one-id batch — the
// per-tuple path IS the batch path, so the two can never diverge.
func (s *Service) Delete(name string, id int) (*DeleteResult, error) {
	return s.DeleteBatch(name, []int{id})
}

// DeleteBatch removes a batch of tuples (by current row id) from a
// registered relation as one group commit: one physical compaction, one
// version bump, one resident retract (or rebuild) per affected (pair,
// condition), one maintainer retraction per cache entry and watch set,
// one coalesced WatchEvent per subscriber carrying the genuine Removed
// deltas plus any resurrection Added deltas. Ids may arrive in any order
// but must be in range and free of duplicates; the batch is rejected
// whole before anything mutates. Deleting every row is rejected too —
// registered relations stay non-empty.
//
// Locking mirrors InsertBatch: phase 1 (exclusive) compacts the relation
// and unhooks every affected entry, watch set, and resident; phase 2
// holds no service lock — eviction and resurrection re-verification run
// while concurrent queries execute freely at the new versions; phase 3
// (exclusive) publishes the retracted state and watch deltas. Batches are
// serialized against inserts and other deletes by ingestMu.
func (s *Service) DeleteBatch(name string, ids []int) (*DeleteResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.durableOK(); err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.deleteBatchLocked(name, ids, false)
}

// deleteBatchLocked is DeleteBatch after admission: the caller holds
// ingestMu (the sweeper calls it directly, already inside its own ingest
// turn). expiry marks sweeper-driven deletes in the counters.
func (s *Service) deleteBatchLocked(name string, ids []int, expiry bool) (*DeleteResult, error) {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)

	// Phase 1 — group commit under the exclusive lock: validate the whole
	// batch, snapshot the doomed rows if the incremental path will want
	// them, compact the relation, bump the version, and pull everything
	// the batch must update out of reach of concurrent readers.
	s.mu.Lock()
	rr, ok := s.rels[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	n := rr.rel.Len()
	for i, id := range sorted {
		if id < 0 || id >= n {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: delete index %d out of range [0,%d)", ErrBadRequest, id, n)
		}
		if i > 0 && sorted[i-1] == id {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: duplicate delete index %d", ErrBadRequest, id)
		}
	}
	if len(sorted) >= n {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot delete all %d rows of %q (registered relations stay non-empty)", ErrBadRequest, n, name)
	}
	// The resurrection filter needs the deleted rows' pairs, and the rows
	// are unrecoverable once the columns compact — snapshot them now, but
	// only when the batch is small enough that maintainers will take the
	// incremental arm (past the hybrid threshold they recompute and the
	// snapshot would be dead weight).
	var del *dataset.Relation
	if !core.RetractPrefersRecompute(len(sorted), n-len(sorted)) {
		del = core.SnapshotRows(rr.rel, sorted)
	}
	if err := rr.rel.DeleteBatch(sorted); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if rr.window > 0 {
		keep := rr.arrivals[:0]
		next := 0
		for i, at := range rr.arrivals {
			if next < len(sorted) && sorted[next] == i {
				next++
				continue
			}
			keep = append(keep, at)
		}
		rr.arrivals = keep
	}
	oldV := rr.version
	rr.version++
	newV := rr.version
	s.deletes.Add(uint64(len(sorted)))
	s.deleteBatches.Add(1)
	if expiry {
		s.expired.Add(uint64(len(sorted)))
	}
	out := &DeleteResult{Count: len(sorted), Version: newV}
	plan, invalidated := s.takeAffectedLocked(name, oldV, newV)
	out.Invalidated += invalidated
	// Log inside the exclusive section (commit order), fsync after it
	// (overlapping retraction). Expiry-driven deletes are logged like any
	// other: replay reproduces them verbatim instead of re-deriving them
	// from a clock that no longer matches the rows' arrival times.
	walSeq, walErr := s.logAppend(store.Record{Type: store.RecDelete, Relation: name, IDs: sorted, Expiry: expiry})
	s.mu.Unlock()
	if walErr == nil {
		walErr = s.logSync(walSeq)
	}

	// Phase 2 — retract with no service lock held. Reclaimed residents
	// compact in place (O(survivors)); a failed retract falls back to a
	// fresh build over the compacted relation.
	for key, cs := range plan.combos {
		if cs.res != nil {
			if err := retractResident(cs.res, key.r1 == name, key.r2 == name, sorted); err != nil {
				cs.res = nil
			}
		}
		if cs.res == nil {
			cs.res, _ = core.NewResident(cs.q)
		}
	}
	// One RetractSet per (sides, condition, aggregator, k) the live
	// entries and watch sets actually use. The combo key alone is not
	// enough: the group-prune thresholds bake in k and the pair points
	// bake in the aggregator.
	type retractSetKey struct {
		r1, r2 string
		cond   join.Condition
		agg    string
		k      int
	}
	rsets := make(map[retractSetKey]*core.RetractSet)
	rsFor := func(q core.Query, r1, r2 string) *core.RetractSet {
		if del == nil {
			return nil // past the hybrid threshold: maintainers recompute
		}
		rk := retractSetKey{r1: r1, r2: r2, cond: q.Spec.Cond, agg: q.Spec.Agg.Name, k: q.K}
		rs, ok := rsets[rk]
		if !ok {
			rs = core.NewRetractSet(q, r1 == name, r2 == name, del)
			rsets[rk] = rs
		}
		return rs
	}
	entOut := make([]mutationOutcome, len(plan.live))
	for i, e := range plan.live {
		if res := plan.combos[plan.liveCombos[i]].res; res != nil {
			e.m.UseResident(res)
		}
		ev, ad, err := e.m.RetractBatch(e.key.r1 == name, e.key.r2 == name, sorted, rsFor(e.q, e.key.r1, e.key.r2))
		if err != nil {
			entOut[i].err = err
			continue
		}
		entOut[i].churnA, entOut[i].churnB = ev, ad
		e.skyline = e.m.Skyline()
	}
	wsOut := make([]mutationOutcome, len(plan.wsets))
	for i, ws := range plan.wsets {
		if res := plan.combos[plan.wsCombos[i]].res; res != nil {
			ws.m.UseResident(res)
		}
		if _, _, err := ws.m.RetractBatch(ws.key.r1 == name, ws.key.r2 == name, sorted, rsFor(ws.q, ws.key.r1, ws.key.r2)); err != nil {
			wsOut[i].err = err
			continue
		}
		wsOut[i].cur = ws.m.Skyline()
	}

	// Phase 3.
	s.mu.Lock()
	maintained, invalidated, evicted, resurrected := s.publishLocked(plan, entOut, wsOut)
	s.mu.Unlock()
	out.Maintained += maintained
	out.Invalidated += invalidated
	out.Evicted += evicted
	out.Resurrected += resurrected
	if walErr != nil {
		return nil, walErr // applied in memory, durability unknown — no ack
	}
	return out, nil
}

// Sweep ages expired rows out of every windowed relation immediately,
// regardless of the sweep interval, and reports how many rows it removed.
// The background sweeper calls it on its ticker; tests that disabled the
// sweeper (negative Config.SweepInterval) call it to drive expiry
// deterministically.
func (s *Service) Sweep() int {
	if s.closed.Load() || s.durableOK() != nil {
		return 0
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Load() {
		return 0
	}

	// Arrival stamps are ascending, so the expired rows of each relation
	// are a prefix: one binary search per relation finds the cut. The
	// newest row is always retained (registered relations stay non-empty).
	now := s.now().UnixNano()
	type cut struct {
		name string
		n    int
	}
	var cuts []cut
	s.mu.RLock()
	for name, rr := range s.rels {
		if rr.window <= 0 {
			continue
		}
		deadline := now - int64(rr.window)
		j := sort.Search(len(rr.arrivals), func(i int) bool { return rr.arrivals[i] > deadline })
		if j >= rr.rel.Len() {
			j = rr.rel.Len() - 1
		}
		if j > 0 {
			cuts = append(cuts, cut{name: name, n: j})
		}
	}
	s.mu.RUnlock()

	total := 0
	for _, c := range cuts {
		ids := make([]int, c.n)
		for i := range ids {
			ids[i] = i
		}
		// The only failure mode left after the scan is the relation having
		// been deleted between locks — impossible while we hold ingestMu —
		// so errors here are structural and safe to skip past.
		if res, err := s.deleteBatchLocked(c.name, ids, true); err == nil {
			total += res.Count
		}
	}
	return total
}

// sweepLoop is the background sweeper goroutine: one Sweep per tick until
// Close.
func (s *Service) sweepLoop(interval time.Duration) {
	defer close(s.sweepDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// retractResident compacts a reclaimed pre-batch Resident around the
// deleted rows, on every side the mutated relation occupies (both, for a
// self-join).
func retractResident(res *core.Resident, left, right bool, ids []int) error {
	if left {
		if err := res.Retract(core.Left, ids); err != nil {
			return err
		}
	}
	if right {
		if err := res.Retract(core.Right, ids); err != nil {
			return err
		}
	}
	return nil
}

// absorbBatchInto folds the appended tail into a maintainer on every side
// the mutated relation occupies (both, for a self-join).
func absorbBatchInto(m *core.Maintainer, left, right bool, ids []int) (displaced, admitted int, err error) {
	if left {
		d, a, err := m.AbsorbBatchLeft(ids)
		if err != nil {
			return 0, 0, err
		}
		displaced += d
		admitted += a
	}
	if right {
		d, a, err := m.AbsorbBatchRight(ids)
		if err != nil {
			return 0, 0, err
		}
		displaced += d
		admitted += a
	}
	return displaced, admitted, nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	entries, maintained, evictions := s.cache.stats()
	s.mu.RLock()
	rels := relationInfos(s.rels)
	watches := 0
	for _, ws := range s.watches {
		watches += len(ws.subs)
	}
	s.mu.RUnlock()
	out := Stats{
		Queries:           s.queries.Load(),
		CacheHits:         s.cacheHits.Load(),
		MaintainedHits:    s.maintainedHits.Load(),
		Computed:          s.computed.Load(),
		Inserts:           s.inserts.Load(),
		Batches:           s.batches.Load(),
		Deletes:           s.deletes.Load(),
		DeleteBatches:     s.deleteBatches.Load(),
		Expired:           s.expired.Load(),
		Rejected:          s.rejected.Load(),
		Evictions:         evictions,
		Verifies:          s.verifies.Load(),
		CacheEntries:      entries,
		MaintainedEntries: maintained,
		Residents:         s.residents.len(),
		Watches:           watches,
		Busy:              s.sched.busy(),
		Queued:            s.sched.queued(),
		LastCheckpointMS:  -1,
		Relations:         rels,
	}
	if s.store != nil {
		ss := s.store.Stats()
		out.Durable = true
		out.WALRecords = ss.WALRecords
		out.WALBytes = ss.WALBytes
		out.Segments = ss.Segments
		out.Checkpoints = ss.Checkpoints
		if !ss.LastCheckpoint.IsZero() {
			out.LastCheckpointMS = time.Since(ss.LastCheckpoint).Milliseconds()
		}
	}
	return out
}

// Close marks the service closed, waits for in-flight queries, and
// releases the cache (closing every live maintainer). Close is
// idempotent; methods called after it return ErrClosed.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the background tickers first; a sweep or checkpoint already past
	// the closed check just rides out its ingest turn like any in-flight
	// batch.
	if s.sweepStop != nil {
		close(s.sweepStop)
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
	}
	// Wait out any in-flight batch (a batch that started before the CAS is
	// entitled to publish its phase 3), then let the exclusive lock drain
	// every reader: no query is mid-execution when the cache and registry
	// go away.
	s.ingestMu.Lock()
	s.mu.Lock()
	// Final checkpoint while the registry is still intact, so a clean
	// shutdown restarts from segments alone with an empty WAL. Best effort:
	// on failure the WAL still holds everything, recovery just replays.
	var ckptErr error
	if s.store != nil && !s.storeBroken.Load() {
		ckptErr = s.checkpointLocked()
	}
	s.cache.closeAll()
	s.closeWatchesLocked() // every subscription ends with ErrClosed
	s.residents.clear()    // resident indexes pin O(n) per pair — release them
	s.rels = make(map[string]*regRelation)
	s.mu.Unlock()
	s.ingestMu.Unlock()
	// Only join the background goroutines after releasing the locks — they
	// may be blocked on ingestMu inside a final turn, which will see closed
	// and bail.
	if s.sweepDone != nil {
		<-s.sweepDone
	}
	if s.ckptDone != nil {
		<-s.ckptDone
	}
	if s.store != nil {
		if err := s.store.Close(); ckptErr == nil {
			ckptErr = err
		}
	}
	return ckptErr
}
