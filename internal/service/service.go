// Package service implements ksjqd, the long-lived KSJQ query service: a
// relation registry whose datasets are loaded once and kept resident, an
// answer cache keyed by (relation versions, normalized query) whose
// entries are promoted to live incremental maintenance when inserts
// arrive, and an admission scheduler that runs queries through the
// engine's unified Exec path with per-request deadlines and a bounded
// worker pool.
//
// The point of the layer is amortization — the substrate PR 2 built makes
// every query cancellable and uniform, but each invocation still paid to
// rebuild join indexes and recompute answers from scratch. Here the
// expensive structures become resident:
//
//   - relations are registered once and versioned; every mutation goes
//     through the service, so a (name, version) pair pins exact contents;
//   - the engine's per-(pair, condition) structures (core.Resident: the
//     full-R2 join index, probe orders, base-point tables) are built once
//     and shared by every admitted query over that pair;
//   - answers are cached under the normalized query (versions, condition,
//     aggregator, k — algorithm is deliberately not part of the key, every
//     strategy computes the same skyline);
//   - an insert does not blow the cache away: entries at the current
//     version are promoted, for free, to core.Maintainer-backed live
//     entries (core.NewMaintainerFrom) and the new tuple is absorbed
//     incrementally, so dashboard-style repeated queries keep hitting
//     warm answers across updates;
//   - the same maintainer machinery points outward through Watch
//     (watch.go): a query becomes a standing subscription whose
//     Added/Removed deltas are published on every insert.
//
// Concurrency model: queries hold the service's read lock while they
// execute (relations are read-only during evaluation), inserts hold the
// write lock (single writer, serialized against all reads). The answer
// cache has its own mutex for O(1) hit bookkeeping, and entries being
// mutated by an insert are removed from the cache first, so a cache hit
// never observes a half-absorbed answer.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/planner"
)

// Service errors (beyond the registry's and scheduler's).
var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("service: closed")
	// ErrBadRequest wraps request validation failures (unknown spellings,
	// schema violations, k out of range) so transports can map them to
	// client errors (HTTP 400) rather than server faults.
	ErrBadRequest = errors.New("service: bad request")
)

// DefaultRequestTimeout is the per-request deadline applied when neither
// the configuration nor the request sets one. ksjqd's wire-facing clamp
// shares this constant so the operator bound and the service default
// cannot drift.
const DefaultRequestTimeout = 30 * time.Second

// Config tunes one Service. The zero value picks sensible defaults.
type Config struct {
	// MaxConcurrent bounds queries executing at once. Default: GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a worker slot; anything beyond
	// is rejected with ErrOverloaded. Default: 64.
	MaxQueue int
	// DefaultTimeout bounds each request (queue wait + execution) when the
	// request itself does not set one. Default: 30s. Negative: no deadline.
	DefaultTimeout time.Duration
	// CacheEntries bounds the answer cache (LRU). Default: 256.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = DefaultRequestTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	return c
}

// QueryRequest is one query against registered relations. Join, Agg and
// Algorithm use the CLI spellings ("eq"/"cross"/"lt"/"le"/"gt"/"ge",
// "sum"/"max"/"min", "auto"/"naive"/"grouping"/"dominator"); empty strings
// mean equality join, sum, and the sampling planner respectively.
type QueryRequest struct {
	R1, R2    string
	K         int
	Join      string
	Agg       string
	Algorithm string
	// Workers > 1 parallelizes candidate verification; the execution
	// degree is clamped to GOMAXPROCS (requests arrive over the wire; an
	// oversized degree must not spawn goroutines beyond the machine).
	// The requested value implies the grouping algorithm: combined with
	// "auto" the planner is skipped and grouping runs; combined with
	// another explicit algorithm the request is rejected (same
	// contradiction the CLI rejects).
	Workers int
	// Timeout bounds this request (queue wait + execution); 0 defers to
	// Config.DefaultTimeout, negative means no deadline.
	Timeout time.Duration
	// NoCache skips the answer-cache lookup (the result still refreshes
	// the cache) — for callers that need a recompute, not a warm answer.
	NoCache bool
}

// Source says where an answer came from.
type Source string

const (
	// SourceComputed: a full engine run (over the resident index).
	SourceComputed Source = "computed"
	// SourceCached: the answer cache, unchanged since it was computed.
	SourceCached Source = "cached"
	// SourceMaintained: a live entry kept current incrementally by a
	// core.Maintainer across inserts.
	SourceMaintained Source = "maintained"
)

// QueryResponse is one answer. Skyline is shared with the service's cache
// and must be treated as read-only.
type QueryResponse struct {
	Skyline []join.Pair
	Source  Source
	// Algorithm is the strategy that computed the answer — for cache and
	// maintained hits, the one that computed it originally.
	Algorithm string
	// Versions are the (R1, R2) registry versions the answer is valid at.
	Versions [2]uint64
	// Elapsed is the service-side wall time for this request.
	Elapsed time.Duration
	// Stats carries the engine's per-phase breakdown; nil unless the
	// answer was computed by this request.
	Stats *core.Stats
}

// InsertResult reports what one insert did to the resident state.
type InsertResult struct {
	// ID is the tuple's assigned index within its relation.
	ID int
	// Version is the relation's version after the insert.
	Version uint64
	// Maintained counts cache entries updated in place through their
	// maintainer; Invalidated counts entries dropped as stale.
	Maintained, Invalidated int
	// Displaced and Admitted sum the skyline churn across maintained
	// entries (see core.Maintainer).
	Displaced, Admitted int
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Queries        uint64 `json:"queries"`
	CacheHits      uint64 `json:"cache_hits"`
	MaintainedHits uint64 `json:"maintained_hits"`
	Computed       uint64 `json:"computed"`
	Inserts        uint64 `json:"inserts"`
	Rejected       uint64 `json:"rejected"`
	Evictions      uint64 `json:"evictions"`

	CacheEntries      int   `json:"cache_entries"`
	MaintainedEntries int   `json:"maintained_entries"`
	Residents         int   `json:"residents"`
	Watches           int   `json:"watches"`
	Busy              int   `json:"busy"`
	Queued            int64 `json:"queued"`

	Relations []RelationInfo `json:"relations"`
}

// Service is the long-lived query service. Create with New, share freely
// across goroutines, Close when done.
type Service struct {
	cfg       Config
	sched     *scheduler
	cache     *answerCache
	residents *residentCache

	// mu guards the registry and — via read-locking for the whole of
	// query execution — the relations' contents. Inserts take it
	// exclusively: single writer, serialized against every reader.
	mu      sync.RWMutex
	rels    map[string]*regRelation
	watches map[watchKey]*watchSet
	closed  atomic.Bool

	queries, cacheHits, maintainedHits atomic.Uint64
	computed, inserts, rejected        atomic.Uint64
}

// New builds a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:       cfg,
		sched:     newScheduler(cfg.MaxConcurrent, cfg.MaxQueue),
		cache:     newAnswerCache(cfg.CacheEntries),
		residents: newResidentCache(),
		rels:      make(map[string]*regRelation),
		watches:   make(map[watchKey]*watchSet),
	}
}

// Register adds a relation to the registry at version 1. The service owns
// the relation afterwards: callers must not mutate it except through
// Insert.
func (s *Service) Register(name string, r *dataset.Relation) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if name == "" {
		return 0, fmt.Errorf("%w: empty relation name", ErrBadRequest)
	}
	if r == nil {
		return 0, fmt.Errorf("%w: nil relation", ErrBadRequest)
	}
	if err := r.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if _, ok := s.rels[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateRelation, name)
	}
	// The same relation under two names would break version coherence:
	// an insert through one name mutates the shared tuples but bumps only
	// that name's version, leaving the alias's cache entries "current"
	// over changed data. Self-joins don't need aliases — use one name on
	// both sides of the request.
	for other, rr := range s.rels {
		if rr.rel == r {
			return 0, fmt.Errorf("%w: relation already registered as %q", ErrDuplicateRelation, other)
		}
	}
	s.rels[name] = &regRelation{rel: r, version: 1}
	return 1, nil
}

// RegisterCSV loads a relation from CSV (see dataset.ReadCSV) and
// registers it under name.
func (s *Service) RegisterCSV(name string, rd io.Reader, opts dataset.ReadOptions) (uint64, error) {
	if opts.Name == "" {
		opts.Name = name
	}
	r, err := dataset.ReadCSV(rd, opts)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return s.Register(name, r)
}

// Relations lists the registry, sorted by name.
func (s *Service) Relations() []RelationInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return relationInfos(s.rels)
}

// Relation returns the registered relation and its current version. The
// relation is owned by the service: treat it as read-only, and do not
// read it concurrently with Insert (which appends in place) — callers
// that only need metadata should use RelationInfo, which snapshots under
// the service lock.
func (s *Service) Relation(name string) (*dataset.Relation, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rr, ok := s.rels[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return rr.rel, rr.version, nil
}

// RelationInfo snapshots one relation's metadata (name, version, sizes)
// under the service lock, safe against concurrent inserts.
func (s *Service) RelationInfo(name string) (RelationInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rr, ok := s.rels[name]
	if !ok {
		return RelationInfo{}, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return RelationInfo{
		Name:    name,
		Version: rr.version,
		Tuples:  rr.rel.Len(),
		Local:   rr.rel.Local,
		Agg:     rr.rel.Agg,
	}, nil
}

// parsed is a QueryRequest after spelling resolution.
type parsed struct {
	cond join.Condition
	agg  join.Aggregator
	alg  core.Algorithm
	auto bool
}

func parseRequest(req QueryRequest) (parsed, error) {
	var p parsed
	var err error
	if p.cond, err = join.ParseCondition(req.Join); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if p.agg, err = join.ParseAggregator(req.Agg); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if p.alg, p.auto, err = core.ParseAlgorithm(req.Algorithm); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Workers > 1 {
		if p.auto {
			// A parallel degree implies the one algorithm that can honor
			// it; skipping the planner is the only non-contradictory
			// reading.
			p.alg, p.auto = core.Grouping, false
		} else if p.alg != core.Grouping {
			return p, fmt.Errorf("%w: workers require the grouping algorithm (got %q)", ErrBadRequest, req.Algorithm)
		}
	}
	return p, nil
}

// resolveLocked builds the normalized query and cache key; the caller
// holds s.mu (read or write).
func (s *Service) resolveLocked(req QueryRequest, p parsed) (core.Query, cacheKey, error) {
	rr1, ok := s.rels[req.R1]
	if !ok {
		return core.Query{}, cacheKey{}, fmt.Errorf("%w: %q", ErrUnknownRelation, req.R1)
	}
	rr2, ok := s.rels[req.R2]
	if !ok {
		return core.Query{}, cacheKey{}, fmt.Errorf("%w: %q", ErrUnknownRelation, req.R2)
	}
	q := core.Query{
		R1:   rr1.rel,
		R2:   rr2.rel,
		Spec: join.Spec{Cond: p.cond, Agg: p.agg},
		K:    req.K,
	}
	key := cacheKey{
		r1: req.R1, r2: req.R2,
		v1: rr1.version, v2: rr2.version,
		cond: p.cond, agg: p.agg.Name, k: req.K,
	}
	return q, key, nil
}

// resolveAndValidate resolves the request and fail-fasts malformed
// queries under one read lock. Validation here is O(1) on purpose:
// registered relations were content-validated by Register and Append
// preserves the invariants, so per-request checks only need the schema
// geometry (k range, aggregate pairing, aggregator strictness) — a full
// q.Validate would rescan every tuple on every request, warm hits
// included. The computed path still runs the full validation inside
// core.Exec, under the same read lock.
func (s *Service) resolveAndValidate(req QueryRequest, p parsed) (core.Query, cacheKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q, key, err := s.resolveLocked(req, p)
	if err != nil {
		return q, key, err
	}
	if err := checkRequest(q, p); err != nil {
		return q, key, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return q, key, nil
}

// checkRequest is the O(1) structural subset of core's query validation.
func checkRequest(q core.Query, p parsed) error {
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return err
	}
	if q.K < q.KMin() || q.K > q.Width() {
		return fmt.Errorf("%v: k=%d, admissible range (%d, %d]", core.ErrBadK, q.K, q.KMin()-1, q.Width())
	}
	// Only the naive algorithm accepts a non-strict aggregator, and the
	// planner never picks on strictness — reject auto here rather than
	// let a planner choice fail deep inside Exec as a server error.
	if q.R1.Agg > 0 && !p.agg.Strict && (p.auto || p.alg != core.Naive) {
		return fmt.Errorf("%v: aggregator %q requires algorithm \"naive\"", core.ErrNonStrictAgg, p.agg.Name)
	}
	return nil
}

// hitResponse assembles a cache/maintained-hit response and bumps the
// counters.
func (s *Service) hitResponse(sky []join.Pair, algo string, maintained bool, key cacheKey, start time.Time) *QueryResponse {
	src := SourceCached
	if maintained {
		src = SourceMaintained
		s.maintainedHits.Add(1)
	} else {
		s.cacheHits.Add(1)
	}
	return &QueryResponse{
		Skyline:   sky,
		Source:    src,
		Algorithm: algo,
		Versions:  [2]uint64{key.v1, key.v2},
		Elapsed:   time.Since(start),
	}
}

// Query answers one request: answer-cache hit, or an admitted engine run
// over the resident index. It is safe for arbitrary concurrent use.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	start := time.Now()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.queries.Add(1)
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	// Bound the execution degree after parsing: the requested value
	// decides algorithm implication and conflicts, but an over-the-wire
	// degree must never spawn goroutines beyond the machine.
	if max := runtime.GOMAXPROCS(0); req.Workers > max {
		req.Workers = max
	}

	// Resolve and validate first — even a request the cache could serve
	// must be rejected if it is malformed, so accept/reject behavior
	// never depends on cache state. Then the fast path: a warm answer
	// needs no admission and no engine work.
	q, key, err := s.resolveAndValidate(req, p)
	if err != nil {
		return nil, err
	}
	if !req.NoCache {
		if sky, algo, maintained, ok := s.cache.lookup(key); ok {
			return s.hitResponse(sky, algo, maintained, key, start), nil
		}
	}

	// Admission: the deadline covers queue wait and execution together.
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.sched.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	defer release()

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// Versions may have moved while the request was queued; resolve again
	// and re-check the cache — an identical query ahead of us in the pool
	// may already have warmed it.
	if q, key, err = s.resolveLocked(req, p); err != nil {
		return nil, err
	}
	if !req.NoCache {
		if sky, algo, maintained, ok := s.cache.lookup(key); ok {
			return s.hitResponse(sky, algo, maintained, key, start), nil
		}
	}

	// The naive algorithm materializes the full join instead of probing
	// and ignores resident structures; don't build them for it.
	var res *core.Resident
	if p.auto || p.alg != core.Naive {
		res, err = s.residents.get(residentKey{r1: key.r1, r2: key.r2, v1: key.v1, v2: key.v2, cond: key.cond}, q)
		if err != nil {
			return nil, err
		}
	}
	alg := p.alg
	if p.auto {
		plan, err := planner.Choose(ctx, q, planner.Options{})
		if err != nil {
			return nil, err
		}
		alg = plan.Algorithm
	}
	// The service's query path is built on the same prepared-state surface
	// the ksjq.Prepared facade exposes: every run over resident relations
	// goes through the snapshot's own Exec.
	var out *core.Result
	if res != nil {
		out, err = res.Exec(ctx, q, core.ExecOptions{Algorithm: alg, Workers: req.Workers})
	} else {
		out, err = core.Exec(ctx, q, core.ExecOptions{Algorithm: alg, Workers: req.Workers})
	}
	if err != nil {
		return nil, err
	}
	s.computed.Add(1)
	algo := alg.Token()
	s.cache.store(key, q, out.Skyline, algo)
	return &QueryResponse{
		Skyline:   out.Skyline,
		Source:    SourceComputed,
		Algorithm: algo,
		Versions:  [2]uint64{key.v1, key.v2},
		Elapsed:   time.Since(start),
		Stats:     &out.Stats,
	}, nil
}

// Insert appends one tuple to a registered relation and brings the
// resident state with it: the relation's version moves, stale residents
// and cache entries are dropped, and cache entries still current at the
// old version are promoted to live maintenance and updated incrementally
// instead of recomputed. Inserts are serialized (single writer) and
// exclusive against running queries.
func (s *Service) Insert(name string, t dataset.Tuple) (*InsertResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	rr, ok := s.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	id, err := rr.rel.Append(t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	oldV := rr.version
	rr.version++
	s.residents.dropRelation(name)
	s.inserts.Add(1)

	out := &InsertResult{ID: id, Version: rr.version}
	// One Resident per affected (pair, condition) at the post-insert
	// versions: its index structures are k- and aggregator-independent,
	// so every maintained entry over the same combo absorbs through one
	// build instead of rebuilding per entry — and the same snapshot
	// warm-starts the next query.
	combos := make(map[residentKey]*core.Resident)
	for _, e := range s.cache.takeForRelation(name) {
		if !s.entryCurrent(e, name, oldV) {
			s.cache.drop(e)
			out.Invalidated++
			continue
		}
		if e.key.r1 == name {
			e.key.v1 = rr.version
		}
		if e.key.r2 == name {
			e.key.v2 = rr.version
		}
		if e.m == nil {
			// Promotion is free: the cached skyline at the pre-insert
			// version seeds the maintainer, no recomputation. Queries the
			// maintainer cannot take (non-strict aggregators) fall back
			// to invalidation.
			m, err := core.NewMaintainerFrom(e.q, e.skyline)
			if err != nil {
				s.cache.drop(e)
				out.Invalidated++
				continue
			}
			e.m = m
		}
		combo := residentKey{r1: e.key.r1, r2: e.key.r2, v1: e.key.v1, v2: e.key.v2, cond: e.key.cond}
		res, ok := combos[combo]
		if !ok {
			// Best effort: a failed build (unreachable for registry-owned
			// relations) just means this combo absorbs without sharing.
			res, _ = core.NewResident(e.q)
			combos[combo] = res
		}
		e.m.UseResident(res)
		displaced, admitted, err := absorbInto(e, name, id)
		if err != nil {
			s.cache.drop(e)
			out.Invalidated++
			continue
		}
		out.Displaced += displaced
		out.Admitted += admitted
		// Refresh the served snapshot once per insert, under the write
		// lock, so cache hits stay O(1) instead of paying the
		// maintainer's copy-and-sort per lookup.
		e.skyline = e.m.Skyline()
		s.cache.restore(e)
		out.Maintained++
	}
	// Watched answers ride the same insert: absorb into each affected
	// watch set's maintainer and fan the delta out to its subscribers,
	// sharing the per-combo residents built above.
	s.notifyWatchesLocked(name, id, combos)
	for key, res := range combos {
		if res != nil {
			s.residents.put(key, res)
		}
	}
	return out, nil
}

// entryCurrent reports whether a cache entry is valid at the registry
// state immediately before the current insert: the inserted relation at
// its pre-bump version, every other relation at its live version. The
// caller holds s.mu.
func (s *Service) entryCurrent(e *entry, name string, oldV uint64) bool {
	versionOf := func(rel string) (uint64, bool) {
		if rel == name {
			return oldV, true
		}
		rr, ok := s.rels[rel]
		if !ok {
			return 0, false
		}
		return rr.version, true
	}
	v1, ok1 := versionOf(e.key.r1)
	v2, ok2 := versionOf(e.key.r2)
	return ok1 && ok2 && e.key.v1 == v1 && e.key.v2 == v2
}

// absorbInto folds the appended tuple into the entry's maintainer on
// every side the relation occupies (both, for a self-join).
func absorbInto(e *entry, name string, id int) (displaced, admitted int, err error) {
	if e.key.r1 == name {
		d, a, err := e.m.AbsorbLeft(id)
		if err != nil {
			return 0, 0, err
		}
		displaced += d
		admitted += a
	}
	if e.key.r2 == name {
		d, a, err := e.m.AbsorbRight(id)
		if err != nil {
			return 0, 0, err
		}
		displaced += d
		admitted += a
	}
	return displaced, admitted, nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	entries, maintained, evictions := s.cache.stats()
	s.mu.RLock()
	rels := relationInfos(s.rels)
	watches := 0
	for _, ws := range s.watches {
		watches += len(ws.subs)
	}
	s.mu.RUnlock()
	return Stats{
		Queries:           s.queries.Load(),
		CacheHits:         s.cacheHits.Load(),
		MaintainedHits:    s.maintainedHits.Load(),
		Computed:          s.computed.Load(),
		Inserts:           s.inserts.Load(),
		Rejected:          s.rejected.Load(),
		Evictions:         evictions,
		CacheEntries:      entries,
		MaintainedEntries: maintained,
		Residents:         s.residents.len(),
		Watches:           watches,
		Busy:              s.sched.busy(),
		Queued:            s.sched.queued(),
		Relations:         rels,
	}
}

// Close marks the service closed, waits for in-flight queries, and
// releases the cache (closing every live maintainer). Close is
// idempotent; methods called after it return ErrClosed.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// The exclusive lock drains every reader: no query is mid-execution
	// when the cache and registry go away.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.closeAll()
	s.closeWatchesLocked() // every subscription ends with ErrClosed
	s.residents.clear()    // resident indexes pin O(n) per pair — release them
	s.rels = make(map[string]*regRelation)
	return nil
}
