package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/join"
)

func testRelation(name string, n int, local, agg, groups int, seed int64) *dataset.Relation {
	return datagen.MustGenerate(datagen.Config{
		Name: name, N: n, Local: local, Agg: agg, Groups: groups,
		Dist: datagen.Independent, Seed: seed,
	})
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

// registerPair registers the standard two-relation workload and returns
// the oracle query over clones, so from-scratch recomputation never
// touches the service-owned relations.
func registerPair(t *testing.T, s *Service, n int) (oracle core.Query) {
	t.Helper()
	r1 := testRelation("r1", n, 3, 1, 5, 42)
	r2 := testRelation("r2", n, 3, 1, 5, 43)
	oracle = core.Query{
		R1: r1.Clone(), R2: r2.Clone(),
		Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 5,
	}
	if _, err := s.Register("r1", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("r2", r2); err != nil {
		t.Fatal(err)
	}
	return oracle
}

func assertPairsEqual(t *testing.T, label string, got, want []join.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: skyline size %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Left != want[i].Left || got[i].Right != want[i].Right {
			t.Fatalf("%s: pair %d = (%d,%d), want (%d,%d)",
				label, i, got[i].Left, got[i].Right, want[i].Left, want[i].Right)
		}
	}
}

func TestQueryComputedThenCached(t *testing.T) {
	s := newTestService(t, Config{})
	oracle := registerPair(t, s, 60)
	want, err := core.Run(oracle, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{R1: "r1", R2: "r2", K: 5, Algorithm: "grouping"}

	first, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceComputed {
		t.Errorf("first query source = %q, want computed", first.Source)
	}
	if first.Stats == nil {
		t.Error("computed response carries no engine stats")
	}
	assertPairsEqual(t, "computed", first.Skyline, want.Skyline)

	second, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceCached {
		t.Errorf("second query source = %q, want cached", second.Source)
	}
	assertPairsEqual(t, "cached", second.Skyline, want.Skyline)
	if second.Versions != [2]uint64{1, 1} {
		t.Errorf("versions = %v, want [1 1]", second.Versions)
	}

	// The key normalizes away the algorithm: a different strategy (and
	// spelled-out defaults) hits the same entry.
	third, err := s.Query(context.Background(), QueryRequest{
		R1: "r1", R2: "r2", K: 5, Join: "eq", Agg: "sum", Algorithm: "dominator",
	})
	if err != nil {
		t.Fatal(err)
	}
	if third.Source != SourceCached {
		t.Errorf("cross-algorithm query source = %q, want cached", third.Source)
	}

	st := s.Stats()
	if st.Computed != 1 || st.CacheHits != 2 {
		t.Errorf("stats computed=%d cacheHits=%d, want 1/2", st.Computed, st.CacheHits)
	}
}

func TestQueryNoCacheRecomputes(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 40)
	req := QueryRequest{R1: "r1", R2: "r2", K: 5}
	if _, err := s.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.NoCache = true
	resp, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceComputed {
		t.Errorf("NoCache source = %q, want computed", resp.Source)
	}
}

// TestInsertMatchesOracle is the live-maintenance property test the
// acceptance criteria name: random inserts through the service must leave
// every subsequent answer identical to a from-scratch recompute on the
// oracle path, and the answers must come from the maintained entry, not a
// recompute.
func TestInsertMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 4; trial++ {
		s := New(Config{})
		agg := rng.Intn(2)
		local := 2 + rng.Intn(2)
		groups := 2 + rng.Intn(3)
		r1 := testRelation("r1", 20+rng.Intn(30), local, agg, groups, int64(trial)*2+1)
		r2 := testRelation("r2", 20+rng.Intn(30), local, agg, groups, int64(trial)*2+2)
		oracle := core.Query{
			R1: r1.Clone(), R2: r2.Clone(),
			Spec: join.Spec{Cond: join.Equality, Agg: join.Sum},
		}
		oracle.K = oracle.KMin() + rng.Intn(oracle.Width()-oracle.KMin()+1)
		if _, err := s.Register("r1", r1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Register("r2", r2); err != nil {
			t.Fatal(err)
		}
		req := QueryRequest{R1: "r1", R2: "r2", K: oracle.K, Algorithm: "grouping"}

		// Warm the cache so the first insert has an entry to promote.
		if _, err := s.Query(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			name, rel := "r1", oracle.R1
			if rng.Intn(2) == 1 {
				name, rel = "r2", oracle.R2
			}
			tup := dataset.Tuple{
				Key:   fmt.Sprintf("g%04d", rng.Intn(groups)), // datagen key format
				Attrs: make([]float64, local+agg),
			}
			for i := range tup.Attrs {
				tup.Attrs[i] = float64(rng.Intn(100))
			}
			ins, err := s.Insert(name, tup)
			if err != nil {
				t.Fatal(err)
			}
			if ins.Maintained == 0 {
				t.Fatalf("trial %d step %d: insert maintained no entries", trial, step)
			}
			if _, err := rel.Append(tup); err != nil { // mirror on the oracle clone
				t.Fatal(err)
			}

			got, err := s.Query(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Source != SourceMaintained {
				t.Fatalf("trial %d step %d: source = %q, want maintained", trial, step, got.Source)
			}
			want, err := core.Run(oracle, core.Grouping)
			if err != nil {
				t.Fatal(err)
			}
			assertPairsEqual(t, fmt.Sprintf("trial %d step %d", trial, step), got.Skyline, want.Skyline)
		}
		st := s.Stats()
		if st.Computed != 1 {
			t.Errorf("trial %d: %d full computations across 10 inserts, want 1", trial, st.Computed)
		}
		s.Close()
	}
}

// TestWarmPathSpeedup is the acceptance criterion: a repeated query must
// be at least 10x faster than a cold ksjq-style run. The margin in
// practice is orders of magnitude (a cache hit is a map lookup), so the
// test is far from its threshold.
func TestWarmPathSpeedup(t *testing.T) {
	s := newTestService(t, Config{})
	oracle := registerPair(t, s, 400)
	req := QueryRequest{R1: "r1", R2: "r2", K: 5, Algorithm: "grouping"}
	if _, err := s.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// Cold: the better of two from-scratch engine runs (oracle clones, so
	// the service's resident index cannot help).
	cold := time.Duration(1 << 62)
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if _, err := core.Run(oracle, core.Grouping); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < cold {
			cold = d
		}
	}

	// Warm: the better of several cache hits.
	warm := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		resp, err := s.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != SourceCached {
			t.Fatalf("warm query source = %q, want cached", resp.Source)
		}
		if d := time.Since(t0); d < warm {
			warm = d
		}
	}
	if warm*10 > cold {
		t.Errorf("warm path not >=10x faster: cold=%v warm=%v (%.1fx)",
			cold, warm, float64(cold)/float64(warm))
	}
	t.Logf("cold=%v warm=%v speedup=%.0fx", cold, warm, float64(cold)/float64(warm))
}

func TestInsertInvalidatesUnpromotableEntries(t *testing.T) {
	// A naive/max-aggregator answer cannot be maintained (the grouping
	// algorithm behind the maintainer requires a strict aggregator), so an
	// insert must invalidate it and the next query must recompute.
	s := newTestService(t, Config{})
	registerPair(t, s, 30)
	req := QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "max", Algorithm: "naive"}
	if _, err := s.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	ins, err := s.Insert("r1", dataset.Tuple{Key: "g0000", Attrs: []float64{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Maintained != 0 || ins.Invalidated != 1 {
		t.Errorf("maintained=%d invalidated=%d, want 0/1", ins.Maintained, ins.Invalidated)
	}
	resp, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceComputed {
		t.Errorf("post-insert source = %q, want computed", resp.Source)
	}
	if resp.Versions != [2]uint64{2, 1} {
		t.Errorf("versions = %v, want [2 1]", resp.Versions)
	}
}

func TestSelfJoinInsert(t *testing.T) {
	// One relation on both sides: a single physical insert must be
	// absorbed on both sides of the maintained entry.
	r := testRelation("r", 25, 2, 0, 3, 7)
	s := newTestService(t, Config{})
	oracle := core.Query{R1: r.Clone(), R2: r.Clone(), Spec: join.Spec{Cond: join.Equality}, K: 3}
	if _, err := s.Register("r", r); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{R1: "r", R2: "r", K: 3}
	if _, err := s.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	tup := dataset.Tuple{Key: "g0001", Attrs: []float64{3, 3}}
	if _, err := s.Insert("r", tup); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.R1.Append(tup); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.R2.Append(tup); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != SourceMaintained {
		t.Errorf("self-join source = %q, want maintained", got.Source)
	}
	want, err := core.Run(oracle, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, "self-join insert", got.Skyline, want.Skyline)
}

func TestBadRequests(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	ctx := context.Background()
	cases := []struct {
		name string
		req  QueryRequest
		want error
	}{
		{"unknown r1", QueryRequest{R1: "nope", R2: "r2", K: 5}, ErrUnknownRelation},
		{"unknown r2", QueryRequest{R1: "r1", R2: "nope", K: 5}, ErrUnknownRelation},
		{"bad join", QueryRequest{R1: "r1", R2: "r2", K: 5, Join: "outer"}, ErrBadRequest},
		{"bad agg", QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "avg"}, ErrBadRequest},
		{"bad algorithm", QueryRequest{R1: "r1", R2: "r2", K: 5, Algorithm: "quantum"}, ErrBadRequest},
		{"k too small", QueryRequest{R1: "r1", R2: "r2", K: 1}, ErrBadRequest},
		{"k too large", QueryRequest{R1: "r1", R2: "r2", K: 99}, ErrBadRequest},
		{"workers with naive", QueryRequest{R1: "r1", R2: "r2", K: 5, Algorithm: "naive", Workers: 4}, ErrBadRequest},
		{"auto with non-strict agg", QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "max"}, ErrBadRequest},
	}
	for _, c := range cases {
		if _, err := s.Query(ctx, c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := s.Insert("nope", dataset.Tuple{Attrs: []float64{1}}); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("insert unknown relation: err = %v", err)
	}
	if _, err := s.Insert("r1", dataset.Tuple{Attrs: []float64{1}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("insert bad schema: err = %v", err)
	}
	// Non-finite skyline attributes and NaN bands are rejected at the
	// insert door (dataset.ErrBadSchema surfaced as a bad request), so no
	// unjoinable or domination-opaque tuple ever enters a served relation.
	for name, tup := range map[string]dataset.Tuple{
		"NaN attr":  {Key: "g0001", Attrs: []float64{math.NaN(), 1, 1, 1}},
		"+Inf attr": {Key: "g0001", Attrs: []float64{math.Inf(1), 1, 1, 1}},
		"NaN band":  {Key: "g0001", Band: math.NaN(), Attrs: []float64{1, 1, 1, 1}},
	} {
		if _, err := s.Insert("r1", tup); !errors.Is(err, ErrBadRequest) {
			t.Errorf("insert %s: err = %v, want ErrBadRequest", name, err)
		}
	}
	if _, err := s.Register("r1", testRelation("dup", 5, 3, 1, 2, 9)); !errors.Is(err, ErrDuplicateRelation) {
		t.Errorf("duplicate register: err = %v", err)
	}
	// Aliasing one relation under two names would break version
	// coherence (an insert via one name would leave the alias's cache
	// entries "current" over mutated data).
	shared := testRelation("shared", 5, 3, 1, 2, 10)
	if _, err := s.Register("alias1", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("alias2", shared); !errors.Is(err, ErrDuplicateRelation) {
		t.Errorf("aliased register: err = %v, want ErrDuplicateRelation", err)
	}
	if _, err := s.Register("", testRelation("x", 5, 3, 1, 2, 9)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty name register: err = %v", err)
	}
}

func TestInvalidRequestRejectedEvenWhenCached(t *testing.T) {
	// Accept/reject must not depend on cache state: a naive+max answer in
	// the cache shares the key with a grouping+max request (the key
	// normalizes the algorithm away), but grouping+max fails validation
	// and must still be rejected.
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "max", Algorithm: "naive"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "max", Algorithm: "grouping"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("grouping+max with warm cache: err = %v, want ErrBadRequest", err)
	}
}

func TestWorkersAutoImpliesGrouping(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 30)
	resp, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "grouping" {
		t.Errorf("auto+workers ran %q, want grouping", resp.Algorithm)
	}
}

func TestRegisterCSV(t *testing.T) {
	s := newTestService(t, Config{})
	csv := "key,a0,a1\nA,1,2\nB,3,4\n"
	v, err := s.RegisterCSV("c", strings.NewReader(csv), dataset.ReadOptions{Local: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	rel, _, err := s.Relation("c")
	if err != nil || rel.Len() != 2 {
		t.Fatalf("Relation(c) = %v, %v", rel, err)
	}
	if _, err := s.RegisterCSV("bad", strings.NewReader("key\n"), dataset.ReadOptions{Local: 2}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad CSV: err = %v", err)
	}
	infos := s.Relations()
	if len(infos) != 1 || infos[0].Name != "c" || infos[0].Tuples != 2 {
		t.Errorf("Relations() = %+v", infos)
	}
}

func TestDeadline(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 200)
	_, err := s.Query(context.Background(), QueryRequest{
		R1: "r1", R2: "r2", K: 5, Algorithm: "grouping", Timeout: time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("nanosecond deadline: err = %v, want DeadlineExceeded", err)
	}
}

func TestOverload(t *testing.T) {
	// One worker slot, zero queue: while a slow query holds the slot,
	// a second is rejected with ErrOverloaded... but only queries that
	// miss the cache are admitted at all.
	s := newTestService(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	registerPair(t, s, 150)

	block := make(chan struct{})
	release, err := s.sched.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan error, 1)
	go func() {
		defer wg.Done()
		<-block
		_, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5})
		queued <- err
	}()
	close(block)
	// Give the queued query time to enter the wait queue, then overflow it.
	deadline := time.Now().Add(2 * time.Second)
	for s.sched.queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 6})
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("overflow query: err = %v, want ErrOverloaded", err)
	}
	release()
	wg.Wait()
	if err := <-queued; err != nil {
		t.Errorf("queued query failed: %v", err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", s.Stats().Rejected)
	}
}

func TestClose(t *testing.T) {
	s := New(Config{})
	registerPair(t, s, 20)
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5}); !errors.Is(err, ErrClosed) {
		t.Errorf("query after close: err = %v", err)
	}
	if _, err := s.Insert("r1", dataset.Tuple{Attrs: []float64{1, 1, 1, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: err = %v", err)
	}
	if _, err := s.Register("x", testRelation("x", 5, 2, 0, 2, 3)); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: err = %v", err)
	}
}

// TestConcurrentQueriesAndInserts is the race-lane smoke test: readers
// and the single writer hammer the service together, and every answer a
// reader gets must be internally consistent (the -race build checks the
// rest).
func TestConcurrentQueriesAndInserts(t *testing.T) {
	s := newTestService(t, Config{MaxConcurrent: 4, MaxQueue: 128})
	registerPair(t, s, 40)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := 5 + (i+w)%2
				if _, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: k}); err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			tup := dataset.Tuple{Key: fmt.Sprintf("g%04d", rng.Intn(5)), Attrs: []float64{
				float64(rng.Intn(100)), float64(rng.Intn(100)), float64(rng.Intn(100)), float64(rng.Intn(100)),
			}}
			name := "r1"
			if i%2 == 1 {
				name = "r2"
			}
			if _, err := s.Insert(name, tup); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the answer must still match the oracle.
	rel1, _, err := s.Relation("r1")
	if err != nil {
		t.Fatal(err)
	}
	rel2, _, err := s.Relation("r2")
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.Query{R1: rel1.Clone(), R2: rel2.Clone(), Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 5}
	want, err := core.Run(oracle, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, "post-storm", got.Skyline, want.Skyline)
}
