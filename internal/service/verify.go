package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/store"
)

// VerifyRequest asks the service to vote on foreign candidate vectors:
// for each vector, does some joined tuple of the named local join
// k-dominate it? This is the verification round of the distributed
// scheme (DESIGN.md §13) served shard-side — the gateway ships surviving
// round-1 candidates here and keeps only the vectors no peer dominates.
// Join and Agg use the CLI spellings, exactly like QueryRequest; every
// vector must have the joined width of (R1, R2).
type VerifyRequest struct {
	R1, R2  string
	K       int
	Join    string
	Agg     string
	Vectors [][]float64
	// Timeout bounds this request (queue wait + execution); 0 defers to
	// Config.DefaultTimeout, negative means no deadline.
	Timeout time.Duration
}

// VerifyResponse reports the votes: Dominated is parallel to the request
// vectors, true where the local join holds a k-dominator.
type VerifyResponse struct {
	Dominated []bool
	// Versions are the (R1, R2) registry versions the votes are valid at.
	Versions [2]uint64
	// Elapsed is the service-side wall time for this request.
	Elapsed time.Duration
}

// Verify answers one verification-round request. It runs through the same
// admission scheduler as Query and holds the read lock for the duration,
// so votes are always consistent with one registry state. Strict
// aggregators vote through the resident index's target-set checker;
// non-strict ones scan the materialized join (the same split
// core.AnyDominatorsContext makes).
func (s *Service) Verify(ctx context.Context, req VerifyRequest) (*VerifyResponse, error) {
	start := time.Now()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.verifies.Add(1)
	var p parsed
	var err error
	if p.cond, err = join.ParseCondition(req.Join); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if p.agg, err = join.ParseAggregator(req.Agg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.sched.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	defer release()

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	q, key, err := s.resolveLocked(QueryRequest{R1: req.R1, R2: req.R2, K: req.K}, p)
	if err != nil {
		return nil, err
	}
	if err := join.CheckSchemas(q.R1, q.R2); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if q.K < q.KMin() || q.K > q.Width() {
		return nil, fmt.Errorf("%w: %v: k=%d, admissible range (%d, %d]",
			ErrBadRequest, core.ErrBadK, req.K, q.KMin()-1, q.Width())
	}
	for i, v := range req.Vectors {
		if len(v) != q.Width() {
			return nil, fmt.Errorf("%w: vector %d has %d attributes, joined width is %d",
				ErrBadRequest, i, len(v), q.Width())
		}
	}

	var dominated []bool
	if q.R1.Agg == 0 || p.agg.Strict {
		// The checker path probes the resident index, so repeated
		// verification rounds over an unchanged partition skip the build —
		// the same amortization the query path gets.
		res, err := s.residents.get(residentKey{r1: key.r1, r2: key.r2, v1: key.v1, v2: key.v2, cond: key.cond}, q)
		if err != nil {
			return nil, err
		}
		dominated, err = res.AnyDominators(ctx, q, req.Vectors)
		if err != nil {
			return nil, err
		}
	} else {
		dominated, err = core.AnyDominatorsContext(ctx, q, req.Vectors)
		if err != nil {
			return nil, err
		}
	}
	return &VerifyResponse{
		Dominated: dominated,
		Versions:  [2]uint64{key.v1, key.v2},
		Elapsed:   time.Since(start),
	}, nil
}

// Unregister removes a relation from the registry, dropping every answer
// cached over it, its resident indexes, and any watches naming it (their
// subscriptions end with ErrUnknownRelation). The gateway uses this when
// a delete batch drains a shard's entire partition of a relation —
// registered relations stay non-empty, so an empty partition must leave
// the registry rather than linger at zero rows.
func (s *Service) Unregister(name string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.durableOK(); err != nil {
		return err
	}
	// Take the ingest mutex so no mutation batch is mid-absorption: every
	// watch set is quiescent (absorbing is only set inside an ingest turn)
	// and cache entries are reachable.
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.rels[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	// Durable before visible, like RegisterWindow: a failed log leaves the
	// registry untouched.
	if err := s.logSynced(store.Record{Type: store.RecUnregister, Relation: name}); err != nil {
		return err
	}
	delete(s.rels, name)
	for _, e := range s.cache.takeForRelation(name) {
		s.cache.drop(e)
	}
	s.residents.dropRelation(name)
	for wkey, ws := range s.watches {
		if wkey.r1 != name && wkey.r2 != name {
			continue
		}
		delete(s.watches, wkey)
		ws.m.Close()
		for sub := range ws.subs {
			sub.terminate(fmt.Errorf("%w: %q", ErrUnknownRelation, name))
		}
	}
	return nil
}

// DiffPairs computes the delta between two (Left, Right)-sorted answers:
// pairs that entered, pairs that left, and — when an index pair survives
// with different joined attributes (a delete renumbering a neighbor onto
// the same key) — a remove-then-add of that key. It is the exact diff the
// watch path publishes (see diffPairs); the gateway reuses it to emit
// cluster-wide watch deltas from re-merged global answers.
func DiffPairs(old, cur []join.Pair) (added, removed []join.Pair) {
	return diffPairs(old, cur)
}
