package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/join"
)

// TestVerifyMatchesCore: the service's verification endpoint must vote
// exactly like the core primitive the simulator trusts, for both the
// strict (resident target-set checker) and non-strict (naive scan) arms.
func TestVerifyMatchesCore(t *testing.T) {
	ctx := context.Background()
	s := newTestService(t, Config{SweepInterval: -1})
	oracle := registerPair(t, s, 60)

	rng := rand.New(rand.NewSource(606))
	width := oracle.R1.Local + oracle.R2.Local + oracle.R1.Agg
	vectors := make([][]float64, 12)
	for i := range vectors {
		vectors[i] = make([]float64, width)
		for j := range vectors[i] {
			vectors[i][j] = rng.Float64() * 10
		}
	}
	// Mix in real answer vectors so some verdicts are guaranteed "not
	// dominated" (a skyline member has no dominator).
	ans, err := core.Run(oracle, core.Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && i < len(ans.Skyline); i++ {
		vectors = append(vectors, ans.Skyline[i].Attrs)
	}

	for _, aggName := range []string{"sum", "max"} {
		resp, err := s.Verify(ctx, VerifyRequest{
			R1: "r1", R2: "r2", K: oracle.K, Agg: aggName, Vectors: vectors,
		})
		if err != nil {
			t.Fatalf("%s: %v", aggName, err)
		}
		agg, err := join.ParseAggregator(aggName)
		if err != nil {
			t.Fatal(err)
		}
		q := oracle
		q.Spec.Agg = agg
		want, err := core.AnyDominators(q, vectors)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Dominated) != len(want) {
			t.Fatalf("%s: %d verdicts, want %d", aggName, len(resp.Dominated), len(want))
		}
		sawDominated := false
		for i := range want {
			if resp.Dominated[i] != want[i] {
				t.Fatalf("%s: verdict[%d] = %v, want %v", aggName, i, resp.Dominated[i], want[i])
			}
			sawDominated = sawDominated || want[i]
		}
		if !sawDominated {
			t.Fatalf("%s: degenerate test — no vector was dominated", aggName)
		}
	}

	st := s.Stats()
	if st.Verifies != 2 {
		t.Errorf("verifies counter = %d, want 2", st.Verifies)
	}
}

func TestVerifyErrors(t *testing.T) {
	ctx := context.Background()
	s := newTestService(t, Config{SweepInterval: -1})
	registerPair(t, s, 20)

	if _, err := s.Verify(ctx, VerifyRequest{R1: "nope", R2: "r2", K: 5, Vectors: [][]float64{{1}}}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
	if _, err := s.Verify(ctx, VerifyRequest{R1: "r1", R2: "r2", K: 5, Vectors: [][]float64{{1, 2}}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wrong vector width: %v", err)
	}
	if _, err := s.Verify(ctx, VerifyRequest{R1: "r1", R2: "r2", K: 99, Vectors: [][]float64{{1, 2, 3, 4, 5, 6, 7}}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("k out of range: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	ctx := context.Background()
	s := newTestService(t, Config{SweepInterval: -1})
	oracle := registerPair(t, s, 30)

	// Warm a cache entry and a watch on the doomed relation.
	if _, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: oracle.K}); err != nil {
		t.Fatal(err)
	}
	w, err := s.Watch(ctx, QueryRequest{R1: "r1", R2: "r2", K: oracle.K})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	<-w.Events() // snapshot

	if err := s.Unregister("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: oracle.K}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("query after unregister: %v", err)
	}
	for range w.Events() {
	}
	if !errors.Is(w.Err(), ErrUnknownRelation) {
		t.Fatalf("watch should end with ErrUnknownRelation, got %v", w.Err())
	}
	if err := s.Unregister("r1"); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("double unregister: %v", err)
	}

	// The name is reusable, and the untouched relation survived.
	if _, err := s.Register("r1", testRelation("r1", 25, 3, 1, 5, 99)); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := s.Query(ctx, QueryRequest{R1: "r1", R2: "r2", K: oracle.K}); err != nil {
		t.Fatalf("query after re-register: %v", err)
	}
}
