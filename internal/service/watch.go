package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/join"
)

// Watchable answers: Service.Watch turns a query into a subscription. The
// service computes the answer once, parks a live core.Maintainer on it,
// and from then on every Insert that touches the watched relations is
// absorbed incrementally and published as a delta — the Added/Removed
// pairs — instead of the subscriber re-polling and re-diffing snapshots.
// This is the same maintainer promotion machinery the answer cache uses,
// pointed outward: cache entries keep answers warm for the next query,
// watch sets push answer changes to standing subscribers.
//
// Concurrency model: watch sets live in the service registry map, guarded
// by the service lock. The ingest path (Service.InsertBatch) flags each
// affected set in its locked commit phase, absorbs the batch into the
// set's maintainer with the lock released, then — back under the lock —
// diffs the served snapshot and enqueues one coalesced delta per batch on
// every subscriber. Enqueueing only appends to a per-subscriber buffer
// and never blocks, so a slow consumer cannot stall ingest (its deltas
// queue in memory until it drains them). A per-subscription goroutine
// forwards queued events to the Events channel, honoring the subscriber's
// context.

// WatchEvent is one change to a watched answer. The first event of every
// subscription (Seq 0) is the full current answer as Added; each later
// event is the delta one insert caused — possibly empty, since an insert
// can leave the skyline unchanged while still advancing Versions. Added
// and Removed slices are shared between subscribers of the same query and
// must be treated as read-only.
type WatchEvent struct {
	// Seq numbers this subscription's events from 0 (the snapshot).
	Seq uint64 `json:"seq"`
	// Added lists pairs that entered the answer; Removed pairs that were
	// displaced. Both sorted by (Left, Right).
	Added   []join.Pair `json:"added"`
	Removed []join.Pair `json:"removed"`
	// Versions are the (R1, R2) registry versions the answer moved to.
	Versions [2]uint64 `json:"versions"`
}

// Watch is one live subscription to a query's answer. Receive from
// Events until it closes, then consult Err; Close releases the
// subscription (and, when it is the last one on its query, the query's
// maintainer).
type Watch struct {
	svc *Service
	set *watchSet

	events chan WatchEvent
	wake   chan struct{} // cap 1: "pending is non-empty"
	done   chan struct{} // closed by Close/service shutdown
	once   sync.Once

	mu      sync.Mutex
	pending []WatchEvent
	seq     uint64
	err     error
}

// watchKey is the normalized identity of a watched query: like cacheKey
// but version-free — a watch follows the answer across versions, it is
// not pinned to one.
type watchKey struct {
	r1, r2 string
	cond   join.Condition
	agg    string
	k      int
}

// watchSet is the shared state of all subscriptions to one watched query:
// a live maintainer, the served snapshot its deltas are diffed against,
// and the subscriber list. All fields except m are mutated only under the
// service lock; m is absorbed by the ingest path with the lock released,
// protected instead by the absorbing flag (see below) and the ingest
// mutex.
type watchSet struct {
	key      watchKey
	q        core.Query
	m        *core.Maintainer
	last     []join.Pair // sorted; the snapshot the next delta diffs against
	versions [2]uint64
	subs     map[*Watch]struct{}
	// absorbing is set (under the service lock) by ingest phase 1 and
	// cleared by phase 3. While it is set the maintainer may be in use
	// with no lock held, so removeWatch must not close it — phase 3
	// finishes the teardown of a set whose last subscriber left mid-batch.
	absorbing bool
}

// Watch subscribes to a query's answer. The first event is the current
// answer (computed through the normal admitted query path, so cache hits
// apply); every later event is the delta caused by one Insert touching
// either relation. Watch requires a query the incremental maintainer can
// take — a strictly monotonic aggregator — and rejects others with
// ErrBadRequest. The context governs the subscription's lifetime: when it
// is cancelled the Events channel closes and Err reports the cause.
func (s *Service) Watch(ctx context.Context, req QueryRequest) (*Watch, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	// Fail the unmaintainable shape up front, not on the first insert:
	// only strict aggregators support incremental absorption.
	if !p.agg.Strict {
		return nil, fmt.Errorf("%w: watch requires a strictly monotonic aggregator (got %q)", ErrBadRequest, p.agg.Name)
	}

	// Establishing a watch must not miss or double-count an insert: the
	// snapshot event and the subscription have to be atomic against the
	// insert path. Queries execute under the read lock, so compute first,
	// then take the write lock and verify no insert moved the versions in
	// between; retry on the (rare) race.
	const maxAttempts = 8
	for attempt := 0; ; attempt++ {
		if w, ok, err := s.tryAttach(ctx, req, p, nil, [2]uint64{}); err != nil || ok {
			return w, err
		}
		resp, err := s.Query(ctx, req)
		if err != nil {
			return nil, err
		}
		snapshot := resp.Skyline
		if snapshot == nil {
			// An empty answer is a perfectly watchable snapshot; nil is
			// tryAttach's "no snapshot computed yet" sentinel, so make the
			// empty case explicit rather than spin on the retry loop.
			snapshot = []join.Pair{}
		}
		w, ok, err := s.tryAttach(ctx, req, p, snapshot, resp.Versions)
		if err != nil {
			return nil, err
		}
		if ok {
			return w, nil
		}
		if attempt+1 >= maxAttempts {
			return nil, fmt.Errorf("%w: relations kept changing while establishing the watch", ErrOverloaded)
		}
	}
}

// tryAttach subscribes under the write lock. With a nil snapshot it only
// succeeds when a live watch set for the key already exists (its
// maintainer is current by construction); with a snapshot it creates the
// set, provided the registry versions still match the snapshot's. The
// third return reports whether attachment happened.
func (s *Service) tryAttach(ctx context.Context, req QueryRequest, p parsed, snapshot []join.Pair, versions [2]uint64) (*Watch, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	q, key, err := s.resolveLocked(req, p)
	if err != nil {
		return nil, false, err
	}
	wkey := watchKey{r1: key.r1, r2: key.r2, cond: key.cond, agg: key.agg, k: key.k}
	ws, live := s.watches[wkey]
	if !live {
		if snapshot == nil {
			return nil, false, nil
		}
		if key.v1 != versions[0] || key.v2 != versions[1] {
			return nil, false, nil // an insert interleaved; recompute
		}
		m, err := core.NewMaintainerFrom(q, snapshot)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		ws = &watchSet{
			key: wkey, q: q, m: m,
			last:     snapshot,
			versions: versions,
			subs:     make(map[*Watch]struct{}),
		}
		s.watches[wkey] = ws
	}
	w := &Watch{
		svc:    s,
		set:    ws,
		events: make(chan WatchEvent, 16),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	ws.subs[w] = struct{}{}
	w.enqueue(WatchEvent{Added: ws.last, Versions: ws.versions})
	go w.pump(ctx)
	return w, true, nil
}

// diffPairs computes the delta between two (Left, Right)-sorted answers.
// Pair identity is the index pair. Under inserts a pair's joined
// attributes are fixed by the relations, so only membership changes —
// but a delete renumbers the surviving rows, and a survivor can inherit
// the exact index pair of a simultaneously evicted member. Identity alone
// would call that "unchanged" and leave subscribers holding the dead
// pair's attributes, so an identity match with different attributes is
// emitted as a remove-then-add of the same key.
func diffPairs(old, cur []join.Pair) (added, removed []join.Pair) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		a, b := old[i], cur[j]
		switch {
		case a.Left == b.Left && a.Right == b.Right:
			if !equalAttrs(a.Attrs, b.Attrs) {
				removed = append(removed, a)
				added = append(added, b)
			}
			i++
			j++
		case a.Left < b.Left || (a.Left == b.Left && a.Right < b.Right):
			removed = append(removed, a)
			i++
		default:
			added = append(added, b)
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

// equalAttrs reports byte-identical combined attribute vectors.
func equalAttrs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Events is the subscription's delivery channel. It closes when the watch
// ends — Close, context cancellation, or service shutdown; Err reports
// which.
func (w *Watch) Events() <-chan WatchEvent { return w.events }

// Err reports why the Events channel closed: nil after a clean Close, the
// context's error after cancellation, ErrClosed after service shutdown.
// Only meaningful once Events is closed.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close ends the subscription and releases it from the service; the last
// subscriber of a query releases its maintainer too. Close is idempotent
// and safe to call concurrently with event delivery.
func (w *Watch) Close() error {
	w.svc.removeWatch(w)
	w.once.Do(func() { close(w.done) })
	return nil
}

// terminate ends the subscription with an error, without touching the
// service registry — the caller (insert path or service Close) already
// holds the service lock and has unregistered the set.
func (w *Watch) terminate(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.once.Do(func() { close(w.done) })
}

// enqueue appends an event to the pending buffer and nudges the pump. It
// never blocks: the insert path calls it under the service's write lock.
func (w *Watch) enqueue(ev WatchEvent) {
	w.mu.Lock()
	ev.Seq = w.seq
	w.seq++
	w.pending = append(w.pending, ev)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// pump forwards pending events to the subscriber, one goroutine per
// subscription. It exits — closing Events — when the watch is closed,
// terminated, or its context is cancelled.
func (w *Watch) pump(ctx context.Context) {
	defer close(w.events)
	for {
		select {
		case <-w.done:
			return
		case <-ctx.Done():
			w.svc.removeWatch(w)
			w.terminate(ctx.Err())
			return
		case <-w.wake:
		}
		for {
			w.mu.Lock()
			if len(w.pending) == 0 {
				w.mu.Unlock()
				break
			}
			ev := w.pending[0]
			w.pending = w.pending[1:]
			w.mu.Unlock()
			select {
			case w.events <- ev:
			case <-w.done:
				return
			case <-ctx.Done():
				w.svc.removeWatch(w)
				w.terminate(ctx.Err())
				return
			}
		}
	}
}

// removeWatch unsubscribes w, closing its set's maintainer when it was
// the last subscriber — unless an ingest batch is mid-absorption on the
// set, in which case the batch's publish phase finishes the teardown.
func (s *Service) removeWatch(w *Watch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := w.set
	if current, ok := s.watches[ws.key]; !ok || current != ws {
		return // already detached (service closed, or set torn down)
	}
	delete(ws.subs, w)
	if len(ws.subs) == 0 && !ws.absorbing {
		ws.m.Close()
		delete(s.watches, ws.key)
	}
}

// closeWatchesLocked tears down every subscription; the caller holds the
// write lock (service Close).
func (s *Service) closeWatchesLocked() {
	for key, ws := range s.watches {
		ws.m.Close()
		for sub := range ws.subs {
			sub.terminate(ErrClosed)
		}
		delete(s.watches, key)
	}
}
