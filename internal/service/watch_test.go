package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
)

// nextEvent reads one event with a deadline, failing the test on timeout
// or a closed channel.
func nextEvent(t *testing.T, w *Watch) WatchEvent {
	t.Helper()
	select {
	case ev, ok := <-w.Events():
		if !ok {
			t.Fatalf("watch events closed early: %v", w.Err())
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for watch event")
	}
	panic("unreachable")
}

// applyDelta folds one event into a replica of the watched answer.
func applyDelta(t *testing.T, replica map[[2]int][]float64, ev WatchEvent) {
	t.Helper()
	for _, p := range ev.Removed {
		key := [2]int{p.Left, p.Right}
		if _, ok := replica[key]; !ok {
			t.Fatalf("delta removed (%d,%d), which the replica does not hold", p.Left, p.Right)
		}
		delete(replica, key)
	}
	for _, p := range ev.Added {
		key := [2]int{p.Left, p.Right}
		if _, ok := replica[key]; ok {
			t.Fatalf("delta added (%d,%d), which the replica already holds", p.Left, p.Right)
		}
		replica[key] = p.Attrs
	}
}

// randTuple builds an insert for the datagen-shaped test relations
// (3 local + 1 aggregate attributes, keyed into one of 5 groups).
func randTuple(rng *rand.Rand) dataset.Tuple {
	attrs := make([]float64, 4)
	for i := range attrs {
		attrs[i] = rng.Float64() * 100
	}
	return dataset.Tuple{Key: []string{"g0", "g1", "g2", "g3", "g4"}[rng.Intn(5)], Attrs: attrs}
}

// TestWatchDeltasMatchOracle drives ≥10 maintained inserts through a
// watched query and checks, after every delta, that replaying the event
// stream reproduces a from-scratch oracle recompute exactly.
func TestWatchDeltasMatchOracle(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 60)
	req := QueryRequest{R1: "r1", R2: "r2", K: 5}

	w, err := s.Watch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	first := nextEvent(t, w)
	if first.Seq != 0 || len(first.Removed) != 0 {
		t.Fatalf("initial event: seq=%d removed=%d, want snapshot", first.Seq, len(first.Removed))
	}
	replica := make(map[[2]int][]float64)
	applyDelta(t, replica, first)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 12; i++ {
		name := "r1"
		if i%2 == 1 {
			name = "r2"
		}
		ins, err := s.Insert(name, randTuple(rng))
		if err != nil {
			t.Fatal(err)
		}
		ev := nextEvent(t, w)
		if ev.Seq != uint64(i+1) {
			t.Fatalf("insert %d: event seq %d, want %d", i, ev.Seq, i+1)
		}
		if name == "r1" && ev.Versions[0] != ins.Version {
			t.Fatalf("insert %d: event versions %v, insert moved %s to %d", i, ev.Versions, name, ins.Version)
		}
		applyDelta(t, replica, ev)

		// Oracle: a forced from-scratch recompute of the same request.
		fresh, err := s.Query(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(fresh.Skyline) != len(replica) {
			t.Fatalf("insert %d: replica has %d pairs, oracle %d", i, len(replica), len(fresh.Skyline))
		}
		for _, p := range fresh.Skyline {
			attrs, ok := replica[[2]int{p.Left, p.Right}]
			if !ok {
				t.Fatalf("insert %d: oracle pair (%d,%d) missing from replica", i, p.Left, p.Right)
			}
			for a := range attrs {
				if attrs[a] != p.Attrs[a] {
					t.Fatalf("insert %d: pair (%d,%d) attr %d = %v, oracle %v",
						i, p.Left, p.Right, a, attrs[a], p.Attrs[a])
				}
			}
		}
	}
}

// TestWatchSharedSetAndClose exercises two subscribers on one query: both
// see the same deltas, closing one leaves the other live, closing the
// last releases the watch set.
func TestWatchSharedSetAndClose(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 40)
	req := QueryRequest{R1: "r1", R2: "r2", K: 5}

	w1, err := s.Watch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Watch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Watches; got != 2 {
		t.Fatalf("Stats.Watches = %d, want 2", got)
	}
	ev1, ev2 := nextEvent(t, w1), nextEvent(t, w2)
	if len(ev1.Added) != len(ev2.Added) {
		t.Fatalf("subscribers saw different snapshots: %d vs %d", len(ev1.Added), len(ev2.Added))
	}

	w1.Close()
	if _, ok := <-w1.Events(); ok {
		t.Fatal("closed watch still delivering")
	}
	if err := w1.Err(); err != nil {
		t.Fatalf("clean close reports error %v", err)
	}

	rng := rand.New(rand.NewSource(78))
	if _, err := s.Insert("r1", randTuple(rng)); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, w2); ev.Seq != 1 {
		t.Fatalf("surviving subscriber got seq %d, want 1", ev.Seq)
	}

	w2.Close()
	if got := s.Stats().Watches; got != 0 {
		t.Fatalf("Stats.Watches = %d after closing all, want 0", got)
	}
}

// TestWatchRejectsNonStrictAggregator pins the up-front rejection: max
// cannot be maintained incrementally, so it cannot be watched.
func TestWatchRejectsNonStrictAggregator(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	_, err := s.Watch(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5, Agg: "max", Algorithm: "naive"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("watch with max aggregator: err = %v, want ErrBadRequest", err)
	}
}

// TestWatchEndsOnServiceClose pins shutdown: Close ends every
// subscription with ErrClosed.
func TestWatchEndsOnServiceClose(t *testing.T) {
	s := New(Config{})
	r1 := testRelation("r1", 20, 3, 1, 5, 42)
	r2 := testRelation("r2", 20, 3, 1, 5, 43)
	if _, err := s.Register("r1", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("r2", r2); err != nil {
		t.Fatal(err)
	}
	w, err := s.Watch(context.Background(), QueryRequest{R1: "r1", R2: "r2", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-w.Events():
			if !ok {
				if err := w.Err(); !errors.Is(err, ErrClosed) {
					t.Fatalf("Err() = %v, want ErrClosed", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed after service Close")
		}
	}
}

// TestWatchEndsOnContextCancel pins the context contract.
func TestWatchEndsOnContextCancel(t *testing.T) {
	s := newTestService(t, Config{})
	registerPair(t, s, 20)
	ctx, cancel := context.WithCancel(context.Background())
	w, err := s.Watch(ctx, QueryRequest{R1: "r1", R2: "r2", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-w.Events():
			if !ok {
				if err := w.Err(); !errors.Is(err, context.Canceled) {
					t.Fatalf("Err() = %v, want context.Canceled", err)
				}
				if got := s.Stats().Watches; got != 0 {
					t.Fatalf("Stats.Watches = %d after cancel, want 0", got)
				}
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed after cancel")
		}
	}
}

// TestWatchSelfJoin pins the both-sides absorb: one physical insert into
// a self-joined relation must produce one coherent delta.
func TestWatchSelfJoin(t *testing.T) {
	s := newTestService(t, Config{})
	r := testRelation("r", 40, 3, 1, 5, 44)
	oracleRel := r.Clone()
	if _, err := s.Register("r", r); err != nil {
		t.Fatal(err)
	}
	w, err := s.Watch(context.Background(), QueryRequest{R1: "r", R2: "r", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	replica := make(map[[2]int][]float64)
	applyDelta(t, replica, nextEvent(t, w))

	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 5; i++ {
		tup := randTuple(rng)
		if _, err := s.Insert("r", tup); err != nil {
			t.Fatal(err)
		}
		if _, err := oracleRel.Append(tup); err != nil {
			t.Fatal(err)
		}
		applyDelta(t, replica, nextEvent(t, w))
		oracle, err := core.Run(core.Query{
			R1: oracleRel, R2: oracleRel,
			Spec: join.Spec{Cond: join.Equality, Agg: join.Sum}, K: 5,
		}, core.Grouping)
		if err != nil {
			t.Fatal(err)
		}
		if len(oracle.Skyline) != len(replica) {
			t.Fatalf("insert %d: replica %d pairs, oracle %d", i, len(replica), len(oracle.Skyline))
		}
		for _, p := range oracle.Skyline {
			if _, ok := replica[[2]int{p.Left, p.Right}]; !ok {
				t.Fatalf("insert %d: oracle pair (%d,%d) missing", i, p.Left, p.Right)
			}
		}
	}
}
