package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// ErrShardDown marks a shard the gateway could not reach (connection
// failure after the retry, or a 5xx from the shard). The wrapping
// DownError names the shard; the gateway's HTTP surface maps it to 503.
var ErrShardDown = errors.New("shard: shard down")

// DownError is ErrShardDown with the failing shard named.
type DownError struct {
	Addr string
	Err  error
}

func (e *DownError) Error() string {
	return fmt.Sprintf("shard %s down: %v", e.Addr, e.Err)
}

// Unwrap lets errors.Is see both the sentinel and the transport cause.
func (e *DownError) Unwrap() []error { return []error{ErrShardDown, e.Err} }

// APIError is a non-2xx shard response that is the client's fault, not
// the shard's (4xx): the gateway passes the status and message through.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string { return e.Msg }

// Is maps 400s onto service.ErrBadRequest and 404s onto
// service.ErrUnknownRelation so gateway-internal callers can classify
// passthrough errors the same way they classify local ones.
func (e *APIError) Is(target error) bool {
	switch target {
	case service.ErrBadRequest:
		return e.Status == http.StatusBadRequest
	case service.ErrUnknownRelation:
		return e.Status == http.StatusNotFound
	}
	return false
}

// client speaks the httpapi wire surface against one shard process over
// a keep-alive connection pool. Every call gets a per-leg deadline
// derived from the operator bound; read-only calls are retried once on
// transient connection errors (mutations are not — they are not
// idempotent, and a half-applied batch must surface, not silently
// double-apply).
type client struct {
	addr       string // host:port or full http://... base
	base       string
	hc         *http.Client
	maxTimeout time.Duration
}

func newClient(addr string, hc *http.Client, maxTimeout time.Duration) *client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &client{addr: addr, base: strings.TrimRight(base, "/"), hc: hc, maxTimeout: maxTimeout}
}

// do runs one JSON call. in may be nil (GET/DELETE); out may be nil.
func (c *client) do(ctx context.Context, method, path string, in, out any, retry bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	err := c.attempt(ctx, method, path, body, out)
	if err != nil && retry && errors.Is(err, ErrShardDown) && ctx.Err() == nil {
		err = c.attempt(ctx, method, path, body, out)
	}
	return err
}

func (c *client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	if c.maxTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The caller's own cancellation is not the shard's fault.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			var ue *url.Error
			if errors.As(err, &ue) {
				err = ue.Err
			}
		}
		return &DownError{Addr: c.addr, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		if resp.StatusCode/100 == 4 {
			return &APIError{Status: resp.StatusCode, Msg: msg}
		}
		return &DownError{Addr: c.addr, Err: fmt.Errorf("status %d: %s", resp.StatusCode, msg)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &DownError{Addr: c.addr, Err: fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

func (c *client) health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

func (c *client) register(ctx context.Context, req httpapi.RegisterJSON) (httpapi.RegisterResponseJSON, error) {
	var out httpapi.RegisterResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/relations", req, &out, false)
	return out, err
}

func (c *client) unregister(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/relations?name="+url.QueryEscape(name), nil, nil, false)
}

func (c *client) query(ctx context.Context, req httpapi.QueryJSON) (httpapi.QueryResponseJSON, error) {
	var out httpapi.QueryResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/query", req, &out, true)
	return out, err
}

func (c *client) verify(ctx context.Context, req httpapi.VerifyJSON) (httpapi.VerifyResponseJSON, error) {
	var out httpapi.VerifyResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/verify", req, &out, true)
	return out, err
}

func (c *client) insert(ctx context.Context, req httpapi.InsertJSON) (httpapi.InsertResponseJSON, error) {
	var out httpapi.InsertResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/insert", req, &out, false)
	return out, err
}

func (c *client) delete(ctx context.Context, req httpapi.DeleteJSON) (httpapi.DeleteResponseJSON, error) {
	var out httpapi.DeleteResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/delete", req, &out, false)
	return out, err
}

func (c *client) stats(ctx context.Context) (service.Stats, error) {
	var out service.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out, true)
	return out, err
}
