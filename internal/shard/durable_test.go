package shard

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// durableShard is one shard "process" with a durable data directory and a
// fixed listen address, so a crashed incarnation can be reborn on the
// same address and the gateway's shard list stays valid across it.
type durableShard struct {
	dir  string
	addr string
	svc  *service.Service
	srv  *httptest.Server
}

func startDurableShard(t *testing.T, dir, addr string) *durableShard {
	t.Helper()
	svc, err := service.Open(service.Config{SweepInterval: -1, CheckpointInterval: -1}, dir)
	if err != nil {
		t.Fatalf("opening shard store %s: %v", dir, err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listening on %s: %v", addr, err)
	}
	srv := httptest.NewUnstartedServer(httpapi.NewHandler(svc, 0))
	srv.Listener = l
	srv.Start()
	return &durableShard{dir: dir, addr: l.Addr().String(), svc: svc, srv: srv}
}

// crash kills the shard the way kill -9 would: the HTTP server vanishes
// mid-flight and the service instance is abandoned without Close — no
// final checkpoint, no WAL fsync beyond what acknowledged mutations
// already forced.
func (ds *durableShard) crash() {
	ds.srv.CloseClientConnections()
	ds.srv.Close()
	ds.svc = nil
	ds.srv = nil
}

// TestGatewayShardCrashRecovery: both shards of a live cluster are hard-
// killed and reborn from their data directories on the same addresses.
// The gateway — whose placement mapping assumes shard-local row numbering
// and versions survive — keeps answering, and every post-recovery answer
// stays byte-identical to a single-node mirror that never crashed.
// Recovery replaying mutations through the shards' normal paths is what
// makes the numbering assumption hold.
func TestGatewayShardCrashRecovery(t *testing.T) {
	ctx := context.Background()
	const local, agg, groups = 2, 1, 5
	rng := rand.New(rand.NewSource(711))

	shards := []*durableShard{
		startDurableShard(t, t.TempDir(), "127.0.0.1:0"),
		startDurableShard(t, t.TempDir(), "127.0.0.1:0"),
	}
	defer func() {
		for _, ds := range shards {
			if ds.srv != nil {
				ds.srv.Close()
			}
			if ds.svc != nil {
				ds.svc.Close()
			}
		}
	}()
	urls := []string{"http://" + shards[0].addr, "http://" + shards[1].addr}
	// Fresh connection per request: a pooled connection into the crashed
	// incarnation would EOF the first post-restart write, and write
	// retries are deliberately not the gateway's job. This test is about
	// state recovery, not connection-pool repair.
	gw, err := New(ctx, urls, Config{
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	mirror := newMirror(t)

	t1 := genTuples(rng, 24, local, agg, groups)
	t2 := genTuples(rng, 24, local, agg, groups)
	for name, ts := range map[string][]dataset.Tuple{"r1": t1, "r2": t2} {
		if _, err := gw.Register(ctx, name, local, agg, ts); err != nil {
			t.Fatalf("gateway register %s: %v", name, err)
		}
		if _, err := mirror.Register(name, mustRelation(t, name, local, agg, ts)); err != nil {
			t.Fatalf("mirror register %s: %v", name, err)
		}
	}

	sizes := map[string]int{"r1": len(t1), "r2": len(t2)}
	mutate := func(step int) {
		t.Helper()
		name := "r1"
		if rng.Intn(2) == 1 {
			name = "r2"
		}
		if rng.Intn(3) < 2 || sizes[name] < 6 {
			batch := genTuples(rng, 1+rng.Intn(4), local, agg, groups)
			if _, err := gw.InsertBatch(ctx, name, batch); err != nil {
				t.Fatalf("step %d: gateway insert: %v", step, err)
			}
			if _, err := mirror.InsertBatch(name, batch); err != nil {
				t.Fatalf("step %d: mirror insert: %v", step, err)
			}
			sizes[name] += len(batch)
		} else {
			count := 1 + rng.Intn(3)
			ids := rng.Perm(sizes[name])[:count]
			if _, err := gw.DeleteBatch(ctx, name, ids); err != nil {
				t.Fatalf("step %d: gateway delete %v: %v", step, ids, err)
			}
			if _, err := mirror.DeleteBatch(name, ids); err != nil {
				t.Fatalf("step %d: mirror delete: %v", step, err)
			}
			sizes[name] -= count
		}
	}
	check := func(label string) {
		t.Helper()
		for _, aggName := range []string{"sum", "max"} {
			req := service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: aggName}
			gresp, err := gw.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s %s: gateway: %v", label, aggName, err)
			}
			if aggName != "sum" {
				req.Algorithm = "naive" // non-strict aggregators need it single-node
			}
			mresp, err := mirror.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s %s: mirror: %v", label, aggName, err)
			}
			samePairs(t, fmt.Sprintf("%s %s", label, aggName), gresp.Skyline, mresp.Skyline)
		}
	}

	for step := 0; step < 10; step++ {
		mutate(step)
	}
	check("pre-crash")

	// Hard-kill both shards, then rebirth each from its data directory on
	// the same address. The gateway is never told.
	for _, ds := range shards {
		ds.crash()
	}
	for i, ds := range shards {
		shards[i] = startDurableShard(t, ds.dir, ds.addr)
	}
	check("post-recovery")

	// The cluster keeps taking mutations after recovery: the gateway's row
	// mapping still matches the shards' recovered numbering.
	for step := 10; step < 25; step++ {
		mutate(step)
	}
	check("post-recovery mutations")
}
