// Package shard turns the partition-by-join-key scheme of
// internal/distributed into an actual multi-node deployment: a Gateway
// scatter-gathers over N ksjqd shard processes speaking the
// internal/httpapi wire surface over keep-alive HTTP.
//
// Placement is by consistent hash on the join-key symbol
// (distributed.NodeOf — the same function the simulator uses), so every
// join group lives wholly on one shard and any joined pair — candidate
// or dominator — is local to exactly one shard. A query then runs the
// simulator's two rounds for real:
//
//  1. Local round: the gateway fans the query out to every shard holding
//     both relations; each shard answers from its own residents and
//     maintained entries (all of PR 3–8's caching works per-shard), and
//     the local skylines come back as candidate supersets.
//  2. Verification round: the gateway ships each shard the foreign
//     candidates' attribute vectors (POST /v1/verify); shards vote with
//     the target-set checker over their resident index, and only
//     candidates no peer dominates survive. Message and float counters —
//     the communication cost the simulator was built to observe — are
//     recorded per query and accumulated on the gateway.
//
// Ingest, deletes, and registration fan out by the same placement, with
// the gateway keeping the authoritative global row numbering (global ids
// mirror a single-node ksjqd over the same mutation history — the oracle
// equivalence the tests pin). Watch re-runs the two rounds after every
// gateway-driven mutation and publishes the diff with a gateway-side
// sequence.
//
// The in-process simulator is retained verbatim as the correctness
// oracle: sharded answer ≡ distributed.Run ≡ single-node core.Run.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/httpapi"
	"repro/internal/join"
	"repro/internal/service"
)

// ErrClosed is returned by every Gateway method after Close.
var ErrClosed = errors.New("shard: gateway closed")

// SourceSharded marks answers assembled by the gateway's two-round
// scatter-gather; single-shard fast paths report the shard's own source.
const SourceSharded = service.Source("sharded")

// Config tunes one Gateway.
type Config struct {
	// ShardTimeout bounds every per-shard request leg, derived from the
	// operator's -timeout bound exactly like the single-node wire clamp:
	// 0 means service.DefaultRequestTimeout, negative disables the bound.
	ShardTimeout time.Duration
	// HTTPClient overrides the keep-alive transport (tests inject the
	// httptest server's client). Nil uses a pooled default.
	HTTPClient *http.Client
}

// Gateway coordinates a cluster of ksjqd shards. Create with New, share
// freely across goroutines, Close when done.
type Gateway struct {
	cfg    Config
	shards []*client
	addrs  []string

	// mu guards placement and watches. Queries hold it shared across
	// both rounds, so placement cannot move under a scatter-gather;
	// mutations hold it exclusively across their shard commits, so the
	// cluster observes one linear mutation history.
	mu      sync.RWMutex
	rels    map[string]*relPlace
	watches map[gwWatchKey]*gwWatchSet

	// cache is the gateway's answer cache, the cluster analogue of the
	// single-node service's: every mutation flows through the gateway
	// and bumps the placement versions, so version equality proves an
	// entry fresh without touching any shard. A hit skips both rounds —
	// the scatter, the candidate exchange, and the verification — which
	// is what makes warm repeat queries round-trip-free.
	cacheMu sync.Mutex
	cache   map[gwWatchKey]*gwCacheEntry

	// lifeMu orders operation starts against Close: track holds it shared
	// around the closed check + wg.Add, Close holds it exclusively while
	// flipping closed — so once Close proceeds to wg.Wait, no new
	// operation can slip in between the check and the Add.
	lifeMu sync.RWMutex
	closed atomic.Bool
	// wg counts in-flight scatter-gathers; Close drains it so shutdown
	// never abandons a half-merged answer.
	wg sync.WaitGroup

	queries, inserts, deletes atomic.Uint64
	r2Messages, r2Floats      atomic.Uint64
	cacheHits                 atomic.Uint64
}

// gwCacheEntry is one cached merged answer, valid while the relations'
// placement versions still match. Skyline is shared and read-only.
type gwCacheEntry struct {
	versions  [2]uint64
	skyline   []join.Pair
	algorithm string
}

// gwCacheCap bounds the answer cache; at capacity an arbitrary entry is
// evicted (the cache is correctness-free, so eviction policy only
// affects hit rate).
const gwCacheCap = 256

func (g *Gateway) cacheGet(key gwWatchKey, versions [2]uint64) *gwCacheEntry {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	e := g.cache[key]
	if e == nil || e.versions != versions {
		return nil
	}
	return e
}

func (g *Gateway) cachePut(key gwWatchKey, e *gwCacheEntry) {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	if g.cache[key] == nil && len(g.cache) >= gwCacheCap {
		for k := range g.cache {
			delete(g.cache, k)
			break
		}
	}
	g.cache[key] = e
}

// New connects to the shard processes and verifies each is alive. The
// shard list is fixed for the gateway's lifetime — placement hashes over
// its length, so changing the cluster size means re-sharding, which is
// out of scope here (DESIGN.md §13).
func New(ctx context.Context, addrs []string, cfg Config) (*Gateway, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: no shard addresses", service.ErrBadRequest)
	}
	maxTimeout := cfg.ShardTimeout
	if maxTimeout == 0 {
		maxTimeout = service.DefaultRequestTimeout
	} else if maxTimeout < 0 {
		maxTimeout = 0
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	g := &Gateway{
		cfg:     cfg,
		addrs:   addrs,
		rels:    make(map[string]*relPlace),
		watches: make(map[gwWatchKey]*gwWatchSet),
		cache:   make(map[gwWatchKey]*gwCacheEntry),
	}
	for _, a := range addrs {
		g.shards = append(g.shards, newClient(a, hc, maxTimeout))
	}
	for _, c := range g.shards {
		if err := c.health(ctx); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Shards lists the configured shard addresses.
func (g *Gateway) Shards() []string { return append([]string(nil), g.addrs...) }

// track registers one in-flight operation for the shutdown drain.
func (g *Gateway) track() error {
	g.lifeMu.RLock()
	defer g.lifeMu.RUnlock()
	if g.closed.Load() {
		return ErrClosed
	}
	g.wg.Add(1)
	return nil
}

// Close marks the gateway closed, drains in-flight scatter-gathers, and
// terminates every watch subscription. Shards are left running — they
// are independent processes.
func (g *Gateway) Close() error {
	g.lifeMu.Lock()
	first := g.closed.CompareAndSwap(false, true)
	g.lifeMu.Unlock()
	if !first {
		return nil
	}
	g.wg.Wait()
	g.mu.Lock()
	for key, ws := range g.watches {
		for sub := range ws.subs {
			sub.terminate(ErrClosed)
		}
		delete(g.watches, key)
	}
	g.mu.Unlock()
	return nil
}

// QueryResponse is one gateway answer: the merged skyline plus the
// distributed-round statistics the simulator was built to observe.
type QueryResponse struct {
	Skyline []join.Pair
	// Source is the coldest source any shard reported in round 1
	// (computed > maintained > cached), or SourceSharded when shards
	// disagree in kind; repeat queries over unchanged shards report
	// warm sources exactly like a single node would.
	Source    service.Source
	Algorithm string
	// Versions are the gateway's (R1, R2) placement versions.
	Versions [2]uint64
	Elapsed  time.Duration
	// Dist carries the two-round breakdown: candidates per shard and the
	// verification round's message/float traffic.
	Dist distributed.Stats
	// R1Elapsed is each shard's round-1 wall clock (zero for shards that
	// did not participate) — the balance evidence: on a multi-core
	// deployment the round-1 latency is the maximum entry, so the closer
	// they are, the closer the scatter gets to the ideal 1/shards.
	R1Elapsed []time.Duration
}

// parseQuery validates the request shape against gateway metadata. It
// mirrors the service's O(1) structural checks so malformed queries are
// rejected identically whether they hit a shard or the gateway.
func (g *Gateway) parseQuery(req service.QueryRequest) (cond join.Condition, agg join.Aggregator, err error) {
	if cond, err = join.ParseCondition(req.Join); err != nil {
		return cond, agg, fmt.Errorf("%w: %v", service.ErrBadRequest, err)
	}
	if agg, err = join.ParseAggregator(req.Agg); err != nil {
		return cond, agg, fmt.Errorf("%w: %v", service.ErrBadRequest, err)
	}
	return cond, agg, nil
}

// checkLocked validates relations and k under the lock; returns the
// placements.
func (g *Gateway) checkLocked(req service.QueryRequest, cond join.Condition) (rp1, rp2 *relPlace, err error) {
	rp1, ok := g.rels[req.R1]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", service.ErrUnknownRelation, req.R1)
	}
	rp2, ok = g.rels[req.R2]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", service.ErrUnknownRelation, req.R2)
	}
	if rp1.agg != rp2.agg {
		return nil, nil, fmt.Errorf("%w: aggregate attribute counts differ (%d vs %d)", service.ErrBadRequest, rp1.agg, rp2.agg)
	}
	d1, d2 := rp1.local+rp1.agg, rp2.local+rp2.agg
	kmin := max(d1, d2) + 1
	width := rp1.local + rp2.local + rp1.agg
	if req.K < kmin || req.K > width {
		return nil, nil, fmt.Errorf("%w: k=%d, admissible range (%d, %d]", service.ErrBadRequest, req.K, kmin-1, width)
	}
	if cond != join.Equality && len(g.shards) > 1 {
		return nil, nil, fmt.Errorf("%w: %v with %d shards", distributed.ErrNotShardable, cond, len(g.shards))
	}
	return rp1, rp2, nil
}

// shardAlgorithm maps the requested algorithm to what the shards run:
// like distributed.LocalAlgorithm, a non-strict aggregator forces the
// naive algorithm (target-set pruning is unsound for it, and the service
// rejects "auto" in that combination).
func shardAlgorithm(requested string, agg join.Aggregator) string {
	if (requested == "" || requested == "auto") && !agg.Strict {
		return "naive"
	}
	return requested
}

// Query answers one request with the two-round scatter-gather. Safe for
// arbitrary concurrent use; holds the gateway's read lock across both
// rounds so placement cannot move mid-query.
func (g *Gateway) Query(ctx context.Context, req service.QueryRequest) (*QueryResponse, error) {
	if err := g.track(); err != nil {
		return nil, err
	}
	defer g.wg.Done()
	g.queries.Add(1)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.queryLocked(ctx, req)
}

// candidate is one round-1 survivor, identified by global row ids.
type candidate struct {
	home        int
	left, right int
	attrs       []float64
}

// queryLocked runs both rounds; the caller holds g.mu (read for Query,
// write for the mutation paths' watch refresh).
func (g *Gateway) queryLocked(ctx context.Context, req service.QueryRequest) (*QueryResponse, error) {
	start := time.Now()
	cond, agg, err := g.parseQuery(req)
	if err != nil {
		return nil, err
	}
	rp1, rp2, err := g.checkLocked(req, cond)
	if err != nil {
		return nil, err
	}
	versions := [2]uint64{rp1.version, rp2.version}
	st := distributed.Stats{Nodes: len(g.shards), CandidatesPerNode: make([]int, len(g.shards))}

	cacheKey := gwWatchKey{r1: req.R1, r2: req.R2, cond: cond, agg: agg.Name, k: req.K}
	if !req.NoCache {
		if e := g.cacheGet(cacheKey, versions); e != nil {
			g.cacheHits.Add(1)
			st.Total = time.Since(start)
			return &QueryResponse{
				Skyline: e.skyline, Source: service.SourceCached, Algorithm: e.algorithm,
				Versions: versions, Elapsed: time.Since(start), Dist: st,
			}, nil
		}
	}

	var participants []int
	for s := range g.shards {
		if rp1.registered[s] && rp2.registered[s] {
			participants = append(participants, s)
		}
	}
	algorithm := shardAlgorithm(req.Algorithm, agg)
	if len(participants) == 0 {
		// No shard holds both relations: every join group is missing one
		// side, so the join — and the skyline — is empty.
		return &QueryResponse{
			Skyline: []join.Pair{}, Source: SourceSharded, Algorithm: algorithm,
			Versions: versions, Elapsed: time.Since(start), Dist: st,
		}, nil
	}

	// Round 1: shard-local runs, in parallel. Each shard answers from its
	// own residents/answer cache; local pair ids map to global ids
	// through the placement.
	wire := httpapi.QueryJSON{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: algorithm,
		Workers: req.Workers, NoCache: req.NoCache,
		TimeoutMS: req.Timeout.Milliseconds(),
	}
	t0 := time.Now()
	round1 := make([]httpapi.QueryResponseJSON, len(participants))
	errs := make([]error, len(participants))
	var wg sync.WaitGroup
	for i, s := range participants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			round1[i], errs[i] = g.shards[s].query(ctx, wire)
		}()
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var candidates []candidate
	source := ""
	r1Elapsed := make([]time.Duration, len(g.shards))
	for i, s := range participants {
		res := round1[i]
		st.CandidatesPerNode[s] = res.Count
		r1Elapsed[s] = time.Duration(res.ElapsedUS) * time.Microsecond
		st.LocalTime += r1Elapsed[s]
		source = colderSource(source, res.Source)
		for _, p := range res.Skyline {
			candidates = append(candidates, candidate{
				home: s, left: rp1.toGlobal(s, p.Left), right: rp2.toGlobal(s, p.Right),
				attrs: p.Attrs,
			})
		}
	}

	// Round 2: ship every foreign candidate's attribute vector to each
	// verifier shard, in parallel; a candidate survives only if no peer
	// finds a local dominator. One shard — or zero candidates — skips the
	// round entirely: its own round-1 run already vouched for everything.
	dominated := make([]bool, len(candidates))
	if len(participants) > 1 && len(candidates) > 0 {
		t0 = time.Now()
		type verdict struct {
			idx []int
			dom []bool
			err error
		}
		verdicts := make([]verdict, len(participants))
		var vg sync.WaitGroup
		for i, s := range participants {
			var vectors [][]float64
			var idx []int
			for ci, c := range candidates {
				if c.home != s {
					vectors = append(vectors, c.attrs)
					idx = append(idx, ci)
				}
			}
			if len(vectors) == 0 {
				continue
			}
			g.r2Messages.Add(2) // candidate batch in, verdict batch out
			st.MessagesSent += 2
			for _, v := range vectors {
				st.FloatsShipped += len(v)
				g.r2Floats.Add(uint64(len(v)))
			}
			vg.Add(1)
			go func(i, s int, vectors [][]float64, idx []int) {
				defer vg.Done()
				res, err := g.shards[s].verify(ctx, httpapi.VerifyJSON{
					R1: req.R1, R2: req.R2, K: req.K,
					Join: req.Join, Agg: req.Agg,
					Vectors:   vectors,
					TimeoutMS: req.Timeout.Milliseconds(),
				})
				verdicts[i] = verdict{idx: idx, dom: res.Dominated, err: err}
			}(i, s, vectors, idx)
		}
		vg.Wait()
		for _, v := range verdicts {
			if v.err != nil {
				return nil, v.err
			}
			for bi, d := range v.dom {
				if d {
					dominated[v.idx[bi]] = true
				}
			}
		}
		st.VerifyTime = time.Since(t0)
	}

	skyline := make([]join.Pair, 0, len(candidates))
	for ci, c := range candidates {
		if !dominated[ci] {
			skyline = append(skyline, join.Pair{Left: c.left, Right: c.right, Attrs: c.attrs})
		}
	}
	distributed.SortPairs(skyline)
	st.Total = time.Since(start)

	src := service.Source(source)
	if src == "" {
		src = SourceSharded
	}
	g.cachePut(cacheKey, &gwCacheEntry{
		versions: versions, skyline: skyline, algorithm: round1[0].Algorithm,
	})
	return &QueryResponse{
		Skyline: skyline, Source: src, Algorithm: round1[0].Algorithm,
		Versions: versions, Elapsed: time.Since(start), Dist: st,
		R1Elapsed: r1Elapsed,
	}, nil
}

// colderSource merges round-1 sources: a scatter-gather is only as warm
// as its coldest shard.
func colderSource(a, b string) string {
	rank := func(s string) int {
		switch service.Source(s) {
		case service.SourceComputed:
			return 3
		case service.SourceMaintained:
			return 2
		case service.SourceCached:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Register places a relation across the cluster: tuples are partitioned
// by join key and registered on every shard that owns at least one. A
// shard failing mid-registration rolls the others back (best effort), so
// the relation either exists cluster-wide or not at all. Windowed
// relations are not supported in gateway mode — shard-side expiry would
// renumber rows without the gateway's mapping hearing about it.
func (g *Gateway) Register(ctx context.Context, name string, local, agg int, ts []dataset.Tuple) (uint64, error) {
	if err := g.track(); err != nil {
		return 0, err
	}
	defer g.wg.Done()
	if name == "" {
		return 0, fmt.Errorf("%w: empty relation name", service.ErrBadRequest)
	}
	// Full single-node validation up front: a batch that one ksjqd would
	// reject must not be half-registered across several.
	if _, err := dataset.New(name, local, agg, ts); err != nil {
		return 0, fmt.Errorf("%w: %v", service.ErrBadRequest, err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.rels[name]; ok {
		return 0, fmt.Errorf("%w: %q", service.ErrDuplicateRelation, name)
	}
	rp := newRelPlace(name, local, agg, len(g.shards))
	batches := rp.planInsert(ts)
	ok := make([]bool, len(g.shards))
	for s, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wire := make([]httpapi.TupleJSON, len(batch))
		for i, t := range batch {
			wire[i] = httpapi.FromTuple(t)
		}
		if _, err := g.shards[s].register(ctx, httpapi.RegisterJSON{
			Name: name, Local: local, Agg: agg, Tuples: wire,
		}); err != nil {
			for s2, done := range ok {
				if done {
					_ = g.shards[s2].unregister(context.WithoutCancel(ctx), name)
				}
			}
			return 0, err
		}
		ok[s] = true
		rp.registered[s] = true
	}
	rp.applyInsert(ts, ok)
	g.rels[name] = rp
	return rp.version, nil
}

// Unregister removes a relation cluster-wide. Watches naming it end with
// ErrUnknownRelation, like the single-node service.
func (g *Gateway) Unregister(ctx context.Context, name string) error {
	if err := g.track(); err != nil {
		return err
	}
	defer g.wg.Done()
	g.mu.Lock()
	defer g.mu.Unlock()
	rp, ok := g.rels[name]
	if !ok {
		return fmt.Errorf("%w: %q", service.ErrUnknownRelation, name)
	}
	var firstErr error
	for s, reg := range rp.registered {
		if !reg {
			continue
		}
		if err := g.shards[s].unregister(ctx, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	delete(g.rels, name)
	g.dropWatchesLocked(name, fmt.Errorf("%w: %q", service.ErrUnknownRelation, name))
	return firstErr
}

// Relations lists the cluster placement, sorted by name.
func (g *Gateway) Relations() []RelationPlacement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]RelationPlacement, 0, len(g.rels))
	for name, rp := range g.rels {
		info := RelationPlacement{
			Name: name, Version: rp.version, Tuples: rp.size(),
			Local: rp.local, Agg: rp.agg,
			PerShard: make([]int, len(rp.perShard)),
		}
		for s := range rp.perShard {
			info.PerShard[s] = rp.rows(s)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationPlacement is one relation's cluster-wide metadata.
type RelationPlacement struct {
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	Tuples   int    `json:"tuples"`
	Local    int    `json:"local"`
	Agg      int    `json:"agg"`
	PerShard []int  `json:"per_shard"`
}

// InsertResult mirrors the single-node InsertResult's geometry fields.
type InsertResult struct {
	ID      int
	Count   int
	Version uint64
}

// InsertBatch appends a batch through the placement: tuples group by
// owning shard, each group commits as one shard-side group commit, and
// the mapping extends with what actually landed. First tuples for a
// shard register the relation there (lazy registration keeps empty
// partitions off the registry — shards reject empty relations).
//
// Failure semantics: shards commit sequentially; a failing shard keeps
// its group un-applied while earlier groups stay committed, the mapping
// reflects exactly the surviving state, and the error (naming the shard)
// reports the batch as partially applied. Cross-shard atomicity would
// need a transaction protocol the scheme deliberately avoids.
func (g *Gateway) InsertBatch(ctx context.Context, name string, ts []dataset.Tuple) (*InsertResult, error) {
	if err := g.track(); err != nil {
		return nil, err
	}
	defer g.wg.Done()
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: empty batch", service.ErrBadRequest)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rp, ok := g.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", service.ErrUnknownRelation, name)
	}
	// Validate the whole batch before any shard sees any of it.
	for i, t := range ts {
		if len(t.Attrs) != rp.local+rp.agg {
			return nil, fmt.Errorf("%w: tuple %d has %d attributes, want %d", service.ErrBadRequest, i, len(t.Attrs), rp.local+rp.agg)
		}
	}
	batches := rp.planInsert(ts)
	okShards := make([]bool, len(g.shards))
	var commitErr error
	for s, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wire := make([]httpapi.TupleJSON, len(batch))
		for i, t := range batch {
			wire[i] = httpapi.FromTuple(t)
		}
		var err error
		if !rp.registered[s] {
			_, err = g.shards[s].register(ctx, httpapi.RegisterJSON{
				Name: name, Local: rp.local, Agg: rp.agg, Tuples: wire,
			})
			if err == nil {
				rp.registered[s] = true
			}
		} else {
			_, err = g.shards[s].insert(ctx, httpapi.InsertJSON{Relation: name, Tuples: wire})
		}
		if err != nil {
			commitErr = err
			break
		}
		okShards[s] = true
	}
	first := rp.size()
	applied := 0
	for s, done := range okShards {
		if done {
			applied += len(batches[s])
		}
	}
	if applied == 0 {
		return nil, commitErr
	}
	rp.applyInsert(ts, okShards)
	rp.version++
	g.inserts.Add(1)
	g.refreshWatchesLocked(ctx, name)
	res := &InsertResult{ID: first, Count: applied, Version: rp.version}
	return res, commitErr
}

// DeleteResult mirrors the single-node DeleteResult's geometry fields.
type DeleteResult struct {
	Count   int
	Version uint64
}

// DeleteBatch removes rows by global id through the placement. A batch
// that drains a shard's entire partition unregisters the relation there
// instead (shards keep registered relations non-empty); the shard
// re-registers lazily on the next insert that hashes to it. Failure
// semantics mirror InsertBatch: per-shard groups commit sequentially and
// the mapping keeps exactly what survived.
func (g *Gateway) DeleteBatch(ctx context.Context, name string, ids []int) (*DeleteResult, error) {
	if err := g.track(); err != nil {
		return nil, err
	}
	defer g.wg.Done()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: empty batch", service.ErrBadRequest)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rp, ok := g.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", service.ErrUnknownRelation, name)
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	n := rp.size()
	for i, id := range sorted {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("%w: delete index %d out of range [0,%d)", service.ErrBadRequest, id, n)
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("%w: duplicate delete index %d", service.ErrBadRequest, id)
		}
	}
	if len(sorted) >= n {
		return nil, fmt.Errorf("%w: cannot delete all %d rows of %q (registered relations stay non-empty)", service.ErrBadRequest, n, name)
	}
	del := rp.planRemove(sorted)
	okShards := make([]bool, len(g.shards))
	var commitErr error
	for s, batch := range del {
		if len(batch) == 0 {
			continue
		}
		var err error
		if len(batch) == rp.rows(s) {
			// The batch drains this shard's whole partition; an empty
			// relation cannot stay registered, so drop it shard-side.
			err = g.shards[s].unregister(ctx, name)
			if err == nil {
				rp.registered[s] = false
			}
		} else {
			_, err = g.shards[s].delete(ctx, httpapi.DeleteJSON{Relation: name, IDs: batch})
		}
		if err != nil {
			commitErr = err
			break
		}
		okShards[s] = true
	}
	applied := 0
	for s, done := range okShards {
		if done {
			applied += len(del[s])
		}
	}
	if applied == 0 {
		return nil, commitErr
	}
	rp.applyRemove(sorted, okShards)
	rp.version++
	g.deletes.Add(1)
	g.refreshWatchesLocked(ctx, name)
	res := &DeleteResult{Count: applied, Version: rp.version}
	return res, commitErr
}

// ShardStats is one shard's counter snapshot (or the error that kept it
// from answering).
type ShardStats struct {
	Addr  string         `json:"addr"`
	Error string         `json:"error,omitempty"`
	Stats *service.Stats `json:"stats,omitempty"`
}

// Stats is the cluster-wide counter snapshot: the gateway's own counters
// — including the round-2 message/float traffic promoted from
// distributed.Stats — plus each shard's service counters.
type Stats struct {
	Queries    uint64 `json:"queries"`
	Inserts    uint64 `json:"insert_batches"`
	Deletes    uint64 `json:"delete_batches"`
	R2Messages uint64 `json:"r2_messages"`
	R2Floats   uint64 `json:"r2_floats_shipped"`
	CacheHits  uint64 `json:"answer_cache_hits"`
	Watches    int    `json:"watches"`

	Relations []RelationPlacement `json:"relations"`
	Shards    []ShardStats        `json:"shards"`
}

// Stats snapshots the gateway counters and fans /v1/stats out to every
// shard. A shard that cannot answer is reported with its error rather
// than failing the whole snapshot.
func (g *Gateway) Stats(ctx context.Context) Stats {
	out := Stats{
		Queries:    g.queries.Load(),
		Inserts:    g.inserts.Load(),
		Deletes:    g.deletes.Load(),
		R2Messages: g.r2Messages.Load(),
		R2Floats:   g.r2Floats.Load(),
		CacheHits:  g.cacheHits.Load(),
		Relations:  g.Relations(),
		Shards:     make([]ShardStats, len(g.shards)),
	}
	g.mu.RLock()
	for _, ws := range g.watches {
		out.Watches += len(ws.subs)
	}
	g.mu.RUnlock()
	var wg sync.WaitGroup
	for i, c := range g.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.stats(ctx)
			out.Shards[i] = ShardStats{Addr: c.addr}
			if err != nil {
				out.Shards[i].Error = err.Error()
				return
			}
			out.Shards[i].Stats = &st
		}()
	}
	wg.Wait()
	return out
}
