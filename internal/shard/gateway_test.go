package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/httpapi"
	"repro/internal/join"
	"repro/internal/service"
)

// cluster is an in-process deployment: n real service.Service shards
// behind real HTTP servers, plus a gateway over them. Everything the
// gateway sees crosses a genuine TCP connection and the genuine JSON
// codec — only the processes are shared.
type cluster struct {
	gw      *Gateway
	svcs    []*service.Service
	servers []*httptest.Server
	urls    []string
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{SweepInterval: -1})
		srv := httptest.NewServer(httpapi.NewHandler(svc, 0))
		t.Cleanup(srv.Close)
		t.Cleanup(func() { svc.Close() })
		c.svcs = append(c.svcs, svc)
		c.servers = append(c.servers, srv)
		c.urls = append(c.urls, srv.URL)
	}
	gw, err := New(context.Background(), c.urls, Config{})
	if err != nil {
		t.Fatalf("connecting gateway: %v", err)
	}
	t.Cleanup(func() { gw.Close() })
	c.gw = gw
	return c
}

// newMirror is the single-node oracle the gateway must be
// indistinguishable from.
func newMirror(t *testing.T) *service.Service {
	t.Helper()
	svc := service.New(service.Config{SweepInterval: -1})
	t.Cleanup(func() { svc.Close() })
	return svc
}

// genTuples synthesizes keyed, banded tuples so every join condition is
// exercisable (datagen has no band support).
func genTuples(rng *rand.Rand, n, local, agg, groups int) []dataset.Tuple {
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		attrs := make([]float64, local+agg)
		for j := range attrs {
			attrs[j] = math.Round(rng.Float64()*1000) / 10
		}
		ts[i] = dataset.Tuple{
			Key:   fmt.Sprintf("g%d", rng.Intn(groups)),
			Band:  float64(rng.Intn(40)),
			Attrs: attrs,
		}
	}
	return ts
}

func mustRelation(t *testing.T, name string, local, agg int, ts []dataset.Tuple) *dataset.Relation {
	t.Helper()
	rel, err := dataset.New(name, local, agg, ts)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func samePairs(t *testing.T, label string, got, want []join.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d\n got=%v\nwant=%v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Left != w.Left || g.Right != w.Right {
			t.Fatalf("%s: pair[%d] = (%d,%d), want (%d,%d)", label, i, g.Left, g.Right, w.Left, w.Right)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("%s: pair[%d] has %d attrs, want %d", label, i, len(g.Attrs), len(w.Attrs))
		}
		for j := range w.Attrs {
			if g.Attrs[j] != w.Attrs[j] {
				t.Fatalf("%s: pair[%d].attrs[%d] = %v, want %v", label, i, j, g.Attrs[j], w.Attrs[j])
			}
		}
	}
}

// TestShardedMatchesSimulator is the oracle triangle: for every shard
// count, condition, and aggregator, the real cluster's answer must be
// byte-identical to the in-process simulator's (distributed.Run over the
// same node count) and to a single-node service over the same data.
func TestShardedMatchesSimulator(t *testing.T) {
	ctx := context.Background()
	const local, agg, groups = 2, 1, 6
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(900 + shards)))
			t1 := genTuples(rng, 40, local, agg, groups)
			t2 := genTuples(rng, 45, local, agg, groups)

			c := newCluster(t, shards)
			if _, err := c.gw.Register(ctx, "r1", local, agg, t1); err != nil {
				t.Fatal(err)
			}
			if _, err := c.gw.Register(ctx, "r2", local, agg, t2); err != nil {
				t.Fatal(err)
			}
			mirror := newMirror(t)
			if _, err := mirror.Register("r1", mustRelation(t, "r1", local, agg, t1)); err != nil {
				t.Fatal(err)
			}
			if _, err := mirror.Register("r2", mustRelation(t, "r2", local, agg, t2)); err != nil {
				t.Fatal(err)
			}

			// Non-equality conditions co-locate everything, so they are
			// only shardable at one node; multi-shard runs cover equality.
			conds := []string{"eq"}
			if shards == 1 {
				conds = []string{"eq", "cross", "lt", "le", "gt", "ge"}
			}
			d1, d2 := local+agg, local+agg
			kmin, width := max(d1, d2)+1, local+local+agg
			for _, cond := range conds {
				for _, aggName := range []string{"sum", "max"} {
					for k := kmin; k <= width; k++ {
						label := fmt.Sprintf("%s/%s/k=%d", cond, aggName, k)
						req := service.QueryRequest{
							R1: "r1", R2: "r2", K: k, Join: cond, Agg: aggName,
						}
						gresp, err := c.gw.Query(ctx, req)
						if err != nil {
							t.Fatalf("%s: gateway: %v", label, err)
						}

						// Oracle 1: single-node service. Non-strict
						// aggregators need the explicit naive algorithm
						// there; the gateway does that mapping itself.
						mreq := req
						if aggName != "sum" {
							mreq.Algorithm = "naive"
						}
						mresp, err := mirror.Query(ctx, mreq)
						if err != nil {
							t.Fatalf("%s: mirror: %v", label, err)
						}
						samePairs(t, label+" vs single-node", gresp.Skyline, mresp.Skyline)

						// Oracle 2: the in-process simulator at the same
						// node count.
						jcond, err := join.ParseCondition(cond)
						if err != nil {
							t.Fatal(err)
						}
						jagg, err := join.ParseAggregator(aggName)
						if err != nil {
							t.Fatal(err)
						}
						q := core.Query{
							R1:   mustRelation(t, "r1", local, agg, t1),
							R2:   mustRelation(t, "r2", local, agg, t2),
							Spec: join.Spec{Cond: jcond, Agg: jagg},
							K:    k,
						}
						sim, err := distributed.Run(q, shards)
						if err != nil {
							t.Fatalf("%s: simulator: %v", label, err)
						}
						samePairs(t, label+" vs simulator", gresp.Skyline, sim.Skyline)

						// The live round-2 traffic counters must behave
						// like the simulator's: single shard ships
						// nothing, message counts come in pairs.
						if shards == 1 && (gresp.Dist.MessagesSent != 0 || gresp.Dist.FloatsShipped != 0) {
							t.Fatalf("%s: single shard shipped %d msgs / %d floats",
								label, gresp.Dist.MessagesSent, gresp.Dist.FloatsShipped)
						}
						if gresp.Dist.MessagesSent%2 != 0 {
							t.Fatalf("%s: odd message count %d", label, gresp.Dist.MessagesSent)
						}
					}
				}
			}
		})
	}
}

// TestGatewayMutationsMatchSingleNode replays a mixed insert/delete
// script through the gateway and a single-node mirror, checking after
// every batch that both report the same answer for both aggregator
// classes — the PR 8 mutation-oracle style, now across processes.
func TestGatewayMutationsMatchSingleNode(t *testing.T) {
	ctx := context.Background()
	const local, agg, groups = 2, 1, 5
	rng := rand.New(rand.NewSource(412))
	t1 := genTuples(rng, 20, local, agg, groups)
	t2 := genTuples(rng, 20, local, agg, groups)

	c := newCluster(t, 2)
	mirror := newMirror(t)
	if _, err := c.gw.Register(ctx, "r1", local, agg, t1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, t2); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Register("r1", mustRelation(t, "r1", local, agg, t1)); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Register("r2", mustRelation(t, "r2", local, agg, t2)); err != nil {
		t.Fatal(err)
	}

	sizes := map[string]int{"r1": len(t1), "r2": len(t2)}
	check := func(step int) {
		t.Helper()
		for _, aggName := range []string{"sum", "max"} {
			req := service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: aggName}
			gresp, err := c.gw.Query(ctx, req)
			if err != nil {
				t.Fatalf("step %d %s: gateway: %v", step, aggName, err)
			}
			if aggName != "sum" {
				req.Algorithm = "naive"
			}
			mresp, err := mirror.Query(ctx, req)
			if err != nil {
				t.Fatalf("step %d %s: mirror: %v", step, aggName, err)
			}
			samePairs(t, fmt.Sprintf("step %d %s", step, aggName), gresp.Skyline, mresp.Skyline)
		}
	}
	check(-1)

	for step := 0; step < 30; step++ {
		name := "r1"
		if rng.Intn(2) == 1 {
			name = "r2"
		}
		if rng.Intn(3) < 2 || sizes[name] < 6 {
			batch := genTuples(rng, 1+rng.Intn(4), local, agg, groups)
			gres, err := c.gw.InsertBatch(ctx, name, batch)
			if err != nil {
				t.Fatalf("step %d: gateway insert: %v", step, err)
			}
			if gres.ID != sizes[name] || gres.Count != len(batch) {
				t.Fatalf("step %d: insert geometry id=%d count=%d, want id=%d count=%d",
					step, gres.ID, gres.Count, sizes[name], len(batch))
			}
			if _, err := mirror.InsertBatch(name, batch); err != nil {
				t.Fatalf("step %d: mirror insert: %v", step, err)
			}
			sizes[name] += len(batch)
		} else {
			n := sizes[name]
			count := 1 + rng.Intn(3)
			ids := rng.Perm(n)[:count]
			if _, err := c.gw.DeleteBatch(ctx, name, ids); err != nil {
				t.Fatalf("step %d: gateway delete %v: %v", step, ids, err)
			}
			if _, err := mirror.DeleteBatch(name, ids); err != nil {
				t.Fatalf("step %d: mirror delete: %v", step, err)
			}
			sizes[name] -= count
		}
		check(step)
	}
}

// TestGatewayDrainAndRefill deletes every row a shard holds (the
// partition drains, the shard-side relation is unregistered) and then
// inserts rows that hash back to it (lazy re-registration) — the answer
// must track the single-node mirror throughout.
func TestGatewayDrainAndRefill(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(77))
	t1 := genTuples(rng, 16, local, agg, 4)
	t2 := genTuples(rng, 16, local, agg, 4)

	c := newCluster(t, 2)
	mirror := newMirror(t)
	for name, ts := range map[string][]dataset.Tuple{"r1": t1, "r2": t2} {
		if _, err := c.gw.Register(ctx, name, local, agg, ts); err != nil {
			t.Fatal(err)
		}
		if _, err := mirror.Register(name, mustRelation(t, name, local, agg, ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Find the rows of r1 living on shard 1 and delete exactly those.
	var drain []int
	for i, tp := range t1 {
		if distributed.NodeOf(tp.Key, 2) == 1 {
			drain = append(drain, i)
		}
	}
	if len(drain) == 0 || len(drain) == len(t1) {
		t.Fatalf("seed does not split r1 across shards: %d/%d", len(drain), len(t1))
	}
	if _, err := c.gw.DeleteBatch(ctx, "r1", drain); err != nil {
		t.Fatalf("draining delete: %v", err)
	}
	if _, err := mirror.DeleteBatch("r1", drain); err != nil {
		t.Fatal(err)
	}
	req := service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: "sum"}
	gresp, err := c.gw.Query(ctx, req)
	if err != nil {
		t.Fatalf("after drain: %v", err)
	}
	mresp, err := mirror.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "after drain", gresp.Skyline, mresp.Skyline)

	// Refill: new tuples, some of which hash back to the drained shard.
	refill := genTuples(rng, 12, local, agg, 4)
	if _, err := c.gw.InsertBatch(ctx, "r1", refill); err != nil {
		t.Fatalf("refill insert: %v", err)
	}
	if _, err := mirror.InsertBatch("r1", refill); err != nil {
		t.Fatal(err)
	}
	gresp, err = c.gw.Query(ctx, req)
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	mresp, err = mirror.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "after refill", gresp.Skyline, mresp.Skyline)
}

// TestGatewayShardDown kills one shard process and checks the failure
// surfaces as ErrShardDown naming the dead shard — and as a 503 through
// the gateway's own HTTP surface.
func TestGatewayShardDown(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(31))
	c := newCluster(t, 2)
	if _, err := c.gw.Register(ctx, "r1", local, agg, genTuples(rng, 30, local, agg, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 30, local, agg, 8)); err != nil {
		t.Fatal(err)
	}
	for _, rel := range c.gw.Relations() {
		for s, n := range rel.PerShard {
			if n == 0 {
				t.Fatalf("seed leaves shard %d empty for %s; pick a different seed", s, rel.Name)
			}
		}
	}
	gwsrv := httptest.NewServer(NewHandler(c.gw, 0))
	t.Cleanup(gwsrv.Close)

	c.servers[1].Close() // the outage

	_, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: "sum"})
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("want ErrShardDown, got %v", err)
	}
	var de *DownError
	if !errors.As(err, &de) || de.Addr != c.urls[1] {
		t.Fatalf("error does not name the dead shard %s: %v", c.urls[1], err)
	}

	resp, err := http.Post(gwsrv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"r1":"r1","r2":"r2","k":4,"join":"eq","agg":"sum"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 from gateway surface, got %d", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, c.urls[1]) {
		t.Fatalf("503 body does not name the dead shard: %q", body.Error)
	}
}

// TestGatewayRetriesTransientReads: a shard that 500s once must not fail
// a read-only call (single retry), but must fail a mutation (which is
// not retried — it is not idempotent).
func TestGatewayRetriesTransientReads(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	svc := service.New(service.Config{SweepInterval: -1})
	t.Cleanup(func() { svc.Close() })
	inner := httpapi.NewHandler(svc, 0)
	var failQuery, failInsert atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" && failQuery.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/v1/insert" && failInsert.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	gw, err := New(ctx, []string{srv.URL}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	rng := rand.New(rand.NewSource(5))
	if _, err := gw.Register(ctx, "r1", local, agg, genTuples(rng, 10, local, agg, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Register(ctx, "r2", local, agg, genTuples(rng, 10, local, agg, 3)); err != nil {
		t.Fatal(err)
	}

	failQuery.Store(true)
	if _, err := gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: "sum"}); err != nil {
		t.Fatalf("read-only call not retried past a transient failure: %v", err)
	}

	failInsert.Store(true)
	_, err = gw.InsertBatch(ctx, "r1", genTuples(rng, 1, local, agg, 3))
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("mutation must surface the failure un-retried, got %v", err)
	}
}

// TestGatewayWatch subscribes through the gateway, mutates through the
// gateway, and checks the delta stream reconstructs the live answer.
func TestGatewayWatch(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(19))
	c := newCluster(t, 2)
	if _, err := c.gw.Register(ctx, "r1", local, agg, genTuples(rng, 15, local, agg, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 15, local, agg, 4)); err != nil {
		t.Fatal(err)
	}
	req := service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: "sum"}
	w, err := c.gw.Watch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	recv := func() service.WatchEvent {
		t.Helper()
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch closed early: %v", w.Err())
			}
			return ev
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for watch event")
		}
		panic("unreachable")
	}

	ev := recv()
	if ev.Seq != 0 || len(ev.Removed) != 0 {
		t.Fatalf("snapshot event malformed: %+v", ev)
	}
	answer := append([]join.Pair(nil), ev.Added...)

	apply := func(ev service.WatchEvent) {
		t.Helper()
		next := answer[:0:0]
		for _, p := range answer {
			removed := false
			for _, r := range ev.Removed {
				if r.Left == p.Left && r.Right == p.Right {
					removed = true
					break
				}
			}
			if !removed {
				next = append(next, p)
			}
		}
		next = append(next, ev.Added...)
		distributed.SortPairs(next)
		answer = next
	}

	var seq uint64
	for step := 0; step < 6; step++ {
		if step%2 == 0 {
			if _, err := c.gw.InsertBatch(ctx, "r1", genTuples(rng, 2, local, agg, 4)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := c.gw.DeleteBatch(ctx, "r2", []int{rng.Intn(10)}); err != nil {
				t.Fatal(err)
			}
		}
		ev := recv()
		seq++
		if ev.Seq != seq {
			t.Fatalf("step %d: seq %d, want %d", step, ev.Seq, seq)
		}
		apply(ev)
		cur, err := c.gw.Query(ctx, service.QueryRequest{
			R1: "r1", R2: "r2", K: 4, Join: "eq", Agg: "sum", NoCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, fmt.Sprintf("step %d: replayed watch deltas", step), answer, cur.Skyline)
	}
}

// TestGatewayErrors covers the request-validation and topology error
// taxonomy.
func TestGatewayErrors(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(8))
	c := newCluster(t, 2)
	ts := genTuples(rng, 12, local, agg, 4)
	if _, err := c.gw.Register(ctx, "r1", local, agg, ts); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 12, local, agg, 4)); err != nil {
		t.Fatal(err)
	}

	if _, err := c.gw.Register(ctx, "r1", local, agg, ts); !errors.Is(err, service.ErrDuplicateRelation) {
		t.Fatalf("duplicate register: %v", err)
	}
	if _, err := c.gw.Query(ctx, service.QueryRequest{R1: "nope", R2: "r2", K: 4}); !errors.Is(err, service.ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
	if _, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 99}); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("bad k: %v", err)
	}
	if _, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Join: "cross"}); !errors.Is(err, distributed.ErrNotShardable) {
		t.Fatalf("cross join on 2 shards: %v", err)
	}
	all := make([]int, 12)
	for i := range all {
		all[i] = i
	}
	if _, err := c.gw.DeleteBatch(ctx, "r1", all); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("delete-all: %v", err)
	}
	if _, err := c.gw.Watch(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Agg: "max"}); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("non-strict watch: %v", err)
	}

	// The wire surface: windows are rejected in gateway mode.
	gwsrv := httptest.NewServer(NewHandler(c.gw, 0))
	t.Cleanup(gwsrv.Close)
	resp, err := http.Post(gwsrv.URL+"/v1/relations", "application/json",
		strings.NewReader(`{"name":"w1","local":1,"agg":0,"window_ms":5000,"tuples":[{"key":"a","attrs":[1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("window_ms through gateway: want 400, got %d", resp.StatusCode)
	}

	// A non-shardable query is the client's mistake, not a server fault.
	resp, err = http.Post(gwsrv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"r1":"r1","r2":"r2","k":4,"join":"cross","no_cache":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-shardable through gateway: want 400, got %d", resp.StatusCode)
	}

	// Unregister ends watches with ErrUnknownRelation and frees the name.
	w, err := c.gw.Watch(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Agg: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	<-w.Events() // snapshot
	if err := c.gw.Unregister(ctx, "r1"); err != nil {
		t.Fatal(err)
	}
	for range w.Events() {
	}
	if !errors.Is(w.Err(), service.ErrUnknownRelation) {
		t.Fatalf("watch after unregister: %v", w.Err())
	}
	if err := c.gw.Unregister(ctx, "r1"); !errors.Is(err, service.ErrUnknownRelation) {
		t.Fatalf("double unregister: %v", err)
	}
	if _, err := c.gw.Register(ctx, "r1", local, agg, ts); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

// TestGatewayCloseDrains: Close must refuse new work and wait for
// in-flight scatter-gathers.
func TestGatewayCloseDrains(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(3))
	c := newCluster(t, 2)
	if _, err := c.gw.Register(ctx, "r1", local, agg, genTuples(rng, 10, local, agg, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 10, local, agg, 3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Agg: "sum", NoCache: true})
			done <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.gw.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight query neither drained nor refused cleanly: %v", err)
		}
	}
	if _, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
}

// TestGatewayStats checks the promoted round-2 counters and the cluster
// fan-out snapshot.
func TestGatewayStats(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(44))
	c := newCluster(t, 2)
	if _, err := c.gw.Register(ctx, "r1", local, agg, genTuples(rng, 30, local, agg, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 30, local, agg, 8)); err != nil {
		t.Fatal(err)
	}
	resp, err := c.gw.Query(ctx, service.QueryRequest{R1: "r1", R2: "r2", K: 4, Agg: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	st := c.gw.Stats(ctx)
	if st.Queries != 1 {
		t.Errorf("queries = %d, want 1", st.Queries)
	}
	if uint64(resp.Dist.MessagesSent) != st.R2Messages {
		t.Errorf("gateway counter %d != query stats %d", st.R2Messages, resp.Dist.MessagesSent)
	}
	if uint64(resp.Dist.FloatsShipped) != st.R2Floats {
		t.Errorf("floats counter %d != query stats %d", st.R2Floats, resp.Dist.FloatsShipped)
	}
	if resp.Dist.MessagesSent == 0 {
		t.Error("two shards with shared groups must exchange candidates")
	}
	if len(st.Shards) != 2 {
		t.Fatalf("stats cover %d shards, want 2", len(st.Shards))
	}
	for i, ss := range st.Shards {
		if ss.Error != "" || ss.Stats == nil {
			t.Errorf("shard %d stats missing: %+v", i, ss)
		} else if ss.Stats.Verifies == 0 {
			t.Errorf("shard %d served no verifies despite round 2", i)
		}
	}
}

// TestGatewayWarmRepeat: a repeated identical query must be answered
// from the shards' answer caches — reported via the coldest-wins source.
func TestGatewayWarmRepeat(t *testing.T) {
	ctx := context.Background()
	const local, agg = 2, 1
	rng := rand.New(rand.NewSource(21))
	c := newCluster(t, 2)
	if _, err := c.gw.Register(ctx, "r1", local, agg, genTuples(rng, 30, local, agg, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.gw.Register(ctx, "r2", local, agg, genTuples(rng, 30, local, agg, 6)); err != nil {
		t.Fatal(err)
	}
	req := service.QueryRequest{R1: "r1", R2: "r2", K: 4, Agg: "sum"}
	cold, err := c.gw.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != service.SourceComputed {
		t.Fatalf("first query source %q, want computed", cold.Source)
	}
	warm, err := c.gw.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source == service.SourceComputed {
		t.Fatalf("repeat query recomputed (source %q)", warm.Source)
	}
	samePairs(t, "warm repeat", warm.Skyline, cold.Skyline)
}
