package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/distributed"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// handler re-serves the ksjqd wire surface cluster-wide: the same
// endpoints and JSON shapes as a single shard (internal/httpapi), backed
// by the Gateway's scatter-gather instead of a local service. Clients
// cannot tell a gateway from one big ksjqd — except for /v1/stats, which
// grows the cluster breakdown, GET /v1/shards, and the two deliberate
// gaps: sliding windows (shard-side expiry would renumber rows behind
// the gateway's placement, so window_ms is rejected) and a shard outage
// surfacing as 503 naming the shard.
type handler struct {
	gw         *Gateway
	maxTimeout time.Duration
}

// NewHandler builds the gateway HTTP surface. maxTimeout is the
// operator's per-request bound, applied exactly like the single-node
// wire clamp; 0 disables it.
func NewHandler(gw *Gateway, maxTimeout time.Duration) http.Handler {
	h := &handler{gw: gw, maxTimeout: maxTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/relations", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			httpapi.WriteJSON(w, http.StatusOK, map[string]any{"relations": gw.Relations()})
		case http.MethodPost:
			h.handleRegister(w, r)
		case http.MethodDelete:
			h.handleUnregister(w, r)
		default:
			httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET, POST or DELETE"))
		}
	})
	post := func(path string, fn func(http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
				return
			}
			fn(w, r)
		})
	}
	post("/v1/query", h.handleQuery)
	post("/v1/watch", h.handleWatch)
	post("/v1/insert", h.handleInsert)
	post("/v1/delete", h.handleDelete)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, gw.Stats(r.Context()))
	})
	mux.HandleFunc("/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteJSON(w, http.StatusOK, map[string]any{"shards": gw.Shards()})
	})
	return mux
}

// writeGatewayError extends the single-node error mapping with the
// gateway-specific cases: a shard outage is 503 naming the failing
// shard, and a 4xx a shard already classified passes through verbatim.
func writeGatewayError(w http.ResponseWriter, err error) {
	var api *APIError
	if errors.As(err, &api) {
		httpapi.WriteError(w, api.Status, err)
		return
	}
	if errors.Is(err, ErrShardDown) {
		httpapi.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	if errors.Is(err, ErrClosed) {
		httpapi.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	if errors.Is(err, distributed.ErrNotShardable) {
		httpapi.WriteError(w, http.StatusBadRequest, err)
		return
	}
	httpapi.WriteServiceError(w, err)
}

func (h *handler) clamp(timeoutMS int64) time.Duration {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if timeout < 0 || (h.maxTimeout > 0 && (timeout == 0 || timeout > h.maxTimeout)) {
		timeout = h.maxTimeout
	}
	return timeout
}

func (h *handler) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "csv" {
		q := r.URL.Query()
		if q.Get("window_ms") != "" && q.Get("window_ms") != "0" {
			httpapi.WriteError(w, http.StatusBadRequest, errors.New("sliding windows are not supported in gateway mode"))
			return
		}
		name := q.Get("name")
		local, agg := atoiQ(q.Get("local")), atoiQ(q.Get("agg"))
		hasBand := q.Get("band") != "" && q.Get("band") != "0"
		rel, err := dataset.ReadCSV(r.Body, dataset.ReadOptions{
			Name: name, Local: local, Agg: agg, HasBand: hasBand,
		})
		if err != nil {
			httpapi.WriteError(w, http.StatusBadRequest, err)
			return
		}
		version, err := h.gw.Register(r.Context(), name, local, agg, rel.Rows())
		if err != nil {
			writeGatewayError(w, err)
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, httpapi.RegisterResponseJSON{
			Name: name, Version: version, Tuples: rel.Len(),
		})
		return
	}
	var req httpapi.RegisterJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.WindowMS != 0 {
		httpapi.WriteError(w, http.StatusBadRequest, errors.New("sliding windows are not supported in gateway mode"))
		return
	}
	tuples := make([]dataset.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		tuples[i] = t.Tuple()
	}
	version, err := h.gw.Register(r.Context(), req.Name, req.Local, req.Agg, tuples)
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.RegisterResponseJSON{
		Name: req.Name, Version: version, Tuples: len(tuples),
	})
}

func (h *handler) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		httpapi.WriteError(w, http.StatusBadRequest, errors.New("missing ?name="))
		return
	}
	if err := h.gw.Unregister(r.Context(), name); err != nil {
		writeGatewayError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{"name": name, "unregistered": true})
}

func (h *handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req httpapi.QueryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := h.gw.Query(r.Context(), service.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
		Timeout: h.clamp(req.TimeoutMS),
		NoCache: req.NoCache,
	})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	out := httpapi.QueryResponseJSON{
		Skyline:   make([]httpapi.PairJSON, len(resp.Skyline)),
		Count:     len(resp.Skyline),
		Source:    string(resp.Source),
		Algorithm: resp.Algorithm,
		Versions:  resp.Versions,
		ElapsedUS: resp.Elapsed.Microseconds(),
	}
	for i, p := range resp.Skyline {
		out.Skyline[i] = httpapi.PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs}
	}
	httpapi.WriteJSON(w, http.StatusOK, struct {
		httpapi.QueryResponseJSON
		Dist distStatsJSON `json:"dist"`
	}{out, distStatsJSON{
		Nodes:             resp.Dist.Nodes,
		CandidatesPerNode: resp.Dist.CandidatesPerNode,
		MessagesSent:      resp.Dist.MessagesSent,
		FloatsShipped:     resp.Dist.FloatsShipped,
		LocalUS:           resp.Dist.LocalTime.Microseconds(),
		VerifyUS:          resp.Dist.VerifyTime.Microseconds(),
		TotalUS:           resp.Dist.Total.Microseconds(),
	}})
}

// distStatsJSON is the wire form of the two-round breakdown the paper's
// distributed scheme reports (distributed.Stats).
type distStatsJSON struct {
	Nodes             int   `json:"nodes"`
	CandidatesPerNode []int `json:"candidates_per_node"`
	MessagesSent      int   `json:"messages_sent"`
	FloatsShipped     int   `json:"floats_shipped"`
	LocalUS           int64 `json:"local_us"`
	VerifyUS          int64 `json:"verify_us"`
	TotalUS           int64 `json:"total_us"`
}

func (h *handler) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req httpapi.QueryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	watch, err := h.gw.Watch(r.Context(), service.QueryRequest{
		R1: req.R1, R2: req.R2, K: req.K,
		Join: req.Join, Agg: req.Agg, Algorithm: req.Algorithm,
		Workers: req.Workers,
	})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	defer watch.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range watch.Events() {
		out := httpapi.WatchEventJSON{Seq: ev.Seq, Versions: ev.Versions}
		for _, p := range ev.Added {
			out.Added = append(out.Added, httpapi.PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		for _, p := range ev.Removed {
			out.Removed = append(out.Removed, httpapi.PairJSON{Left: p.Left, Right: p.Right, Attrs: p.Attrs})
		}
		if err := enc.Encode(out); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (h *handler) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req httpapi.InsertJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var tuples []dataset.Tuple
	switch {
	case req.Tuple != nil && len(req.Tuples) > 0:
		httpapi.WriteError(w, http.StatusBadRequest, errors.New(`give "tuple" or "tuples", not both`))
		return
	case req.Tuple != nil:
		tuples = []dataset.Tuple{req.Tuple.Tuple()}
	default:
		tuples = make([]dataset.Tuple, len(req.Tuples))
		for i, t := range req.Tuples {
			tuples[i] = t.Tuple()
		}
	}
	res, err := h.gw.InsertBatch(r.Context(), req.Relation, tuples)
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.InsertResponseJSON{
		ID: res.ID, Count: res.Count, Version: res.Version,
	})
}

func (h *handler) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req httpapi.DeleteJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var ids []int
	switch {
	case req.ID != nil && len(req.IDs) > 0:
		httpapi.WriteError(w, http.StatusBadRequest, errors.New(`give "id" or "ids", not both`))
		return
	case req.ID != nil:
		ids = []int{*req.ID}
	default:
		ids = req.IDs
	}
	res, err := h.gw.DeleteBatch(r.Context(), req.Relation, ids)
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.DeleteResponseJSON{
		Count: res.Count, Version: res.Version,
	})
}

// atoiQ parses a non-negative query parameter, anything else is 0.
func atoiQ(s string) int {
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
		return 0
	}
	return n
}
