package shard

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/distributed"
)

// rowLoc is where one global row lives: which shard, and at which local
// row index inside that shard's partition.
type rowLoc struct {
	shard int32
	local int32
}

// relPlace is the gateway's placement record for one relation: the
// authoritative global row numbering and its bidirectional mapping onto
// per-shard partitions.
//
// Global ids mirror the single-node numbering exactly: registration and
// inserts assign increasing ids in batch order, deletes compact
// preserving order — so a client that talks to the gateway sees the same
// row ids it would see from one ksjqd process over the same mutation
// history. That is the invariant the oracle tests pin.
//
// Rows are placed by distributed.NodeOf on the join-key symbol, so every
// join group is wholly local to one shard. Within a shard, local row
// order is the subsequence of global order (appends group in batch
// order, deletes compact both sides consistently); perShard[s] is
// therefore strictly increasing, which keeps per-shard delete batches
// sorted and per-shard answers locally ordered after mapping to global
// ids.
//
// Mutations split into a read-only plan (the per-shard batches the
// gateway commits over the wire) and an apply that folds in only the
// shards whose commits succeeded — so a shard failing mid-batch leaves
// the mapping agreeing with what the surviving shards actually hold.
type relPlace struct {
	name       string
	local, agg int
	version    uint64
	global     []rowLoc
	perShard   [][]int
	registered []bool
}

func newRelPlace(name string, local, agg, shards int) *relPlace {
	return &relPlace{
		name:       name,
		local:      local,
		agg:        agg,
		version:    1,
		perShard:   make([][]int, shards),
		registered: make([]bool, shards),
	}
}

// planInsert partitions a batch of tuples across shards by join key:
// batches[s] is what shard s must append (nil where a shard gets
// nothing). Read-only.
func (rp *relPlace) planInsert(ts []dataset.Tuple) [][]dataset.Tuple {
	shards := len(rp.perShard)
	batches := make([][]dataset.Tuple, shards)
	for _, t := range ts {
		s := distributed.NodeOf(t.Key, shards)
		batches[s] = append(batches[s], t)
	}
	return batches
}

// applyInsert extends the mapping with the batch's tuples, in batch
// order, for every shard whose commit succeeded (ok[s]).
func (rp *relPlace) applyInsert(ts []dataset.Tuple, ok []bool) {
	shards := len(rp.perShard)
	for _, t := range ts {
		s := distributed.NodeOf(t.Key, shards)
		if !ok[s] {
			continue
		}
		g := len(rp.global)
		rp.global = append(rp.global, rowLoc{shard: int32(s), local: int32(len(rp.perShard[s]))})
		rp.perShard[s] = append(rp.perShard[s], g)
	}
}

// planRemove maps a sorted batch of global row ids onto per-shard local
// delete batches, sorted ascending (monotonicity of perShard guarantees
// the order). Read-only.
func (rp *relPlace) planRemove(sorted []int) [][]int {
	del := make([][]int, len(rp.perShard))
	for _, g := range sorted {
		loc := rp.global[g]
		del[loc.shard] = append(del[loc.shard], int(loc.local))
	}
	return del
}

// applyRemove compacts the mapping around the deleted rows of every
// shard whose commit succeeded (ok[s]); rows on failed shards stay.
func (rp *relPlace) applyRemove(sorted []int, ok []bool) {
	applied := make([]int, 0, len(sorted))
	for _, g := range sorted {
		if ok[rp.global[g].shard] {
			applied = append(applied, g)
		}
	}
	if len(applied) == 0 {
		return
	}
	del := rp.planRemove(applied)
	// Compact the global map: drop deleted rows, renumber survivors on
	// both sides. A survivor's local id shifts down by the number of
	// deleted rows before it on the same shard — which the sorted
	// per-shard delete batches encode.
	w := 0
	for g, loc := range rp.global {
		j := sort.SearchInts(applied, g)
		if j < len(applied) && applied[j] == g {
			continue
		}
		shift := sort.SearchInts(del[loc.shard], int(loc.local))
		rp.global[w] = rowLoc{shard: loc.shard, local: loc.local - int32(shift)}
		w++
	}
	rp.global = rp.global[:w]
	for s := range rp.perShard {
		rp.perShard[s] = rp.perShard[s][:0]
	}
	for g, loc := range rp.global {
		rp.perShard[loc.shard] = append(rp.perShard[loc.shard], g)
	}
}

// toGlobal maps one shard-local row id to its global id.
func (rp *relPlace) toGlobal(shard, local int) int {
	return rp.perShard[shard][local]
}

// rows returns the number of rows shard s holds.
func (rp *relPlace) rows(s int) int { return len(rp.perShard[s]) }

// size returns the relation's global row count.
func (rp *relPlace) size() int { return len(rp.global) }
