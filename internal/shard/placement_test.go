package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distributed"
)

// refModel is the trivial single-node reference: a flat slice of keys in
// global row order.
type refModel []string

func (m refModel) insert(ts []dataset.Tuple) refModel {
	for _, t := range ts {
		m = append(m, t.Key)
	}
	return m
}

func (m refModel) remove(sorted []int) refModel {
	out := m[:0:0]
	j := 0
	for i, k := range m {
		if j < len(sorted) && sorted[j] == i {
			j++
			continue
		}
		out = append(out, k)
	}
	return out
}

// checkInvariants verifies the placement's bidirectional mapping against
// the reference: global order matches, perShard is the strictly
// increasing subsequence of global ids per shard, and local ids are
// dense per shard.
func checkInvariants(t *testing.T, rp *relPlace, ref refModel, shards int) {
	t.Helper()
	if rp.size() != len(ref) {
		t.Fatalf("size %d, want %d", rp.size(), len(ref))
	}
	counts := make([]int, shards)
	for g, loc := range rp.global {
		wantShard := distributed.NodeOf(ref[g], shards)
		if int(loc.shard) != wantShard {
			t.Fatalf("row %d (%s) on shard %d, want %d", g, ref[g], loc.shard, wantShard)
		}
		if int(loc.local) != counts[loc.shard] {
			t.Fatalf("row %d local id %d, want %d (dense per-shard order)", g, loc.local, counts[loc.shard])
		}
		counts[loc.shard]++
		if rp.toGlobal(int(loc.shard), int(loc.local)) != g {
			t.Fatalf("toGlobal(%d,%d) != %d", loc.shard, loc.local, g)
		}
	}
	for s := range counts {
		if rp.rows(s) != counts[s] {
			t.Fatalf("shard %d rows %d, want %d", s, rp.rows(s), counts[s])
		}
		if !sort.IntsAreSorted(rp.perShard[s]) {
			t.Fatalf("perShard[%d] not increasing: %v", s, rp.perShard[s])
		}
	}
}

func keyTuples(rng *rand.Rand, n, groups int) []dataset.Tuple {
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		ts[i] = dataset.Tuple{Key: fmt.Sprintf("g%d", rng.Intn(groups)), Attrs: []float64{1}}
	}
	return ts
}

func allOK(n int) []bool {
	ok := make([]bool, n)
	for i := range ok {
		ok[i] = true
	}
	return ok
}

func TestPlacementMirrorsSingleNodeNumbering(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(shards)))
		rp := newRelPlace("r", 1, 0, shards)
		var ref refModel
		for step := 0; step < 200; step++ {
			if rng.Intn(3) < 2 || rp.size() < 4 {
				batch := keyTuples(rng, 1+rng.Intn(5), 7)
				rp.applyInsert(batch, allOK(shards))
				ref = ref.insert(batch)
			} else {
				count := 1 + rng.Intn(rp.size()/2)
				sorted := rng.Perm(rp.size())[:count]
				sort.Ints(sorted)
				rp.applyRemove(sorted, allOK(shards))
				ref = ref.remove(sorted)
			}
			checkInvariants(t, rp, ref, shards)
		}
	}
}

func TestPlacementPlanPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const shards = 3
	rp := newRelPlace("r", 1, 0, shards)
	batch := keyTuples(rng, 50, 9)
	plan := rp.planInsert(batch)
	total := 0
	for s, part := range plan {
		total += len(part)
		for _, tp := range part {
			if distributed.NodeOf(tp.Key, shards) != s {
				t.Fatalf("tuple %q planned on shard %d, hashes to %d", tp.Key, s, distributed.NodeOf(tp.Key, shards))
			}
		}
	}
	if total != len(batch) {
		t.Fatalf("plan covers %d tuples, want %d", total, len(batch))
	}
	rp.applyInsert(batch, allOK(shards))
	sorted := []int{0, 7, 23, 49}
	del := rp.planRemove(sorted)
	covered := 0
	for s, part := range del {
		covered += len(part)
		if !sort.IntsAreSorted(part) {
			t.Fatalf("shard %d delete batch unsorted: %v", s, part)
		}
		for _, local := range part {
			g := rp.toGlobal(s, local)
			if i := sort.SearchInts(sorted, g); i == len(sorted) || sorted[i] != g {
				t.Fatalf("shard %d local %d maps to global %d, not in batch %v", s, local, g, sorted)
			}
		}
	}
	if covered != len(sorted) {
		t.Fatalf("remove plan covers %d rows, want %d", covered, len(sorted))
	}
}

// TestPlacementPartialFailure: apply must fold in only the shards whose
// commits succeeded, leaving a mapping that matches a reference where
// the failed shard's sub-batch simply never happened.
func TestPlacementPartialFailure(t *testing.T) {
	const shards = 3
	rng := rand.New(rand.NewSource(13))
	rp := newRelPlace("r", 1, 0, shards)
	seed := keyTuples(rng, 40, 8)
	rp.applyInsert(seed, allOK(shards))
	ref := refModel{}.insert(seed)
	checkInvariants(t, rp, ref, shards)

	// Insert where shard 1 fails: its tuples must not enter the mapping.
	batch := keyTuples(rng, 20, 8)
	ok := allOK(shards)
	ok[1] = false
	rp.applyInsert(batch, ok)
	for _, tp := range batch {
		if distributed.NodeOf(tp.Key, shards) != 1 {
			ref = append(ref, tp.Key)
		}
	}
	checkInvariants(t, rp, ref, shards)

	// Delete where shard 2 fails: its rows must survive in the mapping.
	sorted := rng.Perm(rp.size())[:10]
	sort.Ints(sorted)
	ok = allOK(shards)
	ok[2] = false
	var applied []int
	for _, g := range sorted {
		if distributed.NodeOf(ref[g], shards) != 2 {
			applied = append(applied, g)
		}
	}
	rp.applyRemove(sorted, ok)
	ref = ref.remove(applied)
	checkInvariants(t, rp, ref, shards)
}
