package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/join"
	"repro/internal/service"
)

// Gateway watches: the single-node service pushes deltas from its live
// maintainer; the gateway has no resident data to maintain, so it
// re-runs the two-round scatter-gather after every gateway-driven
// mutation touching a watched relation and diffs against the served
// snapshot. The refresh happens while the mutation still holds the
// gateway's write lock — the same linearization point the single-node
// ingest path uses — so subscribers see exactly one coalesced delta per
// batch, in commit order, with a gateway-side sequence. The re-query is
// cheap in steady state: shards answer round 1 from their own
// maintainers and answer caches (the PR 5 machinery), so a watch refresh
// is mostly two round trips, not a recompute.

// gwWatchKey is the normalized identity of a watched gateway query.
type gwWatchKey struct {
	r1, r2 string
	cond   join.Condition
	agg    string
	k      int
}

// gwWatchSet is the shared state of all subscriptions to one watched
// query: the served snapshot deltas diff against, and the subscriber
// list. Mutated only under the gateway's write lock.
type gwWatchSet struct {
	key      gwWatchKey
	req      service.QueryRequest
	last     []join.Pair
	versions [2]uint64
	subs     map[*Watch]struct{}
}

// Watch is one live gateway subscription; the API mirrors service.Watch
// (Events / Err / Close) so the NDJSON wire surface is identical.
type Watch struct {
	gw  *Gateway
	set *gwWatchSet

	events chan service.WatchEvent
	wake   chan struct{} // cap 1: "pending is non-empty"
	done   chan struct{}
	once   sync.Once

	mu      sync.Mutex
	pending []service.WatchEvent
	seq     uint64
	err     error
}

// Watch subscribes to a query's merged answer. The first event (Seq 0)
// is the current answer as Added; each later event is the coalesced
// delta one gateway insert or delete batch caused. Like the single-node
// service, only strictly monotonic aggregators are watchable. The
// context governs the subscription's lifetime.
func (g *Gateway) Watch(ctx context.Context, req service.QueryRequest) (*Watch, error) {
	if err := g.track(); err != nil {
		return nil, err
	}
	defer g.wg.Done()
	cond, agg, err := g.parseQuery(req)
	if err != nil {
		return nil, err
	}
	if !agg.Strict {
		return nil, fmt.Errorf("%w: watch requires a strictly monotonic aggregator (got %q)", service.ErrBadRequest, agg.Name)
	}
	// Establish under the write lock: mutations also hold it, so the
	// snapshot and the subscription are atomic against ingest — no
	// retry loop needed, unlike the single-node service whose queries
	// run under a read lock.
	g.mu.Lock()
	defer g.mu.Unlock()
	key := gwWatchKey{r1: req.R1, r2: req.R2, cond: cond, agg: agg.Name, k: req.K}
	ws, live := g.watches[key]
	if !live {
		resp, err := g.queryLocked(ctx, req)
		if err != nil {
			return nil, err
		}
		snapshot := resp.Skyline
		if snapshot == nil {
			snapshot = []join.Pair{}
		}
		ws = &gwWatchSet{
			key: key, req: req,
			last: snapshot, versions: resp.Versions,
			subs: make(map[*Watch]struct{}),
		}
		g.watches[key] = ws
	}
	w := &Watch{
		gw:     g,
		set:    ws,
		events: make(chan service.WatchEvent, 16),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	ws.subs[w] = struct{}{}
	w.enqueue(service.WatchEvent{Added: ws.last, Versions: ws.versions})
	go w.pump(ctx)
	return w, nil
}

// refreshWatchesLocked re-runs every watch touching the mutated relation
// and publishes the delta. Caller holds the write lock, immediately
// after committing a mutation. The refresh must not inherit the
// caller's cancellation: the mutation has already committed, so its
// watchers must hear about it even if the client hung up.
func (g *Gateway) refreshWatchesLocked(ctx context.Context, name string) {
	for key, ws := range g.watches {
		if key.r1 != name && key.r2 != name {
			continue
		}
		resp, err := g.queryLocked(context.WithoutCancel(ctx), ws.req)
		if err != nil {
			// The refresh could not observe the new answer (a shard went
			// down mid-watch). A silent gap would leave subscribers
			// believing a stale snapshot, so fail the subscription loudly.
			for sub := range ws.subs {
				sub.terminate(err)
			}
			delete(g.watches, key)
			continue
		}
		cur := resp.Skyline
		added, removed := service.DiffPairs(ws.last, cur)
		ws.last = cur
		ws.versions = resp.Versions
		for sub := range ws.subs {
			sub.enqueue(service.WatchEvent{Added: added, Removed: removed, Versions: ws.versions})
		}
	}
}

// dropWatchesLocked terminates every subscription naming the relation;
// caller holds the write lock (Unregister).
func (g *Gateway) dropWatchesLocked(name string, cause error) {
	for key, ws := range g.watches {
		if key.r1 != name && key.r2 != name {
			continue
		}
		for sub := range ws.subs {
			sub.terminate(cause)
		}
		delete(g.watches, key)
	}
}

// Events is the subscription's delivery channel; it closes when the
// watch ends and Err reports why.
func (w *Watch) Events() <-chan service.WatchEvent { return w.events }

// Err reports why Events closed: nil after a clean Close, the context's
// error after cancellation, ErrClosed after gateway shutdown, or the
// scatter-gather error that broke the watch refresh.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close ends the subscription; idempotent.
func (w *Watch) Close() error {
	w.gw.removeWatch(w)
	w.once.Do(func() { close(w.done) })
	return nil
}

func (w *Watch) terminate(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.once.Do(func() { close(w.done) })
}

// enqueue appends an event and nudges the pump; never blocks (callers
// hold the gateway's write lock).
func (w *Watch) enqueue(ev service.WatchEvent) {
	w.mu.Lock()
	ev.Seq = w.seq
	w.seq++
	w.pending = append(w.pending, ev)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Watch) pump(ctx context.Context) {
	defer close(w.events)
	for {
		select {
		case <-w.done:
			return
		case <-ctx.Done():
			w.gw.removeWatch(w)
			w.terminate(ctx.Err())
			return
		case <-w.wake:
		}
		for {
			w.mu.Lock()
			if len(w.pending) == 0 {
				w.mu.Unlock()
				break
			}
			ev := w.pending[0]
			w.pending = w.pending[1:]
			w.mu.Unlock()
			select {
			case w.events <- ev:
			case <-w.done:
				return
			case <-ctx.Done():
				w.gw.removeWatch(w)
				w.terminate(ctx.Err())
				return
			}
		}
	}
}

// removeWatch unsubscribes w, dropping its set when it was the last
// subscriber.
func (g *Gateway) removeWatch(w *Watch) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ws := w.set
	if current, ok := g.watches[ws.key]; !ok || current != ws {
		return
	}
	delete(ws.subs, w)
	if len(ws.subs) == 0 {
		delete(g.watches, ws.key)
	}
}
