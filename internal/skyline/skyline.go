// Package skyline implements classic (full-dominance) skyline algorithms
// used as baselines and as correctness oracles for the k-dominant layer:
// block-nested-loop (BNL, Börzsönyi et al. ICDE'01) and sort-filter-skyline
// (SFS, Chomicki et al. ICDE'03).
//
// All functions operate on a slice of attribute vectors and return the
// indices of skyline points in ascending order. Lower values are preferred.
package skyline

import (
	"sort"

	"repro/internal/dom"
)

// BNL computes the skyline with the block-nested-loop algorithm: a window of
// current candidates is maintained; each incoming point is dropped if
// dominated by a window point, and evicts window points it dominates.
// Because full dominance is transitive, the window at the end is exactly
// the skyline.
func BNL(points [][]float64) []int {
	window := make([]int, 0, 16)
	for i, p := range points {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			switch {
			case dom.Dominates(points[w], p):
				dominated = true
				keep = append(keep, w)
			case dom.Dominates(p, points[w]):
				// evict w
			default:
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, i)
		}
	}
	sort.Ints(window)
	return window
}

// SFS computes the skyline with sort-filter-skyline: points are scanned in
// ascending order of an entropy-like monotone score (here: attribute sum),
// which guarantees no later point can dominate an earlier one, so a point
// only needs to be checked against already-accepted skyline points.
func SFS(points [][]float64) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sums := make([]float64, len(points))
	for i, p := range points {
		s := 0.0
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] < sums[order[b]] })

	sky := make([]int, 0, 16)
	for _, i := range order {
		dominated := false
		for _, s := range sky {
			if dom.Dominates(points[s], points[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}

// Naive computes the skyline by comparing every pair; it is the O(n²)
// correctness oracle for the other algorithms.
func Naive(points [][]float64) []int {
	var sky []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dom.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	return sky
}
