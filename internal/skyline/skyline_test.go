package skyline

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSkylineSimple(t *testing.T) {
	points := [][]float64{
		{1, 4}, // skyline
		{2, 3}, // skyline
		{3, 3}, // dominated by {2,3}
		{4, 1}, // skyline
		{5, 5}, // dominated
	}
	want := []int{0, 1, 3}
	for name, fn := range map[string]func([][]float64) []int{"BNL": BNL, "SFS": SFS, "Naive": Naive} {
		if got := fn(points); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestSkylineDuplicates(t *testing.T) {
	// Equal points never dominate each other: both stay in the skyline.
	points := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	want := []int{0, 1}
	for name, fn := range map[string]func([][]float64) []int{"BNL": BNL, "SFS": SFS, "Naive": Naive} {
		if got := fn(points); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestSkylineSinglePoint(t *testing.T) {
	points := [][]float64{{3, 1, 4}}
	for name, fn := range map[string]func([][]float64) []int{"BNL": BNL, "SFS": SFS, "Naive": Naive} {
		if got := fn(points); !reflect.DeepEqual(got, []int{0}) {
			t.Errorf("%s = %v, want [0]", name, got)
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	for name, fn := range map[string]func([][]float64) []int{"BNL": BNL, "SFS": SFS} {
		if got := fn(nil); len(got) != 0 {
			t.Errorf("%s(nil) = %v, want empty", name, got)
		}
	}
}

func TestSkylineTotalOrder(t *testing.T) {
	// On a chain p0 dom p1 dom p2 ... only p0 survives.
	points := [][]float64{{4, 4}, {3, 3}, {2, 2}, {1, 1}}
	want := []int{3}
	for name, fn := range map[string]func([][]float64) []int{"BNL": BNL, "SFS": SFS, "Naive": Naive} {
		if got := fn(points); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, d)
		for j := range points[i] {
			// Small integer domain to force ties and duplicates.
			points[i][j] = float64(rng.Intn(6))
		}
	}
	return points
}

func TestAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		d := 1 + rng.Intn(5)
		points := randomPoints(rng, n, d)
		naive := Naive(points)
		if bnl := BNL(points); !reflect.DeepEqual(bnl, naive) {
			t.Fatalf("trial %d: BNL = %v, Naive = %v\npoints=%v", trial, bnl, naive, points)
		}
		if sfs := SFS(points); !reflect.DeepEqual(sfs, naive) {
			t.Fatalf("trial %d: SFS = %v, Naive = %v\npoints=%v", trial, sfs, naive, points)
		}
	}
}

func TestPropertySkylineNonEmpty(t *testing.T) {
	// Any non-empty dataset has a non-empty skyline (the minimum-sum point
	// can never be dominated strictly everywhere).
	f := func(raw [][3]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r[0]), float64(r[1]), float64(r[2])}
		}
		return len(BNL(points)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySkylineMembersUndominated(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r[0]), float64(r[1]), float64(r[2])}
		}
		sky := make(map[int]bool)
		for _, i := range SFS(points) {
			sky[i] = true
		}
		for i := range points {
			dominated := false
			for j := range points {
				if i != j && dominates(points[j], points[i]) {
					dominated = true
					break
				}
			}
			if sky[i] == dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}
