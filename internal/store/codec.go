// Package store is ksjqd's durability subsystem (DESIGN.md §14): an
// append-only write-ahead log of acknowledged mutations, columnar segment
// files holding relation snapshots, and a manifest that binds a segment
// generation to the WAL that continues it. The service layer owns the
// policy (what to log, when to checkpoint, how to replay); this package
// owns the files and their formats.
//
// Every on-disk structure is length-prefixed and checksummed, and every
// multi-file transition (checkpoint) goes through write-temp-then-rename
// with the manifest rename as the commit point, so a crash at any instant
// leaves either the old generation or the new one — never a blend.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is the base error for every decode failure: short buffers,
// bad magic, checksum mismatches, impossible lengths. Decoders return it
// (wrapped with context) rather than panicking, whatever the input bytes —
// FuzzWALDecode holds them to that.
var ErrCorrupt = errors.New("store: corrupt data")

// buf is the append-side codec: little-endian fixed-width numbers and
// uvarint-length-prefixed strings over a plain byte slice.
type buf struct{ b []byte }

func (w *buf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *buf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *buf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *buf) i64(v int64)   { w.u64(uint64(v)) }
func (w *buf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *buf) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}
func (w *buf) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *buf) f64s(vs []float64) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}
func (w *buf) i32s(vs []int32) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.u32(uint32(v))
	}
}
func (w *buf) strs(vs []string) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.str(v)
	}
}

// rbuf is the decode-side codec. Every read checks the remaining length
// and flips err instead of slicing out of range; once err is set all
// subsequent reads return zero values, so decoders can read a whole
// structure and check err once.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, r.off)
	}
}

func (r *rbuf) remaining() int { return len(r.b) - r.off }

func (r *rbuf) u8() uint8 {
	if r.err != nil || r.remaining() < 1 {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// length reads a uvarint count of elements each at least elemSize bytes
// wide and rejects counts the remaining buffer cannot possibly hold, so a
// corrupted length cannot drive a multi-gigabyte allocation.
func (r *rbuf) length(elemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64(r.remaining()/elemSize) {
		r.fail("length prefix")
		return 0
	}
	return int(v)
}

func (r *rbuf) str() string {
	n := r.length(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) f64s() []float64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *rbuf) i32s() []int32 {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}

func (r *rbuf) strs() []string {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}
