package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestName is the one file a reader starts from. It is replaced
// atomically (write-temp-then-rename), making the rename the commit point
// of every checkpoint: a crash at any instant leaves a manifest that names
// either the old generation's files or the new one's, both complete.
const manifestName = "MANIFEST"

// manifestRelation is one relation's entry: which segment file holds its
// snapshot and the registry state recorded in it (duplicated here for
// listing without opening segments).
type manifestRelation struct {
	Name    string `json:"name"`
	Segment string `json:"segment"`
	Version uint64 `json:"version"`
	Rows    int    `json:"rows"`
	// WindowNS is the sliding window in nanoseconds (0 = unwindowed).
	WindowNS int64 `json:"window_ns,omitempty"`
}

// manifestResident is one resident index combo that was warm at checkpoint
// time. Recovery rebuilds exactly these, so a restarted server answers its
// pre-crash working set without a cold build.
type manifestResident struct {
	R1   string `json:"r1"`
	R2   string `json:"r2"`
	Cond string `json:"cond"`
}

// manifest is the store's root structure.
type manifest struct {
	// Seq is the checkpoint generation; file names embed it so one
	// generation's files never collide with the next.
	Seq uint64 `json:"seq"`
	// WAL is the live WAL file continuing from the segments.
	WAL string `json:"wal"`
	// Relations lists the current segment per relation.
	Relations []manifestRelation `json:"relations"`
	// Residents lists the resident-index combos to rebuild eagerly.
	Residents []manifestResident `json:"residents,omitempty"`
}

func walFileName(seq uint64) string { return fmt.Sprintf("wal-%06d.log", seq) }

func segmentFileName(seq uint64, idx int) string {
	return fmt.Sprintf("seg-%06d-%03d.seg", seq, idx)
}

// readManifest loads dir's manifest; a missing file returns an empty
// manifest for generation 0 (a fresh data dir).
func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{Seq: 0, WAL: walFileName(0)}, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.WAL == "" {
		m.WAL = walFileName(m.Seq)
	}
	return m, nil
}

// writeManifest commits a manifest atomically.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, manifestName, append(data, '\n'))
}

// sweepOrphans removes wal-*/seg-* files (and stray temp files) the
// manifest does not reference — leftovers of a checkpoint that crashed
// before or after its commit point. Best effort: an undeletable orphan is
// harmless, it just occupies disk until the next sweep.
func sweepOrphans(dir string, m manifest) {
	referenced := map[string]bool{manifestName: true, m.WAL: true}
	for _, r := range m.Relations {
		referenced[r.Segment] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if referenced[name] || e.IsDir() {
			continue
		}
		switch {
		case len(name) > 4 && name[:4] == "wal-",
			len(name) > 4 && name[:4] == "seg-",
			filepath.Ext(name) == ".tmp",
			manifestTmp(name):
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// manifestTmp reports whether name is a CreateTemp leftover of an atomic
// write ("MANIFEST.tmp*", "seg-….seg.tmp*", …).
func manifestTmp(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == ".tmp" {
			return true
		}
	}
	return false
}
