package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"repro/internal/dataset"
)

// Segment file layout:
//
//	[8B magic "KSJQSEG1"]
//	[4B payload length][4B CRC-32C of payload]
//	[payload]
//
// The payload is the relation's registry identity (name, version, window)
// followed by the same columnar relation payload the WAL's RecRegister
// uses: flat attrs block, band column, int32 key columns, symbol-table
// footer. One segment is one relation snapshot at one registry version;
// the checkpointer writes a fresh generation of segments and the manifest
// names the current one per relation.
var segmentMagic = [8]byte{'K', 'S', 'J', 'Q', 'S', 'E', 'G', '1'}

// SegmentData is one decoded segment: a relation snapshot plus the
// registry state (version, window) it was taken at.
type SegmentData struct {
	Name    string
	Version uint64
	Window  time.Duration
	Rel     *dataset.Relation
}

// EncodeSegment renders a complete segment file image.
func EncodeSegment(name string, version uint64, window time.Duration, c dataset.Columns) []byte {
	p := &buf{}
	p.str(name)
	p.u64(version)
	p.i64(int64(window))
	encodeRelationPayload(p, c)

	w := &buf{b: make([]byte, 0, len(segmentMagic)+frameHeader+len(p.b))}
	w.b = append(w.b, segmentMagic[:]...)
	w.u32(uint32(len(p.b)))
	w.u32(crc32.Checksum(p.b, crcTable))
	w.b = append(w.b, p.b...)
	return w.b
}

// DecodeSegment parses a segment file image, verifying magic and checksum
// and rebuilding the relation through the validating columnar constructor.
func DecodeSegment(data []byte) (SegmentData, error) {
	var sd SegmentData
	if len(data) < len(segmentMagic)+frameHeader {
		return sd, fmt.Errorf("%w: segment shorter than header", ErrCorrupt)
	}
	if string(data[:len(segmentMagic)]) != string(segmentMagic[:]) {
		return sd, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	h := &rbuf{b: data[len(segmentMagic):]}
	n := int(h.u32())
	sum := h.u32()
	if n < 0 || n > len(data)-len(segmentMagic)-frameHeader {
		return sd, fmt.Errorf("%w: segment payload length %d exceeds file", ErrCorrupt, n)
	}
	payload := data[len(segmentMagic)+frameHeader : len(segmentMagic)+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return sd, fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
	}
	r := &rbuf{b: payload}
	sd.Name = r.str()
	sd.Version = r.u64()
	sd.Window = time.Duration(r.i64())
	if r.err != nil {
		return sd, r.err
	}
	if sd.Window < 0 {
		return sd, fmt.Errorf("%w: negative window %d", ErrCorrupt, sd.Window)
	}
	rel, err := decodeRelationPayload(r, sd.Name)
	if err != nil {
		return sd, err
	}
	if r.remaining() != 0 {
		return sd, fmt.Errorf("%w: %d trailing bytes after segment payload", ErrCorrupt, r.remaining())
	}
	sd.Rel = rel
	return sd, nil
}

// writeFileAtomic writes data to dir/name via a temp file + rename, with
// an fsync before the rename and one on the directory after, so the file
// is either absent or complete — never half-written under its final name.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, fmt.Sprintf("%s/%s", dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
